//! Smoke test for the `adaptive-kg` facade crate: the paper's end-to-end
//! deployment path (build a mission system, embed a frame, score a window)
//! must work through the re-exported module names alone.

use adaptive_kg::core::pipeline::{MissionSystem, SystemConfig};
use adaptive_kg::data::Frame;
use adaptive_kg::kg::AnomalyClass;
use adaptive_kg::tensor::nn::Module;

#[test]
fn facade_reexports_build_and_score() {
    let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    sys.engine.model.set_train(false);

    let frame =
        Frame { concepts: vec![("walking".into(), 1.0), ("person".into(), 0.6)], label: None };
    let embedding = sys.embed_frame(&frame);
    let window = vec![embedding; sys.engine.model.config().window];

    let score = sys.score_window(&window);
    assert!((0.0..=1.0).contains(&score), "score must be a probability, got {score}");
}

#[test]
fn facade_exposes_all_member_crates() {
    // one cheap touch per re-exported crate, so a dropped re-export fails here
    let _ = adaptive_kg::eval::roc_auc(&[0.9, 0.1], &[true, false]);
    let _ = adaptive_kg::cost::KgDims { nodes: 1, edges: 1, levels: 3 };
    let _ = adaptive_kg::embed::Similarity::Euclidean;
    let _ = adaptive_kg::kg::Ontology::new();
    let _ = adaptive_kg::tensor::Tensor::from_vec(vec![1.0], &[1]);
    let _ = adaptive_kg::data::DatasetConfig::scaled(0.01);
    let _ = adaptive_kg::core::AdaptConfig::default();
}
