//! Integration tests of the experiment protocols (the machinery behind the
//! Fig. 5 / Fig. 6 regenerators), at reduced scale so CI stays fast.

use adaptive_kg::core::experiment::{
    run_retrieval_drift, run_trend_shift, RetrievalDriftParams, TrendShiftParams,
};
use akg_data::{DatasetConfig, SyntheticUcfCrime};
use akg_embed::Similarity;
use akg_kg::{AnomalyClass, Ontology};

fn tiny_params(initial: AnomalyClass, shifted: AnomalyClass, seed: u64) -> TrendShiftParams {
    let mut p = TrendShiftParams::quick(initial, shifted);
    p.steps_before = 1;
    p.steps_after = 1;
    p.frames_per_step = 96;
    p.seed = seed;
    p.system.seed = seed;
    p.train.steps = 60;
    p.train.batch_size = 8;
    p
}

fn tiny_dataset(classes: &[AnomalyClass], seed: u64) -> SyntheticUcfCrime {
    let mut cfg = DatasetConfig::scaled(0.015).with_classes(classes).with_seed(seed);
    cfg.test_normal = 10;
    cfg.test_anomalous = 10;
    SyntheticUcfCrime::generate(cfg)
}

#[test]
fn trend_shift_produces_both_curves() {
    let ds = tiny_dataset(&[AnomalyClass::Stealing, AnomalyClass::Robbery], 3);
    let params = tiny_params(AnomalyClass::Stealing, AnomalyClass::Robbery, 3);
    let result = run_trend_shift(&ds, &params);
    assert_eq!(result.adaptive.points.len(), 2);
    assert_eq!(result.static_kg.points.len(), 2);
    assert!(result.initial_auc > 0.5, "initial AUC {}", result.initial_auc);
    // pre-shift point is measured against the initial class and must be
    // decent; post-shift points are flagged
    assert!(!result.adaptive.points[0].after_shift);
    assert!(result.adaptive.points[1].after_shift);
    for p in result.adaptive.points.iter().chain(&result.static_kg.points) {
        assert!((0.0..=1.0).contains(&p.auc));
    }
}

#[test]
fn strong_shift_drops_static_auc() {
    let ds = tiny_dataset(&[AnomalyClass::Stealing, AnomalyClass::Explosion], 43);
    let params = tiny_params(AnomalyClass::Stealing, AnomalyClass::Explosion, 43);
    let result = run_trend_shift(&ds, &params);
    let pre = result.static_kg.points[0].auc;
    let post = result.static_kg.points[1].auc;
    assert!(post < pre - 0.1, "static KG should drop on a strong shift: {pre} -> {post}");
}

#[test]
fn retrieval_drift_records_snapshots() {
    let ds = tiny_dataset(&[AnomalyClass::Stealing, AnomalyClass::Robbery], 4);
    let ontology = Ontology::new();
    let params = RetrievalDriftParams {
        shift: tiny_params(AnomalyClass::Stealing, AnomalyClass::Robbery, 4),
        snapshot_every: 48,
        initial_words: ontology
            .all_concepts(AnomalyClass::Stealing)
            .iter()
            .map(|s| s.to_string())
            .collect(),
        target_words: ontology
            .all_concepts(AnomalyClass::Robbery)
            .iter()
            .map(|s| s.to_string())
            .collect(),
        top_k: 3,
        metric: Similarity::Euclidean,
    };
    let result = run_retrieval_drift(&ds, &params);
    assert!(result.snapshots.len() >= 2);
    for snap in &result.snapshots {
        assert!(snap.distance_to_initial.is_finite());
        assert!(snap.distance_to_target.is_finite());
        assert!(!snap.retrieved.is_empty());
    }
}

#[test]
fn weak_overlap_exceeds_strong_in_ontology_and_space() {
    let ontology = Ontology::new();
    let weak = ontology.concept_overlap(AnomalyClass::Stealing, AnomalyClass::Robbery);
    let strong = ontology.concept_overlap(AnomalyClass::Stealing, AnomalyClass::Explosion);
    assert!(weak > strong);
    let weak_rel = ontology.class_relatedness(AnomalyClass::Stealing, AnomalyClass::Robbery);
    let strong_rel = ontology.class_relatedness(AnomalyClass::Stealing, AnomalyClass::Explosion);
    assert!(weak_rel > strong_rel);
    assert_eq!(strong_rel, 0.0);
}
