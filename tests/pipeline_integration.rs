//! Integration tests spanning the whole workspace: pipeline stages A→B→C
//! wired together, determinism, and the adaptation mechanism's end-to-end
//! behaviour on a small scenario.

use adaptive_kg::core::adapt::{AdaptConfig, ContinuousAdapter};
use adaptive_kg::core::pipeline::{MissionSystem, SystemConfig};
use adaptive_kg::core::train::train_decision_model;
use adaptive_kg::core::TrainConfig;
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_tensor::nn::Module;

fn small_dataset(classes: &[AnomalyClass], seed: u64) -> SyntheticUcfCrime {
    SyntheticUcfCrime::generate(DatasetConfig::scaled(0.015).with_classes(classes).with_seed(seed))
}

fn quick_train(mission: AnomalyClass, seed: u64) -> (MissionSystem, SyntheticUcfCrime) {
    let mut sys =
        MissionSystem::build(&[mission], &SystemConfig { seed, ..SystemConfig::default() });
    let ds = small_dataset(&[mission, AnomalyClass::Robbery], seed);
    let videos: Vec<&akg_data::Video> = ds.train.iter().collect();
    let cfg = TrainConfig { steps: 80, batch_size: 12, ..TrainConfig::fast() }.with_seed(seed);
    train_decision_model(&mut sys, &videos, &cfg);
    (sys, ds)
}

#[test]
fn full_pipeline_trains_to_useful_auc() {
    let (sys, ds) = quick_train(AnomalyClass::Stealing, 5);
    let auc = sys.evaluate_auc(&ds.test_subset(AnomalyClass::Stealing));
    assert!(auc > 0.65, "pipeline AUC too low: {auc}");
}

#[test]
fn generated_kg_remains_valid_through_adaptation() {
    let (mut sys, ds) = quick_train(AnomalyClass::Stealing, 6);
    let cfg = AdaptConfig {
        n_window: 24,
        interval: 8,
        min_k: 1,
        divergence_patience: 1,
        movement_epsilon: 0.0,
        ..AdaptConfig::default()
    };
    let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
    let mut stream = AdaptationStream::new(&ds, AnomalyClass::Robbery, 0.5, 1);
    for _ in 0..120 {
        let (frame, _) = stream.next_frame();
        adapter.observe(&mut sys, &frame);
    }
    // whatever structural changes happened, every KG invariant must hold
    for tkg in sys.session.kgs.iter() {
        assert!(tkg.kg.validate().is_empty(), "{:?}", tkg.kg.validate());
    }
    // and every live reasoning node must still have token rows
    for tkg in sys.session.kgs.iter() {
        for node in tkg.kg.nodes() {
            if node.kind == akg_kg::NodeKind::Reasoning {
                assert!(tkg.tokens_of(node.id).is_some(), "node {} lost tokens", node.id);
            }
        }
    }
}

#[test]
fn adaptation_only_touches_token_table() {
    let (mut sys, ds) = quick_train(AnomalyClass::Stealing, 7);
    let model_params: Vec<Vec<f32>> =
        sys.engine.model.params().iter().map(|p| p.to_vec()).collect();
    let cfg = AdaptConfig { n_window: 24, interval: 8, min_k: 1, ..AdaptConfig::default() };
    let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
    let mut stream = AdaptationStream::new(&ds, AnomalyClass::Robbery, 0.6, 2);
    for _ in 0..96 {
        let (frame, _) = stream.next_frame();
        adapter.observe(&mut sys, &frame);
    }
    let after: Vec<Vec<f32>> = sys.engine.model.params().iter().map(|p| p.to_vec()).collect();
    assert_eq!(model_params, after, "frozen decision model changed during adaptation");
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let (sys, ds) = quick_train(AnomalyClass::Stealing, seed);
        sys.evaluate_auc(&ds.test_subset(AnomalyClass::Stealing))
    };
    assert_eq!(run(11), run(11), "same seed must give identical results");
}

#[test]
fn multi_mission_system_scores_all_classes() {
    let missions = [AnomalyClass::Stealing, AnomalyClass::Explosion];
    let mut sys = MissionSystem::build(&missions, &SystemConfig::default());
    sys.engine.model.set_train(false);
    assert_eq!(sys.engine.model.n_classes(), 3);
    let frame = akg_data::Frame { concepts: vec![("walking".into(), 1.0)], label: None };
    let emb = sys.embed_frame(&frame);
    let probs = sys.predict_window(&vec![emb; sys.engine.model.config().window]);
    assert_eq!(probs.len(), 3);
    assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
}

#[test]
fn anomaly_scores_separate_after_training() {
    let (mut sys, ds) = quick_train(AnomalyClass::Stealing, 9);
    sys.engine.model.set_train(false);
    let videos = ds.train_videos_of(AnomalyClass::Stealing);
    let (scores, labels) = sys.score_video(videos[0]);
    let anom: Vec<f32> = scores.iter().zip(&labels).filter(|(_, l)| **l).map(|(s, _)| *s).collect();
    let norm: Vec<f32> =
        scores.iter().zip(&labels).filter(|(_, l)| !**l).map(|(s, _)| *s).collect();
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    assert!(
        mean(&anom) > mean(&norm),
        "anomalous frames should outscore normal ones: {} vs {}",
        mean(&anom),
        mean(&norm)
    );
}
