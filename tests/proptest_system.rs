//! Workspace-level property tests: system invariants that must hold for any
//! seed — scores stay probabilities, adaptation never corrupts the KG, the
//! cost model stays monotone.

use adaptive_kg::core::adapt::{AdaptConfig, ContinuousAdapter};
use adaptive_kg::core::pipeline::{MissionSystem, SystemConfig};
use akg_cost::{KgDims, ModelDims};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_tensor::nn::Module;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn scores_are_probabilities_for_any_seed(seed in 0u64..500) {
        let mut sys = MissionSystem::build(
            &[AnomalyClass::Stealing],
            &SystemConfig { seed, ..SystemConfig::default() },
        );
        sys.engine.model.set_train(false);
        let frame = akg_data::Frame {
            concepts: vec![("walking".into(), 1.0), ("person".into(), 0.5)],
            label: None,
        };
        let emb = sys.embed_frame(&frame);
        let w = sys.engine.model.config().window;
        let score = sys.score_window(&vec![emb; w]);
        prop_assert!((0.0..=1.0).contains(&score), "score {score}");
        let emb2 = sys.embed_frame(&frame);
        let probs = sys.predict_window(&vec![emb2; w]);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "probs sum {sum}");
    }

    #[test]
    fn adaptation_preserves_kg_invariants_for_any_seed(seed in 0u64..200) {
        let mut sys = MissionSystem::build(
            &[AnomalyClass::Stealing],
            &SystemConfig { seed, ..SystemConfig::default() },
        );
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.01)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(seed),
        );
        let cfg = AdaptConfig {
            n_window: 16,
            interval: 4,
            min_k: 1,
            divergence_patience: 1,
            movement_epsilon: 0.0,
            seed,
            ..AdaptConfig::default()
        };
        let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Robbery, 0.5, seed);
        for _ in 0..48 {
            let (frame, _) = stream.next_frame();
            let score = adapter.observe(&mut sys, &frame);
            prop_assert!((0.0..=1.0).contains(&score));
        }
        for tkg in &sys.session.kgs {
            let errors = tkg.kg.validate();
            prop_assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        }
        // layouts must agree with the (possibly restructured) graphs
        for (tkg, layout) in sys.session.kgs.iter().zip(&sys.session.layouts) {
            prop_assert_eq!(layout.node_count(), tkg.kg.node_count());
        }
    }

    #[test]
    fn cost_model_monotone_in_size(nodes in 5usize..40, edges in 5usize..80, kgs in 1usize..4) {
        let dims = |n: usize, e: usize, k: usize| ModelDims {
            kgs: k,
            kg: KgDims { nodes: n, edges: e, levels: 5 },
            embed_dim: 32,
            gnn_dim: 8,
            window: 4,
            temporal_inner: 32,
            heads: 4,
            temporal_layers: 1,
            classes: k + 1,
        };
        let base = dims(nodes, edges, kgs).inference_flops();
        prop_assert!(dims(nodes + 1, edges, kgs).inference_flops() >= base);
        prop_assert!(dims(nodes, edges + 1, kgs).inference_flops() >= base);
        prop_assert!(dims(nodes, edges, kgs + 1).inference_flops() > base);
    }

    #[test]
    fn dataset_stream_scores_any_class(class_idx in 0usize..13, seed in 0u64..200) {
        let class = AnomalyClass::ALL[class_idx];
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.01).with_classes(&[class]).with_seed(seed),
        );
        let mut stream = AdaptationStream::new(&ds, class, 0.5, seed);
        let batch = stream.next_batch(16);
        prop_assert_eq!(batch.len(), 16);
        for (frame, labelled) in batch {
            prop_assert_eq!(frame.is_anomalous(), labelled);
        }
    }
}
