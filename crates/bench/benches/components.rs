//! Criterion micro-benchmarks of the deployed system's components — the
//! latency claims behind Table I's "Low (Real-time)" row: GNN forward,
//! full-frame scoring, one adaptation trigger, KG generation, tokenizer
//! throughput.

use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_embed::BpeTokenizer;
use akg_kg::{generate_kg, AnomalyClass, GeneratorConfig, Ontology, SyntheticOracle};
use akg_tensor::nn::Module;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_frame_scoring(c: &mut Criterion) {
    let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    sys.engine.model.set_train(false);
    let frame = akg_data::Frame {
        concepts: vec![("walking".into(), 1.0), ("person".into(), 0.7)],
        label: None,
    };
    let emb = sys.embed_frame(&frame);
    let window = vec![emb; sys.engine.model.config().window];
    c.bench_function("score_one_frame_window", |b| {
        b.iter(|| black_box(sys.score_window(black_box(&window))))
    });
}

fn bench_adaptation_trigger(c: &mut Criterion) {
    let ds = SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.01).with_classes(&[AnomalyClass::Stealing]).with_seed(7),
    );
    let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let cfg = AdaptConfig { interval: usize::MAX, ..AdaptConfig::default() };
    let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
    let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 1);
    for _ in 0..cfg.n_window {
        let (frame, _) = stream.next_frame();
        adapter.observe(&mut sys, &frame);
    }
    c.bench_function("adaptation_trigger_check", |b| {
        b.iter(|| black_box(adapter.adapt_now(&mut sys)))
    });
}

fn bench_kg_generation(c: &mut Criterion) {
    c.bench_function("kg_generation_realistic_oracle", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut oracle = SyntheticOracle::new(akg_kg::ErrorProfile::realistic(), seed);
            black_box(generate_kg("stealing", &GeneratorConfig::default(), &mut oracle))
        })
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let corpus = Ontology::new().corpus();
    let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), 700);
    c.bench_function("bpe_encode_concept", |b| {
        b.iter(|| black_box(tokenizer.encode(black_box("person stealing a bag at night"))))
    });
    c.bench_function("bpe_train_domain_corpus", |b| {
        b.iter(|| black_box(BpeTokenizer::train(corpus.iter().map(String::as_str), 700)))
    });
}

fn bench_frame_embedding(c: &mut Criterion) {
    let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let frame = akg_data::Frame {
        concepts: vec![("grab".into(), 1.2), ("person".into(), 0.8), ("walking".into(), 0.6)],
        label: Some(AnomalyClass::Stealing),
    };
    c.bench_function("embed_frame", |b| b.iter(|| black_box(sys.embed_frame(black_box(&frame)))));
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_frame_scoring,
        bench_adaptation_trigger,
        bench_kg_generation,
        bench_tokenizer,
        bench_frame_embedding
);
criterion_main!(components);
