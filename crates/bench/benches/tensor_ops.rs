//! Criterion micro-benchmarks of the `akg-tensor` hot-path kernels: the
//! naive reference vs the seed's `ikj` ordering vs the blocked/threaded
//! kernel (the acceptance gate for the hot-path overhaul is blocked ≥ 3× the
//! naive kernel at 256×256×256), plus the fused softmax/layernorm entry
//! points against their composed-op equivalents.

use akg_tensor::ops::kernels::{matmul_blocked, matmul_ikj, matmul_naive};
use akg_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn filled(len: usize, salt: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 31 + salt * 17) % 29) as f32 - 14.0) * 0.05).collect()
}

fn bench_matmul_kernels(c: &mut Criterion) {
    for dim in [64usize, 128, 256] {
        let a = filled(dim * dim, 1);
        let b = filled(dim * dim, 2);
        c.bench_function(&format!("matmul_naive_{dim}"), |bch| {
            bch.iter(|| black_box(matmul_naive(black_box(&a), black_box(&b), dim, dim, dim)))
        });
        c.bench_function(&format!("matmul_ikj_{dim}"), |bch| {
            bch.iter(|| black_box(matmul_ikj(black_box(&a), black_box(&b), dim, dim, dim)))
        });
        c.bench_function(&format!("matmul_blocked_{dim}"), |bch| {
            bch.iter(|| black_box(matmul_blocked(black_box(&a), black_box(&b), dim, dim, dim)))
        });
    }
}

fn bench_matmul_backward(c: &mut Criterion) {
    let dim = 128;
    let a = Tensor::from_vec(filled(dim * dim, 3), &[dim, dim]).requires_grad(true);
    let b = Tensor::from_vec(filled(dim * dim, 4), &[dim, dim]).requires_grad(true);
    c.bench_function("matmul_forward_backward_128", |bch| {
        bch.iter(|| {
            a.zero_grad();
            b.zero_grad();
            a.matmul(&b).sum_all().backward();
            black_box(a.grad().map(|g| g[0]))
        })
    });
}

fn bench_fused_softmax(c: &mut Criterion) {
    let (t, n) = (64, 64);
    let x = Tensor::from_vec(filled(t * n, 5), &[t, n]);
    let mask: Vec<f32> = (0..t * n).map(|i| if i % n > i / n { -1e9 } else { 0.0 }).collect();
    let scale = 0.125;
    c.bench_function("softmax_composed_scale_mask", |bch| {
        bch.iter(|| black_box(x.mul_scalar(scale).add_const(&mask).softmax_rows().to_vec()))
    });
    c.bench_function("softmax_fused_scale_mask", |bch| {
        bch.iter(|| black_box(x.softmax_rows_scaled_masked(scale, Some(&mask)).to_vec()))
    });
}

fn bench_fused_layernorm(c: &mut Criterion) {
    let (m, n) = (64, 128);
    let x = Tensor::from_vec(filled(m * n, 6), &[m, n]).requires_grad(true);
    let gamma = Tensor::ones(&[n]).requires_grad(true);
    let beta = Tensor::zeros(&[n]).requires_grad(true);
    c.bench_function("layernorm_composed_fwd_bwd", |bch| {
        bch.iter(|| {
            x.zero_grad();
            let mean = x.mean_axis1();
            let centered = x.add_col(&mean.neg());
            let var = centered.square().mean_axis1();
            let inv_std = var.add_scalar(1e-5).sqrt().recip();
            centered.mul_col(&inv_std).mul_bias(&gamma).add_bias(&beta).sum_all().backward();
            black_box(x.grad().map(|g| g[0]))
        })
    });
    c.bench_function("layernorm_fused_fwd_bwd", |bch| {
        bch.iter(|| {
            x.zero_grad();
            x.layer_norm(&gamma, &beta, 1e-5).sum_all().backward();
            black_box(x.grad().map(|g| g[0]))
        })
    });
}

criterion_group!(
    name = tensor_ops;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul_kernels, bench_matmul_backward, bench_fused_softmax, bench_fused_layernorm
);
criterion_main!(tensor_ops);
