//! Ablation benches for the design choices DESIGN.md calls out. Each bench
//! measures post-shift mean AUC under a variant of the adaptation mechanism
//! (criterion measures wall-clock; the AUC outcome is printed once per
//! variant so `cargo bench` output records both).
//!
//! 1. K rule — paper's `K = |Δm|·N` vs fixed K.
//! 2. Prune/create trigger — divergence rule vs never-prune.
//! 3. Retrieval metric — Euclidean vs cosine vs dot (quality proxy:
//!    self-retrieval accuracy over domain words).
//! 4. Token-only updates — adaptation lr sensitivity (token updates remain
//!    the only trainable path, as in the paper).

use akg_bench::experiment_dataset;
use akg_core::adapt::AdaptConfig;
use akg_core::experiment::{run_trend_shift, TrendShiftParams};
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_core::retrieval::InterpretableRetrieval;
use akg_embed::Similarity;
use akg_kg::{AnomalyClass, Ontology};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

fn shift_params(seed: u64) -> TrendShiftParams {
    let mut p = TrendShiftParams::quick(AnomalyClass::Stealing, AnomalyClass::Robbery);
    // ablations use a shorter protocol to keep bench times reasonable
    p.steps_before = 1;
    p.steps_after = 2;
    p.frames_per_step = 128;
    p.seed = seed;
    p.system.seed = seed;
    p.train = p.train.with_seed(seed);
    p
}

static PRINT_K_RULE: Once = Once::new();

fn ablate_k_rule(c: &mut Criterion) {
    PRINT_K_RULE.call_once(|| {
        let ds = experiment_dataset(&[AnomalyClass::Stealing, AnomalyClass::Robbery], 43);
        let mut paper = shift_params(43);
        paper.adapt = AdaptConfig::default();
        let paper_result = run_trend_shift(&ds, &paper);
        let mut fixed = shift_params(43);
        // fixed-K: ignore Δm scaling by pinning min_k == max_k
        fixed.adapt = AdaptConfig { min_k: 4, max_k: 4, ..AdaptConfig::default() };
        let fixed_result = run_trend_shift(&ds, &fixed);
        println!(
            "[ablate_k_rule] post-shift AUC: paper K=|dm|N {:.3} | fixed K=4 {:.3} | static {:.3}",
            paper_result.adaptive.post_shift_mean_auc(),
            fixed_result.adaptive.post_shift_mean_auc(),
            paper_result.static_kg.post_shift_mean_auc(),
        );
    });
    // measured quantity: the trigger computation itself (K = |Δm|·N over a
    // full window) — the per-frame cost the rule adds on the edge device
    c.bench_function("k_rule_trigger_computation", |b| {
        let mut tracker = akg_eval::MeanShiftTracker::anchored(64);
        for i in 0..128 {
            tracker.push(0.5 + 0.3 * ((i % 7) as f32 / 7.0));
        }
        b.iter(|| black_box(tracker.adaptation_k()))
    });
}

static PRINT_PRUNE: Once = Once::new();

fn ablate_prune_rule(c: &mut Criterion) {
    PRINT_PRUNE.call_once(|| {
        let ds = experiment_dataset(&[AnomalyClass::Stealing, AnomalyClass::Robbery], 43);
        let mut with_prune = shift_params(43);
        with_prune.adapt = AdaptConfig { divergence_patience: 3, ..AdaptConfig::default() };
        let with_result = run_trend_shift(&ds, &with_prune);
        let mut no_prune = shift_params(43);
        no_prune.adapt = AdaptConfig { max_replacements: 0, ..AdaptConfig::default() };
        let no_result = run_trend_shift(&ds, &no_prune);
        println!(
            "[ablate_prune] post-shift AUC: divergence prune/create {:.3} | never prune {:.3}",
            with_result.adaptive.post_shift_mean_auc(),
            no_result.adaptive.post_shift_mean_auc(),
        );
    });
    c.bench_function("ablate_prune_noop", |b| b.iter(|| black_box(1 + 1)));
}

fn ablate_retrieval_metric(c: &mut Criterion) {
    let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
    let retrieval = InterpretableRetrieval::new(&sys.engine.tokenizer, &sys.engine.space);
    let ontology = Ontology::new();
    let words: Vec<&str> = ontology.all_concepts(AnomalyClass::Stealing);
    // quality: does the metric retrieve the word itself from its own vector?
    for metric in [Similarity::Euclidean, Similarity::Cosine, Similarity::Dot] {
        let hits = words
            .iter()
            .filter(|w| {
                let q = sys.engine.space.word_vector(w);
                retrieval
                    .nearest_words(&q, 1, metric)
                    .first()
                    .map(|h| h.word == **w)
                    .unwrap_or(false)
            })
            .count();
        println!(
            "[ablate_metric] {:?}: self-retrieval {}/{} domain words",
            metric,
            hits,
            words.len()
        );
    }
    let query = sys.engine.space.word_vector("sneaky");
    c.bench_function("retrieval_euclidean_top5", |b| {
        b.iter(|| black_box(retrieval.nearest_words(black_box(&query), 5, Similarity::Euclidean)))
    });
    c.bench_function("retrieval_cosine_top5", |b| {
        b.iter(|| black_box(retrieval.nearest_words(black_box(&query), 5, Similarity::Cosine)))
    });
}

static PRINT_FREEZE: Once = Once::new();

fn ablate_adaptation_lr(c: &mut Criterion) {
    PRINT_FREEZE.call_once(|| {
        let ds = experiment_dataset(&[AnomalyClass::Stealing, AnomalyClass::Robbery], 43);
        for lr in [0.002f32, 0.01, 0.05] {
            let mut p = shift_params(43);
            p.adapt = AdaptConfig { lr, ..AdaptConfig::default() };
            let r = run_trend_shift(&ds, &p);
            println!(
                "[ablate_lr] token-update lr {lr}: post-shift AUC {:.3} (static {:.3})",
                r.adaptive.post_shift_mean_auc(),
                r.static_kg.post_shift_mean_auc(),
            );
        }
    });
    c.bench_function("ablate_lr_noop", |b| b.iter(|| black_box(1 + 1)));
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_k_rule, ablate_prune_rule, ablate_retrieval_metric, ablate_adaptation_lr
);
criterion_main!(ablations);
