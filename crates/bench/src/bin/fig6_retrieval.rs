//! Regenerates **Fig. 6**: qualitative evaluation of knowledge updates via
//! interpretable KG retrieval — node token embeddings drifting from the
//! initial mission's concept words toward the shifted mission's words
//! ("Sneaky" → "Firearm" in the paper's Stealing→Robbery run).
//!
//! Usage: `fig6_retrieval [--seed N]`

use akg_bench::experiment_dataset;
use akg_core::experiment::{run_retrieval_drift, RetrievalDriftParams, TrendShiftParams};
use akg_embed::Similarity;
use akg_kg::{AnomalyClass, Ontology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(43u64);

    let ontology = Ontology::new();
    let initial = AnomalyClass::Stealing;
    let shifted = AnomalyClass::Robbery;
    let ds = experiment_dataset(&[initial, shifted], seed);
    let mut shift = TrendShiftParams::quick(initial, shifted);
    shift.seed = seed;
    shift.system.seed = seed;
    shift.train = shift.train.with_seed(seed);

    let params = RetrievalDriftParams {
        shift,
        snapshot_every: 100,
        initial_words: ontology.all_concepts(initial).iter().map(|s| s.to_string()).collect(),
        target_words: ontology.all_concepts(shifted).iter().map(|s| s.to_string()).collect(),
        top_k: 3,
        metric: Similarity::Euclidean,
    };

    println!(
        "Fig. 6 reproduction — interpretable KG retrieval during Stealing -> Robbery adaptation"
    );
    println!(
        "(Euclidean retrieval over the BPE vocabulary, snapshot every {} frames)\n",
        params.snapshot_every
    );
    println!("iteration | dist(initial concepts) | dist(new concepts) | sample retrieved words");
    let result = run_retrieval_drift(&ds, &params);
    for snap in &result.snapshots {
        let words: Vec<&str> = snap.retrieved.iter().take(6).map(String::as_str).collect();
        println!(
            "{:>9} |        {:.4}          |       {:.4}       | {}",
            snap.iteration,
            snap.distance_to_initial,
            snap.distance_to_target,
            words.join(", ")
        );
    }
    println!(
        "\nnet movement toward the new mission's concepts: {}",
        if result.moved_toward_target() { "YES" } else { "no" }
    );
}
