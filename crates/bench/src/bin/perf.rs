//! The perf trajectory harness: times the `akg-tensor` hot-path kernels, an
//! end-to-end adaptation stream, and the multi-stream serving runtime, then
//! emits `BENCH_tensor.json` and `BENCH_serve.json` — the machine-readable
//! records every PR's numbers are compared against (see
//! `docs/PERFORMANCE.md` for how to read them).
//!
//! Usage: `perf [--smoke] [--threads N] [--backend B] [--precision P]
//! [--streams N] [--shards N] [--sessions N] [--alloc-stats]
//! [--load PATTERN] [--faults] [--slo-out PATH] [--out PATH]
//! [--serve-out PATH]`
//!
//! - `--smoke`: tiny sizes and iteration counts (seconds, for CI) instead of
//!   the full measurement sizes. Smoke output is for validating the harness
//!   and the JSON schema, **not** for cross-PR comparison.
//! - `--threads N`: pin the kernel thread pool (default: auto).
//! - `--backend B`: `scalar`, `simd`, or `auto` (default) — the kernel
//!   compute backend. The resolved backend and the host's detected CPU
//!   features are recorded in both JSON reports, so trajectory diffs always
//!   say which instruction set produced them.
//! - `--precision P`: `f32` (default) or `int8` — the serving-plane weight
//!   precision every benched engine is built at. `int8` pre-quantizes the
//!   decision-model weight matrices (per-row-scaled symmetric int8) and
//!   serves through the integer matmul kernels; training and adaptation
//!   stay f32 either way. On SIMD hosts the int8 256-cubed matmul must beat
//!   the f32 blocked kernel — the harness exits non-zero otherwise (the CI
//!   quantization speed gate; both sizes are measured even in smoke mode).
//! - `--streams N`: cap on the serving-bench stream counts (default 16; the
//!   bench measures 1, 4, and 16 streams up to this cap).
//! - `--shards N`: cap on the sharded-scaling sweep (default 4; the bench
//!   measures shard counts 1, 2, 4, and 8 up to this cap, all serving the
//!   same 16-stream deployment). Each point lands in the schema v4
//!   `scaling` array; `speedup_vs_one_shard` only exceeds 1 on multi-core
//!   hosts — the recorded `cores` field says what the host had.
//! - `--alloc-stats`: measure steady-state serving allocations through the
//!   process-wide counting allocator and record them in `BENCH_serve.json`
//!   (`alloc` object). Exits non-zero if the scoring data plane exceeds
//!   [`ALLOC_BUDGET_PER_FRAME`] allocations per frame — the CI regression
//!   gate for the allocation-free inference path.
//! - `--load PATTERN`: restrict the loaded-latency sweep to one arrival
//!   pattern (`poisson`, `bursty`, or `ramp`). By default the sweep runs
//!   `poisson` and `bursty`; each pattern is measured at 1 shard
//!   (single-node) and 2 shards, and every cell lands in the schema v5
//!   `latency` array of `BENCH_serve.json`. Two hard gates run on every
//!   cell regardless of mode: the frame ledger must balance exactly (no
//!   silently dropped frame) and the wait-tick histogram must be populated
//!   — either failure exits non-zero, the CI regression gate for the
//!   latency-SLO harness.
//! - `--faults`: run the recovery cell — a seeded chaos plan (worker
//!   crashes + frame corruption, plus one scripted crash so the cell is
//!   never vacuous) drives a 2-shard loaded deployment through the
//!   supervisor's checkpoint/replay recovery path. The measured recovery
//!   metrics land in the schema v7 `recovery` object of
//!   `BENCH_serve.json`: recovery count and replay volume,
//!   checkpoint-restore vs genesis-replay split, total recovery wall time,
//!   and the per-stream checkpoint payload size. Two hard gates run: the
//!   frame ledger must balance exactly (zero silent loss — the `rejected`
//!   term covers corrupted frames) and at least one recovery must actually
//!   fire. Either failure exits non-zero — the CI regression gate for
//!   fault-tolerant serving.
//! - `--sessions N`: run the session-tier cell — register `N` lazy sessions
//!   over one shared engine in a [`SessionTier`] with a small resident cap,
//!   then serve a rotating active window so cold starts, evictions, and
//!   rehydrations all fire. Records the schema v8 `sessions` object of
//!   `BENCH_serve.json`: bytes/session for the copy-on-write overlay vs a
//!   dense fork, per-session checkpoint size, tier counters, and
//!   resume-latency (rehydration) percentiles. Two hard gates run: every
//!   rehydration must validate (zero `rehydration_failures`) and the
//!   overlay must actually be smaller than the dense fork. Either failure
//!   exits non-zero — the CI regression gate for bounded-RAM serving.
//! - `--slo-out PATH`: also dump the raw non-zero histogram buckets
//!   (wait-ticks and wall-clock nanoseconds) of every latency cell to
//!   `PATH` — the full-distribution record behind the percentile summary.
//! - `--out PATH`: where to write the tensor JSON (default
//!   `BENCH_tensor.json`).
//! - `--serve-out PATH`: where to write the serving JSON (default
//!   `BENCH_serve.json`).

use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
use akg_core::engine::{Engine, Session};
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{
    ArrivalPattern, ChaosConfig, EngineSpec, FaultPlan, LatencySummary, LoadConfig, LoadCounters,
    LoadedRuntime, MultiStreamRuntime, OwnedShardedRuntime, OwnedStreamRuntime, RecoveryStats,
    RuntimeConfig, ScriptedFault, SessionTier, ShardedConfig, ShardedRuntime, TierConfig,
    TierCounters,
};
use akg_tensor::backend::{cpu_features, effective_backend, set_backend, Backend};
use akg_tensor::nn::Module;
use akg_tensor::ops::kernels::{matmul_blocked, matmul_ikj, matmul_naive, matmul_nt};
use akg_tensor::par::{effective_threads, set_parallelism, Parallelism};
use akg_tensor::{Precision, QuantizedMatrix, Tensor, Workspace};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A counting global allocator: every `alloc`/`alloc_zeroed`/`realloc` bumps
/// two relaxed atomics and delegates to the system allocator. Installed
/// unconditionally (the overhead is two uncontended atomic adds per
/// allocation — invisible next to the allocation itself); read only when
/// `--alloc-stats` asks for the serving allocation measurement.
struct CountingAllocator;

static ALLOC_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ALLOC_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `std::alloc::System`; the
// counter updates have no safety implications.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        ALLOC_COUNT.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        ALLOC_COUNT.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        ALLOC_COUNT.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL_ALLOC: CountingAllocator = CountingAllocator;

fn alloc_snapshot() -> (u64, u64) {
    use std::sync::atomic::Ordering::Relaxed;
    (ALLOC_COUNT.load(Relaxed), ALLOC_BYTES.load(Relaxed))
}

/// The alloc-regression budget: steady-state allocations per scored frame on
/// the batched inference data plane (`Engine::score_windows_batch_refs` over
/// pre-ingested windows). The plane itself allocates nothing once the
/// workspace is warm; the budget leaves headroom for the per-dispatch batch
/// assembly (one `Vec` of item descriptors per batch). Documented in
/// `docs/PERFORMANCE.md`; enforced by `--alloc-stats`.
const ALLOC_BUDGET_PER_FRAME: f64 = 2.0;

/// One op-level measurement: median wall time per call.
#[derive(Debug, Serialize)]
struct OpResult {
    /// Kernel + problem-size label, e.g. `matmul_blocked_256`.
    name: String,
    /// Median nanoseconds per call.
    ns_per_op: f64,
    /// Calls measured (median over this many).
    reps: usize,
}

/// End-to-end timings through the deployed system.
#[derive(Debug, Serialize)]
struct EndToEnd {
    /// `MissionSystem::build` wall time (tokenizer + joint space + token
    /// table + KG generation + model init), milliseconds.
    build_ms: f64,
    /// Frames scored in eval mode.
    score_frames: usize,
    /// Eval-mode scoring throughput (frames per second).
    score_frames_per_sec: f64,
    /// Frames pushed through the continuous-adaptation loop across a trend
    /// shift (includes trigger checks and token-table backprop).
    adapt_frames: usize,
    /// Adaptation-loop throughput (frames per second).
    adapt_frames_per_sec: f64,
}

/// Headline ratios pulled out of `ops` so trajectory diffs are one-liners.
#[derive(Debug, Serialize)]
struct Derived {
    /// `matmul_naive / matmul_blocked` at the largest measured size.
    blocked_speedup_vs_naive: f64,
    /// `matmul_ikj / matmul_blocked` at the largest measured size.
    blocked_speedup_vs_ikj: f64,
    /// The matmul size the speedups were measured at.
    at_size: usize,
    /// `matmul_blocked_256 / matmul_q8_256` — the int8 integer kernel's
    /// speedup over the f32 blocked kernel at the reference size (measured
    /// in every mode; gated ≥ 1 in CI on SIMD hosts).
    q8_256_speedup_vs_blocked: f64,
}

/// The decision model's dense-weight footprint at both precisions (schema
/// v6): what the engine actually holds (`current_bytes` at `precision`) and
/// the two representations' sizes for the shrink headline.
#[derive(Debug, Clone, Serialize)]
struct ModelBytes {
    /// The precision the benched engines serve at (`"f32"` or `"int8"`).
    precision: String,
    /// Bytes the engine's weight matrices occupy at that precision.
    current_bytes: usize,
    /// The same matrices held as f32.
    f32_bytes: usize,
    /// The same matrices held as per-row-scaled int8 (codes + f32 scales).
    int8_bytes: usize,
    /// `f32_bytes / int8_bytes` — bounded below 4x by the per-row scale
    /// overhead on the paper model's width-8 layers.
    shrink: f64,
}

/// The full `BENCH_tensor.json` document.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema version of this document.
    schema_version: u32,
    /// `"full"` or `"smoke"` — smoke numbers are harness-validation only.
    mode: String,
    /// Worker threads the kernels used.
    threads: usize,
    /// The resolved compute backend the kernels ran (`"scalar"` or
    /// `"simd"`).
    backend: String,
    /// SIMD-relevant CPU features the host reported at startup.
    cpu_features: String,
    /// Serving-plane weight precision the end-to-end rows ran at (`"f32"`
    /// or `"int8"`). Op rows always include both the f32 and the int8
    /// matmul kernels regardless.
    precision: String,
    /// Decision-model weight footprint at both precisions.
    model_bytes: ModelBytes,
    /// Op-level medians.
    ops: Vec<OpResult>,
    /// End-to-end system timings.
    end_to_end: EndToEnd,
    /// Headline ratios.
    derived: Derived,
}

/// One stream-count measurement of the serving bench: aggregate frames/s
/// with cross-stream batching vs the per-frame baseline, same engine, same
/// feeds, same seeds (the two modes are bit-identical in output — only the
/// dispatch shape differs).
#[derive(Debug, Serialize)]
struct ServePoint {
    /// Concurrent streams served.
    streams: usize,
    /// Scheduler ticks measured (frames = streams × ticks).
    ticks: usize,
    /// Aggregate throughput with batched dispatch.
    batched_frames_per_sec: f64,
    /// Aggregate throughput scoring one window at a time.
    per_frame_frames_per_sec: f64,
    /// `batched / per_frame` at this stream count.
    batching_speedup: f64,
}

/// One shard-count measurement of the sharded-scaling sweep (schema v4):
/// aggregate frames/s serving the same fixed deployment through
/// `ShardedRuntime` at this worker count.
#[derive(Debug, Serialize)]
struct ScalingPoint {
    /// Shard worker threads.
    shards: usize,
    /// Concurrent streams served (fixed across the sweep).
    streams: usize,
    /// Scheduler ticks measured (frames = streams × ticks).
    ticks: usize,
    /// Aggregate throughput at this shard count.
    frames_per_sec: f64,
    /// `frames_per_sec / frames_per_sec(shards = 1)` — above 1 only when
    /// the host actually has cores to scale onto (see `ServeReport::cores`).
    speedup_vs_one_shard: f64,
}

/// Steady-state serving allocation counters (schema v3, `--alloc-stats`).
#[derive(Debug, Serialize)]
struct AllocStats {
    /// Frames scored in the measured region (after warmup).
    frames: usize,
    /// Allocations per frame on the pure scoring data plane: repeated
    /// `Engine::score_windows_batch_refs` over pre-ingested windows with a
    /// warm workspace. This is the gated number (see
    /// `ALLOC_BUDGET_PER_FRAME`).
    allocs_per_frame: f64,
    /// Bytes allocated per frame on the pure scoring data plane.
    bytes_per_frame: f64,
    /// Allocations per frame across full runtime ticks (ingest + frame
    /// embedding + scoring + adaptation bookkeeping) — context, not gated:
    /// frame embedding and triggered autograd adaptation legitimately
    /// allocate.
    tick_allocs_per_frame: f64,
    /// Bytes per frame across full runtime ticks.
    tick_bytes_per_frame: f64,
    /// The documented scoring-plane budget the gate enforces.
    budget_allocs_per_frame: f64,
}

/// One (arrival pattern × shard count) cell of the loaded-latency sweep
/// (schema v5 `latency` array): a seeded load generator drives the full
/// backpressure path — bounded ingest queues, the deterministic degrade
/// ladder, frame shedding — and every drained frame's queueing delay lands
/// in a fixed-bucket log-scale histogram (no hot-path allocation).
#[derive(Debug, Serialize)]
struct LatencyCell {
    /// Arrival pattern name (`"poisson"`, `"bursty"`, `"ramp"`).
    pattern: String,
    /// 1 = single-node `MultiStreamRuntime`, ≥ 2 = `ShardedRuntime`.
    shards: usize,
    /// Concurrent streams served.
    streams: usize,
    /// Load-harness ticks run.
    ticks: usize,
    /// The exact frame ledger: offered = served_full + served_degraded +
    /// coalesced + shed + overflow_dropped + queued, plus per-rung tick
    /// counts. The harness exits non-zero if this ever fails to balance.
    counters: LoadCounters,
    /// Queueing delay percentiles in deterministic scheduler ticks — the
    /// unit the SLO is stated in (bit-reproducible across hosts).
    wait_ticks: LatencySummary,
    /// Wall-clock enqueue→drain latency percentiles in nanoseconds — the
    /// host-dependent twin of `wait_ticks` (p999 needs ≥ 10k frames to
    /// resolve; see `docs/PERFORMANCE.md`).
    latency_ns: LatencySummary,
}

/// The `--faults` recovery cell (schema v7 `recovery` object): one seeded
/// chaos run through a 2-shard loaded deployment, with every crash healed
/// by the supervisor's checkpoint/replay recovery and every corrupted
/// frame rejected at ingest admission. The deterministic `stats` fields
/// replay bit-identically on any host; the wall-clock fields are
/// operator-facing context only.
#[derive(Debug, Serialize)]
struct RecoveryReport {
    /// Shard workers in the recovery cell (fixed at 2).
    shards: usize,
    /// Concurrent streams served.
    streams: usize,
    /// Load-harness ticks run.
    ticks: usize,
    /// Arrival pattern driving the cell.
    pattern: String,
    /// Chaos per-shard-per-tick crash probability.
    crash_rate: f64,
    /// Chaos per-stream-per-tick frame-corruption probability.
    corrupt_rate: f64,
    /// Worker self-checkpoint cadence, in worker-local ticks.
    checkpoint_interval: usize,
    /// The deterministic recovery metrics (recoveries, replay volume,
    /// checkpoint-restore vs genesis split) plus total recovery wall time.
    stats: RecoveryStats,
    /// Total wall-clock milliseconds spent inside recovery (respawn
    /// through replay drain) — `stats.recovery_wall_nanos`, readable.
    recovery_wall_ms: f64,
    /// Mean serialized size of one stream's checkpointed session state
    /// (JSON bytes), measured from the newest retained checkpoints — the
    /// per-stream memory cost of the checkpoint ring.
    checkpoint_bytes_per_stream: f64,
    /// Frames rejected at ingest admission (corrupted by the chaos plan).
    rejected_frames: usize,
    /// `offered` minus every terminal state — hard-gated to exactly 0:
    /// crashes and corruption must never lose a frame silently.
    silent_loss: i64,
    /// The cell's full frame ledger.
    counters: LoadCounters,
}

/// One non-zero histogram bucket: `upper` is the bucket's inclusive upper
/// bound in the histogram's unit, `count` the samples that landed in it.
#[derive(Debug, Serialize)]
struct BucketEntry {
    upper: u64,
    count: u64,
}

/// Raw distribution dump of one latency cell (`--slo-out`).
#[derive(Debug, Serialize)]
struct SloCellDump {
    pattern: String,
    shards: usize,
    wait_tick_buckets: Vec<BucketEntry>,
    latency_ns_buckets: Vec<BucketEntry>,
}

/// The `--slo-out` document: the full non-zero bucket contents behind every
/// `latency` percentile summary in `BENCH_serve.json`.
#[derive(Debug, Serialize)]
struct SloReport {
    schema_version: u32,
    mode: String,
    backend: String,
    cells: Vec<SloCellDump>,
}

/// The `--sessions` cell: RAM and resume-latency economics of serving far
/// more registered sessions than fit resident, via the copy-on-write
/// session tier (schema v8).
#[derive(Debug, Serialize)]
struct SessionsReport {
    /// Sessions registered in the tier (lazy — most never materialize).
    registered: usize,
    /// Resident working-set cap the tier was run at.
    max_resident: usize,
    /// Frames served through the rotating active window.
    frames_served: usize,
    /// Private heap bytes of a dense-fork session of the same engine — the
    /// pre-overlay per-session cost this PR replaces.
    dense_bytes_per_session: usize,
    /// Mean private heap bytes per resident overlay session after serving.
    overlay_bytes_per_session: f64,
    /// `dense_bytes_per_session / overlay_bytes_per_session` — the headline
    /// RAM reduction (gated ≥ 10× in CI via the `sessions` schema check).
    bytes_shrink: f64,
    /// Mean serialized checkpoint size of the sessions the tier spooled —
    /// the adapted-row delta, not the full table.
    checkpoint_bytes_per_session: f64,
    /// Tier lifetime counters; `rehydration_failures` must be zero.
    counters: TierCounters,
    /// Wall-clock spool-read → validate → restore latency per rehydration.
    resume_latency_ns: LatencySummary,
}

/// The `BENCH_serve.json` document.
#[derive(Debug, Serialize)]
struct ServeReport {
    /// Schema version of this document.
    schema_version: u32,
    /// `"full"` or `"smoke"` — smoke numbers validate the harness only.
    mode: String,
    /// Worker threads the kernels used.
    threads: usize,
    /// The resolved compute backend the kernels ran (`"scalar"` or
    /// `"simd"`).
    backend: String,
    /// Serving-plane weight precision every benched engine was built at.
    precision: String,
    /// Decision-model weight footprint at both precisions.
    model_bytes: ModelBytes,
    /// Largest cross-stream batch the scheduler may form.
    max_batch: usize,
    /// CPU cores the host exposed (`available_parallelism`) — the context
    /// for reading `scaling`: a 1-core host cannot show a multi-shard
    /// speedup no matter how good the runtime is.
    cores: usize,
    /// Per-stream-count measurements.
    points: Vec<ServePoint>,
    /// Frames/s vs shard count through `ShardedRuntime` (schema v4).
    scaling: Vec<ScalingPoint>,
    /// Per-frame latency percentiles under seeded load, per arrival pattern
    /// × shard count (schema v5).
    latency: Vec<LatencyCell>,
    /// Headline: batched aggregate fps at the largest stream count divided
    /// by the per-frame fps at 1 stream. (PR 3's ≥ 2 gate was judged against
    /// the autograd per-frame baseline; since PR 5 both modes ride the
    /// inference data plane, so this ratio is small by design — compare
    /// absolute f/s across recordings, not ratios.)
    batched_aggregate_vs_single_per_frame: f64,
    /// Steady-state allocation counters (`--alloc-stats` only; `null`
    /// otherwise).
    alloc: Option<AllocStats>,
    /// The fault-injection recovery cell (`--faults` only; `null`
    /// otherwise) — schema v7.
    recovery: Option<RecoveryReport>,
    /// The session-tier cell (`--sessions` only; `null` otherwise) —
    /// schema v8.
    sessions: Option<SessionsReport>,
}

fn serve_runtime(
    ds: &Arc<SyntheticUcfCrime>,
    streams: usize,
    batched: bool,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> OwnedStreamRuntime {
    // Fresh engine per mode/count: deterministic build, so every
    // measurement serves identical weights and identical feeds (the CLI
    // thread and backend policies ride in, since `build` re-applies its
    // config's settings process-wide).
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let engine = Engine::build(&[AnomalyClass::Stealing], &config);
    let mut rt = MultiStreamRuntime::new(engine, RuntimeConfig { max_batch: 16, batched });
    for s in 0..streams {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.3, 900 + s as u64);
        rt.add_stream(source, 0x5EED ^ s as u64, AdaptConfig::default());
    }
    rt
}

/// Builds a sharded runtime over the same deployment shape (same dataset,
/// seeds, and feeds) as [`serve_runtime`] in batched mode — so `scaling`
/// and `points` measure the same work, differing only in worker topology.
fn sharded_serve_runtime(
    ds: &Arc<SyntheticUcfCrime>,
    streams: usize,
    shards: usize,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> OwnedShardedRuntime {
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], config);
    let mut rt = ShardedRuntime::new(
        spec,
        ShardedConfig { shards, max_batch: 16, queue_depth: 2, ..ShardedConfig::default() },
    );
    for s in 0..streams {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.3, 900 + s as u64);
        rt.add_stream(source, 0x5EED ^ s as u64, AdaptConfig::default());
    }
    rt
}

/// The frames/s-vs-shards sweep: shard counts {1, 2, 4, 8} up to
/// `max_shards`, all serving the same `streams`-stream deployment.
fn bench_scaling(
    smoke: bool,
    ds: &Arc<SyntheticUcfCrime>,
    streams: usize,
    max_shards: usize,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> Vec<ScalingPoint> {
    let ticks = if smoke { 12 } else { 96 };
    let mut points: Vec<ScalingPoint> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        if shards > max_shards {
            continue;
        }
        let mut rt = sharded_serve_runtime(ds, streams, shards, parallelism, backend, precision);
        // warm-up tick: worker engine builds, caches, stream buffers
        let _ = rt.tick();
        let t0 = Instant::now();
        black_box(rt.run(ticks));
        let secs = t0.elapsed().as_secs_f64();
        let fps = (streams * ticks) as f64 / secs.max(1e-9);
        let base = points.first().map(|p: &ScalingPoint| p.frames_per_sec).unwrap_or(fps);
        points.push(ScalingPoint {
            shards,
            streams,
            ticks,
            frames_per_sec: fps,
            speedup_vs_one_shard: fps / base.max(1e-9),
        });
    }
    points
}

/// Runs one loaded-latency cell: a seeded `LoadGenerator` drives `streams`
/// streams through the degrade ladder for `ticks` ticks, then the cell's
/// two hard gates run — exact frame accounting (no silent drops) and a
/// populated wait histogram. Either failure exits the process non-zero.
#[allow(clippy::too_many_arguments)]
fn run_latency_cell(
    ds: &Arc<SyntheticUcfCrime>,
    pattern: ArrivalPattern,
    shards: usize,
    streams: usize,
    ticks: usize,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> (LatencyCell, SloCellDump) {
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], config);
    let cfg = LoadConfig { pattern, ..LoadConfig::default() };
    let mut rt: LoadedRuntime<akg_data::OwnedAdaptationStream> = if shards == 1 {
        LoadedRuntime::new(spec, cfg)
    } else {
        LoadedRuntime::sharded(spec, cfg, shards)
    };
    for s in 0..streams {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.3, 900 + s as u64);
        rt.add_stream(source, 0x5EED ^ s as u64, AdaptConfig::default(), (s % 3) as u8);
    }
    black_box(rt.run(ticks));

    let counters = rt.counters();
    if !counters.balanced() {
        eprintln!(
            "perf: SILENT DROP — {} x{shards} frame ledger does not balance: {counters:?}",
            pattern.name()
        );
        std::process::exit(1);
    }
    if rt.wait_ticks().is_empty() {
        eprintln!(
            "perf: EMPTY HISTOGRAM — {} x{shards} drained no frames in {ticks} ticks",
            pattern.name()
        );
        std::process::exit(1);
    }
    let dump = SloCellDump {
        pattern: pattern.name().to_string(),
        shards,
        wait_tick_buckets: rt
            .wait_ticks()
            .nonzero_buckets()
            .into_iter()
            .map(|(upper, count)| BucketEntry { upper, count })
            .collect(),
        latency_ns_buckets: rt
            .latency_nanos()
            .nonzero_buckets()
            .into_iter()
            .map(|(upper, count)| BucketEntry { upper, count })
            .collect(),
    };
    let cell = LatencyCell {
        pattern: pattern.name().to_string(),
        shards,
        streams,
        ticks,
        counters,
        wait_ticks: LatencySummary::of(rt.wait_ticks()),
        latency_ns: LatencySummary::of(rt.latency_nanos()),
    };
    (cell, dump)
}

/// The loaded-latency sweep: every requested arrival pattern × shard counts
/// {1, 2}. Full mode runs 1024 ticks × up to 16 streams per cell so the
/// drained-frame count clears the ~10k samples p999 needs to resolve;
/// smoke mode (60 ticks) validates the harness and the gates only.
#[allow(clippy::too_many_arguments)]
fn bench_latency(
    smoke: bool,
    ds: &Arc<SyntheticUcfCrime>,
    patterns: &[ArrivalPattern],
    max_streams: usize,
    max_shards: usize,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> (Vec<LatencyCell>, Vec<SloCellDump>) {
    let ticks = if smoke { 60 } else { 1024 };
    let streams = if smoke { max_streams.clamp(1, 4) } else { max_streams.clamp(1, 16) };
    let mut cells = Vec::new();
    let mut dumps = Vec::new();
    for &pattern in patterns {
        for &shards in &[1usize, 2] {
            if shards > max_shards.max(1) {
                continue;
            }
            let (cell, dump) = run_latency_cell(
                ds,
                pattern,
                shards,
                streams,
                ticks,
                parallelism,
                backend,
                precision,
            );
            cells.push(cell);
            dumps.push(dump);
        }
    }
    (cells, dumps)
}

/// The `--faults` recovery cell: a seeded chaos plan (plus one scripted
/// crash so even short smoke runs recover at least once) drives a 2-shard
/// loaded deployment; the supervisor heals every worker loss through
/// checkpoint/replay and the front-end rejects every corrupted frame. Two
/// hard gates: the frame ledger must balance exactly (zero silent loss)
/// and at least one recovery must fire — either failure exits non-zero.
fn bench_recovery(
    smoke: bool,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> RecoveryReport {
    let scale = if smoke { 0.004 } else { 0.02 };
    let ds = Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(scale)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(7),
    ));
    let shards = 2usize;
    let streams = if smoke { 3 } else { 8 };
    let ticks = if smoke { 160 } else { 520 };
    let chaos = ChaosConfig { crash_rate: 0.01, corrupt_rate: 0.005, ..ChaosConfig::default() };
    // The scripted crash guarantees the cell is never vacuous: even if the
    // chaos draws happen to spare every worker in a short smoke run, shard
    // 1 still dies on its 9th tick and must recover.
    let faults =
        FaultPlan::chaos(0xFA_017, chaos).with(ScriptedFault::WorkerCrash { shard: 1, tick: 9 });
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], config);
    let cfg = LoadConfig::default();
    let pattern = cfg.pattern.name().to_string();
    let mut rt: LoadedRuntime<akg_data::OwnedAdaptationStream> =
        LoadedRuntime::sharded_with_faults(spec, cfg, shards, faults);
    for s in 0..streams {
        let source =
            AdaptationStream::owned(Arc::clone(&ds), AnomalyClass::Stealing, 0.3, 900 + s as u64);
        rt.add_stream(source, 0x5EED ^ s as u64, AdaptConfig::default(), (s % 3) as u8);
    }
    black_box(rt.run(ticks));

    let counters = rt.counters();
    let accounted = counters.served_full
        + counters.served_degraded
        + counters.coalesced
        + counters.shed
        + counters.overflow_dropped
        + counters.queued
        + counters.rejected;
    let silent_loss = counters.offered as i64 - accounted as i64;
    if silent_loss != 0 || !counters.balanced() {
        eprintln!("perf: SILENT LOSS UNDER FAULTS — ledger off by {silent_loss}: {counters:?}");
        std::process::exit(1);
    }
    let stats = rt.recovery_stats();
    if stats.recoveries == 0 {
        eprintln!("perf: VACUOUS FAULT CELL — the fault plan fired no recovery in {ticks} ticks");
        std::process::exit(1);
    }
    // Checkpoint payload cost: mean serialized size of one stream's session
    // state across the newest retained checkpoint of every shard.
    let mut cp_bytes = 0usize;
    let mut cp_streams = 0usize;
    for cp in rt.latest_checkpoints().into_iter().flatten() {
        for stream in &cp.streams {
            cp_bytes += serde_json::to_string(&stream.session).map(|j| j.len()).unwrap_or_default();
            cp_streams += 1;
        }
    }
    RecoveryReport {
        shards,
        streams,
        ticks,
        pattern,
        crash_rate: chaos.crash_rate,
        corrupt_rate: chaos.corrupt_rate,
        checkpoint_interval: ShardedConfig::with_shards(shards).checkpoint_interval,
        stats,
        recovery_wall_ms: stats.recovery_wall_nanos as f64 / 1e6,
        checkpoint_bytes_per_stream: cp_bytes as f64 / cp_streams.max(1) as f64,
        rejected_frames: counters.rejected,
        silent_loss,
        counters,
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_serving(
    smoke: bool,
    max_streams: usize,
    max_shards: usize,
    patterns: &[ArrivalPattern],
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
    model_bytes: ModelBytes,
) -> (ServeReport, Vec<SloCellDump>) {
    let scale = if smoke { 0.004 } else { 0.02 };
    let ds = Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(scale)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(7),
    ));
    let ticks = if smoke { 12 } else { 96 };
    let mut points = Vec::new();
    for &streams in &[1usize, 4, 16] {
        if streams > max_streams {
            continue;
        }
        let mut fps = [0.0f64; 2];
        for (slot, batched) in [(0usize, true), (1usize, false)] {
            let mut rt = serve_runtime(&ds, streams, batched, parallelism, backend, precision);
            // warm-up tick: engine caches, allocator, stream buffers
            let _ = rt.tick();
            let t0 = Instant::now();
            black_box(rt.run(ticks));
            let secs = t0.elapsed().as_secs_f64();
            fps[slot] = (streams * ticks) as f64 / secs.max(1e-9);
        }
        points.push(ServePoint {
            streams,
            ticks,
            batched_frames_per_sec: fps[0],
            per_frame_frames_per_sec: fps[1],
            batching_speedup: fps[0] / fps[1].max(1e-9),
        });
    }
    let scaling_streams = 16usize.min(max_streams.max(1));
    let scaling =
        bench_scaling(smoke, &ds, scaling_streams, max_shards, parallelism, backend, precision);
    let (latency, dumps) = bench_latency(
        smoke,
        &ds,
        patterns,
        max_streams,
        max_shards,
        parallelism,
        backend,
        precision,
    );
    let single_per_frame = points.first().map(|p| p.per_frame_frames_per_sec).unwrap_or(f64::NAN);
    let largest_batched = points.last().map(|p| p.batched_frames_per_sec).unwrap_or(f64::NAN);
    let report = ServeReport {
        schema_version: 8,
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: effective_threads(),
        backend: backend_name(),
        precision: precision.name().to_string(),
        model_bytes,
        max_batch: 16,
        cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        points,
        scaling,
        latency,
        batched_aggregate_vs_single_per_frame: largest_batched / single_per_frame.max(1e-9),
        alloc: None,
        recovery: None,
        sessions: None,
    };
    (report, dumps)
}

/// The session-tier cell: registers `registered` lazy sessions over one
/// shared engine, then serves a rotating active window twice as wide as the
/// resident cap — first pass cold-starts and evicts, second pass rehydrates
/// from the spool — plus the highest-numbered session, so the registry's
/// full width is exercised. Every measurement is per-session economics, not
/// throughput: the tier's serve path is the same `observe_stream` the other
/// cells time.
fn bench_sessions(
    smoke: bool,
    registered: usize,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> SessionsReport {
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let engine = Engine::build(&[AnomalyClass::Stealing], &config);
    let dense_bytes_per_session = engine.new_session_dense(0x5EED).state_bytes();
    let max_resident = if smoke { 16 } else { 64 };
    let mut cfg = TierConfig::bounded(max_resident);
    cfg.spool_dir = cfg.spool_dir.join("bench");
    let mut tier = SessionTier::new(engine, cfg);
    for s in 0..registered {
        let adapt = AdaptConfig { seed: s as u64, ..AdaptConfig::default() };
        tier.register(0x5EED ^ s as u64, adapt);
    }
    let ds = Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(if smoke { 0.004 } else { 0.02 })
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(7),
    ));
    let mut source = AdaptationStream::owned(Arc::clone(&ds), AnomalyClass::Stealing, 0.3, 900);
    let active = (2 * max_resident).min(registered);
    let mut frames_served = 0usize;
    let mut serve = |tier: &mut SessionTier, id: usize, source: &mut AdaptationStream| {
        let (frame, _) = source.next_frame();
        tier.serve_frame(id, &frame).expect("tier serve");
        frames_served += 1;
    };
    for pass in 0..2 {
        let frames_each = if pass == 0 { 2 } else { 1 };
        for id in 0..active {
            for _ in 0..frames_each {
                serve(&mut tier, id, &mut source);
            }
        }
    }
    // touch the far end of the registry: a lazy slot at index N-1 must be
    // servable without anything below it ever materializing
    serve(&mut tier, registered - 1, &mut source);

    // per-session economics of what the run left behind
    let overlay_bytes_per_session =
        tier.resident_bytes() as f64 / tier.resident_count().max(1) as f64;
    let spooled: Vec<usize> = (0..active).filter_map(|id| tier.checkpoint_bytes(id)).collect();
    let checkpoint_bytes_per_session =
        spooled.iter().sum::<usize>() as f64 / spooled.len().max(1) as f64;
    let report = SessionsReport {
        registered,
        max_resident,
        frames_served,
        dense_bytes_per_session,
        overlay_bytes_per_session,
        bytes_shrink: dense_bytes_per_session as f64 / overlay_bytes_per_session.max(1.0),
        checkpoint_bytes_per_session,
        counters: tier.counters(),
        resume_latency_ns: LatencySummary::of(tier.resume_latency()),
    };
    tier.clear_spool();
    report
}

/// Measures steady-state serving allocations through the counting
/// allocator: (a) the pure scoring data plane — repeated batched dispatches
/// over pre-ingested windows with a warm workspace (the gated number) — and
/// (b) full runtime ticks for context.
fn measure_alloc_stats(
    smoke: bool,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> AllocStats {
    let streams = 16usize;
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let engine = Engine::build(&[AnomalyClass::Stealing], &config);
    let window_len = engine.model.config().window;
    let dim = engine.model.config().embed_dim;
    let sessions: Vec<Session> = (0..streams).map(|s| engine.new_session(s as u64)).collect();
    // Fixed pre-built windows: the measurement isolates the scoring plane
    // from frame ingest (which legitimately allocates one embedding per
    // frame).
    let frames: Vec<Vec<f32>> = (0..streams * window_len)
        .map(|i| (0..dim).map(|c| ((i * 31 + c * 7) % 17) as f32 * 0.04 - 0.3).collect())
        .collect();
    let windows: Vec<Vec<&[f32]>> = (0..streams)
        .map(|s| (0..window_len).map(|t| frames[s * window_len + t].as_slice()).collect())
        .collect();
    let batch: Vec<(&Session, &[&[f32]])> =
        sessions.iter().zip(&windows).map(|(s, w)| (s, w.as_slice())).collect();
    let mut ws = Workspace::new();
    let mut scores = Vec::new();
    // Warm the workspace pools (first pass allocates every shape once).
    for _ in 0..3 {
        engine.score_windows_batch_refs(&batch, &mut ws, &mut scores);
    }
    let iters = if smoke { 25 } else { 200 };
    let (a0, b0) = alloc_snapshot();
    for _ in 0..iters {
        engine.score_windows_batch_refs(&batch, &mut ws, &mut scores);
        black_box(scores.first().copied());
    }
    let (a1, b1) = alloc_snapshot();
    let score_frames = streams * iters;

    // Full-tick context: ingest + score + adaptation bookkeeping.
    let ds = Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(if smoke { 0.004 } else { 0.02 })
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(7),
    ));
    let mut rt = serve_runtime(&ds, streams, true, parallelism, backend, precision);
    let warm_ticks = if smoke { 4 } else { 40 };
    let ticks = if smoke { 12 } else { 96 };
    for _ in 0..warm_ticks {
        let _ = rt.tick();
    }
    let (ta0, tb0) = alloc_snapshot();
    for _ in 0..ticks {
        black_box(rt.tick());
    }
    let (ta1, tb1) = alloc_snapshot();
    let tick_frames = streams * ticks;

    AllocStats {
        frames: score_frames,
        allocs_per_frame: (a1 - a0) as f64 / score_frames as f64,
        bytes_per_frame: (b1 - b0) as f64 / score_frames as f64,
        tick_allocs_per_frame: (ta1 - ta0) as f64 / tick_frames as f64,
        tick_bytes_per_frame: (tb1 - tb0) as f64 / tick_frames as f64,
        budget_allocs_per_frame: ALLOC_BUDGET_PER_FRAME,
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn filled(len: usize, salt: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 31 + salt * 17) % 29) as f32 - 14.0) * 0.05).collect()
}

/// Resolved backend as a report string.
fn backend_name() -> String {
    match effective_backend() {
        Backend::Simd => "simd".to_string(),
        _ => "scalar".to_string(),
    }
}

/// Median wall time of `reps` calls, in nanoseconds. Two warm-up calls run
/// unmeasured first: the first invocation pays thread-pool spawns, page
/// faults on freshly-allocated buffers, and instruction-cache fill, which at
/// low rep counts (7 in full mode) was enough to drag the *median* — not
/// just the max — of small kernels.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_matmuls(sizes: &[usize], reps: usize, ops: &mut Vec<OpResult>) {
    for &dim in sizes {
        let a = filled(dim * dim, 1);
        let b = filled(dim * dim, 2);
        for (kernel, f) in [
            ("matmul_naive", matmul_naive as fn(&[f32], &[f32], usize, usize, usize) -> Vec<f32>),
            ("matmul_ikj", matmul_ikj),
            ("matmul_blocked", matmul_blocked),
            ("matmul_nt", matmul_nt),
        ] {
            let ns = time_median(reps, || {
                black_box(f(black_box(&a), black_box(&b), dim, dim, dim));
            });
            ops.push(OpResult { name: format!("{kernel}_{dim}"), ns_per_op: ns, reps });
        }
    }
}

/// Times the int8 integer matmul at square sizes: the weight side is
/// pre-quantized (as the engine holds it), the activation side is
/// dynamically per-row quantized inside the timed call — exactly the
/// serving path's per-matmul work, scratch included.
fn bench_q8_matmuls(sizes: &[usize], reps: usize, ops: &mut Vec<OpResult>) {
    use akg_tensor::ops::kernels::matmul_q8_into;
    for &dim in sizes {
        let a = filled(dim * dim, 1);
        let b = filled(dim * dim, 2);
        let qb = QuantizedMatrix::from_row_major(&b, dim, dim);
        let mut out = vec![0.0f32; dim * dim];
        let mut qa = vec![0i8; dim * dim];
        let mut scales = vec![0.0f32; dim];
        let ns = time_median(reps, || {
            matmul_q8_into(
                black_box(&mut out),
                black_box(&a),
                qb.data(),
                qb.scales(),
                dim,
                dim,
                dim,
                &mut qa,
                &mut scales,
            );
            black_box(out.first().copied());
        });
        ops.push(OpResult { name: format!("matmul_q8_{dim}"), ns_per_op: ns, reps });
    }
}

/// Times the GNN message-passing index ops: `scatter_add_rows` (edge
/// messages summed onto destination rows) and `index_select_rows` (row
/// gather) at the serving path's row width.
fn bench_gather_scatter(rows: usize, cols: usize, reps: usize, ops: &mut Vec<OpResult>) {
    let src = Tensor::from_vec(filled(rows * cols, 7), &[rows, cols]);
    // A realistic fan-in pattern: several consecutive sources per
    // destination, like edges into one reasoning level.
    let dst: Vec<usize> = (0..rows).map(|i| (i / 3) % rows.max(1)).collect();
    let ns = time_median(reps, || {
        black_box(src.scatter_add_rows(&dst, rows).to_vec());
    });
    ops.push(OpResult { name: format!("scatter_add_{rows}x{cols}"), ns_per_op: ns, reps });
    let idx: Vec<usize> = (0..rows).map(|i| (i * 7 + 3) % rows).collect();
    let ns = time_median(reps, || {
        black_box(src.index_select_rows(&idx).to_vec());
    });
    ops.push(OpResult { name: format!("gather_{rows}x{cols}"), ns_per_op: ns, reps });
}

fn bench_fused(rows: usize, cols: usize, reps: usize, ops: &mut Vec<OpResult>) {
    let x = Tensor::from_vec(filled(rows * cols, 3), &[rows, cols]);
    let mask: Vec<f32> =
        (0..rows * cols).map(|i| if i % cols > i / cols { -1e9 } else { 0.0 }).collect();
    let ns = time_median(reps, || {
        black_box(x.mul_scalar(0.125).add_const(&mask).softmax_rows().to_vec());
    });
    ops.push(OpResult { name: format!("softmax_composed_{rows}x{cols}"), ns_per_op: ns, reps });
    let ns = time_median(reps, || {
        black_box(x.softmax_rows_scaled_masked(0.125, Some(&mask)).to_vec());
    });
    ops.push(OpResult { name: format!("softmax_fused_{rows}x{cols}"), ns_per_op: ns, reps });

    let xg = Tensor::from_vec(filled(rows * cols, 4), &[rows, cols]).requires_grad(true);
    let gamma = Tensor::ones(&[cols]).requires_grad(true);
    let beta = Tensor::zeros(&[cols]).requires_grad(true);
    let ns = time_median(reps, || {
        xg.zero_grad();
        gamma.zero_grad();
        beta.zero_grad();
        let mean = xg.mean_axis1();
        let centered = xg.add_col(&mean.neg());
        let var = centered.square().mean_axis1();
        let inv_std = var.add_scalar(1e-5).sqrt().recip();
        centered.mul_col(&inv_std).mul_bias(&gamma).add_bias(&beta).sum_all().backward();
        black_box(xg.grad().map(|g| g[0]));
    });
    ops.push(OpResult {
        name: format!("layernorm_composed_fwd_bwd_{rows}x{cols}"),
        ns_per_op: ns,
        reps,
    });
    let ns = time_median(reps, || {
        xg.zero_grad();
        gamma.zero_grad();
        beta.zero_grad();
        xg.layer_norm(&gamma, &beta, 1e-5).sum_all().backward();
        black_box(xg.grad().map(|g| g[0]));
    });
    ops.push(OpResult {
        name: format!("layernorm_fused_fwd_bwd_{rows}x{cols}"),
        ns_per_op: ns,
        reps,
    });
}

fn bench_end_to_end(
    smoke: bool,
    parallelism: Parallelism,
    backend: Backend,
    precision: Precision,
) -> EndToEnd {
    let scale = if smoke { 0.004 } else { 0.02 };
    let ds = SyntheticUcfCrime::generate(
        DatasetConfig::scaled(scale)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(42),
    );

    // Carry the CLI thread and backend policies into the system build:
    // `build` applies its config's settings process-wide, so defaulting here
    // would silently undo `--threads` / `--backend`.
    let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
    let t0 = Instant::now();
    let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &config);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    sys.engine.model.set_train(false);

    // Eval-mode scoring throughput over the test subset.
    let subset = ds.test_subset(AnomalyClass::Stealing);
    let score_frames: usize = subset.iter().map(|v| v.len()).sum();
    let t0 = Instant::now();
    for v in &subset {
        black_box(sys.score_video(v));
    }
    let score_secs = t0.elapsed().as_secs_f64();

    // Adaptation-loop throughput across a trend shift: frames stream through
    // `ContinuousAdapter::observe` (embed + score + trigger checks + any
    // token-table backprop), shifting Stealing → Robbery halfway.
    let mut adapter = ContinuousAdapter::new(&mut sys, AdaptConfig::default());
    let adapt_frames = if smoke { 60 } else { 600 };
    let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.3, 42);
    let t0 = Instant::now();
    for i in 0..adapt_frames {
        if i == adapt_frames / 2 {
            stream.shift_to(AnomalyClass::Robbery);
        }
        let (frame, _) = stream.next_frame();
        black_box(adapter.observe(&mut sys, &frame));
    }
    let adapt_secs = t0.elapsed().as_secs_f64();

    EndToEnd {
        build_ms,
        score_frames,
        score_frames_per_sec: score_frames as f64 / score_secs.max(1e-9),
        adapt_frames,
        adapt_frames_per_sec: adapt_frames as f64 / adapt_secs.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = flag(&args, "--smoke");
    let alloc_stats = flag(&args, "--alloc-stats");
    let faults = flag(&args, "--faults");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_tensor.json".to_string());
    let serve_out =
        flag_value(&args, "--serve-out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let max_streams =
        flag_value(&args, "--streams").and_then(|v| v.parse::<usize>().ok()).unwrap_or(16);
    let max_shards =
        flag_value(&args, "--shards").and_then(|v| v.parse::<usize>().ok()).unwrap_or(4);
    let sessions_count = flag_value(&args, "--sessions").and_then(|v| v.parse::<usize>().ok());
    let slo_out = flag_value(&args, "--slo-out");
    let patterns: Vec<ArrivalPattern> = match flag_value(&args, "--load") {
        Some(name) => match ArrivalPattern::preset(&name) {
            Some(p) => vec![p],
            None => {
                eprintln!("perf: unknown --load {name:?} (expected poisson|bursty|ramp)");
                std::process::exit(2);
            }
        },
        None => vec![
            ArrivalPattern::preset("poisson").expect("preset"),
            ArrivalPattern::preset("bursty").expect("preset"),
        ],
    };
    let parallelism = match flag_value(&args, "--threads").and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => Parallelism::Threads(n),
        None => Parallelism::Auto,
    };
    set_parallelism(parallelism);
    let backend = match flag_value(&args, "--backend").as_deref() {
        Some("scalar") => Backend::Scalar,
        Some("simd") => Backend::Simd,
        Some("auto") | None => Backend::Auto,
        Some(other) => {
            eprintln!("perf: unknown --backend {other:?} (expected scalar|simd|auto)");
            std::process::exit(2);
        }
    };
    set_backend(backend);
    let precision = match flag_value(&args, "--precision").as_deref() {
        Some("int8") => Precision::Int8,
        Some("f32") | None => Precision::F32,
        Some(other) => {
            eprintln!("perf: unknown --precision {other:?} (expected f32|int8)");
            std::process::exit(2);
        }
    };

    let (sizes, reps): (&[usize], usize) =
        if smoke { (&[32, 48], 3) } else { (&[64, 128, 256], 7) };
    let mut ops = Vec::new();
    println!(
        "perf: mode={} threads={} backend={} precision={} cpu=[{}] sizes={sizes:?}",
        if smoke { "smoke" } else { "full" },
        effective_threads(),
        backend_name(),
        precision.name(),
        cpu_features()
    );

    // Warm the worker pool and touch a large-matmul-sized working set once
    // before any timed region, so rep 1 of the first kernel doesn't absorb
    // thread spawns and cold pages.
    {
        let dim = *sizes.last().expect("at least one size");
        let a = filled(dim * dim, 5);
        let b = filled(dim * dim, 6);
        black_box(matmul_blocked(black_box(&a), black_box(&b), dim, dim, dim));
    }

    bench_matmuls(sizes, reps, &mut ops);
    bench_q8_matmuls(sizes, reps, &mut ops);
    if smoke {
        // The quantization speed gate compares the 256-cubed kernels, which
        // the smoke sizes don't reach — measure exactly that pair at smoke
        // reps so the gate runs in CI too.
        let dim = 256usize;
        let a = filled(dim * dim, 1);
        let b = filled(dim * dim, 2);
        let ns = time_median(reps, || {
            black_box(matmul_blocked(black_box(&a), black_box(&b), dim, dim, dim));
        });
        ops.push(OpResult { name: format!("matmul_blocked_{dim}"), ns_per_op: ns, reps });
        bench_q8_matmuls(&[dim], reps, &mut ops);
    }
    let (rows, cols) = if smoke { (16, 16) } else { (64, 128) };
    bench_fused(rows, cols, reps.max(5), &mut ops);
    let (srows, scols) = if smoke { (128, 8) } else { (4096, 8) };
    bench_gather_scatter(srows, scols, reps.max(5), &mut ops);
    let end_to_end = bench_end_to_end(smoke, parallelism, backend, precision);

    let largest = *sizes.last().expect("at least one size");
    let ns_of = |name: &str| {
        ops.iter()
            .find(|o| o.name == format!("{name}_{largest}"))
            .map(|o| o.ns_per_op)
            .expect("kernel measured")
    };
    let ns_named = |name: &str| {
        ops.iter().find(|o| o.name == name).map(|o| o.ns_per_op).expect("kernel measured")
    };
    let derived = Derived {
        blocked_speedup_vs_naive: ns_of("matmul_naive") / ns_of("matmul_blocked"),
        blocked_speedup_vs_ikj: ns_of("matmul_ikj") / ns_of("matmul_blocked"),
        at_size: largest,
        q8_256_speedup_vs_blocked: ns_named("matmul_blocked_256") / ns_named("matmul_q8_256"),
    };

    for op in &ops {
        println!("  {:<36} {:>14.0} ns/op", op.name, op.ns_per_op);
    }
    println!(
        "  end-to-end: build {:.0} ms | score {:.0} frames/s | adapt {:.0} frames/s",
        end_to_end.build_ms, end_to_end.score_frames_per_sec, end_to_end.adapt_frames_per_sec
    );
    println!(
        "  blocked vs naive at {}^3: {:.2}x (vs ikj: {:.2}x)",
        derived.at_size, derived.blocked_speedup_vs_naive, derived.blocked_speedup_vs_ikj
    );
    println!("  q8 vs blocked at 256^3: {:.2}x", derived.q8_256_speedup_vs_blocked);

    // The quantization speed gate: on SIMD hosts the integer kernel must
    // not lose to the f32 blocked kernel at the reference size. Scalar
    // hosts are exempt — the scalar q8 ladder exists for bit-reproducible
    // fallback, not speed.
    let q8_gate_failed = effective_backend() == Backend::Simd
        && ns_named("matmul_q8_256") >= ns_named("matmul_blocked_256");
    if q8_gate_failed {
        eprintln!(
            "perf: Q8 SPEED REGRESSION — matmul_q8_256 ({:.0} ns) is not faster than \
             matmul_blocked_256 ({:.0} ns) on the SIMD backend",
            ns_named("matmul_q8_256"),
            ns_named("matmul_blocked_256")
        );
    }

    // Weight footprint at both precisions, from an engine built exactly as
    // the serving benches build theirs.
    let model_bytes = {
        let config = SystemConfig { parallelism, backend, precision, ..SystemConfig::default() };
        let engine = Engine::build(&[AnomalyClass::Stealing], &config);
        let f32_bytes = engine.model.weight_matrix_bytes_f32();
        let int8_bytes = engine.model.weight_matrix_bytes_int8();
        ModelBytes {
            precision: precision.name().to_string(),
            current_bytes: engine.model_bytes(),
            f32_bytes,
            int8_bytes,
            shrink: f32_bytes as f64 / int8_bytes as f64,
        }
    };
    println!(
        "  model bytes: {} at {} (f32 {} | int8 {} | {:.2}x smaller)",
        model_bytes.current_bytes,
        model_bytes.precision,
        model_bytes.f32_bytes,
        model_bytes.int8_bytes,
        model_bytes.shrink
    );

    let report = Report {
        schema_version: 7,
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: effective_threads(),
        backend: backend_name(),
        cpu_features: cpu_features(),
        precision: precision.name().to_string(),
        model_bytes: model_bytes.clone(),
        ops,
        end_to_end,
        derived,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("perf: wrote {out}");

    let (mut serve, slo_dumps) = bench_serving(
        smoke,
        max_streams,
        max_shards,
        &patterns,
        parallelism,
        backend,
        precision,
        model_bytes,
    );
    for p in &serve.points {
        println!(
            "  serve {:>2} stream(s): batched {:>7.0} f/s | per-frame {:>7.0} f/s | {:.2}x",
            p.streams, p.batched_frames_per_sec, p.per_frame_frames_per_sec, p.batching_speedup
        );
    }
    println!(
        "  serve headline: batched aggregate vs single-stream per-frame = {:.2}x",
        serve.batched_aggregate_vs_single_per_frame
    );
    for p in &serve.scaling {
        println!(
            "  scale {:>2} shard(s) x {:>2} streams: {:>7.0} f/s | {:.2}x vs 1 shard ({} core(s))",
            p.shards, p.streams, p.frames_per_sec, p.speedup_vs_one_shard, serve.cores
        );
    }
    for cell in &serve.latency {
        println!(
            "  load {:>7} x{} shard(s): wait p50/p99/p999 = {}/{}/{} ticks (max {}) | \
             {:.0}/{:.0}/{:.0} us | {} drained, {} shed, {} coalesced, 0 silent drops",
            cell.pattern,
            cell.shards,
            cell.wait_ticks.p50,
            cell.wait_ticks.p99,
            cell.wait_ticks.p999,
            cell.wait_ticks.max,
            cell.latency_ns.p50 as f64 / 1e3,
            cell.latency_ns.p99 as f64 / 1e3,
            cell.latency_ns.p999 as f64 / 1e3,
            cell.wait_ticks.count,
            cell.counters.shed,
            cell.counters.coalesced,
        );
    }
    if let Some(path) = &slo_out {
        let slo = SloReport {
            schema_version: 1,
            mode: if smoke { "smoke" } else { "full" }.to_string(),
            backend: backend_name(),
            cells: slo_dumps,
        };
        let json = serde_json::to_string(&slo).expect("serialize slo report");
        std::fs::write(path, json).expect("write slo report");
        println!("perf: wrote {path}");
    }
    if faults {
        let r = bench_recovery(smoke, parallelism, backend, precision);
        println!(
            "  faults {} x{} shard(s) over {} ticks: {} recoveries ({} from checkpoint) | \
             replay {} ticks / {} frames (max {}) | {:.2} ms recovering | checkpoint \
             ~{:.0} B/stream | {} rejected | {} silent drops",
            r.pattern,
            r.shards,
            r.ticks,
            r.stats.recoveries,
            r.stats.from_checkpoint,
            r.stats.replayed_ticks,
            r.stats.replayed_frames,
            r.stats.max_replay_ticks,
            r.recovery_wall_ms,
            r.checkpoint_bytes_per_stream,
            r.rejected_frames,
            r.silent_loss,
        );
        serve.recovery = Some(r);
    }
    let mut sessions_gate_failed = false;
    if let Some(n) = sessions_count {
        if n == 0 {
            eprintln!("perf: --sessions needs a positive count");
            std::process::exit(2);
        }
        let s = bench_sessions(smoke, n, parallelism, backend, precision);
        println!(
            "  sessions: {} registered @ cap {} | overlay {:.0} B vs dense {} B ({:.1}x \
             smaller) | checkpoint ~{:.0} B | {} cold, {} evicted, {} rehydrated ({} failed) | \
             resume p50/p99 = {:.0}/{:.0} us",
            s.registered,
            s.max_resident,
            s.overlay_bytes_per_session,
            s.dense_bytes_per_session,
            s.bytes_shrink,
            s.checkpoint_bytes_per_session,
            s.counters.cold_starts,
            s.counters.evictions,
            s.counters.rehydrations,
            s.counters.rehydration_failures,
            s.resume_latency_ns.p50 as f64 / 1e3,
            s.resume_latency_ns.p99 as f64 / 1e3,
        );
        if s.counters.rehydration_failures > 0 {
            eprintln!(
                "perf: SESSION TIER REGRESSION — {} rehydration(s) failed validation",
                s.counters.rehydration_failures
            );
            sessions_gate_failed = true;
        }
        if s.overlay_bytes_per_session >= s.dense_bytes_per_session as f64 {
            eprintln!(
                "perf: SESSION TIER REGRESSION — overlay session ({:.0} B) is not smaller \
                 than a dense fork ({} B)",
                s.overlay_bytes_per_session, s.dense_bytes_per_session
            );
            sessions_gate_failed = true;
        }
        serve.sessions = Some(s);
    }
    let mut over_budget = false;
    if alloc_stats {
        let a = measure_alloc_stats(smoke, parallelism, backend, precision);
        println!(
            "  alloc: scoring plane {:.3} allocs/frame ({:.0} B/frame) | full tick {:.1} \
             allocs/frame ({:.0} B/frame) | budget {:.1}",
            a.allocs_per_frame,
            a.bytes_per_frame,
            a.tick_allocs_per_frame,
            a.tick_bytes_per_frame,
            a.budget_allocs_per_frame
        );
        over_budget = a.allocs_per_frame > ALLOC_BUDGET_PER_FRAME;
        if over_budget {
            eprintln!(
                "perf: ALLOC REGRESSION — scoring plane spends {:.3} allocs/frame, budget is {:.1}",
                a.allocs_per_frame, ALLOC_BUDGET_PER_FRAME
            );
        }
        serve.alloc = Some(a);
    }
    let json = serde_json::to_string(&serve).expect("serialize serve report");
    std::fs::write(&serve_out, json).expect("write serve report");
    println!("perf: wrote {serve_out}");
    if over_budget || q8_gate_failed || sessions_gate_failed {
        std::process::exit(1);
    }
}
