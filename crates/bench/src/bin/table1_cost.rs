//! Regenerates **Table I**: detailed computational and performance
//! comparison between the baseline (cloud-based KG updates with GPT-4) and
//! the proposed method (edge-based KG adaptation).
//!
//! Cloud-side constants are the paper's published numbers (our simulator has
//! no GPT-4 to measure); edge-side numbers are *measured* from this
//! implementation: analytic FLOPs from the deployed model's dimensions and
//! wall-clock from an actual adaptation loop.
//!
//! Usage: `table1_cost [--seed N]`

use akg_bench::experiment_dataset;
use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
use akg_core::experiment::{run_trend_shift, TrendShiftParams};
use akg_core::pipeline::MissionSystem;
use akg_core::train::train_decision_model;
use akg_cost::{
    BaselineMeasurement, CloudBaseline, CostReport, EdgeDevice, EdgeMeasurement, KgDims, ModelDims,
};
use akg_data::AdaptationStream;
use akg_kg::AnomalyClass;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(43u64);

    // Scenario of the paper: anomaly trend alternates Stealing <-> Robbery;
    // the proposed method adapts on-device, the baseline would regenerate
    // the KG in the cloud 4x/month.
    let initial = AnomalyClass::Stealing;
    let shifted = AnomalyClass::Robbery;
    let ds = experiment_dataset(&[initial, shifted], seed);

    // --- measured: average AUC of the adaptive system over the scenario ---
    let mut params = TrendShiftParams::quick(initial, shifted);
    params.seed = seed;
    params.system.seed = seed;
    params.train = params.train.with_seed(seed);
    let shift_result = run_trend_shift(&ds, &params);
    let adaptive_auc = shift_result.adaptive.mean_auc();
    // The baseline regenerates a fresh mission KG at each trend change: its
    // AUC is the adaptive system's *pre-shift* level throughout.
    let baseline_auc = shift_result.initial_auc;

    // --- measured: FLOPs of one daily adaptation loop -----------------------
    let mut sys = MissionSystem::build(&[initial], &params.system);
    let train_videos: Vec<&akg_data::Video> =
        ds.train.iter().filter(|v| v.class.is_none() || v.class == Some(initial)).collect();
    train_decision_model(&mut sys, &train_videos, &params.train);
    let dims_like = sys.cost_dims();
    let dims = ModelDims {
        kgs: dims_like.kgs,
        kg: KgDims { nodes: dims_like.nodes, edges: dims_like.edges, levels: dims_like.levels },
        embed_dim: dims_like.embed_dim,
        gnn_dim: dims_like.gnn_dim,
        window: dims_like.window,
        temporal_inner: dims_like.temporal_inner,
        heads: dims_like.heads,
        temporal_layers: dims_like.temporal_layers,
        classes: dims_like.classes,
    };
    let adapt_cfg = AdaptConfig::default();
    let batch = 3 * adapt_cfg.max_k; // anomalies + 2x normals per trigger
    let flops_per_day = dims.adaptation_step_flops(batch, dims_like.token_table_entries);

    // --- measured: wall-clock of one adaptation loop ------------------------
    // Engineer a genuine trigger: anchor the score reference on the trained
    // mission's anomalies, then stream normals so the mean drops and
    // K = |Δm|·N fires — then time the full loop (selection + token-update
    // backprop + drift check).
    let cfg = AdaptConfig { interval: usize::MAX, ..adapt_cfg };
    let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
    let mut anomalies = AdaptationStream::new(&ds, initial, 1.0, seed);
    for _ in 0..cfg.n_window {
        let (frame, _) = anomalies.next_frame();
        adapter.observe(&mut sys, &frame);
    }
    let mut normals = AdaptationStream::new(&ds, initial, 0.0, seed ^ 1);
    for _ in 0..cfg.n_window / 2 {
        let (frame, _) = normals.next_frame();
        adapter.observe(&mut sys, &frame);
    }
    let start = Instant::now();
    let k = adapter.adapt_now(&mut sys);
    let adaptation_seconds = start.elapsed().as_secs_f64();
    eprintln!("(timed adaptation used K = {k} pseudo-anomalies)");

    let report = CostReport::build(
        &CloudBaseline::default(),
        &EdgeDevice::default(),
        &BaselineMeasurement { average_auc: baseline_auc },
        &EdgeMeasurement {
            adaptation_flops_per_day: flops_per_day,
            adaptations_per_day: 1,
            average_auc: adaptive_auc,
            adaptation_seconds,
            model_bytes_f32: sys.engine.model.weight_matrix_bytes_f32(),
            model_bytes_int8: sys.engine.model.weight_matrix_bytes_int8(),
        },
    );
    println!("Table I reproduction — baseline (cloud KG updates) vs proposed (edge KG adaptation)");
    println!("(edge FLOPs/AUC/latency measured from this implementation; cloud constants from the paper)\n");
    println!("{}", report.render());
}
