//! Regenerates **Fig. 5**: test AUC across shifts in the anomaly target,
//! comparing continuous KG adaptive learning against a static KG.
//!
//! Panels (as in the paper):
//!   (A) weak shifts — Stealing→Robbery and Robbery→Stealing
//!   (B) strong shift — Stealing→Explosion
//!
//! Usage: `fig5_trend_shift [--seeds N] [--scenario weak|weak-rev|strong|all]`

use akg_bench::{mean_curve, render_panel, run_scenario_seeds};
use akg_kg::AnomalyClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // at least one seed: `--seeds 0` would leave every panel empty
    let seeds = flag_value(&args, "--seeds").and_then(|v| v.parse().ok()).unwrap_or(3u64).max(1);
    let scenario = flag_value(&args, "--scenario").unwrap_or_else(|| "all".to_string());
    let seed_list: Vec<u64> = (42..42 + seeds).collect();

    let panels: Vec<(&str, AnomalyClass, AnomalyClass)> = match scenario.as_str() {
        "weak" => vec![(
            "Fig. 5(A) weak shift: Stealing -> Robbery",
            AnomalyClass::Stealing,
            AnomalyClass::Robbery,
        )],
        "weak-rev" => vec![(
            "Fig. 5(A) weak shift: Robbery -> Stealing",
            AnomalyClass::Robbery,
            AnomalyClass::Stealing,
        )],
        "strong" => vec![(
            "Fig. 5(B) strong shift: Stealing -> Explosion",
            AnomalyClass::Stealing,
            AnomalyClass::Explosion,
        )],
        _ => vec![
            (
                "Fig. 5(A) weak shift: Stealing -> Robbery",
                AnomalyClass::Stealing,
                AnomalyClass::Robbery,
            ),
            (
                "Fig. 5(A) weak shift: Robbery -> Stealing",
                AnomalyClass::Robbery,
                AnomalyClass::Stealing,
            ),
            (
                "Fig. 5(B) strong shift: Stealing -> Explosion",
                AnomalyClass::Stealing,
                AnomalyClass::Explosion,
            ),
        ],
    };

    println!("Fig. 5 reproduction — test AUC across anomaly trend shifts");
    println!("(averaged over {} seed(s): {:?})\n", seed_list.len(), seed_list);
    for (title, initial, shifted) in panels {
        let results = run_scenario_seeds(initial, shifted, &seed_list);
        let adaptive = mean_curve(&results, true);
        let static_kg = mean_curve(&results, false);
        let shift_at = results[0].adaptive.points.iter().position(|p| p.after_shift).unwrap_or(0);
        println!("{}", render_panel(title, &adaptive, &static_kg, shift_at));
        let init: f32 = results.iter().map(|r| r.initial_auc).sum::<f32>() / results.len() as f32;
        let post_a: f32 = results.iter().map(|r| r.adaptive.post_shift_mean_auc()).sum::<f32>()
            / results.len() as f32;
        let post_s: f32 = results.iter().map(|r| r.static_kg.post_shift_mean_auc()).sum::<f32>()
            / results.len() as f32;
        println!(
            "  initial AUC {:.3} | post-shift mean: adaptive {:.3} vs static {:.3} (delta {:+.3})\n",
            init,
            post_a,
            post_s,
            post_a - post_s
        );
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}
