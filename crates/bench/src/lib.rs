//! # akg-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section:
//!
//! - `fig5_trend_shift` (binary) — Fig. 5(A)/(B): test AUC across anomaly
//!   trend shifts, with vs without continuous KG adaptive learning.
//! - `fig6_retrieval` (binary) — Fig. 6: interpretable-retrieval drift of
//!   the adapted token embeddings.
//! - `table1_cost` (binary) — Table I: cloud-baseline vs edge-adaptation
//!   cost accounting with measured edge numbers.
//! - `perf` (binary) — the perf trajectory harness: hot-path kernel timings
//!   plus end-to-end scoring/adaptation throughput, emitted as
//!   `BENCH_tensor.json` (see `docs/PERFORMANCE.md`).
//! - Criterion micro-benches (`benches/`) — component latencies and the
//!   ablations called out in DESIGN.md.
//!
//! ## Reproducing the paper's evaluation
//!
//! ```sh
//! cargo run --release --bin fig5_trend_shift -- --seeds 3 --scenario all
//! cargo run --release --bin fig6_retrieval -- --seed 43
//! cargo run --release --bin table1_cost -- --seed 43
//! cargo bench --bench components   # Table I "Low (Real-time)" latencies
//! cargo bench --bench ablations    # design-choice ablations + AUC printouts
//! cargo bench --bench tensor_ops   # hot-path kernels: naive vs ikj vs blocked
//! cargo run --release --bin perf   # perf trajectory -> BENCH_tensor.json
//! ```
//!
//! Every run is seeded and deterministic: the binaries accept `--seed`
//! (or `--seeds N` for multi-seed averaging in Fig. 5) so that reported
//! curves can be regenerated exactly.
//!
//! The library part of this crate holds the small amount of shared harness
//! code: the experiment-scale dataset ([`experiment_dataset`]), multi-seed
//! scenario running ([`run_scenario_seeds`]), per-step curve averaging
//! ([`mean_curve`]), and the ASCII panel renderer ([`render_panel`]) used
//! for Fig. 5 output.

#![warn(missing_docs)]

use akg_core::experiment::{run_trend_shift, TrendShiftParams, TrendShiftResult};
use akg_data::{DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;

/// The dataset scale used by the experiment harness: small enough to run on
/// a laptop in minutes, large enough for stable frame-level AUC.
pub fn experiment_dataset(classes: &[AnomalyClass], seed: u64) -> SyntheticUcfCrime {
    let mut cfg = DatasetConfig::scaled(0.03).with_classes(classes).with_seed(seed);
    cfg.test_normal = 25;
    cfg.test_anomalous = 30;
    SyntheticUcfCrime::generate(cfg)
}

/// One Fig. 5 scenario averaged over `seeds`, returning per-seed results.
pub fn run_scenario_seeds(
    initial: AnomalyClass,
    shifted: AnomalyClass,
    seeds: &[u64],
) -> Vec<TrendShiftResult> {
    seeds
        .iter()
        .map(|&seed| {
            let ds = experiment_dataset(&[initial, shifted], seed);
            let mut params = TrendShiftParams::quick(initial, shifted);
            params.seed = seed;
            params.system.seed = seed;
            params.train = params.train.with_seed(seed);
            run_trend_shift(&ds, &params)
        })
        .collect()
}

/// Mean AUC per step across seed runs for the adaptive (or static) curve.
pub fn mean_curve(results: &[TrendShiftResult], adaptive: bool) -> Vec<f32> {
    if results.is_empty() {
        return Vec::new();
    }
    let steps = results[0].adaptive.points.len();
    (0..steps)
        .map(|i| {
            results
                .iter()
                .map(|r| {
                    let curve = if adaptive { &r.adaptive } else { &r.static_kg };
                    curve.points[i].auc
                })
                .sum::<f32>()
                / results.len() as f32
        })
        .collect()
}

/// Renders one Fig. 5 panel as an ASCII chart (steps on x, AUC on y).
pub fn render_panel(title: &str, adaptive: &[f32], static_kg: &[f32], shift_at: usize) -> String {
    let mut out = format!("{title}\n  step | adaptive | static  | phase\n");
    for (i, (a, s)) in adaptive.iter().zip(static_kg).enumerate() {
        let phase = if i < shift_at { "initial trend" } else { "SHIFTED trend" };
        out.push_str(&format!("  {i:>4} |   {a:.3}  |  {s:.3}  | {phase}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_dataset_has_requested_sizes() {
        let ds = experiment_dataset(&[AnomalyClass::Stealing, AnomalyClass::Robbery], 1);
        assert_eq!(ds.config().test_normal, 25);
        assert_eq!(ds.config().test_anomalous, 30);
        assert!(!ds.test_subset(AnomalyClass::Robbery).is_empty());
    }

    #[test]
    fn render_panel_includes_all_steps() {
        let text = render_panel("t", &[0.9, 0.8], &[0.9, 0.7], 1);
        assert!(text.contains("0.900"));
        assert!(text.contains("SHIFTED"));
    }
}
