//! Seeded weight initializers.
//!
//! All initializers take an explicit RNG so every experiment in the
//! reproduction is deterministic.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Samples a standard normal value via the Box–Muller transform.
pub fn sample_standard_normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(shape: &[usize], bound: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-bound..=bound)).collect();
    Tensor::from_vec(data, shape)
}

/// Normal initialization with the given standard deviation.
pub fn normal(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], bound, rng)
}

/// Kaiming/He normal initialization for a `[fan_in, fan_out]` weight.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(&[fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(uniform(&[4, 4], 0.1, &mut a).to_vec(), uniform(&[4, 4], 0.1, &mut b).to_vec());
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[1000], 0.5, &mut rng);
        assert!(t.to_vec().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&[10_000], 2.0, &mut rng);
        let data = t.to_vec();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(512, 512, &mut rng);
        let max = t.to_vec().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max <= (6.0 / 1024.0f32).sqrt() + 1e-6);
    }
}
