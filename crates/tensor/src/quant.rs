//! Symmetric per-row int8 quantization for the inference plane.
//!
//! The serving path never backprops, so it can tolerate precision the
//! training plane can't: a [`QuantizedMatrix`] stores a linear layer's
//! weight as int8 codes plus one `f32` scale per *output channel*, cutting
//! the weight footprint ~4× and letting the matmul run on integer SIMD
//! (`_mm256_maddubs_epi16` / `_mm256_madd_epi16` — see
//! [`crate::ops::kernels::matmul_q8_nt_into`]).
//!
//! ## Scheme and error bound
//!
//! Quantization is **symmetric** (no zero-point): for a row `w` with
//! `s = max|w| / 127`, each element is coded as
//! `q = clamp(round(w / s), -127, 127)` and decodes as `q · s`. Because
//! `|w / s| ≤ 127` by construction, the clamp never bites in exact
//! arithmetic and the round is the only loss, so the round-trip error obeys
//!
//! ```text
//! |w − q·s| ≤ s / 2 = max|w| / 254
//! ```
//!
//! per element — a proven, testable bound (≤ 0.2 % of the row's dynamic
//! range, verified in this module's tests). All-zero rows take `s = 1` and
//! code exactly.
//!
//! Weights are quantized **once** (at engine build, per output channel);
//! activations are quantized **dynamically** per call with
//! [`quantize_rows_i8`] because their dynamic range shifts with every
//! frame, stream, and adaptation step — a static activation scale would
//! either clip trend-shifted inputs or waste the int8 range on quiet ones.
//! The quantization step itself is deliberately one portable code path on
//! every backend (compiler-vectorized for the baseline target, no
//! `std::arch` dispatch): it costs `O(m·k)` against the matmul's
//! `O(m·k·n)`, and keeping it backend-independent means the int8 plane's
//! scalar ↔ SIMD contract is *bit-identity* (integer dot products are
//! exact; see [`crate::ops::simd`]).

/// Numeric plane the serving stack runs on. Training and adaptation always
/// stay [`Precision::F32`]; the knob only re-codes the *frozen* engine
/// weights (see `akg-core`'s `SystemConfig`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Precision {
    /// Full-precision f32 serving (the equivalence oracle).
    #[default]
    F32,
    /// Int8 serving: per-row-scaled int8 weights, dynamic int8 activations.
    Int8,
}

impl Precision {
    /// Stable lower-case name (`"f32"` / `"int8"`), for reports and flags.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// A weight matrix quantized to int8 with one `f32` scale per output
/// channel.
///
/// The source is a row-major `[k, n]` matrix (the layout
/// [`crate::Tensor::matmul`] consumes, `n` output channels of width `k`);
/// storage is **transposed** to `[n, k]` so the integer kernel reads each
/// output channel as one contiguous int8 row — the same trick as
/// [`crate::ops::kernels::matmul_nt`].
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Int8 codes, `[n, k]` row-major (stored row `j` = output channel `j`).
    data: Vec<i8>,
    /// Per-output-channel scales, length `n`.
    scales: Vec<f32>,
    k: usize,
    n: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[k, n]` matrix, one symmetric scale per
    /// column (output channel).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != k * n`.
    pub fn from_row_major(w: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(w.len(), k * n, "QuantizedMatrix: weight is not k × n");
        let mut data = vec![0i8; n * k];
        let mut scales = vec![0.0f32; n];
        let mut column = vec![0.0f32; k];
        for j in 0..n {
            for p in 0..k {
                column[p] = w[p * n + j];
            }
            scales[j] = quantize_row_i8(&column, &mut data[j * k..(j + 1) * k]);
        }
        QuantizedMatrix { data, scales, k, n }
    }

    /// Input width `k` (length of each stored row).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output channel count `n` (number of stored rows / scales).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The int8 codes, `[n, k]` row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-output-channel scales, length `n`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Storage footprint in bytes: one byte per code plus four per scale.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Decodes back to the row-major `[k, n]` layout of the source. Each
    /// element differs from the source by at most half its channel's scale
    /// (see the module docs).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut w = vec![0.0f32; self.k * self.n];
        for j in 0..self.n {
            let s = self.scales[j];
            for p in 0..self.k {
                w[p * self.n + j] = self.data[j * self.k + p] as f32 * s;
            }
        }
        w
    }
}

/// Symmetrically quantizes one row into `q`, returning the scale
/// `max|row| / 127` (or `1.0` for an all-zero row, which codes exactly).
///
/// Deterministic scalar code on every backend — see the module docs for why
/// activation quantization deliberately never takes a SIMD path.
///
/// # Panics
///
/// Panics if `q.len() != row.len()`.
pub fn quantize_row_i8(row: &[f32], q: &mut [i8]) -> f32 {
    assert_eq!(q.len(), row.len(), "quantize_row_i8: output length mismatch");
    // Eight-lane max-abs reduction: max is exact under any grouping (finite
    // inputs), so this matches the sequential fold bit-for-bit while letting
    // LLVM keep it in vector registers.
    let mut mx = [0.0f32; 8];
    let chunks = row.len() / 8;
    for c in 0..chunks {
        let xs = &row[c * 8..c * 8 + 8];
        for l in 0..8 {
            mx[l] = mx[l].max(xs[l].abs());
        }
    }
    let mut max_abs = mx.iter().fold(0.0f32, |m, v| m.max(*v));
    for v in &row[chunks * 8..] {
        max_abs = max_abs.max(v.abs());
    }
    if max_abs == 0.0 {
        q.fill(0);
        return 1.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (code, &v) in q.iter_mut().zip(row) {
        // Round-half-away-from-zero via add-half-then-truncate: `as i8`
        // truncates toward zero and saturates, so the ±127.5-ε extremes stay
        // inside [-127, 127] (never -128). Spelled without `f32::round`,
        // which is a libm call on the baseline target and an order of
        // magnitude slower than this vectorizable form — this loop sits on
        // the per-call activation path of every int8 matmul.
        let t = v * inv;
        *code = (t + 0.5f32.copysign(t)) as i8;
    }
    scale
}

/// Dynamically quantizes `rows` activation rows of width `k` (row-major
/// `a`), writing codes into `q` and one scale per row into `scales`.
///
/// # Panics
///
/// Panics if buffer lengths disagree with `rows` × `k`.
pub fn quantize_rows_i8(a: &[f32], rows: usize, k: usize, q: &mut [i8], scales: &mut [f32]) {
    assert_eq!(a.len(), rows * k, "quantize_rows_i8: input is not rows × k");
    assert_eq!(q.len(), rows * k, "quantize_rows_i8: q is not rows × k");
    assert_eq!(scales.len(), rows, "quantize_rows_i8: scales is not rows");
    for i in 0..rows {
        scales[i] = quantize_row_i8(&a[i * k..(i + 1) * k], &mut q[i * k..(i + 1) * k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..len).map(f).collect()
    }

    #[test]
    fn round_trip_error_within_half_scale() {
        let (k, n) = (37, 11);
        let w = filled(k * n, |i| ((i * 31 % 29) as f32 - 14.0) * 0.173);
        let q = QuantizedMatrix::from_row_major(&w, k, n);
        let back = q.dequantize();
        for j in 0..n {
            let bound = q.scales()[j] * 0.5 * (1.0 + 1e-5);
            for p in 0..k {
                let err = (w[p * n + j] - back[p * n + j]).abs();
                assert!(err <= bound, "[{p},{j}] err {err} > scale/2 {bound}");
            }
        }
    }

    #[test]
    fn scales_are_max_abs_over_127() {
        let (k, n) = (8, 3);
        let w = filled(k * n, |i| (i as f32 - 10.0) * 0.5);
        let q = QuantizedMatrix::from_row_major(&w, k, n);
        for j in 0..n {
            let max_abs = (0..k).map(|p| w[p * n + j].abs()).fold(0.0f32, f32::max);
            assert_eq!(q.scales()[j], max_abs / 127.0, "channel {j}");
        }
    }

    #[test]
    fn zero_rows_code_exactly() {
        let (k, n) = (5, 2);
        let mut w = vec![0.0f32; k * n];
        // channel 1 non-zero, channel 0 all zeros
        for p in 0..k {
            w[p * n + 1] = p as f32;
        }
        let q = QuantizedMatrix::from_row_major(&w, k, n);
        assert_eq!(q.scales()[0], 1.0);
        let back = q.dequantize();
        for p in 0..k {
            assert_eq!(back[p * n], 0.0);
        }
    }

    #[test]
    fn extremes_hit_plus_minus_127() {
        let mut q = [0i8; 3];
        let s = quantize_row_i8(&[-2.0, 0.0, 2.0], &mut q);
        assert_eq!(s, 2.0 / 127.0);
        assert_eq!(q, [-127, 0, 127]);
    }

    #[test]
    fn bytes_are_about_quarter_of_f32() {
        let (k, n) = (128, 64);
        let w = filled(k * n, |i| (i as f32 * 0.7).sin());
        let q = QuantizedMatrix::from_row_major(&w, k, n);
        assert_eq!(q.bytes(), k * n + n * 4);
        let f32_bytes = k * n * 4;
        let ratio = f32_bytes as f64 / q.bytes() as f64;
        assert!(ratio > 3.8, "ratio {ratio}");
    }

    #[test]
    fn quantize_rows_matches_per_row() {
        let (rows, k) = (4, 9);
        let a = filled(rows * k, |i| ((i * 13 % 7) as f32 - 3.0) * 0.21);
        let mut q = vec![0i8; rows * k];
        let mut scales = vec![0.0f32; rows];
        quantize_rows_i8(&a, rows, k, &mut q, &mut scales);
        for i in 0..rows {
            let mut qr = vec![0i8; k];
            let s = quantize_row_i8(&a[i * k..(i + 1) * k], &mut qr);
            assert_eq!(s, scales[i]);
            assert_eq!(qr, q[i * k..(i + 1) * k]);
        }
    }

    #[test]
    #[should_panic(expected = "weight is not k × n")]
    fn rejects_bad_shape() {
        let _ = QuantizedMatrix::from_row_major(&[1.0; 5], 2, 3);
    }
}
