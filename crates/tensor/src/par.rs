//! A minimal scoped-thread worker pool and the [`Parallelism`] configuration
//! that controls it.
//!
//! The build environment has no crates.io access (no `rayon`), so this module
//! hand-rolls the one parallel primitive the kernels need: split a mutable
//! output buffer into contiguous per-thread chunks of whole rows and fill
//! each chunk on its own [`std::thread::scope`] thread
//! ([`for_each_row_chunk`]).
//!
//! ## Determinism
//!
//! Every parallel kernel in this crate partitions its *output*: each output
//! row is computed start-to-finish by exactly one thread, with the same
//! arithmetic in the same order regardless of which thread runs it, and no
//! cross-thread reductions exist. Results are therefore bit-for-bit identical
//! across runs — and even across *different* thread counts — which keeps
//! seeded experiments reproducible on any machine.
//!
//! ## Configuration
//!
//! The effective worker count is a process-wide setting
//! ([`set_parallelism`]) because tensors are `Rc`-based (not `Send`):
//! parallelism lives entirely inside raw `f32` kernels, beneath the autograd
//! graph, so a single knob governs every op. `akg-core`'s `SystemConfig`
//! plumbs its `parallelism` field here when a system is built.
//!
//! ## Nested parallelism (the shards × threads rule)
//!
//! A serving layer that shards work across its *own* worker threads (the
//! sharded runtime in `akg-runtime`) nests two levels of parallelism: `S`
//! shard workers, each issuing kernel calls that would *each* resolve the
//! process-wide setting and spawn up to that many inner row-pool threads —
//! `S × effective_threads()` runnable threads on hardware that has only
//! `effective_threads()` cores. [`set_thread_cap`] is the per-thread brake:
//! a shard worker caps its own kernels at `max(1, effective/S)` so the
//! product `shards × inner-threads` never exceeds the machine, while
//! unrelated threads (training on the main thread, other shards) keep their
//! own caps. The cap is thread-local, composes with the global setting by
//! `min`, and never affects numerics (results are bit-identical at any
//! thread count).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads the raw kernels may use.
///
/// # Examples
///
/// ```
/// use akg_tensor::par::{set_parallelism, effective_threads, Parallelism};
///
/// set_parallelism(Parallelism::Sequential);
/// assert_eq!(effective_threads(), 1);
///
/// set_parallelism(Parallelism::Threads(3));
/// assert_eq!(effective_threads(), 3);
///
/// // `Auto` resolves to the machine's available parallelism (>= 1).
/// set_parallelism(Parallelism::Auto);
/// assert!(effective_threads() >= 1);
/// # set_parallelism(Parallelism::Auto); // leave the default behind
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded: kernels run inline on the calling thread.
    Sequential,
    /// Use [`std::thread::available_parallelism`] (the default).
    Auto,
    /// Use exactly this many threads (clamped to at least 1).
    Threads(usize),
}

/// Sentinel meaning "resolve via `available_parallelism` at call time".
const AUTO: usize = 0;

static THREADS: AtomicUsize = AtomicUsize::new(AUTO);

/// Sets the process-wide parallelism policy for all raw kernels.
pub fn set_parallelism(p: Parallelism) {
    let v = match p {
        Parallelism::Sequential => 1,
        Parallelism::Auto => AUTO,
        Parallelism::Threads(n) => n.max(1),
    };
    THREADS.store(v, Ordering::Relaxed);
}

thread_local! {
    /// Per-thread ceiling on kernel workers; `usize::MAX` = uncapped.
    static THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Caps the number of kernel worker threads **on the calling thread only**
/// (clamped to at least 1). The effective count becomes
/// `min(process-wide setting, cap)`; other threads are unaffected.
///
/// This is how a sharding layer avoids oversubscription: with `S` shard
/// workers on a machine whose global setting resolves to `T` threads, each
/// worker sets its cap to `max(1, T / S)` so the nested product
/// `shards × inner-threads` stays ≤ `T` (see the module docs). Pass
/// `usize::MAX` to lift the cap.
///
/// # Examples
///
/// ```
/// use akg_tensor::par::{effective_threads, set_parallelism, set_thread_cap, Parallelism};
///
/// set_parallelism(Parallelism::Threads(8));
/// set_thread_cap(2);
/// assert_eq!(effective_threads(), 2); // capped on this thread
/// set_thread_cap(usize::MAX);
/// assert_eq!(effective_threads(), 8); // cap lifted
/// # set_parallelism(Parallelism::Auto);
/// ```
pub fn set_thread_cap(cap: usize) {
    THREAD_CAP.with(|c| c.set(cap.max(1)));
}

/// The calling thread's kernel-worker cap (`usize::MAX` when uncapped). See
/// [`set_thread_cap`].
pub fn thread_cap() -> usize {
    THREAD_CAP.with(Cell::get)
}

/// The number of worker threads kernels will currently use on the calling
/// thread (>= 1): the process-wide policy, clamped by the thread-local
/// [`set_thread_cap`].
///
/// The `Auto` resolution is detected once and cached: every raw kernel call
/// consults this function, and `std::thread::available_parallelism` probes
/// the OS (and allocates) on each call — which used to put one allocation
/// under *every* chunked kernel invocation, breaking the inference data
/// plane's zero-steady-state-allocation property under the default policy.
pub fn effective_threads() -> usize {
    let global = match THREADS.load(Ordering::Relaxed) {
        AUTO => {
            static DETECTED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            *DETECTED
                .get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        }
        n => n,
    };
    global.min(THREAD_CAP.with(Cell::get)).max(1)
}

/// Splits `out` into contiguous chunks of whole rows (`row_len` elements
/// each) and calls `fill(first_row, chunk)` for every chunk, using up to
/// [`effective_threads`] scoped threads. `fill` must compute each row of its
/// chunk independently of the others; chunks never overlap, so no
/// synchronization is needed and results are deterministic.
///
/// Falls back to a single inline call when one thread is configured, the
/// work is too small to amortize thread spawns (`min_rows_per_thread`), or
/// there are fewer rows than threads.
///
/// # Panics
///
/// Panics if `out.len()` is not `rows * row_len`.
///
/// # Examples
///
/// ```
/// use akg_tensor::par::for_each_row_chunk;
///
/// let mut out = vec![0.0f32; 6];
/// // rows of length 2; row r becomes [r, r]
/// for_each_row_chunk(&mut out, 3, 2, 0, |first_row, chunk| {
///     for (i, row) in chunk.chunks_mut(2).enumerate() {
///         row.fill((first_row + i) as f32);
///     }
/// });
/// assert_eq!(out, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
/// ```
pub fn for_each_row_chunk<F>(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    min_rows_per_thread: usize,
    fill: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "for_each_row_chunk: buffer is not rows * row_len");
    let threads =
        effective_threads().min(rows.checked_div(min_rows_per_thread).unwrap_or(rows)).max(1);
    if threads == 1 || rows == 0 {
        fill(0, out);
        return;
    }
    // Ceil-divide rows over threads so chunk boundaries are deterministic.
    let rows_per_chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut first_row = 0;
        let mut handles = Vec::new();
        while first_row < rows {
            let take = rows_per_chunk.min(rows - first_row);
            let (chunk, tail) = rest.split_at_mut(take * row_len);
            rest = tail;
            let row0 = first_row;
            first_row += take;
            if first_row < rows {
                handles.push(scope.spawn({
                    let fill = &fill;
                    move || fill(row0, chunk)
                }));
            } else {
                // Run the last chunk on the calling thread.
                fill(row0, chunk);
            }
        }
        for h in handles {
            h.join().expect("kernel worker thread panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide parallelism setting (or
    /// assert values derived from it) — the in-crate analogue of the
    /// `BACKEND_LOCK` discipline.
    fn par_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn sequential_runs_inline() {
        let _guard = par_lock();
        set_parallelism(Parallelism::Sequential);
        let mut out = vec![0.0f32; 8];
        for_each_row_chunk(&mut out, 4, 2, 0, |first, chunk| {
            for (i, row) in chunk.chunks_mut(2).enumerate() {
                row.fill((first + i) as f32 + 1.0);
            }
        });
        assert_eq!(out, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let _guard = par_lock();
        set_parallelism(Parallelism::Threads(16));
        let mut out = vec![0.0f32; 3];
        for_each_row_chunk(&mut out, 3, 1, 0, |first, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (first + i) as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let run = |threads: usize| {
            set_parallelism(Parallelism::Threads(threads));
            let mut out = vec![0.0f32; 64 * 3];
            for_each_row_chunk(&mut out, 64, 3, 0, |first, chunk| {
                for (i, row) in chunk.chunks_mut(3).enumerate() {
                    let r = (first + i) as f32;
                    row.copy_from_slice(&[r, r * 0.5, r * r]);
                }
            });
            out
        };
        let one = run(1);
        for t in [2, 3, 5, 8] {
            assert_eq!(one, run(t), "thread count {t} changed the result");
        }
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn min_rows_per_thread_throttles() {
        let _guard = par_lock();
        set_parallelism(Parallelism::Threads(8));
        // 4 rows with min 4 rows/thread -> 1 thread; just verify correctness.
        let mut out = vec![0.0f32; 4];
        for_each_row_chunk(&mut out, 4, 1, 4, |first, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (first + i) as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    #[should_panic(expected = "rows * row_len")]
    fn rejects_bad_buffer_size() {
        for_each_row_chunk(&mut [0.0f32; 5], 2, 3, 0, |_, _| {});
    }

    #[test]
    fn thread_cap_clamps_the_global_setting() {
        let _guard = par_lock();
        set_parallelism(Parallelism::Threads(8));
        assert_eq!(effective_threads(), 8);
        set_thread_cap(2);
        assert_eq!(effective_threads(), 2);
        // a cap above the global setting does not raise it
        set_thread_cap(64);
        assert_eq!(effective_threads(), 8);
        // zero clamps to one, never zero
        set_thread_cap(0);
        assert_eq!(thread_cap(), 1);
        assert_eq!(effective_threads(), 1);
        set_thread_cap(usize::MAX);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn thread_cap_is_thread_local() {
        let _guard = par_lock();
        set_parallelism(Parallelism::Threads(6));
        set_thread_cap(usize::MAX);
        // a capped spawned thread (a "shard worker") must not affect this one
        let inner = std::thread::spawn(|| {
            set_thread_cap(1);
            effective_threads()
        })
        .join()
        .expect("worker");
        assert_eq!(inner, 1);
        assert_eq!(effective_threads(), 6, "worker's cap leaked to the spawning thread");
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn capped_thread_still_computes_correctly() {
        let _guard = par_lock();
        set_parallelism(Parallelism::Threads(8));
        let out = std::thread::spawn(|| {
            set_thread_cap(2);
            let mut out = vec![0.0f32; 64 * 3];
            for_each_row_chunk(&mut out, 64, 3, 0, |first, chunk| {
                for (i, row) in chunk.chunks_mut(3).enumerate() {
                    let r = (first + i) as f32;
                    row.copy_from_slice(&[r, r * 0.5, r * r]);
                }
            });
            out
        })
        .join()
        .expect("worker");
        set_parallelism(Parallelism::Sequential);
        let mut expect = vec![0.0f32; 64 * 3];
        for_each_row_chunk(&mut expect, 64, 3, 0, |first, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                let r = (first + i) as f32;
                row.copy_from_slice(&[r, r * 0.5, r * r]);
            }
        });
        assert_eq!(out, expect, "thread cap changed results");
        set_parallelism(Parallelism::Auto);
    }
}
