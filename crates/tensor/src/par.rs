//! A minimal scoped-thread worker pool and the [`Parallelism`] configuration
//! that controls it.
//!
//! The build environment has no crates.io access (no `rayon`), so this module
//! hand-rolls the one parallel primitive the kernels need: split a mutable
//! output buffer into contiguous per-thread chunks of whole rows and fill
//! each chunk on its own [`std::thread::scope`] thread
//! ([`for_each_row_chunk`]).
//!
//! ## Determinism
//!
//! Every parallel kernel in this crate partitions its *output*: each output
//! row is computed start-to-finish by exactly one thread, with the same
//! arithmetic in the same order regardless of which thread runs it, and no
//! cross-thread reductions exist. Results are therefore bit-for-bit identical
//! across runs — and even across *different* thread counts — which keeps
//! seeded experiments reproducible on any machine.
//!
//! ## Configuration
//!
//! The effective worker count is a process-wide setting
//! ([`set_parallelism`]) because tensors are `Rc`-based (not `Send`):
//! parallelism lives entirely inside raw `f32` kernels, beneath the autograd
//! graph, so a single knob governs every op. `akg-core`'s `SystemConfig`
//! plumbs its `parallelism` field here when a system is built.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads the raw kernels may use.
///
/// # Examples
///
/// ```
/// use akg_tensor::par::{set_parallelism, effective_threads, Parallelism};
///
/// set_parallelism(Parallelism::Sequential);
/// assert_eq!(effective_threads(), 1);
///
/// set_parallelism(Parallelism::Threads(3));
/// assert_eq!(effective_threads(), 3);
///
/// // `Auto` resolves to the machine's available parallelism (>= 1).
/// set_parallelism(Parallelism::Auto);
/// assert!(effective_threads() >= 1);
/// # set_parallelism(Parallelism::Auto); // leave the default behind
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded: kernels run inline on the calling thread.
    Sequential,
    /// Use [`std::thread::available_parallelism`] (the default).
    Auto,
    /// Use exactly this many threads (clamped to at least 1).
    Threads(usize),
}

/// Sentinel meaning "resolve via `available_parallelism` at call time".
const AUTO: usize = 0;

static THREADS: AtomicUsize = AtomicUsize::new(AUTO);

/// Sets the process-wide parallelism policy for all raw kernels.
pub fn set_parallelism(p: Parallelism) {
    let v = match p {
        Parallelism::Sequential => 1,
        Parallelism::Auto => AUTO,
        Parallelism::Threads(n) => n.max(1),
    };
    THREADS.store(v, Ordering::Relaxed);
}

/// The number of worker threads kernels will currently use (>= 1).
///
/// The `Auto` resolution is detected once and cached: every raw kernel call
/// consults this function, and `std::thread::available_parallelism` probes
/// the OS (and allocates) on each call — which used to put one allocation
/// under *every* chunked kernel invocation, breaking the inference data
/// plane's zero-steady-state-allocation property under the default policy.
pub fn effective_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        AUTO => {
            static DETECTED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            *DETECTED
                .get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        }
        n => n,
    }
}

/// Splits `out` into contiguous chunks of whole rows (`row_len` elements
/// each) and calls `fill(first_row, chunk)` for every chunk, using up to
/// [`effective_threads`] scoped threads. `fill` must compute each row of its
/// chunk independently of the others; chunks never overlap, so no
/// synchronization is needed and results are deterministic.
///
/// Falls back to a single inline call when one thread is configured, the
/// work is too small to amortize thread spawns (`min_rows_per_thread`), or
/// there are fewer rows than threads.
///
/// # Panics
///
/// Panics if `out.len()` is not `rows * row_len`.
///
/// # Examples
///
/// ```
/// use akg_tensor::par::for_each_row_chunk;
///
/// let mut out = vec![0.0f32; 6];
/// // rows of length 2; row r becomes [r, r]
/// for_each_row_chunk(&mut out, 3, 2, 0, |first_row, chunk| {
///     for (i, row) in chunk.chunks_mut(2).enumerate() {
///         row.fill((first_row + i) as f32);
///     }
/// });
/// assert_eq!(out, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
/// ```
pub fn for_each_row_chunk<F>(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    min_rows_per_thread: usize,
    fill: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "for_each_row_chunk: buffer is not rows * row_len");
    let threads =
        effective_threads().min(rows.checked_div(min_rows_per_thread).unwrap_or(rows)).max(1);
    if threads == 1 || rows == 0 {
        fill(0, out);
        return;
    }
    // Ceil-divide rows over threads so chunk boundaries are deterministic.
    let rows_per_chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut first_row = 0;
        let mut handles = Vec::new();
        while first_row < rows {
            let take = rows_per_chunk.min(rows - first_row);
            let (chunk, tail) = rest.split_at_mut(take * row_len);
            rest = tail;
            let row0 = first_row;
            first_row += take;
            if first_row < rows {
                handles.push(scope.spawn({
                    let fill = &fill;
                    move || fill(row0, chunk)
                }));
            } else {
                // Run the last chunk on the calling thread.
                fill(row0, chunk);
            }
        }
        for h in handles {
            h.join().expect("kernel worker thread panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_runs_inline() {
        set_parallelism(Parallelism::Sequential);
        let mut out = vec![0.0f32; 8];
        for_each_row_chunk(&mut out, 4, 2, 0, |first, chunk| {
            for (i, row) in chunk.chunks_mut(2).enumerate() {
                row.fill((first + i) as f32 + 1.0);
            }
        });
        assert_eq!(out, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        set_parallelism(Parallelism::Threads(16));
        let mut out = vec![0.0f32; 3];
        for_each_row_chunk(&mut out, 3, 1, 0, |first, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (first + i) as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let run = |threads: usize| {
            set_parallelism(Parallelism::Threads(threads));
            let mut out = vec![0.0f32; 64 * 3];
            for_each_row_chunk(&mut out, 64, 3, 0, |first, chunk| {
                for (i, row) in chunk.chunks_mut(3).enumerate() {
                    let r = (first + i) as f32;
                    row.copy_from_slice(&[r, r * 0.5, r * r]);
                }
            });
            out
        };
        let one = run(1);
        for t in [2, 3, 5, 8] {
            assert_eq!(one, run(t), "thread count {t} changed the result");
        }
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn min_rows_per_thread_throttles() {
        set_parallelism(Parallelism::Threads(8));
        // 4 rows with min 4 rows/thread -> 1 thread; just verify correctness.
        let mut out = vec![0.0f32; 4];
        for_each_row_chunk(&mut out, 4, 1, 4, |first, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (first + i) as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    #[should_panic(expected = "rows * row_len")]
    fn rejects_bad_buffer_size() {
        for_each_row_chunk(&mut [0.0f32; 5], 2, 3, 0, |_, _| {});
    }
}
