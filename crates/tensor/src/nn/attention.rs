//! Multi-head self-attention and the transformer encoder used as the paper's
//! short-term temporal model `T : R^{T×D} → R^D` (inner dimensionality 128,
//! 8 heads in the paper's configuration).

use crate::nn::norm::LayerNorm;
use crate::nn::{FeedForward, Linear, Module};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Multi-head scaled-dot-product self-attention over a `[T, D]` sequence.
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    inner_dim: usize,
    causal: bool,
}

impl MultiHeadAttention {
    /// Creates an attention block mapping `model_dim -> inner_dim ->
    /// model_dim` with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `inner_dim` is not divisible by `heads`.
    pub fn new(model_dim: usize, inner_dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(inner_dim % heads, 0, "inner_dim {inner_dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(model_dim, inner_dim, rng),
            wk: Linear::new(model_dim, inner_dim, rng),
            wv: Linear::new(model_dim, inner_dim, rng),
            wo: Linear::new(inner_dim, model_dim, rng),
            heads,
            inner_dim,
            causal: true,
        }
    }

    /// Enables or disables the causal (lower-triangular) mask. The temporal
    /// model is causal by default: frame `t` may not attend to the future.
    pub fn set_causal(&mut self, causal: bool) {
        self.causal = causal;
    }

    /// Applies self-attention to a `[T, D]` sequence.
    ///
    /// Per head, `Q·Kᵀ` runs through the transposed-input fast path
    /// ([`Tensor::matmul_t`], no `Kᵀ` materialized) and the
    /// scale-mask-normalize sequence is the single fused
    /// [`Tensor::softmax_rows_scaled_masked`] node — together four fewer
    /// graph nodes and four fewer `[T, T]`/`[T, d_k]` allocations per head
    /// per forward than the composed formulation.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "MultiHeadAttention: expected [T, D] input");
        let t = s[0];
        let dk = self.inner_dim / self.heads;
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (dk as f32).sqrt();
        let mask = if self.causal { Some(causal_mask(t)) } else { None };
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dk, (h + 1) * dk);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            let attn = qh.matmul_t(&kh).softmax_rows_scaled_masked(scale, mask.as_deref());
            head_outputs.push(attn.matmul(&vh));
        }
        let joined = Tensor::concat_cols(&head_outputs);
        self.wo.forward(&joined)
    }
}

/// Additive causal mask: 0 on/below the diagonal, a large negative value
/// above it.
fn causal_mask(t: usize) -> Vec<f32> {
    let mut mask = vec![0.0f32; t * t];
    for r in 0..t {
        for c in (r + 1)..t {
            mask[r * t + c] = -1e9;
        }
    }
    mask
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }
}

/// One pre-norm transformer encoder layer: `x + MHA(LN(x))`, then
/// `x + FFN(LN(x))`.
#[derive(Debug)]
pub struct TransformerEncoderLayer {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl TransformerEncoderLayer {
    /// Creates one encoder layer.
    pub fn new(model_dim: usize, inner_dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadAttention::new(model_dim, inner_dim, heads, rng),
            ffn: FeedForward::new(model_dim, 2 * inner_dim, rng),
            ln1: LayerNorm::new(model_dim),
            ln2: LayerNorm::new(model_dim),
        }
    }

    /// Applies the layer to `[T, D]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let h = x.add(&self.attn.forward(&self.ln1.forward(x)));
        h.add(&self.ffn.forward(&self.ln2.forward(&h)))
    }

    /// Access to the attention block (e.g. to toggle causality).
    pub fn attention_mut(&mut self) -> &mut MultiHeadAttention {
        &mut self.attn
    }
}

impl Module for TransformerEncoderLayer {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.attn.params();
        p.extend(self.ffn.params());
        p.extend(self.ln1.params());
        p.extend(self.ln2.params());
        p
    }
}

/// A stack of encoder layers; [`TransformerEncoder::forward_last`] returns
/// only the final time step's embedding, matching the paper's
/// `f'_t = T(F_t)` which keeps the output aligned with the last input frame.
#[derive(Debug)]
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
    model_dim: usize,
}

impl TransformerEncoder {
    /// Creates `n_layers` encoder layers.
    pub fn new(
        model_dim: usize,
        inner_dim: usize,
        heads: usize,
        n_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let layers = (0..n_layers)
            .map(|_| TransformerEncoderLayer::new(model_dim, inner_dim, heads, rng))
            .collect();
        TransformerEncoder { layers, model_dim }
    }

    /// Full sequence output `[T, D]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// The last time step's output as a 1-D `[D]` vector.
    pub fn forward_last(&self, x: &Tensor) -> Tensor {
        let t = x.shape()[0];
        self.forward(x).slice_rows(t - 1, t).flatten()
    }

    /// Model dimensionality.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Module::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn attention_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(8, 16, 4, &mut rng);
        let x = Tensor::zeros(&[5, 8]);
        assert_eq!(mha.forward(&x).shape(), vec![5, 8]);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // row * cols + col index arithmetic
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m[0 * 3 + 0], 0.0);
        assert_eq!(m[0 * 3 + 2], -1e9);
        assert_eq!(m[2 * 3 + 0], 0.0);
    }

    #[test]
    fn causal_attention_first_step_ignores_rest() {
        // With a causal mask, changing later frames must not change step 0.
        let mut rng = StdRng::seed_from_u64(1);
        let mha = MultiHeadAttention::new(4, 8, 2, &mut rng);
        let a = Tensor::from_vec(vec![1.0; 8], &[2, 4]);
        let mut b_data = vec![1.0; 8];
        for v in b_data[4..].iter_mut() {
            *v = 9.0;
        }
        let b = Tensor::from_vec(b_data, &[2, 4]);
        let ya = mha.forward(&a).to_vec();
        let yb = mha.forward(&b).to_vec();
        for c in 0..4 {
            assert!((ya[c] - yb[c]).abs() < 1e-5, "step 0 leaked future info");
        }
    }

    #[test]
    fn encoder_last_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TransformerEncoder::new(8, 16, 4, 2, &mut rng);
        let x = Tensor::zeros(&[6, 8]);
        let last = enc.forward_last(&x);
        assert_eq!(last.shape(), vec![8]);
    }

    #[test]
    fn encoder_grads_flow_to_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = TransformerEncoder::new(4, 8, 2, 1, &mut rng);
        let x = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), &[3, 4])
            .requires_grad(true);
        enc.forward_last(&x).sum_all().backward();
        for p in enc.params() {
            assert!(p.grad().is_some(), "param missing grad");
        }
        assert!(x.grad().is_some());
    }

    #[test]
    fn encoder_param_count_scales_with_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let e1 = TransformerEncoder::new(8, 16, 4, 1, &mut rng);
        let e2 = TransformerEncoder::new(8, 16, 4, 2, &mut rng);
        assert_eq!(e2.param_count(), 2 * e1.param_count());
    }
}
