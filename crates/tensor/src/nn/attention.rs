//! Multi-head self-attention and the transformer encoder used as the paper's
//! short-term temporal model `T : R^{T×D} → R^D` (inner dimensionality 128,
//! 8 heads in the paper's configuration).

use crate::nn::norm::LayerNorm;
use crate::nn::{FeedForward, Linear, Module};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Multi-head scaled-dot-product self-attention over a `[T, D]` sequence.
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    inner_dim: usize,
    causal: bool,
}

impl MultiHeadAttention {
    /// Creates an attention block mapping `model_dim -> inner_dim ->
    /// model_dim` with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `inner_dim` is not divisible by `heads`.
    pub fn new(model_dim: usize, inner_dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(inner_dim % heads, 0, "inner_dim {inner_dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(model_dim, inner_dim, rng),
            wk: Linear::new(model_dim, inner_dim, rng),
            wv: Linear::new(model_dim, inner_dim, rng),
            wo: Linear::new(inner_dim, model_dim, rng),
            heads,
            inner_dim,
            causal: true,
        }
    }

    /// Enables or disables the causal (lower-triangular) mask. The temporal
    /// model is causal by default: frame `t` may not attend to the future.
    pub fn set_causal(&mut self, causal: bool) {
        self.causal = causal;
    }

    /// Applies self-attention to a `[T, D]` sequence.
    ///
    /// Per head, `Q·Kᵀ` runs through the transposed-input fast path
    /// ([`Tensor::matmul_t`], no `Kᵀ` materialized) and the
    /// scale-mask-normalize sequence is the single fused
    /// [`Tensor::softmax_rows_scaled_masked`] node — together four fewer
    /// graph nodes and four fewer `[T, T]`/`[T, d_k]` allocations per head
    /// per forward than the composed formulation.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "MultiHeadAttention: expected [T, D] input");
        let t = s[0];
        let dk = self.inner_dim / self.heads;
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (dk as f32).sqrt();
        let mask = if self.causal { Some(causal_mask(t)) } else { None };
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dk, (h + 1) * dk);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            let attn = qh.matmul_t(&kh).softmax_rows_scaled_masked(scale, mask.as_deref());
            head_outputs.push(attn.matmul(&vh));
        }
        let joined = Tensor::concat_cols(&head_outputs);
        self.wo.forward(&joined)
    }

    /// Inference-plane forward: self-attention over the raw `[t, d_model]`
    /// matrix `x` into `out`, using only workspace-leased buffers — no graph
    /// nodes, no allocation. Replicates [`MultiHeadAttention::forward`]
    /// op-for-op (same dispatching `Q·Kᵀ` kernel, same fused softmax, same
    /// per-head column slicing and concatenation), so it is bit-identical
    /// per backend.
    ///
    /// # Panics
    ///
    /// Panics if `x`/`out` lengths are not `t × d_model`.
    pub fn forward_infer(
        &self,
        x: &[f32],
        t: usize,
        out: &mut [f32],
        ws: &mut crate::workspace::Workspace,
    ) {
        use crate::inference as inf;
        let d_model = self.wq.in_features();
        assert_eq!(x.len(), t * d_model, "MultiHeadAttention::forward_infer: x is not t × d");
        assert_eq!(out.len(), t * d_model, "MultiHeadAttention::forward_infer: out is not t × d");
        let inner = self.inner_dim;
        let dk = inner / self.heads;
        let mut q = ws.lease(t * inner);
        let mut k = ws.lease(t * inner);
        let mut v = ws.lease(t * inner);
        self.wq.forward_infer(x, t, &mut q, ws);
        self.wk.forward_infer(x, t, &mut k, ws);
        self.wv.forward_infer(x, t, &mut v, ws);
        let scale = 1.0 / (dk as f32).sqrt();
        let mask = if self.causal {
            let mut m = ws.lease(t * t); // zeroed: on/below diagonal stays 0
            for r in 0..t {
                m[r * t + r + 1..(r + 1) * t].fill(-1e9);
            }
            Some(m)
        } else {
            None
        };
        let mut qh = ws.lease(t * dk);
        let mut kh = ws.lease(t * dk);
        let mut vh = ws.lease(t * dk);
        let mut attn = ws.lease(t * t);
        let mut head = ws.lease(t * dk);
        let mut joined = ws.lease(t * inner);
        for h in 0..self.heads {
            let lo = h * dk;
            // Column slices of q/k/v, exactly `slice_cols(lo, lo + dk)`.
            for r in 0..t {
                qh[r * dk..(r + 1) * dk].copy_from_slice(&q[r * inner + lo..r * inner + lo + dk]);
                kh[r * dk..(r + 1) * dk].copy_from_slice(&k[r * inner + lo..r * inner + lo + dk]);
                vh[r * dk..(r + 1) * dk].copy_from_slice(&v[r * inner + lo..r * inner + lo + dk]);
            }
            inf::matmul_t_into(&mut attn, &qh, &kh, t, dk, t);
            inf::softmax_rows_scaled_masked_inplace(&mut attn, t, t, scale, mask.as_deref());
            inf::matmul_into(&mut head, &attn, &vh, t, t, dk);
            // concat_cols: head h occupies columns lo..lo+dk of `joined`.
            for r in 0..t {
                joined[r * inner + lo..r * inner + lo + dk]
                    .copy_from_slice(&head[r * dk..(r + 1) * dk]);
            }
        }
        self.wo.forward_infer(&joined, t, out, ws);
        ws.release(q);
        ws.release(k);
        ws.release(v);
        if let Some(m) = mask {
            ws.release(m);
        }
        ws.release(qh);
        ws.release(kh);
        ws.release(vh);
        ws.release(attn);
        ws.release(head);
        ws.release(joined);
    }

    /// Visits the four projection layers (shared), in a stable order.
    pub fn visit_linears(&self, f: &mut dyn FnMut(&Linear)) {
        f(&self.wq);
        f(&self.wk);
        f(&self.wv);
        f(&self.wo);
    }

    /// Visits the four projection layers (mutable), in a stable order —
    /// how the int8 plane reaches every weight matrix for
    /// (re-)quantization.
    pub fn visit_linears_mut(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

/// Additive causal mask: 0 on/below the diagonal, a large negative value
/// above it.
fn causal_mask(t: usize) -> Vec<f32> {
    let mut mask = vec![0.0f32; t * t];
    for r in 0..t {
        for c in (r + 1)..t {
            mask[r * t + c] = -1e9;
        }
    }
    mask
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }
}

/// One pre-norm transformer encoder layer: `x + MHA(LN(x))`, then
/// `x + FFN(LN(x))`.
#[derive(Debug)]
pub struct TransformerEncoderLayer {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl TransformerEncoderLayer {
    /// Creates one encoder layer.
    pub fn new(model_dim: usize, inner_dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadAttention::new(model_dim, inner_dim, heads, rng),
            ffn: FeedForward::new(model_dim, 2 * inner_dim, rng),
            ln1: LayerNorm::new(model_dim),
            ln2: LayerNorm::new(model_dim),
        }
    }

    /// Applies the layer to `[T, D]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let h = x.add(&self.attn.forward(&self.ln1.forward(x)));
        h.add(&self.ffn.forward(&self.ln2.forward(&h)))
    }

    /// Inference-plane forward: transforms the raw `[t, d]` sequence in
    /// place through the same pre-norm residual structure as
    /// [`TransformerEncoderLayer::forward`], bit-identical per backend.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `t`.
    pub fn forward_infer(&self, x: &mut [f32], t: usize, ws: &mut crate::workspace::Workspace) {
        let mut normed = ws.lease(x.len());
        let mut sub_out = ws.lease(x.len());
        // x += MHA(LN1(x))
        normed.copy_from_slice(x);
        self.ln1.forward_infer(&mut normed);
        self.attn.forward_infer(&normed, t, &mut sub_out, ws);
        crate::inference::add_assign(x, &sub_out);
        // x += FFN(LN2(x))
        normed.copy_from_slice(x);
        self.ln2.forward_infer(&mut normed);
        self.ffn.forward_infer(&normed, t, &mut sub_out, ws);
        crate::inference::add_assign(x, &sub_out);
        ws.release(normed);
        ws.release(sub_out);
    }

    /// Access to the attention block (e.g. to toggle causality).
    pub fn attention_mut(&mut self) -> &mut MultiHeadAttention {
        &mut self.attn
    }

    /// Visits every linear layer in the block (attention projections, then
    /// the feed-forward pair), in a stable order.
    pub fn visit_linears(&self, f: &mut dyn FnMut(&Linear)) {
        self.attn.visit_linears(f);
        self.ffn.visit_linears(f);
    }

    /// Mutable form of [`TransformerEncoderLayer::visit_linears`].
    pub fn visit_linears_mut(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.attn.visit_linears_mut(f);
        self.ffn.visit_linears_mut(f);
    }
}

impl Module for TransformerEncoderLayer {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.attn.params();
        p.extend(self.ffn.params());
        p.extend(self.ln1.params());
        p.extend(self.ln2.params());
        p
    }
}

/// A stack of encoder layers; [`TransformerEncoder::forward_last`] returns
/// only the final time step's embedding, matching the paper's
/// `f'_t = T(F_t)` which keeps the output aligned with the last input frame.
#[derive(Debug)]
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
    model_dim: usize,
}

impl TransformerEncoder {
    /// Creates `n_layers` encoder layers.
    pub fn new(
        model_dim: usize,
        inner_dim: usize,
        heads: usize,
        n_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let layers = (0..n_layers)
            .map(|_| TransformerEncoderLayer::new(model_dim, inner_dim, heads, rng))
            .collect();
        TransformerEncoder { layers, model_dim }
    }

    /// Full sequence output `[T, D]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// The last time step's output as a 1-D `[D]` vector.
    pub fn forward_last(&self, x: &Tensor) -> Tensor {
        let t = x.shape()[0];
        self.forward(x).slice_rows(t - 1, t).flatten()
    }

    /// Inference-plane form of [`TransformerEncoder::forward_last`]: runs
    /// the layer stack over the raw `[t, model_dim]` sequence in `seq` (in
    /// place) and copies the final time step into `out`. Bit-identical per
    /// backend to the autograd path.
    ///
    /// # Panics
    ///
    /// Panics if `seq.len() != t * model_dim`, `out.len() != model_dim`, or
    /// `t == 0`.
    pub fn forward_last_infer(
        &self,
        seq: &mut [f32],
        t: usize,
        out: &mut [f32],
        ws: &mut crate::workspace::Workspace,
    ) {
        assert!(t > 0, "TransformerEncoder::forward_last_infer: empty sequence");
        assert_eq!(
            seq.len(),
            t * self.model_dim,
            "TransformerEncoder::forward_last_infer: seq is not t × model_dim"
        );
        assert_eq!(
            out.len(),
            self.model_dim,
            "TransformerEncoder::forward_last_infer: out is not model_dim"
        );
        for layer in &self.layers {
            layer.forward_infer(seq, t, ws);
        }
        out.copy_from_slice(&seq[(t - 1) * self.model_dim..t * self.model_dim]);
    }

    /// Model dimensionality.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Visits every linear layer in the stack, in a stable order.
    pub fn visit_linears(&self, f: &mut dyn FnMut(&Linear)) {
        for layer in &self.layers {
            layer.visit_linears(f);
        }
    }

    /// Mutable form of [`TransformerEncoder::visit_linears`].
    pub fn visit_linears_mut(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for layer in &mut self.layers {
            layer.visit_linears_mut(f);
        }
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Module::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn attention_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(8, 16, 4, &mut rng);
        let x = Tensor::zeros(&[5, 8]);
        assert_eq!(mha.forward(&x).shape(), vec![5, 8]);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // row * cols + col index arithmetic
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m[0 * 3 + 0], 0.0);
        assert_eq!(m[0 * 3 + 2], -1e9);
        assert_eq!(m[2 * 3 + 0], 0.0);
    }

    #[test]
    fn causal_attention_first_step_ignores_rest() {
        // With a causal mask, changing later frames must not change step 0.
        let mut rng = StdRng::seed_from_u64(1);
        let mha = MultiHeadAttention::new(4, 8, 2, &mut rng);
        let a = Tensor::from_vec(vec![1.0; 8], &[2, 4]);
        let mut b_data = vec![1.0; 8];
        for v in b_data[4..].iter_mut() {
            *v = 9.0;
        }
        let b = Tensor::from_vec(b_data, &[2, 4]);
        let ya = mha.forward(&a).to_vec();
        let yb = mha.forward(&b).to_vec();
        for c in 0..4 {
            assert!((ya[c] - yb[c]).abs() < 1e-5, "step 0 leaked future info");
        }
    }

    #[test]
    fn encoder_last_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TransformerEncoder::new(8, 16, 4, 2, &mut rng);
        let x = Tensor::zeros(&[6, 8]);
        let last = enc.forward_last(&x);
        assert_eq!(last.shape(), vec![8]);
    }

    #[test]
    fn encoder_grads_flow_to_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = TransformerEncoder::new(4, 8, 2, 1, &mut rng);
        let x = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), &[3, 4])
            .requires_grad(true);
        enc.forward_last(&x).sum_all().backward();
        for p in enc.params() {
            assert!(p.grad().is_some(), "param missing grad");
        }
        assert!(x.grad().is_some());
    }

    #[test]
    fn encoder_infer_matches_autograd_bitwise() {
        let _guard = crate::backend::test_lock();
        let mut rng = StdRng::seed_from_u64(5);
        let (t, d) = (5, 8);
        let enc = TransformerEncoder::new(d, 16, 4, 2, &mut rng);
        let data: Vec<f32> = (0..t * d).map(|i| ((i * 13 % 23) as f32 - 11.0) * 0.07).collect();
        let reference = enc.forward_last(&Tensor::from_vec(data.clone(), &[t, d])).to_vec();
        let mut ws = crate::workspace::Workspace::new();
        let mut seq = data;
        let mut out = vec![0.0f32; d];
        enc.forward_last_infer(&mut seq, t, &mut out, &mut ws);
        assert_eq!(out, reference, "inference encoder diverged from the autograd encoder");
        // Steady state: a second identical forward leases only pooled
        // buffers.
        let created = ws.stats().buffers_created;
        let mut seq2: Vec<f32> = (0..t * d).map(|i| (i as f32 * 0.11).sin()).collect();
        enc.forward_last_infer(&mut seq2, t, &mut out, &mut ws);
        assert_eq!(ws.stats().buffers_created, created, "second forward allocated new buffers");
    }

    #[test]
    fn attention_infer_matches_autograd_bitwise() {
        let _guard = crate::backend::test_lock();
        let mut rng = StdRng::seed_from_u64(6);
        let (t, d) = (4, 6);
        let mha = MultiHeadAttention::new(d, 8, 2, &mut rng);
        let data: Vec<f32> = (0..t * d).map(|i| ((i * 7 % 19) as f32 - 9.0) * 0.13).collect();
        let reference = mha.forward(&Tensor::from_vec(data.clone(), &[t, d])).to_vec();
        let mut ws = crate::workspace::Workspace::new();
        let mut out = vec![0.0f32; t * d];
        mha.forward_infer(&data, t, &mut out, &mut ws);
        assert_eq!(out, reference, "inference attention diverged from the autograd attention");
    }

    #[test]
    fn encoder_param_count_scales_with_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let e1 = TransformerEncoder::new(8, 16, 4, 1, &mut rng);
        let e2 = TransformerEncoder::new(8, 16, 4, 2, &mut rng);
        assert_eq!(e2.param_count(), 2 * e1.param_count());
    }
}
