//! Normalization layers: [`BatchNorm1d`] (the GNN layer's normalizer, Eq. 4)
//! and [`LayerNorm`] (the temporal transformer's normalizer).

use crate::nn::Module;
use crate::tensor::Tensor;

/// Batch normalization over the rows of an `[m, n]` input (per-feature
/// statistics across the m "batch" rows — for the hierarchical GNN the rows
/// are graph nodes).
///
/// In training mode batch statistics are used and running statistics are
/// updated; in eval mode (the deployed, frozen model during continuous
/// adaptation) the running statistics are used.
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    training: bool,
    track_running_stats: bool,
    features: usize,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features`-wide inputs.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Tensor::ones(&[features]).requires_grad(true),
            beta: Tensor::zeros(&[features]).requires_grad(true),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.1,
            eps: 1e-5,
            training: true,
            track_running_stats: true,
            features,
        }
    }

    /// When disabled, the layer always normalizes with the *current* batch
    /// statistics, even in eval mode (instance-style normalization). This is
    /// the right behaviour when each forward pass is one graph whose node
    /// rows are the "batch": using global running statistics at eval time
    /// would change the function the model was trained as.
    pub fn set_track_running_stats(&mut self, track: bool) {
        self.track_running_stats = track;
    }

    /// Applies normalization to `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D `[_, features]`, or if training-mode
    /// normalization is requested with a single row (undefined variance).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "BatchNorm1d: expected 2-D input");
        assert_eq!(s[1], self.features, "BatchNorm1d: feature mismatch");
        let m = s[0];
        if self.training || !self.track_running_stats {
            assert!(m > 1, "BatchNorm1d: training-mode batch must have >1 rows");
            let mean = x.mean_axis0();
            let centered = x.add_bias(&mean.neg());
            let var = centered.square().mean_axis0();
            // update running stats (detached)
            let mean_v = mean.to_vec();
            let var_v = var.to_vec();
            let unbias = m as f32 / (m as f32 - 1.0);
            for i in 0..self.features {
                self.running_mean[i] =
                    (1.0 - self.momentum) * self.running_mean[i] + self.momentum * mean_v[i];
                self.running_var[i] =
                    (1.0 - self.momentum) * self.running_var[i] + self.momentum * var_v[i] * unbias;
            }
            let inv_std = var.add_scalar(self.eps).sqrt().recip();
            centered.mul_bias(&inv_std).mul_bias(&self.gamma).add_bias(&self.beta)
        } else {
            let neg_mean =
                Tensor::from_vec(self.running_mean.iter().map(|v| -v).collect(), &[self.features]);
            let inv_std: Vec<f32> =
                self.running_var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
            let inv_std = Tensor::from_vec(inv_std, &[self.features]);
            x.add_bias(&neg_mean).mul_bias(&inv_std).mul_bias(&self.gamma).add_bias(&self.beta)
        }
    }

    /// Instance-statistics forward: normalizes with the *current* batch's
    /// statistics without touching the running averages, so it works through
    /// `&self` — the form a shared, immutable-after-build serving engine
    /// needs. Numerically identical to [`BatchNorm1d::forward`] whenever the
    /// running statistics are not being *used* (training mode, or
    /// `track_running_stats` disabled): both paths run the exact same tensor
    /// ops in the exact same order, only the (never-read) running-average
    /// update is skipped. Fully differentiable.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D `[_, features]` or has a single row
    /// (undefined variance).
    pub fn forward_instance(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "BatchNorm1d: expected 2-D input");
        assert_eq!(s[1], self.features, "BatchNorm1d: feature mismatch");
        assert!(s[0] > 1, "BatchNorm1d: training-mode batch must have >1 rows");
        let mean = x.mean_axis0();
        let centered = x.add_bias(&mean.neg());
        let var = centered.square().mean_axis0();
        let inv_std = var.add_scalar(self.eps).sqrt().recip();
        centered.mul_bias(&inv_std).mul_bias(&self.gamma).add_bias(&self.beta)
    }

    /// Grouped instance normalization for batched serving: the input is
    /// `groups` independent row-blocks of equal height stacked into one
    /// `[groups * rows, features]` matrix (e.g. one KG's node rows replicated
    /// per frame of a serving batch), and each block is normalized with *its
    /// own* batch statistics.
    ///
    /// Bit-identical per block to calling [`BatchNorm1d::forward_instance`]
    /// on that block alone: the mean, variance, and normalization are
    /// evaluated with the same operations in the same accumulation order
    /// (rows ascending, `sum * (1/m)`, `1 / sqrt(var + eps)`), so a batched
    /// forward produces exactly the per-stream numbers the unbatched path
    /// produces. The result is a detached tensor — this is an inference path
    /// and records no gradients.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D `[groups * rows, features]`, if the row
    /// count is not divisible by `groups`, or if any block has fewer than two
    /// rows.
    pub fn forward_instance_grouped(&self, x: &Tensor, groups: usize) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "BatchNorm1d: expected 2-D input");
        assert_eq!(s[1], self.features, "BatchNorm1d: feature mismatch");
        assert!(groups > 0, "BatchNorm1d: need at least one group");
        assert!(
            s[0].is_multiple_of(groups),
            "BatchNorm1d: {} rows not divisible into {groups} groups",
            s[0]
        );
        let m = s[0] / groups;
        assert!(m > 1, "BatchNorm1d: training-mode batch must have >1 rows");
        let n = self.features;
        let mut out = vec![0.0f32; x.numel()];
        let mut mean = vec![0.0f32; n];
        let mut var = vec![0.0f32; n];
        let mut inv_std = vec![0.0f32; n];
        x.with_data(|a| {
            self.forward_instance_grouped_raw(
                a,
                groups,
                &mut out,
                &mut mean,
                &mut var,
                &mut inv_std,
            )
        });
        Tensor::from_vec(out, &s)
    }

    /// Inference-plane grouped instance normalization: the shared raw body
    /// behind [`BatchNorm1d::forward_instance_grouped`] over
    /// workspace-leased scratch — no tensors, no allocation, bit-identical
    /// per backend (it *is* the same code).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`BatchNorm1d::forward_instance_grouped`], or if `out` length
    /// mismatches `x`.
    pub fn forward_instance_grouped_infer(
        &self,
        x: &[f32],
        groups: usize,
        out: &mut [f32],
        ws: &mut crate::workspace::Workspace,
    ) {
        let n = self.features;
        let mut mean = ws.lease(n);
        let mut var = ws.lease(n);
        let mut inv_std = ws.lease(n);
        self.forward_instance_grouped_raw(x, groups, out, &mut mean, &mut var, &mut inv_std);
        ws.release(mean);
        ws.release(var);
        ws.release(inv_std);
    }

    /// The one grouped-normalization body both planes run.
    fn forward_instance_grouped_raw(
        &self,
        x: &[f32],
        groups: usize,
        out: &mut [f32],
        mean: &mut [f32],
        var: &mut [f32],
        inv_std: &mut [f32],
    ) {
        self.gamma.with_data(|gamma| {
            self.beta.with_data(|beta| {
                crate::inference::instance_norm_grouped_into(
                    out,
                    x,
                    groups,
                    self.features,
                    gamma,
                    beta,
                    self.eps,
                    mean,
                    var,
                    inv_std,
                );
            })
        });
    }

    /// Whether the layer is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Running mean (per feature).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance (per feature).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Module for BatchNorm1d {
    fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn set_train(&mut self, train: bool) {
        self.training = train;
    }
}

/// Layer normalization across the columns of each row of an `[m, n]` input.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
    features: usize,
}

impl LayerNorm {
    /// Creates a layer-norm over `features`-wide rows.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones(&[features]).requires_grad(true),
            beta: Tensor::zeros(&[features]).requires_grad(true),
            eps: 1e-5,
            features,
        }
    }

    /// Applies normalization to `[m, n]` via the fused
    /// [`Tensor::layer_norm`] kernel (one graph node instead of nine, no
    /// intermediate `[m, n]` allocations).
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D `[_, features]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 2, "LayerNorm: expected 2-D input");
        assert_eq!(s[1], self.features, "LayerNorm: feature mismatch");
        x.layer_norm(&self.gamma, &self.beta, self.eps)
    }

    /// Inference-plane forward: normalizes the raw `[rows, features]`
    /// matrix in place via
    /// [`layer_norm_rows_inplace`](crate::inference::layer_norm_rows_inplace)
    /// — the same fused arithmetic as [`LayerNorm::forward`], bit-identical
    /// per backend, with no graph node and no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of `features`.
    pub fn forward_infer(&self, x: &mut [f32]) {
        self.gamma.with_data(|gamma| {
            self.beta.with_data(|beta| {
                crate::inference::layer_norm_rows_inplace(x, self.features, gamma, beta, self.eps);
            })
        });
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batchnorm_normalizes_training_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![0.0, 10.0, 2.0, 20.0, 4.0, 30.0], &[3, 2]);
        let y = bn.forward(&x);
        let out = y.to_vec();
        // each column should be zero-mean, unit-variance (biased)
        for c in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| out[r * 2 + c]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]);
        for _ in 0..200 {
            let _ = bn.forward(&x);
        }
        bn.set_train(false);
        // running mean should approach 2.5
        assert!((bn.running_mean()[0] - 2.5).abs() < 0.05);
        let y = bn.forward(&Tensor::from_vec(vec![2.5], &[1, 1]));
        assert!(y.to_vec()[0].abs() < 0.05);
    }

    #[test]
    fn batchnorm_grads_flow_to_gamma_beta() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let y = bn.forward(&x).sum_all();
        y.backward();
        for p in bn.params() {
            assert!(p.grad().is_some());
        }
        assert!(x.grad().is_some());
    }

    #[test]
    #[should_panic(expected = "batch must have >1")]
    fn batchnorm_training_rejects_single_row() {
        let mut bn = BatchNorm1d::new(2);
        let _ = bn.forward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn instance_forward_matches_mutable_forward_bitwise() {
        let _guard = crate::backend::test_lock();
        let mut bn = BatchNorm1d::new(3);
        bn.set_track_running_stats(false);
        let x = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[4, 3]);
        let pure = bn.forward_instance(&x).to_vec();
        let mutable = bn.forward(&x).to_vec();
        assert_eq!(pure, mutable, "instance forward diverged from the batch-stats branch");
    }

    #[test]
    fn instance_forward_is_differentiable() {
        let bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0], &[2, 2]).requires_grad(true);
        bn.forward_instance(&x).sum_all().backward();
        assert!(x.grad().is_some());
        for p in bn.params() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn grouped_forward_is_bitwise_blockwise() {
        let _guard = crate::backend::test_lock();
        let bn = BatchNorm1d::new(3);
        // Two groups of 4 rows with very different scales per block.
        let mut data: Vec<f32> = (0..12).map(|i| (i as f32 * 0.37).cos()).collect();
        data.extend((0..12).map(|i| 50.0 + (i as f32 * 0.11).sin() * 9.0));
        let stacked = Tensor::from_vec(data.clone(), &[8, 3]);
        let grouped = bn.forward_instance_grouped(&stacked, 2).to_vec();
        for g in 0..2 {
            let block = Tensor::from_vec(data[g * 12..(g + 1) * 12].to_vec(), &[4, 3]);
            let solo = bn.forward_instance(&block).to_vec();
            assert_eq!(&grouped[g * 12..(g + 1) * 12], &solo[..], "group {g} not bit-identical");
        }
    }

    #[test]
    fn grouped_infer_matches_grouped_forward_bitwise() {
        let _guard = crate::backend::test_lock();
        let bn = BatchNorm1d::new(3);
        let data: Vec<f32> = (0..24).map(|i| (i as f32 * 0.29).sin() * 4.0).collect();
        let reference = bn.forward_instance_grouped(&Tensor::from_vec(data.clone(), &[8, 3]), 2);
        let mut ws = crate::workspace::Workspace::new();
        let mut out = vec![0.0f32; 24];
        bn.forward_instance_grouped_infer(&data, 2, &mut out, &mut ws);
        assert_eq!(out, reference.to_vec());
    }

    #[test]
    fn layernorm_infer_matches_forward_bitwise() {
        let _guard = crate::backend::test_lock();
        let ln = LayerNorm::new(4);
        let data: Vec<f32> = (0..12).map(|i| (i as f32 * 0.77).cos() * 3.0).collect();
        let reference = ln.forward(&Tensor::from_vec(data.clone(), &[3, 4])).to_vec();
        let mut raw = data;
        ln.forward_infer(&mut raw);
        assert_eq!(raw, reference);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn grouped_forward_rejects_ragged_groups() {
        let bn = BatchNorm1d::new(2);
        let _ = bn.forward_instance_grouped(&Tensor::zeros(&[5, 2]), 2);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 100.0, 200.0, 300.0], &[2, 3]);
        let y = ln.forward(&x).to_vec();
        for r in 0..2 {
            let row = &y[r * 3..(r + 1) * 3];
            let mean: f32 = row.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-4);
        }
        // scale invariance: both rows normalize to the same pattern
        for c in 0..3 {
            assert!((y[c] - y[3 + c]).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_grads_flow() {
        let ln = LayerNorm::new(2);
        let x = Tensor::from_vec(vec![1.0, 3.0], &[1, 2]).requires_grad(true);
        ln.forward(&x).sum_all().backward();
        assert!(x.grad().is_some());
        assert!(ln.params()[0].grad().is_some());
    }
}
