//! Neural-network layers built on the autograd [`Tensor`](crate::Tensor).
//!
//! The layer set is exactly what the paper's models need: [`Linear`] (the
//! dense sub-layer, Eq. 1, and the decision head, Eq. 5), [`Embedding`] (the
//! KG token-embedding table that continuous adaptation updates),
//! [`norm::BatchNorm1d`] / [`norm::LayerNorm`], and
//! [`attention::TransformerEncoder`] (the short-term temporal model).

pub mod attention;
pub mod norm;

use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// A trainable component exposing its parameters and a train/eval switch.
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Tensor>;

    /// Switches between training and evaluation behaviour (batch-norm
    /// statistics, dropout). Default: no-op.
    fn set_train(&mut self, _train: bool) {}

    /// Freezes (or unfreezes) every parameter. Frozen parameters retain no
    /// gradients and are skipped by optimizers, but gradients still flow
    /// *through* them — exactly what the paper's adaptation phase needs when
    /// only KG token embeddings are trainable.
    fn set_frozen(&self, frozen: bool) {
        for p in self.params() {
            p.set_requires_grad(!frozen);
        }
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(Tensor::numel).sum()
    }
}

/// A fully-connected layer `y = x W + b`.
///
/// Besides the autograd weight, the layer can carry a pre-quantized int8
/// copy of `W` ([`Linear::quantize_int8`]); while present, the *inference*
/// forward rides the exact-i32 q8 kernels ([`crate::quant`]) and the
/// autograd [`Linear::forward`] — the training/adaptation plane and the
/// divergence oracle — keeps reading the f32 weight.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_features: usize,
    out_features: usize,
    quantized: Option<crate::quant::QuantizedMatrix>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = init::xavier_uniform(in_features, out_features, rng).requires_grad(true);
        let bias = Tensor::zeros(&[out_features]).requires_grad(true);
        Linear { weight, bias: Some(bias), in_features, out_features, quantized: None }
    }

    /// Creates a linear layer without a bias term.
    pub fn without_bias(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = init::xavier_uniform(in_features, out_features, rng).requires_grad(true);
        Linear { weight, bias: None, in_features, out_features, quantized: None }
    }

    /// Applies the layer to `[m, in_features]`, producing `[m, out_features]`.
    ///
    /// # Panics
    ///
    /// Panics if the input's column count mismatches `in_features`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape()[1],
            self.in_features,
            "Linear: input has {} features, expected {}",
            x.shape()[1],
            self.in_features
        );
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add_bias(b),
            None => y,
        }
    }

    /// Inference-plane forward: applies the layer to the raw `[rows,
    /// in_features]` matrix `x`, writing `[rows, out_features]` into `out`
    /// with no autograd bookkeeping and no steady-state allocation.
    ///
    /// Without a quantized weight this is bit-identical to
    /// [`Linear::forward`] per backend (same dispatching matmul kernel,
    /// same per-element bias add). After [`Linear::quantize_int8`] the
    /// matmul rides the exact-i32 q8 kernels instead — bit-identical
    /// *across* backends, diverging from f32 only by the bounded
    /// quantization error documented in [`crate::quant`]. The bias add is
    /// always f32.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` length mismatches `rows` × the layer's
    /// feature counts.
    pub fn forward_infer(
        &self,
        x: &[f32],
        rows: usize,
        out: &mut [f32],
        ws: &mut crate::workspace::Workspace,
    ) {
        assert_eq!(
            x.len(),
            rows * self.in_features,
            "Linear::forward_infer: input is not rows × in_features"
        );
        assert_eq!(
            out.len(),
            rows * self.out_features,
            "Linear::forward_infer: out is not rows × out_features"
        );
        match &self.quantized {
            Some(qw) => crate::inference::matmul_q8_into(out, x, qw, rows, ws),
            None => self.weight.with_data(|w| {
                crate::inference::matmul_into(out, x, w, rows, self.in_features, self.out_features);
            }),
        }
        if let Some(b) = &self.bias {
            b.with_data(|bv| crate::inference::add_bias_rows(out, bv, self.out_features));
        }
    }

    /// (Re-)quantizes the current weight into the int8 serving copy. Call
    /// again after any weight mutation (training) or the copy goes stale —
    /// the autograd weight is the source of truth.
    pub fn quantize_int8(&mut self) {
        self.quantized = Some(self.weight.with_data(|w| {
            crate::quant::QuantizedMatrix::from_row_major(w, self.in_features, self.out_features)
        }));
    }

    /// Drops the int8 serving copy; inference returns to the f32 kernels.
    pub fn clear_int8(&mut self) {
        self.quantized = None;
    }

    /// Whether an int8 serving copy is present.
    pub fn is_quantized(&self) -> bool {
        self.quantized.is_some()
    }

    /// Bytes the *serving* weight matrix occupies: the int8 copy's codes +
    /// scales when quantized, the f32 storage otherwise. (Bias excluded —
    /// it stays f32 on both planes.)
    pub fn weight_matrix_bytes(&self) -> usize {
        match &self.quantized {
            Some(q) => q.bytes(),
            None => self.weight_matrix_bytes_f32(),
        }
    }

    /// Bytes of the f32 weight matrix (`in × out × 4`).
    pub fn weight_matrix_bytes_f32(&self) -> usize {
        self.in_features * self.out_features * std::mem::size_of::<f32>()
    }

    /// Bytes an int8 copy of the weight occupies (codes + per-channel
    /// scales), whether or not one is currently present.
    pub fn weight_matrix_bytes_int8(&self) -> usize {
        self.in_features * self.out_features + self.out_features * std::mem::size_of::<f32>()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight tensor (shape `[in, out]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// A lookup table of trainable embeddings (the KG token-embedding table).
#[derive(Debug)]
pub struct Embedding {
    weight: Tensor,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates an embedding table with N(0, 0.02) initialization.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        let weight = init::normal(&[vocab, dim], 0.02, rng).requires_grad(true);
        Embedding { weight, vocab, dim }
    }

    /// Creates an embedding table from pre-computed vectors (e.g. the joint
    /// embedding model's token vectors).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != vocab * dim`.
    pub fn from_weights(weights: Vec<f32>, vocab: usize, dim: usize) -> Self {
        assert_eq!(weights.len(), vocab * dim, "Embedding: weight size mismatch");
        let weight = Tensor::from_vec(weights, &[vocab, dim]).requires_grad(true);
        Embedding { weight, vocab, dim }
    }

    /// Looks up rows by token id, producing `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of vocabulary.
    pub fn forward(&self, ids: &[usize]) -> Tensor {
        self.weight.index_select_rows(ids)
    }

    /// Mean of the embeddings of `ids`, as `[1, dim]` — one node's embedding
    /// from its tokens.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or out of vocabulary.
    pub fn mean_of(&self, ids: &[usize]) -> Tensor {
        self.weight.mean_rows(ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw table (shape `[vocab, dim]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Tensor> {
        vec![self.weight.clone()]
    }
}

/// A sequence of [`Linear`] layers with an activation between them; the
/// transformer's feed-forward block.
#[derive(Debug)]
pub struct FeedForward {
    lin1: Linear,
    lin2: Linear,
}

impl FeedForward {
    /// Creates a two-layer GELU MLP `dim -> hidden -> dim`.
    pub fn new(dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        FeedForward { lin1: Linear::new(dim, hidden, rng), lin2: Linear::new(hidden, dim, rng) }
    }

    /// Applies the block to `[m, dim]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.lin2.forward(&self.lin1.forward(x).gelu())
    }

    /// Inference-plane forward into `out` — the same linear → GELU → linear
    /// chain as [`FeedForward::forward`] over workspace-leased scratch,
    /// bit-identical per backend.
    ///
    /// # Panics
    ///
    /// Panics if `x`/`out` lengths mismatch `rows` × the block's widths.
    pub fn forward_infer(
        &self,
        x: &[f32],
        rows: usize,
        out: &mut [f32],
        ws: &mut crate::workspace::Workspace,
    ) {
        let mut hidden = ws.lease(rows * self.lin1.out_features());
        self.lin1.forward_infer(x, rows, &mut hidden, ws);
        crate::inference::gelu_inplace(&mut hidden);
        self.lin2.forward_infer(&hidden, rows, out, ws);
        ws.release(hidden);
    }

    /// Visits both linear layers (shared), in a stable order.
    pub fn visit_linears(&self, f: &mut dyn FnMut(&Linear)) {
        f(&self.lin1);
        f(&self.lin2);
    }

    /// Visits both linear layers (mutable), in a stable order — how the
    /// int8 plane reaches every weight matrix for (re-)quantization.
    pub fn visit_linears_mut(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.lin1);
        f(&mut self.lin2);
    }
}

impl Module for FeedForward {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.lin1.params();
        p.extend(self.lin2.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(3, 5, &mut rng);
        let x = Tensor::zeros(&[2, 3]);
        assert_eq!(l.forward(&x).shape(), vec![2, 5]);
        assert_eq!(l.param_count(), 3 * 5 + 5);
    }

    #[test]
    fn linear_learns_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(2, 2, &mut rng);
        let mut opt = Sgd::new(l.params(), 0.1);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        for _ in 0..500 {
            opt.zero_grad();
            let y = l.forward(&x);
            let loss = y.sub(&x).square().mean_all();
            loss.backward();
            opt.step();
        }
        let y = l.forward(&x);
        let err = y.sub(&x).square().mean_all().item();
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let emb = Embedding::from_weights(vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0], 3, 2);
        let out = emb.forward(&[2, 0]);
        assert_eq!(out.to_vec(), vec![3.0, 3.0, 1.0, 1.0]);
        out.sum_all().backward();
        let g = emb.weight().grad().unwrap();
        assert_eq!(g, vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn embedding_mean_of() {
        let emb = Embedding::from_weights(vec![0.0, 0.0, 2.0, 4.0], 2, 2);
        let m = emb.mean_of(&[0, 1]);
        assert_eq!(m.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn freezing_blocks_grad_retention_but_not_flow() {
        let emb = Embedding::from_weights(vec![1.0, 2.0], 2, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(1, 1, &mut rng);
        l.set_frozen(true);
        let y = l.forward(&emb.forward(&[0])).sum_all();
        y.backward();
        // frozen linear keeps no grad...
        assert!(l.params()[0].grad().is_none());
        // ...but the embedding upstream of it still receives one.
        assert!(emb.weight().grad().is_some());
    }

    #[test]
    fn quantized_linear_infer_tracks_f32_within_bound() {
        let _guard = crate::backend::test_lock();
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Linear::new(24, 10, &mut rng);
        let rows = 4;
        let x: Vec<f32> = (0..rows * 24).map(|i| ((i * 13 % 23) as f32 - 11.0) * 0.09).collect();
        let mut ws = crate::workspace::Workspace::new();
        let mut f32_out = vec![0.0f32; rows * 10];
        l.forward_infer(&x, rows, &mut f32_out, &mut ws);
        assert_eq!(l.weight_matrix_bytes(), l.weight_matrix_bytes_f32());
        l.quantize_int8();
        assert!(l.is_quantized());
        assert_eq!(l.weight_matrix_bytes(), l.weight_matrix_bytes_int8());
        assert!(l.weight_matrix_bytes_f32() as f64 / l.weight_matrix_bytes_int8() as f64 > 3.0);
        let mut q8_out = vec![0.0f32; rows * 10];
        l.forward_infer(&x, rows, &mut q8_out, &mut ws);
        // Small layer, normalized activations: the quantization error stays
        // far below the signal.
        for (i, (q, f)) in q8_out.iter().zip(&f32_out).enumerate() {
            assert!((q - f).abs() < 0.05, "[{i}] int8 {q} vs f32 {f}");
            assert_ne!(*f, 0.0, "degenerate test: f32 output is zero");
        }
        // clear_int8 restores the exact f32 path.
        l.clear_int8();
        let mut back = vec![0.0f32; rows * 10];
        l.forward_infer(&x, rows, &mut back, &mut ws);
        assert_eq!(back, f32_out);
    }

    #[test]
    fn feed_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let ff = FeedForward::new(4, 16, &mut rng);
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(ff.forward(&x).shape(), vec![3, 4]);
    }
}
