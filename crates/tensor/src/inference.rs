//! The inference data plane: raw-slice forward ops for serving.
//!
//! Every scored frame used to walk the full reverse-mode [`Tensor`]
//! machinery — an `Rc<RefCell<_>>` per graph node, a freshly heap-allocated
//! `Vec<f32>` per op, parent lists and tracked-flag bookkeeping — despite
//! scoring never calling `backward`. This module is the layer that makes all
//! of that disappear: plain functions over `&[f32]`/`&mut [f32]` that write
//! into caller-provided (typically [`Workspace`](crate::workspace::Workspace)
//! -leased) buffers, with **zero** `Rc`, zero `RefCell`, and zero
//! steady-state allocation.
//!
//! ## Numerics contract (load-bearing)
//!
//! Per backend, every function here is **bit-identical** to the autograd op
//! it mirrors, because it either *is* the same code (the matmuls call the
//! same dispatching kernels in [`crate::ops::kernels`]; the grouped
//! batch-norm body is shared with `nn::norm`) or replicates the op's exact
//! arithmetic: the same [`crate::ops::simd`] primitives in the same order,
//! so backend-sensitive reductions (`row_sum`, `row_dot_nofma`, the matmul
//! accumulation chains) round identically, and everything else is
//! per-lane-exact. The autograd plane remains the training/adaptation path
//! *and* the equivalence oracle — `akg-core`'s inference-vs-autograd
//! property suites assert bitwise equality under both backends.
//!
//! Convention: output buffers are zeroed by the ops that need it (matmul
//! accumulators, scatter-adds); "into" ops overwrite every element;
//! "inplace" ops transform their argument.

use crate::ops::kernels::{
    matmul_blocked_into, matmul_ikj_into, matmul_nt_into, BLOCKED_DISPATCH_THRESHOLD,
};
use crate::ops::simd;
use crate::ops::unary::{elu_scalar, gelu_scalar};

/// Matrix product `[m,k] × [k,n] → [m,n]` into `out`, with the same
/// problem-size dispatch as [`Tensor::matmul`](crate::Tensor::matmul)
/// (in-order `ikj` below [`BLOCKED_DISPATCH_THRESHOLD`] flops, the blocked
/// threaded kernel above it) — bit-identical to the autograd op per backend.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
///
/// # Examples
///
/// ```
/// use akg_tensor::inference::matmul_into;
/// let mut out = [0.0f32; 4];
/// matmul_into(&mut out, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2);
/// assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    if m * k * n >= BLOCKED_DISPATCH_THRESHOLD {
        matmul_blocked_into(out, a, b, m, k, n);
    } else {
        matmul_ikj_into(out, a, b, m, k, n);
    }
}

/// Transposed-RHS product `A[m,k] × Bᵀ → [m,n]` (with `b` stored `[n, k]`)
/// into `out` — the inference form of
/// [`Tensor::matmul_t`](crate::Tensor::matmul_t), used by attention's
/// `Q·Kᵀ`. Overwrites every element of `out`.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_t_into(out: &mut [f32], a: &[f32], bt: &[f32], m: usize, k: usize, n: usize) {
    matmul_nt_into(out, a, bt, m, k, n);
}

/// Int8 serving matmul `[m,k] × [k,n] → [m,n]` against a pre-quantized
/// weight: dynamically quantizes the activation rows of `a` into
/// [`Workspace`](crate::workspace::Workspace)-leased scratch (no steady-
/// state allocation — the i8/scale buffers come from the pools), then runs
/// the exact-i32 [`matmul_q8_nt_into`](crate::ops::kernels::matmul_q8_nt_into)
/// kernel. Unlike the f32 matmuls' per-backend bit-identity to autograd,
/// this path is **bit-identical across backends** but deliberately diverges
/// from f32 by the quantization error bounded in [`crate::quant`].
///
/// # Panics
///
/// Panics if `a.len() != m * qb.k()` or `out.len() != m * qb.n()`.
pub fn matmul_q8_into(
    out: &mut [f32],
    a: &[f32],
    qb: &crate::quant::QuantizedMatrix,
    m: usize,
    ws: &mut crate::workspace::Workspace,
) {
    let (k, n) = (qb.k(), qb.n());
    let mut qa = ws.lease_i8(m * k);
    let mut a_scales = ws.lease(m);
    crate::ops::kernels::matmul_q8_into(
        out,
        a,
        qb.data(),
        qb.scales(),
        m,
        k,
        n,
        &mut qa,
        &mut a_scales,
    );
    ws.release_i8(qa);
    ws.release(a_scales);
}

/// Adds a length-`n` bias vector to every row of the `[rows, n]` matrix in
/// `x` — the forward of [`Tensor::add_bias`](crate::Tensor::add_bias), same
/// per-element arithmetic.
///
/// # Panics
///
/// Panics if `x.len()` is not a multiple of `n` or `bias.len() != n`.
pub fn add_bias_rows(x: &mut [f32], bias: &[f32], n: usize) {
    assert_eq!(bias.len(), n, "add_bias_rows: bias must be [n]");
    assert!(x.len().is_multiple_of(n.max(1)), "add_bias_rows: x is not rows × n");
    for row in x.chunks_exact_mut(n) {
        for (o, b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// Scales row `r` of the `[rows, n]` matrix in `x` by `factors[r]` — the
/// forward of [`Tensor::scale_rows`](crate::Tensor::scale_rows).
///
/// # Panics
///
/// Panics if `x.len() != factors.len() * n`.
pub fn scale_rows_inplace(x: &mut [f32], factors: &[f32], n: usize) {
    assert_eq!(x.len(), factors.len() * n, "scale_rows_inplace: x is not factors.len() × n");
    for (row, &f) in x.chunks_exact_mut(n).zip(factors) {
        for v in row.iter_mut() {
            *v *= f;
        }
    }
}

/// `out += x` elementwise (lane-exact under both backends) — the forward of
/// [`Tensor::add`](crate::Tensor::add) with the sum landing in `out`.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
pub fn add_assign(out: &mut [f32], x: &[f32]) {
    simd::vadd_assign(out, x);
}

/// `dst = a ⊙ b` elementwise (lane-exact) — the forward of
/// [`Tensor::mul`](crate::Tensor::mul) into a provided buffer.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
pub fn hadamard_into(dst: &mut [f32], a: &[f32], b: &[f32]) {
    simd::vmul_into(dst, a, b);
}

/// Gathers rows of the `[_, n]` matrix `x` by index into `out` — the
/// forward of [`Tensor::index_select_rows`](crate::Tensor::index_select_rows).
///
/// # Panics
///
/// Panics if `out.len() != indices.len() * n` or an index row is out of
/// bounds of `x`.
pub fn gather_rows_into(out: &mut [f32], x: &[f32], n: usize, indices: &[usize]) {
    assert_eq!(out.len(), indices.len() * n, "gather_rows_into: out is not indices × n");
    for (o, &idx) in out.chunks_exact_mut(n).zip(indices) {
        o.copy_from_slice(&x[idx * n..(idx + 1) * n]);
    }
}

/// Scatter-adds the rows of the `[e, n]` matrix `src` into `out`
/// (`out[dst[i]] += src[i]`, source order) — the forward of
/// [`Tensor::scatter_add_rows`](crate::Tensor::scatter_add_rows). Zeroes
/// `out` first.
///
/// # Panics
///
/// Panics if `src.len() != dst.len() * n` or a destination row is out of
/// bounds of `out`.
pub fn scatter_add_rows_into(out: &mut [f32], src: &[f32], n: usize, dst: &[usize]) {
    assert_eq!(src.len(), dst.len() * n, "scatter_add_rows_into: src is not dst × n");
    out.fill(0.0);
    for (row, &d) in src.chunks_exact(n).zip(dst) {
        simd::vadd_assign(&mut out[d * n..(d + 1) * n], row);
    }
}

/// Applies ELU (`alpha = 1`) in place — the forward map of
/// [`Tensor::elu`](crate::Tensor::elu), shared scalar function.
pub fn elu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = elu_scalar(*v, 1.0);
    }
}

/// Applies the tanh-approximated GELU in place — the forward map of
/// [`Tensor::gelu`](crate::Tensor::gelu), shared scalar function.
pub fn gelu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = gelu_scalar(*v);
    }
}

/// Fused `softmax(x · scale + mask)` over each row of the `[m, n]` matrix in
/// `x`, in place — the forward of
/// [`Tensor::softmax_rows_scaled_masked`](crate::Tensor::softmax_rows_scaled_masked),
/// replicated primitive-for-primitive (scale and mask-add lane-exact, max
/// exact, sequential scalar exp+sum, lane-exact divide), so it is
/// bit-identical per backend.
///
/// # Panics
///
/// Panics if `x.len() != m * n` or a provided mask's length mismatches.
pub fn softmax_rows_scaled_masked_inplace(
    x: &mut [f32],
    m: usize,
    n: usize,
    scale: f32,
    mask: Option<&[f32]>,
) {
    assert_eq!(x.len(), m * n, "softmax_rows_scaled_masked_inplace: x is not m × n");
    if let Some(mk) = mask {
        assert_eq!(mk.len(), m * n, "softmax_rows_scaled_masked_inplace: mask must have m*n");
    }
    for r in 0..m {
        let row = &mut x[r * n..(r + 1) * n];
        if scale != 1.0 {
            simd::inplace_scale(row, scale);
        }
        if let Some(mk) = mask {
            simd::inplace_add(row, &mk[r * n..(r + 1) * n]);
        }
        let max = simd::row_max(row);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        simd::inplace_div_scalar(row, sum);
    }
}

/// Fused layer normalization over each `n`-wide row of `x`, in place — the
/// forward of [`Tensor::layer_norm`](crate::Tensor::layer_norm), replicated
/// primitive-for-primitive (the same canonical `row_sum`/`row_dot_nofma`
/// reductions), so it is bit-identical per backend.
///
/// # Panics
///
/// Panics if `x.len()` is not a multiple of `n`, or `gamma`/`beta` are not
/// length `n`.
pub fn layer_norm_rows_inplace(x: &mut [f32], n: usize, gamma: &[f32], beta: &[f32], eps: f32) {
    assert!(n > 0, "layer_norm_rows_inplace: rows must be non-empty");
    assert!(x.len().is_multiple_of(n), "layer_norm_rows_inplace: x is not rows × n");
    assert_eq!(gamma.len(), n, "layer_norm_rows_inplace: gamma must be [n]");
    assert_eq!(beta.len(), n, "layer_norm_rows_inplace: beta must be [n]");
    let inv_n = 1.0 / n as f32;
    for row in x.chunks_exact_mut(n) {
        let mean = simd::row_sum(row) * inv_n;
        simd::inplace_add_scalar(row, -mean);
        let var = simd::row_dot_nofma(row, row) * inv_n;
        let inv_std = 1.0 / (var + eps).sqrt();
        for (c, v) in row.iter_mut().enumerate() {
            *v = (*v * inv_std) * gamma[c] + beta[c];
        }
    }
}

/// Grouped instance normalization into `out`: the `[groups · rows, n]`
/// matrix `x` is `groups` independent row blocks, each normalized with its
/// own batch statistics. This is the *shared body* of
/// [`BatchNorm1d::forward_instance_grouped`](crate::nn::norm::BatchNorm1d::forward_instance_grouped)
/// — the autograd op delegates here, so the two planes cannot drift.
/// `mean`/`var`/`inv_std` are length-`n` scratch rows (contents ignored).
///
/// # Panics
///
/// Panics if shapes disagree, the row count is not divisible by `groups`,
/// or any block has fewer than two rows.
#[allow(clippy::too_many_arguments)]
pub fn instance_norm_grouped_into(
    out: &mut [f32],
    x: &[f32],
    groups: usize,
    n: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    mean: &mut [f32],
    var: &mut [f32],
    inv_std: &mut [f32],
) {
    assert_eq!(out.len(), x.len(), "instance_norm_grouped_into: out/x length mismatch");
    assert!(groups > 0, "instance_norm_grouped_into: need at least one group");
    assert!(x.len().is_multiple_of(n.max(1)), "instance_norm_grouped_into: x is not rows × n");
    let rows = x.len() / n;
    assert!(
        rows.is_multiple_of(groups),
        "instance_norm_grouped_into: {rows} rows not divisible into {groups} groups"
    );
    let m = rows / groups;
    assert!(m > 1, "instance_norm_grouped_into: batch must have >1 rows");
    assert_eq!(gamma.len(), n, "instance_norm_grouped_into: gamma must be [n]");
    assert_eq!(beta.len(), n, "instance_norm_grouped_into: beta must be [n]");
    assert_eq!(mean.len(), n, "instance_norm_grouped_into: mean scratch must be [n]");
    assert_eq!(var.len(), n, "instance_norm_grouped_into: var scratch must be [n]");
    assert_eq!(inv_std.len(), n, "instance_norm_grouped_into: inv_std scratch must be [n]");
    let inv_m = 1.0 / m as f32;
    for g in 0..groups {
        let block = &x[g * m * n..(g + 1) * m * n];
        // mean: rows ascending, then scale by the reciprocal — exactly
        // `sum_axis0().mul_scalar(1/m)` under either backend (the
        // lane-parallel add keeps each column's row-ascending order).
        mean.fill(0.0);
        for r in 0..m {
            simd::vadd_assign(mean, &block[r * n..(r + 1) * n]);
        }
        simd::inplace_scale(mean, inv_m);
        // biased variance of the centered block, same op order.
        var.fill(0.0);
        for r in 0..m {
            simd::batchnorm_var_accum_row(var, &block[r * n..(r + 1) * n], mean);
        }
        simd::inplace_scale(var, inv_m);
        for (is, v) in inv_std.iter_mut().zip(var.iter()) {
            *is = 1.0 / (v + eps).sqrt();
        }
        let oblock = &mut out[g * m * n..(g + 1) * m * n];
        for r in 0..m {
            simd::batchnorm_apply_row(
                &mut oblock[r * n..(r + 1) * n],
                &block[r * n..(r + 1) * n],
                mean,
                inv_std,
                gamma,
                beta,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn filled(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..len).map(f).collect()
    }

    #[test]
    fn matmul_into_is_bit_identical_to_tensor_matmul() {
        let _guard = crate::backend::test_lock();
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (17, 33, 9), (40, 64, 96)] {
            let a = filled(m * k, |i| ((i * 37 % 19) as f32 - 9.0) * 0.11);
            let b = filled(k * n, |i| ((i * 23 % 17) as f32 - 8.0) * 0.13);
            let reference = Tensor::from_vec(a.clone(), &[m, k])
                .matmul(&Tensor::from_vec(b.clone(), &[k, n]))
                .to_vec();
            let mut out = vec![7.0f32; m * n]; // stale garbage must be cleared
            matmul_into(&mut out, &a, &b, m, k, n);
            assert_eq!(out, reference, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_t_into_matches_tensor_matmul_t() {
        let _guard = crate::backend::test_lock();
        let (m, k, n) = (5, 12, 7);
        let a = filled(m * k, |i| (i as f32 * 0.3).sin());
        let bt = filled(n * k, |i| (i as f32 * 0.7).cos());
        let reference = Tensor::from_vec(a.clone(), &[m, k])
            .matmul_t(&Tensor::from_vec(bt.clone(), &[n, k]))
            .to_vec();
        let mut out = vec![0.0f32; m * n];
        matmul_t_into(&mut out, &a, &bt, m, k, n);
        assert_eq!(out, reference);
    }

    #[test]
    fn matmul_q8_into_reuses_workspace_scratch() {
        let _guard = crate::backend::test_lock();
        let (m, k, n) = (6, 24, 10);
        let a = filled(m * k, |i| ((i * 37 % 19) as f32 - 9.0) * 0.11);
        let b = filled(k * n, |i| ((i * 23 % 17) as f32 - 8.0) * 0.13);
        let qb = crate::quant::QuantizedMatrix::from_row_major(&b, k, n);
        let mut ws = crate::workspace::Workspace::new();
        let mut out = vec![0.0f32; m * n];
        matmul_q8_into(&mut out, &a, &qb, m, &mut ws);
        // Reference through the raw kernel with its own scratch.
        let mut qa = vec![0i8; m * k];
        let mut a_scales = vec![0.0f32; m];
        let mut reference = vec![0.0f32; m * n];
        crate::ops::kernels::matmul_q8_into(
            &mut reference,
            &a,
            qb.data(),
            qb.scales(),
            m,
            k,
            n,
            &mut qa,
            &mut a_scales,
        );
        assert_eq!(out, reference);
        // Steady state: repeated calls lease from the pools, never allocate.
        let created = ws.stats().buffers_created;
        for _ in 0..5 {
            matmul_q8_into(&mut out, &a, &qb, m, &mut ws);
        }
        assert_eq!(ws.stats().buffers_created, created, "q8 scratch not reused");
    }

    #[test]
    fn softmax_inplace_matches_fused_op_bitwise() {
        let _guard = crate::backend::test_lock();
        let (m, n) = (4, 9);
        let x = filled(m * n, |i| ((i * 13 % 23) as f32 - 11.0) * 0.21);
        let mask: Vec<f32> = (0..m * n).map(|i| if i % n > i / n { -1e9 } else { 0.0 }).collect();
        let reference = Tensor::from_vec(x.clone(), &[m, n])
            .softmax_rows_scaled_masked(0.37, Some(&mask))
            .to_vec();
        let mut raw = x;
        softmax_rows_scaled_masked_inplace(&mut raw, m, n, 0.37, Some(&mask));
        assert_eq!(raw, reference);
    }

    #[test]
    fn layer_norm_inplace_matches_fused_op_bitwise() {
        let _guard = crate::backend::test_lock();
        let (m, n) = (6, 11);
        let x = filled(m * n, |i| ((i * 7 % 31) as f32 - 15.0) * 0.13);
        let gamma = filled(n, |i| 0.5 + 0.1 * i as f32);
        let beta = filled(n, |i| -0.2 + 0.05 * i as f32);
        let reference = Tensor::from_vec(x.clone(), &[m, n])
            .layer_norm(
                &Tensor::from_vec(gamma.clone(), &[n]),
                &Tensor::from_vec(beta.clone(), &[n]),
                1e-5,
            )
            .to_vec();
        let mut raw = x;
        layer_norm_rows_inplace(&mut raw, n, &gamma, &beta, 1e-5);
        assert_eq!(raw, reference);
    }

    #[test]
    fn gather_scatter_match_tensor_ops_bitwise() {
        let _guard = crate::backend::test_lock();
        let (rows, n) = (7, 5);
        let x = filled(rows * n, |i| (i as f32 * 0.11).sin());
        let idx = [3usize, 0, 3, 6, 2];
        let t = Tensor::from_vec(x.clone(), &[rows, n]);
        let mut gathered = vec![0.0f32; idx.len() * n];
        gather_rows_into(&mut gathered, &x, n, &idx);
        assert_eq!(gathered, t.index_select_rows(&idx).to_vec());
        let dst = [1usize, 4, 1, 0, 2];
        let mut scattered = vec![9.0f32; rows * n];
        scatter_add_rows_into(&mut scattered, &gathered, n, &dst);
        let tg = Tensor::from_vec(gathered, &[idx.len(), n]);
        assert_eq!(scattered, tg.scatter_add_rows(&dst, rows).to_vec());
    }

    #[test]
    fn elementwise_helpers_match_tensor_ops_bitwise() {
        let _guard = crate::backend::test_lock();
        let n = 13;
        let a = filled(n, |i| ((i * 5 % 17) as f32 - 8.0) * 0.19);
        let b = filled(n, |i| ((i * 11 % 13) as f32 - 6.0) * 0.23);
        let ta = Tensor::from_vec(a.clone(), &[n]);
        let tb = Tensor::from_vec(b.clone(), &[n]);
        let mut sum = a.clone();
        add_assign(&mut sum, &b);
        assert_eq!(sum, ta.add(&tb).to_vec());
        let mut prod = vec![0.0f32; n];
        hadamard_into(&mut prod, &a, &b);
        assert_eq!(prod, ta.mul(&tb).to_vec());
        let mut e = a.clone();
        elu_inplace(&mut e);
        assert_eq!(e, ta.elu().to_vec());
        let mut g = a.clone();
        gelu_inplace(&mut g);
        assert_eq!(g, ta.gelu().to_vec());
        let m2 = Tensor::from_vec(a.clone(), &[1, n]);
        let mut biased = a.clone();
        add_bias_rows(&mut biased, &b, n);
        assert_eq!(biased, m2.add_bias(&tb).to_vec());
    }
}
