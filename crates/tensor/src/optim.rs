//! Optimizers: plain SGD and AdamW with decoupled weight decay
//! (Loshchilov & Hutter), matching the paper's training recipe
//! (lr 1e-5, weight decay 1.0, β₁ = 0.9, β₂ = 0.999, ε = 1e-8).

use crate::tensor::Tensor;

/// Common optimizer interface over a fixed parameter list.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated on
    /// the parameters. Parameters without a gradient are skipped.
    fn step(&mut self);
    /// Clears gradients on all managed parameters.
    fn zero_grad(&self);
    /// The managed parameters.
    fn params(&self) -> &[Tensor];
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self::with_momentum(params, lr, 0.0)
    }

    /// Creates an SGD optimizer with momentum.
    pub fn with_momentum(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        Sgd { params, lr, momentum, velocity }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let Some(g) = p.grad() else { continue };
            let (lr, mu) = (self.lr, self.momentum);
            p.update_data(|data| {
                for i in 0..data.len() {
                    v[i] = mu * v[i] + g[i];
                    data[i] -= lr * v[i];
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

/// Configuration for [`AdamW`].
#[derive(Debug, Clone, Copy)]
pub struct AdamWConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    /// The paper's settings: lr 1e-5, wd 1.0, β₁ 0.9, β₂ 0.999, ε 1e-8.
    fn default() -> Self {
        AdamWConfig { lr: 1e-5, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 1.0 }
    }
}

/// AdamW optimizer with decoupled weight decay.
#[derive(Debug)]
pub struct AdamW {
    params: Vec<Tensor>,
    cfg: AdamWConfig,
    step_count: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl AdamW {
    /// Creates an AdamW optimizer over `params` with the given config.
    pub fn new(params: Vec<Tensor>, cfg: AdamWConfig) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        AdamW { params, cfg, step_count: 0, m, v }
    }

    /// Creates an AdamW optimizer with a custom learning rate and otherwise
    /// default (paper) hyperparameters.
    pub fn with_lr(params: Vec<Tensor>, lr: f32) -> Self {
        AdamW::new(params, AdamWConfig { lr, ..AdamWConfig::default() })
    }

    /// Current step count (number of `step` calls so far).
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

impl Optimizer for AdamW {
    fn step(&mut self) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let c = self.cfg;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let Some(g) = p.grad() else { continue };
            p.update_data(|data| {
                for i in 0..data.len() {
                    m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g[i];
                    v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g[i] * g[i];
                    let m_hat = m[i] / bias1;
                    let v_hat = v[i] / bias2;
                    // Decoupled decay: applied directly to the weights, not
                    // folded into the gradient (AdamW, not Adam+L2).
                    data[i] -= c.lr * (m_hat / (v_hat.sqrt() + c.eps) + c.weight_decay * data[i]);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_loss(x: &Tensor) -> Tensor {
        // (x - 3)^2 summed
        x.add_scalar(-3.0).square().sum_all()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad(true);
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        for _ in 0..100 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.to_vec()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let x1 = Tensor::from_vec(vec![0.0], &[1]).requires_grad(true);
        let x2 = Tensor::from_vec(vec![0.0], &[1]).requires_grad(true);
        let mut plain = Sgd::new(vec![x1.clone()], 0.01);
        let mut mom = Sgd::with_momentum(vec![x2.clone()], 0.01, 0.9);
        for _ in 0..20 {
            plain.zero_grad();
            quadratic_loss(&x1).backward();
            plain.step();
            mom.zero_grad();
            quadratic_loss(&x2).backward();
            mom.step();
        }
        let e1 = (x1.to_vec()[0] - 3.0).abs();
        let e2 = (x2.to_vec()[0] - 3.0).abs();
        assert!(e2 < e1, "momentum {e2} should beat plain {e1}");
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad(true);
        let cfg = AdamWConfig { lr: 0.1, weight_decay: 0.0, ..AdamWConfig::default() };
        let mut opt = AdamW::new(vec![x.clone()], cfg);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.to_vec()[0] - 3.0).abs() < 1e-2, "got {}", x.to_vec()[0]);
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        // With zero gradient signal, decay alone must shrink the weight.
        let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad(true);
        let cfg = AdamWConfig { lr: 0.01, weight_decay: 1.0, ..AdamWConfig::default() };
        let mut opt = AdamW::new(vec![x.clone()], cfg);
        for _ in 0..10 {
            opt.zero_grad();
            // loss independent of x would not push grads to x at all; use
            // x*0 so grad is exactly zero but present in graph.
            x.mul_scalar(0.0).sum_all().backward();
            opt.step();
        }
        assert!(x.to_vec()[0] < 1.0);
    }

    #[test]
    fn params_without_grad_are_skipped() {
        let x = Tensor::from_vec(vec![5.0], &[1]).requires_grad(true);
        let mut opt = AdamW::with_lr(vec![x.clone()], 0.1);
        opt.step(); // no backward happened
        assert_eq!(x.to_vec(), vec![5.0]);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = AdamWConfig::default();
        assert_eq!(cfg.lr, 1e-5);
        assert_eq!(cfg.weight_decay, 1.0);
        assert_eq!(cfg.beta1, 0.9);
        assert_eq!(cfg.beta2, 0.999);
        assert_eq!(cfg.eps, 1e-8);
    }
}
