//! Row gathers and scatters: embedding lookups and the index plumbing behind
//! the hierarchical message-passing layer.
//!
//! The accumulating sides (scatter-add forward, gather backward) add whole
//! rows through the lane-exact SIMD primitive when the SIMD backend is
//! active — bit-identical to the scalar loops, since each destination row
//! still receives its contributions in the same source order.

use crate::ops::simd;
use crate::tensor::Tensor;

impl Tensor {
    /// Gathers rows of an `[m, n]` tensor by index, producing `[k, n]`.
    /// Indices may repeat; gradients scatter-add back (this is exactly an
    /// embedding lookup, so the KG token-embedding updates flow through it).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or an index is out of bounds.
    pub fn index_select_rows(&self, indices: &[usize]) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "index_select_rows: expected 2-D tensor");
        let (m, n) = (s[0], s[1]);
        let a = self.to_vec();
        let mut data = vec![0.0f32; indices.len() * n];
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < m, "index_select_rows: index {idx} out of bounds for {m} rows");
            data[i * n..(i + 1) * n].copy_from_slice(&a[idx * n..(idx + 1) * n]);
        }
        let idx = indices.to_vec();
        let k = indices.len();
        Tensor::from_op(
            data,
            &[k, n],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                for (i, &id) in idx.iter().enumerate() {
                    simd::vadd_assign(&mut dx[id * n..(id + 1) * n], &g[i * n..(i + 1) * n]);
                }
                vec![dx]
            }),
        )
    }

    /// Scatter-adds the rows of an `[e, n]` tensor into an output of
    /// `out_rows` rows: `out[dst[i]] += self[i]`. Rows of the output that
    /// receive no contribution stay zero.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D, `dst.len()` mismatches the row count,
    /// or an index is out of bounds.
    pub fn scatter_add_rows(&self, dst: &[usize], out_rows: usize) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "scatter_add_rows: expected 2-D tensor");
        let (e, n) = (s[0], s[1]);
        assert_eq!(dst.len(), e, "scatter_add_rows: dst length mismatch");
        let a = self.to_vec();
        let mut data = vec![0.0f32; out_rows * n];
        for (i, &d) in dst.iter().enumerate() {
            assert!(d < out_rows, "scatter_add_rows: index {d} out of bounds for {out_rows}");
            simd::vadd_assign(&mut data[d * n..(d + 1) * n], &a[i * n..(i + 1) * n]);
        }
        let dst_c = dst.to_vec();
        Tensor::from_op(
            data,
            &[out_rows, n],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; e * n];
                for (i, &d) in dst_c.iter().enumerate() {
                    dx[i * n..(i + 1) * n].copy_from_slice(&g[d * n..(d + 1) * n]);
                }
                vec![dx]
            }),
        )
    }

    /// Mean of gathered rows: `mean(self[indices])`, producing `[1, n]`.
    /// Convenience for turning a node's token embeddings into one node
    /// embedding.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn mean_rows(&self, indices: &[usize]) -> Tensor {
        assert!(!indices.is_empty(), "mean_rows: empty index list");
        let picked = self.index_select_rows(indices);
        let n = picked.shape()[1];
        picked.mean_axis0().reshape(&[1, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_select_gathers() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let y = x.index_select_rows(&[2, 0, 2]);
        assert_eq!(y.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn index_select_grad_scatter_adds() {
        let x = Tensor::from_vec(vec![0.0; 6], &[3, 2]).requires_grad(true);
        let y = x.index_select_rows(&[2, 0, 2]);
        y.sum_all().backward();
        // row 2 picked twice -> grad 2, row 0 once -> 1, row 1 never -> 0
        assert_eq!(x.grad().unwrap(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn scatter_add_accumulates() {
        let src = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0], &[3, 2]);
        let y = src.scatter_add_rows(&[1, 1, 0], 3);
        assert_eq!(y.to_vec(), vec![4.0, 4.0, 3.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn scatter_add_grad_gathers() {
        let src = Tensor::from_vec(vec![0.0; 4], &[2, 2]).requires_grad(true);
        let y = src.scatter_add_rows(&[1, 1], 2);
        y.scale_rows(&[5.0, 7.0]).sum_all().backward();
        assert_eq!(src.grad().unwrap(), vec![7.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn mean_rows_averages() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let y = x.mean_rows(&[0, 1]);
        assert_eq!(y.shape(), vec![1, 2]);
        assert_eq!(y.to_vec(), vec![2.0, 3.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.5; 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_select_rejects_oob() {
        let x = Tensor::zeros(&[2, 2]);
        let _ = x.index_select_rows(&[5]);
    }
}
