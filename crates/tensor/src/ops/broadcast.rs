//! Row/column broadcasting arithmetic for 2-D tensors.
//!
//! `*_bias` variants broadcast a length-`n` vector across the rows of an
//! `[m, n]` matrix (per-feature). `*_col` variants broadcast a length-`m`
//! vector across the columns (per-row), which layer normalization needs.

use crate::tensor::Tensor;

fn check_2d(x: &Tensor, op: &str) -> (usize, usize) {
    let shape = x.shape();
    assert_eq!(shape.len(), 2, "{op}: expected 2-D tensor, got {shape:?}");
    (shape[0], shape[1])
}

impl Tensor {
    /// Adds a length-`n` vector to every row of an `[m, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `bias` is not `[n]`.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let (m, n) = check_2d(self, "add_bias");
        assert_eq!(bias.shape(), vec![n], "add_bias: bias must be [n]");
        let a = self.to_vec();
        let b = bias.to_vec();
        let mut data = a;
        for r in 0..m {
            for c in 0..n {
                data[r * n + c] += b[c];
            }
        }
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), bias.clone()],
            Box::new(move |g| {
                let mut db = vec![0.0f32; n];
                for r in 0..m {
                    for c in 0..n {
                        db[c] += g[r * n + c];
                    }
                }
                vec![g.to_vec(), db]
            }),
        )
    }

    /// Multiplies every row of an `[m, n]` matrix elementwise by a length-`n`
    /// vector (per-feature scaling, e.g. a norm layer's gamma).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `scale` is not `[n]`.
    pub fn mul_bias(&self, scale: &Tensor) -> Tensor {
        let (m, n) = check_2d(self, "mul_bias");
        assert_eq!(scale.shape(), vec![n], "mul_bias: scale must be [n]");
        let a = self.to_vec();
        let s = scale.to_vec();
        let mut data = vec![0.0f32; m * n];
        for r in 0..m {
            for c in 0..n {
                data[r * n + c] = a[r * n + c] * s[c];
            }
        }
        let (ac, sc) = (a, s);
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), scale.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                let mut ds = vec![0.0f32; n];
                for r in 0..m {
                    for c in 0..n {
                        dx[r * n + c] = g[r * n + c] * sc[c];
                        ds[c] += g[r * n + c] * ac[r * n + c];
                    }
                }
                vec![dx, ds]
            }),
        )
    }

    /// Adds a length-`m` vector to every column of an `[m, n]` matrix
    /// (per-row offset).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `offsets` is not `[m]`.
    pub fn add_col(&self, offsets: &Tensor) -> Tensor {
        let (m, n) = check_2d(self, "add_col");
        assert_eq!(offsets.shape(), vec![m], "add_col: offsets must be [m]");
        let mut data = self.to_vec();
        let o = offsets.to_vec();
        for r in 0..m {
            for c in 0..n {
                data[r * n + c] += o[r];
            }
        }
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), offsets.clone()],
            Box::new(move |g| {
                let mut dof = vec![0.0f32; m];
                for r in 0..m {
                    for c in 0..n {
                        dof[r] += g[r * n + c];
                    }
                }
                vec![g.to_vec(), dof]
            }),
        )
    }

    /// Multiplies every column of an `[m, n]` matrix elementwise by a
    /// length-`m` vector (per-row scaling).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `scale` is not `[m]`.
    pub fn mul_col(&self, scale: &Tensor) -> Tensor {
        let (m, n) = check_2d(self, "mul_col");
        assert_eq!(scale.shape(), vec![m], "mul_col: scale must be [m]");
        let a = self.to_vec();
        let s = scale.to_vec();
        let mut data = vec![0.0f32; m * n];
        for r in 0..m {
            for c in 0..n {
                data[r * n + c] = a[r * n + c] * s[r];
            }
        }
        let (ac, sc) = (a, s);
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), scale.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                let mut ds = vec![0.0f32; m];
                for r in 0..m {
                    for c in 0..n {
                        dx[r * n + c] = g[r * n + c] * sc[r];
                        ds[r] += g[r * n + c] * ac[r * n + c];
                    }
                }
                vec![dx, ds]
            }),
        )
    }

    /// Scales each row of an `[m, n]` matrix by a *constant*
    /// (non-differentiable) factor; used for mean-aggregation denominators
    /// and indicator masks in the hierarchical aggregate layer (Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `factors.len() != m`.
    pub fn scale_rows(&self, factors: &[f32]) -> Tensor {
        let (m, n) = check_2d(self, "scale_rows");
        assert_eq!(factors.len(), m, "scale_rows: factors must have length m");
        let mut data = self.to_vec();
        for r in 0..m {
            for c in 0..n {
                data[r * n + c] *= factors[r];
            }
        }
        let fc = factors.to_vec();
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    for c in 0..n {
                        dx[r * n + c] = g[r * n + c] * fc[r];
                    }
                }
                vec![dx]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_bias_broadcasts_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).requires_grad(true);
        let y = x.add_bias(&b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
        y.sum_all().backward();
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0]);
        assert_eq!(x.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn mul_bias_grads() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let s = Tensor::from_vec(vec![2.0, 0.5], &[2]).requires_grad(true);
        let y = x.mul_bias(&s).sum_all();
        assert_eq!(y.item(), 2.0 + 1.0 + 6.0 + 2.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![2.0, 0.5, 2.0, 0.5]);
        assert_eq!(s.grad().unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn add_col_broadcasts_cols() {
        let x = Tensor::from_vec(vec![0.0; 4], &[2, 2]).requires_grad(true);
        let o = Tensor::from_vec(vec![1.0, -1.0], &[2]).requires_grad(true);
        let y = x.add_col(&o);
        assert_eq!(y.to_vec(), vec![1.0, 1.0, -1.0, -1.0]);
        y.sum_all().backward();
        assert_eq!(o.grad().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn mul_col_grads() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let s = Tensor::from_vec(vec![10.0, 100.0], &[2]).requires_grad(true);
        let y = x.mul_col(&s).sum_all();
        assert_eq!(y.item(), 10.0 + 20.0 + 300.0 + 400.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![10.0, 10.0, 100.0, 100.0]);
        assert_eq!(s.grad().unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn scale_rows_constant() {
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2]).requires_grad(true);
        let y = x.scale_rows(&[0.5, 2.0]);
        assert_eq!(y.to_vec(), vec![0.5, 0.5, 2.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.5, 0.5, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "bias must be [n]")]
    fn add_bias_rejects_bad_len() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2]);
        let _ = x.add_bias(&b);
    }
}
