//! Raw matrix-multiplication kernels: the naive reference, the seed's
//! cache-aware loop ordering, and the cache-blocked, panel-packed,
//! multi-threaded kernel that [`Tensor::matmul`](crate::Tensor::matmul)
//! dispatches to for large operands.
//!
//! Every kernel has two implementations behind the process-wide
//! [`Backend`](crate::backend::Backend) switch: the portable scalar loops in
//! this file (slice-to-slice SAXPY updates that LLVM auto-vectorizes for the
//! baseline target) and, on AVX2+FMA hardware, the explicit
//! `std::arch` kernels in [`super::simd`] — an 8-wide FMA SAXPY for the
//! `ikj`/`tn` family and a 6×16 register-tiled microkernel inside the
//! blocked fill. Dispatch is a single runtime check per kernel call; see
//! `docs/PERFORMANCE.md` for the design and the measured effect.
//!
//! ## Determinism and accuracy
//!
//! Each output element is accumulated by exactly one thread with a fixed
//! arithmetic order, so every kernel here is bit-for-bit deterministic
//! across runs *and* across thread counts, under either backend.
//! [`matmul_blocked`] accumulates the `k` dimension in the same ascending
//! order as the reference kernels — per backend it is *bit-identical* to
//! [`matmul_ikj`] (the SIMD microkernel keeps the same single FMA chain per
//! element), so results never change when a product crosses the
//! size-dispatch threshold. Against [`matmul_naive`] the scalar kernels
//! agree to within a few ULPs; the SIMD kernels contract multiply-add pairs
//! with FMA and reorder dot-product reductions deterministically, staying
//! inside the 1e-4 property-tested tolerance for normalized network
//! activations (`tests/proptest_kernels.rs`).
//!
//! All kernels assume *finite* inputs. The scalar SAXPY kernels
//! ([`matmul_ikj`], [`matmul_blocked`], [`matmul_tn`]) skip zero-coefficient
//! updates — the seed kernel's convention — which drops `0·Inf` / `0·NaN`
//! terms; the dot-product path [`matmul_nt`] and all SIMD paths include
//! every term (for finite inputs `fma(0, b, acc) == acc`, so the skip is
//! unobservable there), so they propagate NaN from such products.

use crate::ops::simd;
use crate::par::for_each_row_chunk;

/// Rows per k-dimension panel: 128 rows × 4 B × NC cols keeps one packed
/// panel (≤ 96 KiB) inside a typical 256 KiB-per-core L2 slice with room
/// for the A rows and output rows streaming through.
pub(crate) const KC: usize = 128;
/// Columns per packed panel (192 cols × 4 B = 768 B per panel row — three
/// quarters of a 1 KiB stride, chosen so panel rows never alias the same L1
/// set as the output row being accumulated; also a multiple of the SIMD
/// microkernel's 16-column tile).
pub(crate) const NC: usize = 192;
/// Minimum output rows per worker thread; below this the ~10 µs scoped
/// thread spawn costs more than the arithmetic it parallelizes.
const MIN_ROWS_PER_THREAD: usize = 16;

/// Flop-count threshold (`m·k·n`) at or above which
/// [`crate::Tensor::matmul`] switches from the in-order `ikj` kernel to the
/// blocked, threaded kernel.
///
/// Originally `64³`, which `BENCH_tensor.json` showed was a regression at
/// the boundary: at exactly 64³ the blocked kernel's panel packing and
/// threading scaffolding cost ~1.6× over `ikj` (whose whole `b` operand
/// still fits in L1/L2 at that size). Raised to `96³` so every size ≤ 64³
/// routes to `ikj` while the shapes that actually benefit from packing
/// (≥ 128³, and the batched-serving stacks) keep the blocked path. Moving
/// the threshold is numerically free: per backend, [`matmul_blocked`] is
/// bit-identical to [`matmul_ikj`], so dispatch never changes results.
pub const BLOCKED_DISPATCH_THRESHOLD: usize = 96 * 96 * 96;

pub(crate) fn check_dims(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, who: &str) {
    assert_eq!(a.len(), m * k, "{who}: lhs has {} elements, expected m*k = {}", a.len(), m * k);
    assert_eq!(b.len(), k * n, "{who}: rhs has {} elements, expected k*n = {}", b.len(), k * n);
}

fn check_out(out: &[f32], m: usize, n: usize, who: &str) {
    assert_eq!(out.len(), m * n, "{who}: out has {} elements, expected m*n = {}", out.len(), m * n);
}

std::thread_local! {
    /// Per-thread reusable packing panel for the blocked kernel. The panel
    /// is scratch whose packed region is fully overwritten before every
    /// read, so reuse is invisible to the numerics; pooling it removes the
    /// last steady-state allocation from the blocked matmul on its calling
    /// thread (worker threads spawned by [`crate::par::for_each_row_chunk`]
    /// are short-lived and still allocate one panel per spawn).
    static PACK_PANEL: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` over this thread's reusable packing panel, grown to at least
/// `len` elements. Not reentrant (the kernels never nest matmuls).
pub(crate) fn with_panel<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_PANEL.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Textbook triple-loop matrix product `[m,k] × [k,n] → [m,n]`: one dot
/// product per output element, walking a column of `b` with stride `n`.
///
/// This is the *reference* kernel — the baseline every optimized kernel is
/// benchmarked against and property-tested to match. Its strided access to
/// `b` misses cache on every inner-loop iteration once `b` outgrows L1,
/// which is exactly what [`matmul_blocked`] fixes.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
///
/// # Examples
///
/// ```
/// use akg_tensor::ops::kernels::matmul_naive;
/// let c = matmul_naive(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2);
/// assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n, "matmul_naive");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// The seed repository's kernel: `i, p, j` loop order, accumulating
/// `a[i][p] × row_p(b)` into `row_i(out)` as a SAXPY. Streams `b` row-major
/// (cache-friendly, auto-vectorizable) but re-reads all of `b` for every
/// output row, so it degrades once `b` exceeds L2.
///
/// Kept public as a measurement baseline: `BENCH_tensor.json` records all
/// three kernels so the trajectory from naive → ikj → blocked stays visible.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
///
/// # Examples
///
/// ```
/// use akg_tensor::ops::kernels::{matmul_ikj, matmul_naive};
/// let (a, b) = ([1.0, -2.0, 0.5, 3.0], [2.0, 1.0, -1.0, 4.0]);
/// assert_eq!(matmul_ikj(&a, &b, 2, 2, 2), matmul_naive(&a, &b, 2, 2, 2));
/// ```
pub fn matmul_ikj(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n, "matmul_ikj");
    let mut out = vec![0.0f32; m * n];
    ikj_fill(&mut out, a, b, m, k, n);
    out
}

/// [`matmul_ikj`] writing into a caller-provided buffer (zeroed here) — the
/// allocation-free form the inference data plane uses. Bit-identical to the
/// allocating form under either backend.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_ikj_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, m, k, n, "matmul_ikj_into");
    check_out(out, m, n, "matmul_ikj_into");
    out.fill(0.0);
    ikj_fill(out, a, b, m, k, n);
}

/// The shared `ikj` kernel body over a zeroed output buffer.
fn ikj_fill(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    if simd::try_ikj_fill(out, a, b, m, k, n) {
        return;
    }
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
}

/// Cache-blocked, panel-packed, row-parallel matrix product
/// `[m,k] × [k,n] → [m,n]` — the hot-path kernel behind
/// [`Tensor::matmul`](crate::Tensor::matmul) for large operands.
///
/// For each `KC × NC` block of `b`, the block is packed into a contiguous
/// per-thread panel once and then reused across a whole strip of output
/// rows, turning the inner loop into a SAXPY over two L1-resident slices.
/// Output rows are split into contiguous strips across the configured
/// [`Parallelism`](crate::par::Parallelism) worker threads; each element is
/// accumulated over `k` in ascending order by exactly one thread, so the
/// result is bit-for-bit deterministic at any thread count.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
///
/// # Examples
///
/// ```
/// use akg_tensor::ops::kernels::{matmul_blocked, matmul_naive};
/// let a: Vec<f32> = (0..6).map(|v| v as f32 * 0.25).collect();
/// let b: Vec<f32> = (0..12).map(|v| 1.0 - v as f32 * 0.125).collect();
/// let fast = matmul_blocked(&a, &b, 2, 3, 4);
/// let slow = matmul_naive(&a, &b, 2, 3, 4);
/// for (f, s) in fast.iter().zip(&slow) {
///     assert!((f - s).abs() < 1e-6);
/// }
/// ```
pub fn matmul_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n, "matmul_blocked");
    let mut out = vec![0.0f32; m * n];
    blocked_fill(&mut out, a, b, m, k, n);
    out
}

/// [`matmul_blocked`] writing into a caller-provided buffer (zeroed here) —
/// the allocation-free form the inference data plane uses. Bit-identical to
/// the allocating form under either backend.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_blocked_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(a, b, m, k, n, "matmul_blocked_into");
    check_out(out, m, n, "matmul_blocked_into");
    out.fill(0.0);
    blocked_fill(out, a, b, m, k, n);
}

/// The shared blocked-kernel body over a zeroed output buffer.
fn blocked_fill(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Resolve the backend once for the whole kernel call: chunks of one
    // matmul must never mix SIMD and scalar arithmetic, even if another
    // thread re-configures the backend mid-call.
    let use_simd = crate::backend::simd_active();
    for_each_row_chunk(out, m, n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        if simd::try_blocked_fill(use_simd, a, b, k, n, row0, chunk) {
            return;
        }
        let rows = chunk.len() / n;
        with_panel(KC.min(k) * NC.min(n), |panel| {
            // k-blocks ascending on the outside keeps the per-element
            // accumulation order identical to the reference kernels.
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                for jc in (0..n).step_by(NC) {
                    let nc = NC.min(n - jc);
                    // Pack the KC×NC block of b into a contiguous panel.
                    for p in 0..kc {
                        let src = &b[(pc + p) * n + jc..(pc + p) * n + jc + nc];
                        panel[p * nc..(p + 1) * nc].copy_from_slice(src);
                    }
                    for ii in 0..rows {
                        let arow = &a[(row0 + ii) * k + pc..(row0 + ii) * k + pc + kc];
                        let orow = &mut chunk[ii * n + jc..ii * n + jc + nc];
                        for (p, &aip) in arow.iter().enumerate() {
                            // Zero-coefficient SAXPYs are skipped, matching
                            // `matmul_ikj` exactly — the forward result must not
                            // change when a product crosses the dispatch
                            // threshold (the skip is also where they differ on
                            // non-finite inputs: 0·Inf terms are dropped).
                            if aip == 0.0 {
                                continue;
                            }
                            let prow = &panel[p * nc..(p + 1) * nc];
                            for (o, bv) in orow.iter_mut().zip(prow) {
                                *o += aip * bv;
                            }
                        }
                    }
                }
            }
        });
    });
}

/// Unrolled dot product with four deterministic partial accumulators
/// (combined low-to-high), letting LLVM keep four independent FMA chains in
/// flight.
#[inline]
fn dot_unrolled(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let xs = &x[c * 4..c * 4 + 4];
        let ys = &y[c * 4..c * 4 + 4];
        for l in 0..4 {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in x[chunks * 4..].iter().zip(&y[chunks * 4..]) {
        tail += xv * yv;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Transposed-input fast path `A[m,k] × Bᵀ → [m,n]` where `b` holds `B`
/// row-major with shape `[n, k]` — every output element is a dot product of
/// two *contiguous* rows, so no transpose is ever materialized.
///
/// This is the backward pass's `dA = G × Bᵀ` (and attention's `Q × Kᵀ`)
/// without the `transpose_raw` copy the seed performed. Row-parallel and
/// deterministic like [`matmul_blocked`].
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != n*k`.
///
/// # Examples
///
/// ```
/// use akg_tensor::ops::kernels::{matmul_naive, matmul_nt};
/// // B = [[1, 2], [3, 4]] stored row-major; B^T = [[1, 3], [2, 4]].
/// let c = matmul_nt(&[1.0, 0.0, 0.0, 1.0], &[1.0, 2.0, 3.0, 4.0], 2, 2, 2);
/// assert_eq!(c, matmul_naive(&[1.0, 0.0, 0.0, 1.0], &[1.0, 3.0, 2.0, 4.0], 2, 2, 2));
/// ```
pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_nt: lhs has {} elements, expected m*k = {}", a.len(), m * k);
    assert_eq!(b.len(), n * k, "matmul_nt: rhs has {} elements, expected n*k = {}", b.len(), n * k);
    let mut out = vec![0.0f32; m * n];
    nt_fill(&mut out, a, b, m, k, n);
    out
}

/// [`matmul_nt`] writing into a caller-provided buffer — the
/// allocation-free form the inference data plane's attention path uses.
/// Every element is overwritten (dot-product fill), so the buffer need not
/// be zeroed. Bit-identical to the allocating form under either backend.
///
/// # Panics
///
/// Panics if `a.len() != m*k`, `b.len() != n*k`, or `out.len() != m*n`.
pub fn matmul_nt_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "matmul_nt_into: lhs has {} elements, expected m*k", a.len());
    assert_eq!(b.len(), n * k, "matmul_nt_into: rhs has {} elements, expected n*k", b.len());
    check_out(out, m, n, "matmul_nt_into");
    nt_fill(out, a, b, m, k, n);
}

/// The shared `nt` kernel body (overwrites every output element).
fn nt_fill(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    // One backend resolution per call — see `matmul_blocked`.
    let use_simd = crate::backend::simd_active();
    for_each_row_chunk(out, m, n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        if simd::try_nt_fill(use_simd, a, b, k, n, row0, chunk) {
            return;
        }
        let rows = chunk.len() / n;
        for ii in 0..rows {
            let arow = &a[(row0 + ii) * k..(row0 + ii + 1) * k];
            let orow = &mut chunk[ii * n..(ii + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_unrolled(arow, &b[j * k..(j + 1) * k]);
            }
        }
    });
}

/// Unrolled int8 dot product with four i32 partial accumulators. Integer
/// accumulation is *exact*, so any regrouping (this unroll, the AVX2 ladder
/// in [`super::simd`], a plain fold) produces the same i32 — which is why
/// the int8 plane's scalar ↔ SIMD contract is bit-identity rather than a
/// bounded divergence.
#[inline]
pub(crate) fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0i32; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let xs = &x[c * 4..c * 4 + 4];
        let ys = &y[c * 4..c * 4 + 4];
        for l in 0..4 {
            acc[l] += xs[l] as i32 * ys[l] as i32;
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (xv, yv) in x[chunks * 4..].iter().zip(&y[chunks * 4..]) {
        s += *xv as i32 * *yv as i32;
    }
    s
}

/// Int8 transposed-input matmul: `qa` holds quantized `A` rows (`[m,k]`
/// int8 codes with one scale per row) and `qbt` holds quantized `Bᵀ`
/// (`[n,k]` codes with one scale per stored row — i.e. per output channel,
/// the layout [`crate::quant::QuantizedMatrix`] produces). Every output
/// element is an exact i32 dot of two contiguous int8 rows, rescaled once:
/// `out[i,j] = dot · a_scale[i] · b_scale[j]`.
///
/// Row-parallel and deterministic like [`matmul_nt`]; additionally the
/// scalar and AVX2 paths are **bit-identical** (exact integer accumulation,
/// one identical f32 rescale expression), so the int8 plane carries a
/// stronger scalar ↔ SIMD contract than the f32 kernels.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_q8_nt_into(
    out: &mut [f32],
    qa: &[i8],
    a_scales: &[f32],
    qbt: &[i8],
    b_scales: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(qa.len(), m * k, "matmul_q8_nt_into: lhs has {} codes, expected m*k", qa.len());
    assert_eq!(qbt.len(), n * k, "matmul_q8_nt_into: rhs has {} codes, expected n*k", qbt.len());
    assert_eq!(a_scales.len(), m, "matmul_q8_nt_into: lhs scales len != m");
    assert_eq!(b_scales.len(), n, "matmul_q8_nt_into: rhs scales len != n");
    check_out(out, m, n, "matmul_q8_nt_into");
    if m == 0 || n == 0 {
        return;
    }
    // One backend resolution per call — see `matmul_blocked`.
    let use_simd = crate::backend::simd_active();
    for_each_row_chunk(out, m, n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        if simd::try_q8_nt_fill(use_simd, qa, a_scales, qbt, b_scales, k, n, row0, chunk) {
            return;
        }
        let rows = chunk.len() / n;
        for ii in 0..rows {
            let i = row0 + ii;
            let arow = &qa[i * k..(i + 1) * k];
            let ascale = a_scales[i];
            let orow = &mut chunk[ii * n..(ii + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let d = dot_i8(arow, &qbt[j * k..(j + 1) * k]);
                // Left-to-right, written identically in the AVX2 fill: the
                // rescale must round the same way on both backends.
                *o = d as f32 * ascale * b_scales[j];
            }
        }
    });
}

/// The int8 serving matmul: dynamically quantizes the f32 activation rows
/// `a` (symmetric per-row scales, see [`crate::quant::quantize_rows_i8`])
/// into caller-provided scratch, then runs [`matmul_q8_nt_into`] against a
/// pre-quantized weight. The scratch buffers come from the caller so the
/// hot path allocates nothing (lease them from a
/// [`Workspace`](crate::workspace::Workspace)).
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_q8_into(
    out: &mut [f32],
    a: &[f32],
    qbt: &[i8],
    b_scales: &[f32],
    m: usize,
    k: usize,
    n: usize,
    qa_scratch: &mut [i8],
    a_scales_scratch: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul_q8_into: lhs has {} elements, expected m*k", a.len());
    crate::quant::quantize_rows_i8(a, m, k, qa_scratch, a_scales_scratch);
    matmul_q8_nt_into(out, qa_scratch, a_scales_scratch, qbt, b_scales, m, k, n);
}

/// Transposed-input fast path `Aᵀ × B → [k,n]` where `a` is `[m,k]` and `b`
/// is `[m,n]`, both row-major — the backward pass's `dB = Aᵀ × G` without
/// materializing `Aᵀ`.
///
/// Row `p` of the output accumulates `a[i][p] · row_i(b)` over `i` in
/// ascending order; work is split across threads by output rows, so the
/// result is deterministic at any thread count.
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != m*n`.
///
/// # Examples
///
/// ```
/// use akg_tensor::ops::kernels::{matmul_naive, matmul_tn};
/// // A = [[1, 2]], so A^T = [[1], [2]].
/// let c = matmul_tn(&[1.0, 2.0], &[3.0, 4.0], 1, 2, 2);
/// assert_eq!(c, matmul_naive(&[1.0, 2.0], &[3.0, 4.0], 2, 1, 2));
/// ```
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_tn: lhs has {} elements, expected m*k = {}", a.len(), m * k);
    assert_eq!(b.len(), m * n, "matmul_tn: rhs has {} elements, expected m*n = {}", b.len(), m * n);
    let mut out = vec![0.0f32; k * n];
    if k == 0 || n == 0 {
        return out;
    }
    // One backend resolution per call — see `matmul_blocked`.
    let use_simd = crate::backend::simd_active();
    for_each_row_chunk(&mut out, k, n, MIN_ROWS_PER_THREAD, |p0, chunk| {
        if simd::try_tn_fill(use_simd, a, b, m, k, n, p0, chunk) {
            return;
        }
        let prows = chunk.len() / n;
        for i in 0..m {
            // a[i][p0..p0+prows] is a contiguous row segment of A.
            let aseg = &a[i * k + p0..i * k + p0 + prows];
            let brow = &b[i * n..(i + 1) * n];
            for (pp, &aip) in aseg.iter().enumerate() {
                if aip == 0.0 {
                    continue;
                }
                let orow = &mut chunk[pp * n..(pp + 1) * n];
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += aip * bv;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..len).map(f).collect()
    }

    fn assert_close(x: &[f32], y: &[f32], tol: f32) {
        assert_eq!(x.len(), y.len());
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert!((a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0), "[{i}] {a} vs {b}");
        }
    }

    #[test]
    fn all_kernels_agree_on_odd_sizes() {
        // Deliberately awkward dims: not multiples of any block size. The
        // 1e-5 tolerance is the documented kernel contract: under the SIMD
        // backend the FMA contraction diverges from the naive reference by
        // more than strict ULP equality but stays well inside 1e-5.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (17, 33, 9), (65, 130, 195), (2, 200, 3)] {
            let a = filled(m * k, |i| ((i * 37 % 19) as f32 - 9.0) * 0.11);
            let b = filled(k * n, |i| ((i * 23 % 17) as f32 - 8.0) * 0.13);
            let reference = matmul_naive(&a, &b, m, k, n);
            assert_close(&matmul_ikj(&a, &b, m, k, n), &reference, 1e-5);
            assert_close(&matmul_blocked(&a, &b, m, k, n), &reference, 1e-5);
        }
    }

    #[test]
    fn blocked_is_bit_identical_to_ikj_under_active_backend() {
        // The dispatch invariant: whatever backend is active, crossing the
        // size threshold must not change a single bit. (Lock out concurrent
        // tests that flip the backend mid-comparison.)
        let _guard = crate::backend::test_lock();
        for (m, k, n) in [(3, 5, 7), (17, 33, 9), (65, 130, 195), (40, 64, 96)] {
            let a = filled(m * k, |i| ((i * 37 % 19) as f32 - 9.0) * 0.11);
            let b = filled(k * n, |i| ((i * 23 % 17) as f32 - 8.0) * 0.13);
            assert_eq!(matmul_blocked(&a, &b, m, k, n), matmul_ikj(&a, &b, m, k, n));
        }
    }

    #[test]
    fn nt_matches_naive_on_pretransposed_input() {
        let (m, k, n) = (9, 31, 14);
        let a = filled(m * k, |i| (i as f32).sin());
        let bt = filled(n * k, |i| (i as f32 * 0.3).cos());
        // Build B = (Bᵀ)ᵀ explicitly for the reference.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        assert_close(&matmul_nt(&a, &bt, m, k, n), &matmul_naive(&a, &b, m, k, n), 1e-5);
    }

    #[test]
    fn tn_matches_naive_on_pretransposed_input() {
        let (m, k, n) = (13, 8, 21);
        let a = filled(m * k, |i| (i as f32 * 0.7).sin());
        let g = filled(m * n, |i| (i as f32 * 0.2).cos());
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        assert_close(&matmul_tn(&a, &g, m, k, n), &matmul_naive(&at, &g, k, m, n), 1e-5);
    }

    #[test]
    fn blocked_is_deterministic_across_thread_counts() {
        use crate::par::{set_parallelism, Parallelism};
        let _guard = crate::backend::test_lock();
        let (m, k, n) = (70, 40, 50);
        let a = filled(m * k, |i| ((i % 11) as f32 - 5.0) * 0.17);
        let b = filled(k * n, |i| ((i % 7) as f32 - 3.0) * 0.23);
        set_parallelism(Parallelism::Threads(1));
        let one = matmul_blocked(&a, &b, m, k, n);
        for t in [2, 4, 7] {
            set_parallelism(Parallelism::Threads(t));
            assert_eq!(one, matmul_blocked(&a, &b, m, k, n), "threads={t}");
            assert_eq!(
                matmul_nt(&a, &b, m, k, n),
                matmul_nt(&a, &b, m, k, n),
                "nt not reproducible at threads={t}"
            );
        }
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn q8_nt_matches_dequantized_f32_product_exactly() {
        // The int8 kernel must equal the f32 product of the *decoded*
        // operands: quantization is the only approximation, the integer
        // matmul itself is exact (i32 dots, one f32 rescale).
        let _guard = crate::backend::test_lock();
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (9, 33, 14), (17, 130, 21)] {
            let a = filled(m * k, |i| ((i * 37 % 19) as f32 - 9.0) * 0.11);
            let b = filled(k * n, |i| ((i * 23 % 17) as f32 - 8.0) * 0.13);
            let qb = crate::quant::QuantizedMatrix::from_row_major(&b, k, n);
            let mut qa = vec![0i8; m * k];
            let mut a_scales = vec![0.0f32; m];
            let mut out = vec![0.0f32; m * n];
            matmul_q8_into(&mut out, &a, qb.data(), qb.scales(), m, k, n, &mut qa, &mut a_scales);
            // Reference: exact integer dot, rescaled the same way.
            for i in 0..m {
                for j in 0..n {
                    let d = dot_i8(&qa[i * k..(i + 1) * k], &qb.data()[j * k..(j + 1) * k]);
                    let expect = d as f32 * a_scales[i] * qb.scales()[j];
                    assert_eq!(out[i * n + j], expect, "[{i},{j}] at {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn q8_approximates_f32_matmul_within_quantization_error() {
        let _guard = crate::backend::test_lock();
        let (m, k, n) = (11, 64, 23);
        let a = filled(m * k, |i| ((i * 41 % 29) as f32 - 14.0) * 0.05);
        let b = filled(k * n, |i| ((i * 31 % 37) as f32 - 18.0) * 0.04);
        let qb = crate::quant::QuantizedMatrix::from_row_major(&b, k, n);
        let mut qa = vec![0i8; m * k];
        let mut a_scales = vec![0.0f32; m];
        let mut out = vec![0.0f32; m * n];
        matmul_q8_into(&mut out, &a, qb.data(), qb.scales(), m, k, n, &mut qa, &mut a_scales);
        let reference = matmul_naive(&a, &b, m, k, n);
        // Worst-case error per element: each of the k terms carries at most
        // (|a|·sb/2 + |b|·sa/2 + sa·sb/4) rounding error. Bound it loosely
        // with the operands' max magnitudes.
        let amax = a.iter().fold(0.0f32, |s, v| s.max(v.abs()));
        let bmax = b.iter().fold(0.0f32, |s, v| s.max(v.abs()));
        let per_term =
            amax * (bmax / 254.0) + bmax * (amax / 254.0) + amax * bmax / (127.0 * 254.0);
        let bound = k as f32 * per_term * 1.01;
        for (i, (q8, f)) in out.iter().zip(&reference).enumerate() {
            assert!((q8 - f).abs() <= bound, "[{i}] int8 {q8} vs f32 {f}, bound {bound}");
        }
    }

    #[test]
    fn q8_nt_is_deterministic_across_thread_counts() {
        use crate::par::{set_parallelism, Parallelism};
        let _guard = crate::backend::test_lock();
        let (m, k, n) = (70, 40, 50);
        let a = filled(m * k, |i| ((i % 11) as f32 - 5.0) * 0.17);
        let b = filled(k * n, |i| ((i % 7) as f32 - 3.0) * 0.23);
        let qb = crate::quant::QuantizedMatrix::from_row_major(&b, k, n);
        let mut qa = vec![0i8; m * k];
        let mut a_scales = vec![0.0f32; m];
        crate::quant::quantize_rows_i8(&a, m, k, &mut qa, &mut a_scales);
        set_parallelism(Parallelism::Threads(1));
        let mut one = vec![0.0f32; m * n];
        matmul_q8_nt_into(&mut one, &qa, &a_scales, qb.data(), qb.scales(), m, k, n);
        for t in [2, 4, 7] {
            set_parallelism(Parallelism::Threads(t));
            let mut many = vec![0.0f32; m * n];
            matmul_q8_nt_into(&mut many, &qa, &a_scales, qb.data(), qb.scales(), m, k, n);
            assert_eq!(one, many, "threads={t}");
        }
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn q8_zero_dims_are_noops() {
        let mut out: Vec<f32> = Vec::new();
        matmul_q8_nt_into(&mut out, &[], &[], &[], &[], 0, 3, 0);
        // k == 0: dots are empty, output all zeros (0 · scales).
        let mut out = vec![7.0f32; 4];
        matmul_q8_nt_into(&mut out, &[], &[1.0, 1.0], &[], &[1.0, 1.0], 2, 0, 2);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "expected m*k")]
    fn q8_rejects_bad_lhs() {
        let mut out = vec![0.0f32; 4];
        matmul_q8_nt_into(&mut out, &[0i8; 5], &[1.0; 2], &[0i8; 6], &[1.0; 2], 2, 3, 2);
    }

    #[test]
    fn zero_dims_produce_empty_or_zero() {
        assert!(matmul_blocked(&[], &[0.0; 12], 0, 3, 4).is_empty());
        assert_eq!(matmul_blocked(&[0.0; 6], &[], 2, 3, 0), Vec::<f32>::new());
        // k == 0: inner dim empty, output is all zeros.
        assert_eq!(matmul_blocked(&[], &[], 2, 0, 2), vec![0.0; 4]);
        assert_eq!(matmul_naive(&[], &[], 2, 0, 2), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "expected m*k")]
    fn blocked_rejects_bad_lhs() {
        let _ = matmul_blocked(&[1.0; 5], &[1.0; 6], 2, 3, 2);
    }

    #[test]
    #[should_panic(expected = "expected k*n")]
    fn naive_rejects_bad_rhs() {
        let _ = matmul_naive(&[1.0; 6], &[1.0; 5], 2, 3, 2);
    }
}
