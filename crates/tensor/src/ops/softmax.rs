//! Row-wise softmax, log-softmax and cross-entropy loss.
//!
//! The fused kernel's scale, mask, max, and normalize steps run through the
//! SIMD primitives when the SIMD backend is active. Every one of those steps
//! is per-lane-exact (mul/add/max/div) and the exp+sum pass stays scalar, so
//! the softmax *forward* is bit-identical under both backends — only the
//! backward's `Σ g·y` reduction reorders (within the property-tested 1e-4).

use crate::ops::simd;
use crate::tensor::Tensor;

fn check_2d(x: &Tensor, op: &str) -> (usize, usize) {
    let shape = x.shape();
    assert_eq!(shape.len(), 2, "{op}: expected 2-D tensor, got {shape:?}");
    (shape[0], shape[1])
}

impl Tensor {
    /// Numerically-stable softmax over each row of an `[m, n]` tensor.
    ///
    /// Equivalent to [`Tensor::softmax_rows_scaled_masked`] with scale `1.0`
    /// and no mask.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        self.softmax_rows_scaled_masked(1.0, None)
    }

    /// Fused `softmax(self · scale + mask)` over each row of an `[m, n]`
    /// tensor — attention's scale-mask-normalize sequence as a single graph
    /// node.
    ///
    /// The composed form `x.mul_scalar(scale).add_const(mask).softmax_rows()`
    /// allocates two intermediate `[m, n]` tensors and records three backward
    /// closures per call; the fused kernel does one pass over one buffer and
    /// records one closure (and skips the backward bookkeeping entirely when
    /// the input is untracked, e.g. during eval-mode scoring). The backward
    /// pass is the softmax Jacobian product followed by the scale:
    /// `dx = scale · y · (g − Σ g·y)` per row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D, or if `mask` is given and its length
    /// is not `m·n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use akg_tensor::Tensor;
    /// let x = Tensor::from_vec(vec![0.0, 1.0, 8.0, 8.0], &[2, 2]);
    /// let mask = [0.0, -1e9, 0.0, 0.0]; // row 0 may only see column 0
    /// let y = x.softmax_rows_scaled_masked(0.5, Some(&mask)).to_vec();
    /// assert!((y[0] - 1.0).abs() < 1e-6 && y[1] < 1e-6);
    /// assert!((y[2] - 0.5).abs() < 1e-6);
    /// ```
    pub fn softmax_rows_scaled_masked(&self, scale: f32, mask: Option<&[f32]>) -> Tensor {
        let (m, n) = check_2d(self, "softmax_rows_scaled_masked");
        if let Some(mk) = mask {
            assert_eq!(mk.len(), m * n, "softmax_rows_scaled_masked: mask must have m*n entries");
        }
        let mut data = self.to_vec();
        for r in 0..m {
            let row = &mut data[r * n..(r + 1) * n];
            if scale != 1.0 {
                simd::inplace_scale(row, scale);
            }
            if let Some(mk) = mask {
                simd::inplace_add(row, &mk[r * n..(r + 1) * n]);
            }
            let max = simd::row_max(row);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            simd::inplace_div_scalar(row, sum);
        }
        // The backward closure needs the output; clone it only when gradients
        // can actually flow (eval-mode scoring skips the copy).
        let y = if self.is_tracked() { data.clone() } else { Vec::new() };
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone()],
            Box::new(move |g| {
                // dx = scale * y * (g - sum(g*y)) per row
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    let gr = &g[r * n..(r + 1) * n];
                    let yr = &y[r * n..(r + 1) * n];
                    let dot = simd::row_dot_nofma(gr, yr);
                    simd::softmax_bwd_row(&mut dx[r * n..(r + 1) * n], yr, gr, dot, scale);
                }
                vec![dx]
            }),
        )
    }

    /// Numerically-stable log-softmax over each row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn log_softmax_rows(&self) -> Tensor {
        let (m, n) = check_2d(self, "log_softmax_rows");
        let a = self.to_vec();
        let mut data = vec![0.0f32; m * n];
        // The backward closure needs the softmax; materialize it only when
        // gradients can actually flow.
        let tracked = self.is_tracked();
        let mut soft = vec![0.0f32; if tracked { m * n } else { 0 }];
        for r in 0..m {
            let row = &a[r * n..(r + 1) * n];
            let max = simd::row_max(row);
            let mut sum = 0.0f32;
            for &v in row {
                sum += (v - max).exp();
            }
            let log_sum = sum.ln() + max;
            for c in 0..n {
                data[r * n + c] = row[c] - log_sum;
                if tracked {
                    soft[r * n + c] = (row[c] - log_sum).exp();
                }
            }
        }
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone()],
            Box::new(move |g| {
                // dx = g - softmax * sum(g) per row
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    let gsum: f32 = g[r * n..(r + 1) * n].iter().sum();
                    for c in 0..n {
                        dx[r * n + c] = g[r * n + c] - soft[r * n + c] * gsum;
                    }
                }
                vec![dx]
            }),
        )
    }

    /// Mean cross-entropy between row logits and integer class targets.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D, `targets.len()` mismatches the row
    /// count, or a target is out of range.
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        let (m, n) = check_2d(self, "cross_entropy");
        assert_eq!(targets.len(), m, "cross_entropy: need one target per row");
        for &t in targets {
            assert!(t < n, "cross_entropy: target {t} out of range for {n} classes");
        }
        let log_probs = self.log_softmax_rows();
        // pick log p[target] per row via a constant one-hot mask
        let mut mask = vec![0.0f32; m * n];
        for (r, &t) in targets.iter().enumerate() {
            mask[r * n + t] = 1.0;
        }
        log_probs.mul_const(&mask).sum_all().mul_scalar(-1.0 / m as f32)
    }

    /// Mean cross-entropy against *soft* target distributions (one row of
    /// probabilities per example). Used for pseudo-label adaptation where
    /// label confidence is fractional.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn cross_entropy_soft(&self, targets: &Tensor) -> Tensor {
        let (m, _n) = check_2d(self, "cross_entropy_soft");
        assert_eq!(self.shape(), targets.shape(), "cross_entropy_soft: shape mismatch");
        let t = targets.to_vec();
        self.log_softmax_rows().mul_const(&t).sum_all().mul_scalar(-1.0 / m as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 10.0, 10.0], &[2, 3]);
        let y = x.softmax_rows().to_vec();
        let s0: f32 = y[0..3].iter().sum();
        let s1: f32 = y[3..6].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        assert!((y[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let y = x.softmax_rows().to_vec();
        let xs = Tensor::from_vec(vec![101.0, 102.0], &[1, 2]);
        let ys = xs.softmax_rows().to_vec();
        assert!((y[0] - ys[0]).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let a = x.log_softmax_rows().to_vec();
        let b: Vec<f32> = x.softmax_rows().to_vec().iter().map(|v| v.ln()).collect();
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let x = Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]);
        let loss = x.cross_entropy(&[0]);
        assert!(loss.item() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_n() {
        let x = Tensor::from_vec(vec![0.0; 4], &[1, 4]);
        let loss = x.cross_entropy(&[2]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let x = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).requires_grad(true);
        let loss = x.cross_entropy(&[1]);
        loss.backward();
        let g = x.grad().unwrap();
        assert!((g[0] - 0.5).abs() < 1e-5);
        assert!((g[1] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn soft_targets_match_hard_when_onehot() {
        let x = Tensor::from_vec(vec![0.3, -0.2, 1.0, 0.5, 0.5, 0.5], &[2, 3]);
        let hard = x.cross_entropy(&[2, 0]);
        let soft_targets = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0], &[2, 3]);
        let soft = x.cross_entropy_soft(&soft_targets);
        assert!((hard.item() - soft.item()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_target() {
        let x = Tensor::zeros(&[1, 2]);
        let _ = x.cross_entropy(&[5]);
    }
}
