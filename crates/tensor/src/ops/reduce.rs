//! Reductions: sums and means over all elements or one axis of a 2-D tensor.
//!
//! Row-wise sums (`sum_all`, `sum_axis1`) go through the crate's canonical
//! row-sum primitive — sequential under the scalar backend, lane-parallel
//! partial sums under SIMD. Column sums (`sum_axis0`) accumulate whole rows
//! with the lane-exact add, so they are bit-identical under both backends
//! (each column is still summed rows-ascending).

use crate::ops::simd;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements, returned as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        let n = self.numel();
        let s = simd::row_sum(&self.to_vec());
        Tensor::from_op(vec![s], &[1], vec![self.clone()], Box::new(move |g| vec![vec![g[0]; n]]))
    }

    /// Mean of all elements, returned as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.numel();
        self.sum_all().mul_scalar(1.0 / n as f32)
    }

    /// Column sums of an `[m, n]` tensor, producing `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_axis0(&self) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "sum_axis0: expected 2-D tensor, got {s:?}");
        let (m, n) = (s[0], s[1]);
        let a = self.to_vec();
        let mut out = vec![0.0f32; n];
        for r in 0..m {
            simd::vadd_assign(&mut out, &a[r * n..(r + 1) * n]);
        }
        Tensor::from_op(
            out,
            &[n],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    dx[r * n..(r + 1) * n].copy_from_slice(g);
                }
                vec![dx]
            }),
        )
    }

    /// Column means of an `[m, n]` tensor, producing `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn mean_axis0(&self) -> Tensor {
        let m = self.shape()[0];
        self.sum_axis0().mul_scalar(1.0 / m as f32)
    }

    /// Row sums of an `[m, n]` tensor, producing `[m]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_axis1(&self) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "sum_axis1: expected 2-D tensor, got {s:?}");
        let (m, n) = (s[0], s[1]);
        let a = self.to_vec();
        let mut out = vec![0.0f32; m];
        for (r, o) in out.iter_mut().enumerate() {
            *o = simd::row_sum(&a[r * n..(r + 1) * n]);
        }
        Tensor::from_op(
            out,
            &[m],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    for c in 0..n {
                        dx[r * n + c] = g[r];
                    }
                }
                vec![dx]
            }),
        )
    }

    /// Row means of an `[m, n]` tensor, producing `[m]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn mean_axis1(&self) -> Tensor {
        let n = self.shape()[1];
        self.sum_axis1().mul_scalar(1.0 / n as f32)
    }

    /// Squared L2 norm of all elements, as a scalar tensor.
    pub fn sq_norm(&self) -> Tensor {
        self.square().sum_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_all() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        assert_eq!(x.sum_all().item(), 10.0);
        assert_eq!(x.mean_all().item(), 2.5);
        let y = x.mean_all();
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn axis0_reductions() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        assert_eq!(x.sum_axis0().to_vec(), vec![4.0, 6.0]);
        assert_eq!(x.mean_axis0().to_vec(), vec![2.0, 3.0]);
        x.sum_axis0().sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn axis1_reductions() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        assert_eq!(x.sum_axis1().to_vec(), vec![3.0, 7.0]);
        assert_eq!(x.mean_axis1().to_vec(), vec![1.5, 3.5]);
    }

    #[test]
    fn sum_axis1_gradient_broadcast() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        // weight rows differently to check the broadcast
        let w = Tensor::from_vec(vec![1.0, 10.0], &[2]);
        x.sum_axis1().mul(&w).sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 1.0, 10.0, 10.0]);
    }

    #[test]
    fn sq_norm_value() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(x.sq_norm().item(), 25.0);
    }
}
