//! Differentiable tensor operations.
//!
//! Every op builds its output via [`Tensor::from_op`], recording parents and a
//! backward closure. Ops are grouped by kind:
//!
//! - [`binary`]: elementwise same-shape arithmetic
//! - [`unary`]: elementwise maps and activations
//! - [`broadcast`]: row/column broadcasting arithmetic
//! - [`matmul`]: 2-D matrix products and transpose
//! - [`reduce`]: sums and means over axes
//! - [`shape`]: reshape, concatenation, slicing
//! - [`gather`]: row gathers and scatter-adds (embedding lookups, message
//!   passing)
//! - [`softmax`]: row softmax (plain and fused scale+mask), log-softmax and
//!   cross-entropy
//! - [`layernorm`]: fused layer normalization (forward + analytic backward
//!   as one graph node)
//! - [`kernels`]: raw blocked/threaded matmul kernels the ops dispatch to
//!   (public so benches and property tests can compare against the naive
//!   reference directly)
//!
//! The hot ops additionally dispatch between portable scalar loops and
//! AVX2+FMA SIMD implementations (the crate-private `simd` module) according
//! to the process-wide [`crate::backend::Backend`] setting.

pub mod binary;
pub mod broadcast;
pub mod gather;
pub mod kernels;
pub mod layernorm;
pub mod matmul;
pub mod reduce;
pub mod shape;
pub(crate) mod simd;
pub mod softmax;
pub mod unary;
