//! Fused layer normalization: forward, gradient, and parameter gradients as
//! a single graph node.
//!
//! The composed formulation (`mean_axis1` → `add_col` → `square` →
//! `mean_axis1` → `add_scalar` → `sqrt` → `recip` → `mul_col` → `mul_bias`
//! → `add_bias`) records nine ops and captures roughly six `[m, n]`-sized
//! intermediate buffers per forward. The fused op does two passes over one
//! buffer, captures only the normalized activations plus the per-row
//! inverse standard deviations, and computes the full analytic backward in
//! one sweep. Its forward arithmetic follows the composed chain
//! element-for-element, so switching `nn::norm::LayerNorm` to the fused op
//! changed no eval-mode output bit.
//!
//! Under the SIMD backend the row reductions (mean, variance, and the two
//! backward means) run through the shared lane-parallel primitives in
//! `ops::simd` — the same functions `sum_axis1` uses, so the fused op stays
//! bit-identical to the composed chain *within* each backend even though
//! the two backends round the reductions differently.

use crate::ops::simd;
use crate::tensor::Tensor;

impl Tensor {
    /// Fused layer normalization over the columns of each row of an
    /// `[m, n]` tensor: `y = (x − μ_r) / √(σ²_r + eps) · gamma + beta`,
    /// with per-row mean `μ_r` and biased variance `σ²_r`.
    ///
    /// This is the kernel behind [`crate::nn::norm::LayerNorm`]; gradients
    /// flow to `self`, `gamma`, and `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `gamma`/`beta` are not `[n]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use akg_tensor::Tensor;
    /// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
    /// let y = x.layer_norm(&Tensor::ones(&[3]), &Tensor::zeros(&[3]), 1e-5).to_vec();
    /// let mean: f32 = y.iter().sum::<f32>() / 3.0;
    /// assert!(mean.abs() < 1e-6); // row is centered...
    /// assert!(y[2] > y[1] && y[1] > y[0]); // ...and order-preserving
    /// ```
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let shape = self.shape();
        assert_eq!(shape.len(), 2, "layer_norm: expected 2-D tensor, got {shape:?}");
        let (m, n) = (shape[0], shape[1]);
        assert_eq!(gamma.shape(), vec![n], "layer_norm: gamma must be [n]");
        assert_eq!(beta.shape(), vec![n], "layer_norm: beta must be [n]");
        assert!(n > 0, "layer_norm: rows must be non-empty");

        let gamma_v = gamma.to_vec();
        let beta_v = beta.to_vec();
        let inv_n = 1.0 / n as f32;
        let mut data = self.to_vec();
        let mut inv_std = vec![0.0f32; m];

        let tracked = self.is_tracked() || gamma.is_tracked() || beta.is_tracked();
        // Normalized activations x̂ (pre-gamma/beta), captured for backward.
        let mut xhat = vec![0.0f32; if tracked { m * n } else { 0 }];

        for r in 0..m {
            let row = &mut data[r * n..(r + 1) * n];
            let mean = simd::row_sum(row) * inv_n;
            // x + (-mean) is bitwise x - mean, which lets the centering share
            // the lane-exact add primitive.
            simd::inplace_add_scalar(row, -mean);
            let var = simd::row_dot_nofma(row, row) * inv_n;
            let is = 1.0 / (var + eps).sqrt();
            inv_std[r] = is;
            for (c, v) in row.iter_mut().enumerate() {
                let normalized = *v * is;
                if tracked {
                    xhat[r * n + c] = normalized;
                }
                *v = normalized * gamma_v[c] + beta_v[c];
            }
        }

        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                let mut dgamma = vec![0.0f32; n];
                let mut dbeta = vec![0.0f32; n];
                // dh = dL/dx̂ = g · gamma, materialized once per row; the two
                // row means below are the mean-subtraction and variance
                // terms of the layer-norm Jacobian.
                let mut dh = vec![0.0f32; n];
                for r in 0..m {
                    let gr = &g[r * n..(r + 1) * n];
                    let xr = &xhat[r * n..(r + 1) * n];
                    simd::vmul_into(&mut dh, gr, &gamma_v);
                    let mean_dh = simd::row_sum(&dh) * inv_n;
                    let mean_dh_xhat = simd::row_dot_nofma(&dh, xr) * inv_n;
                    simd::add_prod_assign(&mut dgamma, gr, xr);
                    simd::vadd_assign(&mut dbeta, gr);
                    simd::layernorm_bwd_dx_row(
                        &mut dx[r * n..(r + 1) * n],
                        &dh,
                        xr,
                        mean_dh,
                        mean_dh_xhat,
                        inv_std[r],
                    );
                }
                vec![dx, dgamma, dbeta]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::gradcheck;

    /// The composed-op formulation the fused kernel replaces, kept as the
    /// reference implementation for equivalence tests.
    fn layer_norm_composed(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let mean = x.mean_axis1();
        let centered = x.add_col(&mean.neg());
        let var = centered.square().mean_axis1();
        let inv_std = var.add_scalar(eps).sqrt().recip();
        centered.mul_col(&inv_std).mul_bias(gamma).add_bias(beta)
    }

    #[test]
    fn fused_forward_is_bit_identical_to_composed() {
        let _guard = crate::backend::test_lock();
        let x = Tensor::from_vec(
            vec![1.0, -2.5, 3.25, 0.125, 7.5, -0.75, 2.0, 4.5, -1.0, 0.5, 0.25, -3.5],
            &[3, 4],
        );
        let gamma = Tensor::from_vec(vec![1.5, 0.5, -1.0, 2.0], &[4]);
        let beta = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.0], &[4]);
        let fused = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        let composed = layer_norm_composed(&x, &gamma, &beta, 1e-5).to_vec();
        assert_eq!(fused, composed, "fused forward must match the composed chain exactly");
    }

    #[test]
    fn fused_backward_matches_finite_differences() {
        let x =
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75], &[2, 3]).requires_grad(true);
        let gamma = Tensor::from_vec(vec![1.2, 0.8, -0.5], &[3]).requires_grad(true);
        let beta = Tensor::from_vec(vec![0.0, 0.1, -0.1], &[3]).requires_grad(true);
        let report = gradcheck(
            &[x, gamma, beta],
            |ls| ls[0].layer_norm(&ls[1], &ls[2], 1e-5).square().sum_all(),
            1e-2,
        );
        assert!(report.passes(2e-2), "max rel error {}", report.max_rel_error);
    }

    #[test]
    fn fused_backward_matches_composed_backward() {
        let data = vec![0.3, 1.7, -0.9, 2.1, 0.05, -1.3, 0.8, 0.8];
        let gamma_d = vec![1.0, -0.5, 2.0, 0.25];
        let beta_d = vec![0.5, 0.0, -0.5, 1.0];

        let x1 = Tensor::from_vec(data.clone(), &[2, 4]).requires_grad(true);
        let g1 = Tensor::from_vec(gamma_d.clone(), &[4]).requires_grad(true);
        let b1 = Tensor::from_vec(beta_d.clone(), &[4]).requires_grad(true);
        x1.layer_norm(&g1, &b1, 1e-5).square().sum_all().backward();

        let x2 = Tensor::from_vec(data, &[2, 4]).requires_grad(true);
        let g2 = Tensor::from_vec(gamma_d, &[4]).requires_grad(true);
        let b2 = Tensor::from_vec(beta_d, &[4]).requires_grad(true);
        layer_norm_composed(&x2, &g2, &b2, 1e-5).square().sum_all().backward();

        for (pair, name) in [((x1, x2), "dx"), ((g1, g2), "dgamma"), ((b1, b2), "dbeta")] {
            let (fused, composed) = (pair.0.grad().unwrap(), pair.1.grad().unwrap());
            for (f, c) in fused.iter().zip(&composed) {
                assert!((f - c).abs() < 1e-4, "{name}: {f} vs {c}");
            }
        }
    }

    #[test]
    fn untracked_input_skips_backward_capture() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.layer_norm(&Tensor::ones(&[2]), &Tensor::zeros(&[2]), 1e-5);
        assert!(!y.is_tracked());
    }

    #[test]
    #[should_panic(expected = "gamma must be [n]")]
    fn rejects_mismatched_gamma() {
        let x = Tensor::zeros(&[2, 3]);
        let _ = x.layer_norm(&Tensor::ones(&[2]), &Tensor::zeros(&[3]), 1e-5);
    }
}
