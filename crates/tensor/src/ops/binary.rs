//! Elementwise binary operations on same-shape tensors, plus scalar variants.
//!
//! Forward maps (and the cheap backward maps) run through the lane-exact
//! SIMD primitives when the SIMD backend is active: add/sub/mul/div round
//! identically per lane and per scalar, so results match the scalar backend
//! bit-for-bit.

use crate::ops::simd;
use crate::tensor::Tensor;

fn assert_same_shape(a: &Tensor, b: &Tensor, op: &str) {
    assert_eq!(a.shape(), b.shape(), "{op}: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
}

impl Tensor {
    /// Elementwise addition. Shapes must match exactly; see
    /// [`Tensor::add_bias`] for row broadcasting.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_same_shape(self, other, "add");
        let a = self.to_vec();
        let b = other.to_vec();
        let data = simd::vadd(&a, &b);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![g.to_vec(), g.to_vec()]),
        )
    }

    /// Elementwise subtraction (`self - other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_same_shape(self, other, "sub");
        let a = self.to_vec();
        let b = other.to_vec();
        let data = simd::vsub(&a, &b);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![g.to_vec(), simd::vmul_scalar(g, -1.0)]),
        )
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_same_shape(self, other, "mul");
        let a = self.to_vec();
        let b = other.to_vec();
        let data = simd::vmul(&a, &b);
        let (ac, bc) = (a, b);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![simd::vmul(g, &bc), simd::vmul(g, &ac)]),
        )
    }

    /// Elementwise division (`self / other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch. Division by zero follows IEEE semantics.
    pub fn div(&self, other: &Tensor) -> Tensor {
        assert_same_shape(self, other, "div");
        let a = self.to_vec();
        let b = other.to_vec();
        let data = simd::vdiv(&a, &b);
        let (ac, bc) = (a, b);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let da = simd::vdiv(g, &bc);
                let db: Vec<f32> = g
                    .iter()
                    .zip(ac.iter().zip(&bc))
                    .map(|(gi, (ai, bi))| -gi * ai / (bi * bi))
                    .collect();
                vec![da, db]
            }),
        )
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let data = simd::vadd_scalar(&self.to_vec(), s);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone()],
            Box::new(move |g| vec![g.to_vec()]),
        )
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let data = simd::vmul_scalar(&self.to_vec(), s);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone()],
            Box::new(move |g| vec![simd::vmul_scalar(g, s)]),
        )
    }

    /// Adds a constant (non-differentiable) array elementwise; useful for
    /// attention masks.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` mismatches the element count.
    pub fn add_const(&self, values: &[f32]) -> Tensor {
        assert_eq!(self.numel(), values.len(), "add_const length mismatch");
        let data = simd::vadd(&self.to_vec(), values);
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone()],
            Box::new(move |g| vec![g.to_vec()]),
        )
    }

    /// Elementwise multiply by a constant (non-differentiable) array.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` mismatches the element count.
    pub fn mul_const(&self, values: &[f32]) -> Tensor {
        assert_eq!(self.numel(), values.len(), "mul_const length mismatch");
        let data = simd::vmul(&self.to_vec(), values);
        let vc = values.to_vec();
        Tensor::from_op(
            data,
            &self.shape(),
            vec![self.clone()],
            Box::new(move |g| vec![simd::vmul(g, &vc)]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).requires_grad(true)
    }

    #[test]
    fn add_forward_backward() {
        let a = leaf(vec![1.0, 2.0]);
        let b = leaf(vec![3.0, 4.0]);
        let c = a.add(&b).sum_all();
        assert_eq!(c.item(), 10.0);
        c.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn sub_backward_negates() {
        let a = leaf(vec![5.0]);
        let b = leaf(vec![3.0]);
        let c = a.sub(&b);
        c.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0]);
        assert_eq!(b.grad().unwrap(), vec![-1.0]);
    }

    #[test]
    fn mul_product_rule() {
        let a = leaf(vec![2.0, 3.0]);
        let b = leaf(vec![5.0, 7.0]);
        let c = a.mul(&b).sum_all();
        assert_eq!(c.item(), 31.0);
        c.backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn div_quotient_rule() {
        let a = leaf(vec![6.0]);
        let b = leaf(vec![2.0]);
        let c = a.div(&b);
        assert_eq!(c.item(), 3.0);
        c.backward();
        assert_eq!(a.grad().unwrap(), vec![0.5]);
        assert_eq!(b.grad().unwrap(), vec![-1.5]);
    }

    #[test]
    fn scalar_ops() {
        let a = leaf(vec![1.0, -1.0]);
        let y = a.mul_scalar(3.0).add_scalar(1.0).sum_all();
        assert_eq!(y.item(), 2.0);
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn const_ops_pass_gradients() {
        let a = leaf(vec![1.0, 2.0]);
        let y = a.mul_const(&[2.0, 0.5]).add_const(&[10.0, 10.0]).sum_all();
        assert_eq!(y.item(), 23.0);
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![2.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
