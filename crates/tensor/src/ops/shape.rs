//! Shape manipulation: reshape, concatenation, row/column slicing.

use crate::tensor::Tensor;

impl Tensor {
    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(self.numel(), numel, "reshape: {} -> {:?}", self.numel(), shape);
        Tensor::from_op(
            self.to_vec(),
            shape,
            vec![self.clone()],
            Box::new(move |g| vec![g.to_vec()]),
        )
    }

    /// Concatenates 2-D tensors along axis 0 (stacking rows).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not 2-D, or the column counts
    /// disagree.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let n = parts[0].shape()[1];
        let mut data = Vec::new();
        let mut row_counts = Vec::with_capacity(parts.len());
        for p in parts {
            let s = p.shape();
            assert_eq!(s.len(), 2, "concat_rows: parts must be 2-D");
            assert_eq!(s[1], n, "concat_rows: column mismatch {} vs {}", s[1], n);
            row_counts.push(s[0]);
            data.extend_from_slice(&p.to_vec());
        }
        let m: usize = row_counts.iter().sum();
        Tensor::from_op(
            data,
            &[m, n],
            parts.to_vec(),
            Box::new(move |g| {
                let mut grads = Vec::with_capacity(row_counts.len());
                let mut offset = 0usize;
                for &rows in &row_counts {
                    grads.push(g[offset..offset + rows * n].to_vec());
                    offset += rows * n;
                }
                grads
            }),
        )
    }

    /// Concatenates 2-D tensors along axis 1 (joining columns). All parts
    /// must have the same number of rows.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not 2-D, or row counts
    /// disagree.
    pub fn concat_cols(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let m = parts[0].shape()[0];
        let col_counts: Vec<usize> = parts
            .iter()
            .map(|p| {
                let s = p.shape();
                assert_eq!(s.len(), 2, "concat_cols: parts must be 2-D");
                assert_eq!(s[0], m, "concat_cols: row mismatch {} vs {}", s[0], m);
                s[1]
            })
            .collect();
        let n: usize = col_counts.iter().sum();
        let mut data = vec![0.0f32; m * n];
        let datas: Vec<Vec<f32>> = parts.iter().map(Tensor::to_vec).collect();
        for r in 0..m {
            let mut offset = 0usize;
            for (d, &cols) in datas.iter().zip(&col_counts) {
                data[r * n + offset..r * n + offset + cols]
                    .copy_from_slice(&d[r * cols..(r + 1) * cols]);
                offset += cols;
            }
        }
        Tensor::from_op(
            data,
            &[m, n],
            parts.to_vec(),
            Box::new(move |g| {
                let mut grads: Vec<Vec<f32>> =
                    col_counts.iter().map(|&c| vec![0.0f32; m * c]).collect();
                for r in 0..m {
                    let mut offset = 0usize;
                    for (gi, &cols) in grads.iter_mut().zip(&col_counts) {
                        gi[r * cols..(r + 1) * cols]
                            .copy_from_slice(&g[r * n + offset..r * n + offset + cols]);
                        offset += cols;
                    }
                }
                grads
            }),
        )
    }

    /// Concatenates 1-D tensors into one long vector (used to join the
    /// per-KG reasoning embeddings, `f_t = r_1 ⌢ r_2 ⌢ … ⌢ r_n`).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any part is not 1-D.
    pub fn concat_vecs(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_vecs: empty input");
        let mut data = Vec::new();
        let mut lens = Vec::with_capacity(parts.len());
        for p in parts {
            let s = p.shape();
            assert_eq!(s.len(), 1, "concat_vecs: parts must be 1-D, got {s:?}");
            lens.push(s[0]);
            data.extend_from_slice(&p.to_vec());
        }
        let total: usize = lens.iter().sum();
        Tensor::from_op(
            data,
            &[total],
            parts.to_vec(),
            Box::new(move |g| {
                let mut grads = Vec::with_capacity(lens.len());
                let mut offset = 0usize;
                for &len in &lens {
                    grads.push(g[offset..offset + len].to_vec());
                    offset += len;
                }
                grads
            }),
        )
    }

    /// Extracts rows `start..end` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the range is out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "slice_rows: expected 2-D tensor");
        let (m, n) = (s[0], s[1]);
        assert!(start <= end && end <= m, "slice_rows: bad range {start}..{end} of {m}");
        let a = self.to_vec();
        let data = a[start * n..end * n].to_vec();
        let rows = end - start;
        Tensor::from_op(
            data,
            &[rows, n],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                dx[start * n..end * n].copy_from_slice(g);
                vec![dx]
            }),
        )
    }

    /// Extracts columns `start..end` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the range is out of bounds.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "slice_cols: expected 2-D tensor");
        let (m, n) = (s[0], s[1]);
        assert!(start <= end && end <= n, "slice_cols: bad range {start}..{end} of {n}");
        let cols = end - start;
        let a = self.to_vec();
        let mut data = vec![0.0f32; m * cols];
        for r in 0..m {
            data[r * cols..(r + 1) * cols].copy_from_slice(&a[r * n + start..r * n + end]);
        }
        Tensor::from_op(
            data,
            &[m, cols],
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    dx[r * n + start..r * n + end].copy_from_slice(&g[r * cols..(r + 1) * cols]);
                }
                vec![dx]
            }),
        )
    }

    /// Flattens a 2-D row tensor `[1, n]` (or any shape) into a 1-D vector.
    pub fn flatten(&self) -> Tensor {
        let n = self.numel();
        self.reshape(&[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_preserves_data() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).requires_grad(true);
        let y = x.reshape(&[2, 2]);
        assert_eq!(y.shape(), vec![2, 2]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn concat_rows_splits_gradient() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).requires_grad(true);
        let c = Tensor::concat_rows(&[a.clone(), b.clone()]);
        assert_eq!(c.shape(), vec![3, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        c.scale_rows(&[1.0, 2.0, 3.0]).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn concat_cols_interleaves() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).requires_grad(true);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).requires_grad(true);
        let c = Tensor::concat_cols(&[a.clone(), b.clone()]);
        assert_eq!(c.to_vec(), vec![1.0, 3.0, 2.0, 4.0]);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        c.mul(&mask).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 0.0]);
        assert_eq!(b.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn concat_vecs_joins() {
        let a = Tensor::from_vec(vec![1.0], &[1]).requires_grad(true);
        let b = Tensor::from_vec(vec![2.0, 3.0], &[2]).requires_grad(true);
        let c = Tensor::concat_vecs(&[a.clone(), b.clone()]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0]);
        c.mul_const(&[1.0, 2.0, 3.0]).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn slice_rows_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).requires_grad(true);
        let y = x.slice_rows(2, 3);
        assert_eq!(y.to_vec(), vec![5.0, 6.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn slice_cols_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let y = x.slice_cols(1, 2);
        assert_eq!(y.to_vec(), vec![2.0, 4.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn slice_rows_rejects_out_of_bounds() {
        let x = Tensor::zeros(&[2, 2]);
        let _ = x.slice_rows(1, 3);
    }
}
