//! AVX2+FMA implementations of the hot-path kernels, plus the safe dispatch
//! wrappers the portable ops call.
//!
//! This module is the SIMD half of the backend split described in
//! [`crate::backend`]: every function here is a *drop-in* for a scalar loop
//! somewhere in `ops/` or `nn/`, selected at runtime via
//! [`crate::backend::simd_active`]. The wrappers in the top half of the file
//! are safe and portable (they carry the scalar fallback inline, duplicated
//! from the call sites they serve so the scalar backend stays byte-identical
//! to the pre-SIMD code); the `avx` submodule at the bottom holds the
//! `unsafe` `#[target_feature(enable = "avx2,fma")]` kernels and only exists
//! on `x86_64`.
//!
//! ## Accumulation-order contract
//!
//! The SAXPY-family matmuls (`ikj`, `blocked`, `tn`) all update each output
//! element through a single fused-multiply-add chain with `k` ascending —
//! including the register-tiled microkernel inside the blocked fill and
//! every scalar tail (tails use [`f32::mul_add`], which compiles to the same
//! `vfmadd` under the `fma` target feature). That keeps
//! `matmul_blocked ≡ matmul_ikj` *bit-for-bit* under the SIMD backend, which
//! the size-dispatch in [`super::matmul`] and the batched-serving
//! equivalence suite both rely on. The SIMD SAXPY path drops the scalar
//! kernels' `a == 0.0` skip: with finite inputs `fma(0, b, acc) == acc`
//! exactly, so results agree; only non-finite propagation (documented out of
//! scope in [`super::kernels`]) differs.
//!
//! Row reductions ([`row_sum`], [`row_dot_nofma`], [`dot`]) use a fixed
//! four-lane-group accumulator pattern — deterministic, but a different
//! summation order than the sequential scalar fold, which is exactly the
//! ≤ 1e-4 SIMD-vs-scalar divergence the property suite bounds. All ops that
//! must stay bit-identical to a composed formulation under *both* backends
//! (fused softmax vs. scale→mask→softmax, grouped batch-norm vs. per-block
//! instance norm, fused layer-norm vs. its op chain) either share one
//! canonical reduction function or use only per-lane-exact operations
//! (add/sub/mul/div/max are IEEE-identical lane-wise to their scalar
//! forms).
//!
//! The **int8 plane** ([`try_q8_nt_fill`]) is stricter still: its dot
//! products accumulate in i32, where every grouping is exact, and the final
//! f32 rescale is one identical left-to-right expression on both paths — so
//! scalar ↔ SIMD is *bit-identity*, not a bounded divergence. The AVX2
//! ladder avoids i16 saturation with a sign trick:
//! `maddubs(|x|, y·sgn(x))` keeps every 2-term pair sum within
//! `±2·127·127 = ±32258 < i16::MAX`, then `madd(·, 1)` widens to i32.

use crate::backend::simd_active;

// ---------------------------------------------------------------------------
// Matmul fills
// ---------------------------------------------------------------------------

/// SIMD whole-kernel `ikj` fill over a zeroed output. Returns `false` when
/// the SIMD backend is inactive and the caller must run the scalar fill.
pub(crate) fn try_ikj_fill(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::ikj_fill_fma(out, a, b, m, k, n) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (out, a, b, m, k, n);
    false
}

/// SIMD fill of one row-chunk of the blocked matmul (packed panel +
/// register-tiled microkernel). Returns `false` when `active` is false and
/// the caller must run the scalar fill.
///
/// `active` is the caller's *one* [`simd_active`] resolution for the whole
/// kernel invocation: the chunked kernels run this fill once per row chunk,
/// and re-reading the global here would let a concurrent `set_backend` mix
/// SIMD and scalar chunks inside a single matmul. `active` may only be true
/// when [`simd_active`] returned true (it never returns true off x86_64).
pub(crate) fn try_blocked_fill(
    active: bool,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    chunk: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active {
        // SAFETY: `active` comes from `simd_active`, which implies AVX2+FMA
        // were detected at runtime.
        unsafe { avx::blocked_fill_fma(a, b, k, n, row0, chunk) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (active, a, b, k, n, row0, chunk);
    false
}

/// SIMD fill of one row-chunk of `matmul_nt` (dot products of contiguous
/// rows). Returns `false` when `active` is false. See [`try_blocked_fill`]
/// for the `active` contract.
pub(crate) fn try_nt_fill(
    active: bool,
    a: &[f32],
    bt: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    chunk: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active {
        // SAFETY: `active` comes from `simd_active`, which implies AVX2+FMA
        // were detected at runtime.
        unsafe { avx::nt_fill_fma(a, bt, k, n, row0, chunk) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (active, a, bt, k, n, row0, chunk);
    false
}

/// SIMD fill of one row-chunk of `matmul_q8_nt_into` (exact i32 dots of
/// contiguous int8 rows + one f32 rescale). Returns `false` when `active`
/// is false. See [`try_blocked_fill`] for the `active` contract; unlike the
/// f32 fills, this path is bit-identical to its scalar fallback (see the
/// module docs).
///
/// On CPUs with AVX-VNNI the fill runs the `vpdpbusd` microkernel instead
/// of the maddubs/madd ladder — still exact i32 accumulation, so the choice
/// is invisible to results (detection is cached by
/// `is_x86_feature_detected!`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_q8_nt_fill(
    active: bool,
    qa: &[i8],
    a_scales: &[f32],
    qbt: &[i8],
    b_scales: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    chunk: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active {
        // SAFETY: `active` comes from `simd_active`, which implies AVX2+FMA
        // were detected at runtime; the VNNI leg additionally checks its own
        // feature bit.
        unsafe {
            if std::arch::is_x86_feature_detected!("avxvnni") {
                avx::q8_nt_fill_vnni(qa, a_scales, qbt, b_scales, k, n, row0, chunk);
            } else {
                avx::q8_nt_fill(qa, a_scales, qbt, b_scales, k, n, row0, chunk);
            }
        }
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (active, qa, a_scales, qbt, b_scales, k, n, row0, chunk);
    false
}

/// SIMD fill of one output row-chunk of `matmul_tn` (`Aᵀ·B` SAXPY rows).
/// Returns `false` when `active` is false. See [`try_blocked_fill`] for the
/// `active` contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_tn_fill(
    active: bool,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    p0: usize,
    chunk: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active {
        // SAFETY: `active` comes from `simd_active`, which implies AVX2+FMA
        // were detected at runtime.
        unsafe { avx::tn_fill_fma(a, b, m, k, n, p0, chunk) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (active, a, b, m, k, n, p0, chunk);
    false
}

// ---------------------------------------------------------------------------
// Elementwise maps (per-lane-exact: identical results on both backends)
// ---------------------------------------------------------------------------

macro_rules! vbin {
    ($name:ident, $avx:ident, $op:tt) => {
        /// Elementwise binary map (lane-exact; slices must have equal length).
        pub(crate) fn $name(a: &[f32], b: &[f32]) -> Vec<f32> {
            debug_assert_eq!(a.len(), b.len());
            #[cfg(target_arch = "x86_64")]
            if simd_active() {
                // SAFETY: `simd_active` implies AVX2+FMA were detected.
                return unsafe { avx::$avx(a, b) };
            }
            a.iter().zip(b).map(|(x, y)| x $op y).collect()
        }
    };
}

vbin!(vadd, vadd_fma, +);
vbin!(vsub, vsub_fma, -);
vbin!(vmul, vmul_fma, *);
vbin!(vdiv, vdiv_fma, /);

/// `x + s` elementwise (lane-exact).
pub(crate) fn vadd_scalar(x: &[f32], s: f32) -> Vec<f32> {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vadd_scalar_fma(x, s) };
    }
    x.iter().map(|v| v + s).collect()
}

/// `x * s` elementwise (lane-exact).
pub(crate) fn vmul_scalar(x: &[f32], s: f32) -> Vec<f32> {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vmul_scalar_fma(x, s) };
    }
    x.iter().map(|v| v * s).collect()
}

/// `max(x, 0)` elementwise — the ReLU forward map (lane-exact on finite
/// input).
pub(crate) fn vrelu(x: &[f32]) -> Vec<f32> {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vrelu_fma(x) };
    }
    x.iter().map(|v| v.max(0.0)).collect()
}

/// `|x|` elementwise (lane-exact).
pub(crate) fn vabs(x: &[f32]) -> Vec<f32> {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vabs_fma(x) };
    }
    x.iter().map(|v| v.abs()).collect()
}

/// `out += x` elementwise (lane-exact) — the scatter-add row primitive.
pub(crate) fn vadd_assign(out: &mut [f32], x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::vadd_assign_fma(out, x) };
        return;
    }
    for (o, v) in out.iter_mut().zip(x) {
        *o += v;
    }
}

/// `out += a * b` elementwise, multiply-then-add without FMA contraction so
/// both backends round each product before accumulating (bit-stable vs. the
/// scalar form).
pub(crate) fn add_prod_assign(out: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::add_prod_assign_fma(out, a, b) };
        return;
    }
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o += x * y;
    }
}

/// `dst = a * b` elementwise into a caller-provided buffer (lane-exact).
pub(crate) fn vmul_into(dst: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::vmul_into_fma(dst, a, b) };
        return;
    }
    for (d, (x, y)) in dst.iter_mut().zip(a.iter().zip(b)) {
        *d = x * y;
    }
}

/// `row *= s` in place (lane-exact).
pub(crate) fn inplace_scale(row: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::inplace_scale_fma(row, s) };
        return;
    }
    for v in row.iter_mut() {
        *v *= s;
    }
}

/// `row += s` in place (lane-exact; pass `-mean` to center a row, which is
/// bitwise the same as subtracting).
pub(crate) fn inplace_add_scalar(row: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::inplace_add_scalar_fma(row, s) };
        return;
    }
    for v in row.iter_mut() {
        *v += s;
    }
}

/// `row += other` in place (lane-exact).
pub(crate) fn inplace_add(row: &mut [f32], other: &[f32]) {
    vadd_assign(row, other);
}

/// `row /= d` in place (lane-exact — IEEE division per lane rounds exactly
/// like the scalar division).
pub(crate) fn inplace_div_scalar(row: &mut [f32], d: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::inplace_div_scalar_fma(row, d) };
        return;
    }
    for v in row.iter_mut() {
        *v /= d;
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of a row. The canonical row reduction: every per-row sum in the crate
/// (`sum_axis1`, the fused layer-norm means) calls this one function, so ops
/// that must agree bit-for-bit with each other do, under either backend.
pub(crate) fn row_sum(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vsum_fma(x) };
    }
    x.iter().sum()
}

/// Dot product accumulated as round(x·y) then add — no FMA contraction — in
/// the same lane pattern as [`row_sum`], so `row_dot_nofma(x, y)` is bitwise
/// `row_sum` of the elementwise products under either backend.
pub(crate) fn row_dot_nofma(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vdot_nofma(x, y) };
    }
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Maximum of a row (exact under any evaluation order for finite input).
pub(crate) fn row_max(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        return unsafe { avx::vmax_fma(x) };
    }
    x.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
}

// ---------------------------------------------------------------------------
// Fused-op bodies (softmax backward, layer-norm backward, batch-norm apply)
// ---------------------------------------------------------------------------

/// One row of the fused-softmax backward: `dx = scale · y · (g − dot)`,
/// evaluated with the scalar path's exact operation order per element.
pub(crate) fn softmax_bwd_row(dx: &mut [f32], y: &[f32], g: &[f32], dot: f32, scale: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::softmax_bwd_row_fma(dx, y, g, dot, scale) };
        return;
    }
    for (d, (yv, gv)) in dx.iter_mut().zip(y.iter().zip(g)) {
        *d = scale * (yv * (gv - dot));
    }
}

/// One row of the fused layer-norm backward input gradient:
/// `dx = inv_std · (dh − mean_dh − x̂ · mean_dh_xhat)`, evaluated with the
/// scalar path's exact operation order per element.
pub(crate) fn layernorm_bwd_dx_row(
    dx: &mut [f32],
    dh: &[f32],
    xhat: &[f32],
    mean_dh: f32,
    mean_dh_xhat: f32,
    inv_std: f32,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::layernorm_bwd_dx_row_fma(dx, dh, xhat, mean_dh, mean_dh_xhat, inv_std) };
        return;
    }
    for (d, (h, x)) in dx.iter_mut().zip(dh.iter().zip(xhat)) {
        *d = inv_std * (h - mean_dh - x * mean_dh_xhat);
    }
}

/// One row of the batch-norm application:
/// `o = ((x − mean) · inv_std) · gamma + beta`, per-lane-exact against the
/// grouped scalar loop and the composed `add_bias`/`mul_bias` chain.
pub(crate) fn batchnorm_apply_row(
    out: &mut [f32],
    x: &[f32],
    mean: &[f32],
    inv_std: &[f32],
    gamma: &[f32],
    beta: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::batchnorm_apply_row_fma(out, x, mean, inv_std, gamma, beta) };
        return;
    }
    for c in 0..out.len() {
        let centered = x[c] - mean[c];
        out[c] = ((centered * inv_std[c]) * gamma[c]) + beta[c];
    }
}

/// Accumulates `var += (x − mean)²` for one row, multiply-then-add (no FMA),
/// matching the grouped batch-norm scalar loop bit-for-bit.
pub(crate) fn batchnorm_var_accum_row(var: &mut [f32], x: &[f32], mean: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2+FMA were detected at runtime.
        unsafe { avx::batchnorm_var_accum_row_fma(var, x, mean) };
        return;
    }
    for c in 0..var.len() {
        let centered = x[c] - mean[c];
        var[c] += centered * centered;
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA kernels (x86_64 only)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx {
    use crate::ops::kernels::{KC, NC};
    use core::arch::x86_64::*;

    /// Microkernel row count: 6 rows × 2 YMM columns = 12 accumulator
    /// registers, plus two panel vectors and one broadcast — 15 of 16 YMM.
    const MR: usize = 6;

    /// Fixed-order horizontal sum of one YMM register: low128 + high128,
    /// then the SSE pairwise tree.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let q = _mm_add_ps(lo, hi);
        let sh = _mm_movehl_ps(q, q);
        let s2 = _mm_add_ps(q, sh);
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
        _mm_cvtss_f32(s1)
    }

    /// Horizontal max of one YMM register (exact for finite lanes).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    unsafe fn hmax256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let q = _mm_max_ps(lo, hi);
        let sh = _mm_movehl_ps(q, q);
        let s2 = _mm_max_ps(q, sh);
        let s1 = _mm_max_ss(s2, _mm_shuffle_ps(s2, s2, 1));
        _mm_cvtss_f32(s1)
    }

    /// `out[j] = fma(a, x[j], out[j])` — one SAXPY step of the k-ascending
    /// accumulation chain. Tail lanes use `f32::mul_add`, which lowers to
    /// the same `vfmadd` under this function's `fma` feature, so an
    /// element's result never depends on whether it fell in a vector body
    /// or a tail.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub(super) unsafe fn axpy_fma(out: &mut [f32], a: f32, x: &[f32]) {
        debug_assert_eq!(out.len(), x.len());
        let n = out.len();
        let va = _mm256_set1_ps(a);
        let op = out.as_mut_ptr();
        let xp = x.as_ptr();
        let mut j = 0;
        while j + 8 <= n {
            let o = _mm256_loadu_ps(op.add(j));
            let xv = _mm256_loadu_ps(xp.add(j));
            _mm256_storeu_ps(op.add(j), _mm256_fmadd_ps(va, xv, o));
            j += 8;
        }
        while j < n {
            *op.add(j) = a.mul_add(*xp.add(j), *op.add(j));
            j += 1;
        }
    }

    /// Dot product: four 8-lane FMA accumulators over 32-element chunks, one
    /// 8-lane accumulator for the 8-element remainder, fixed-order combine,
    /// then a sequential FMA tail. For rows shorter than 8 this degenerates
    /// to the exact single FMA chain the SAXPY kernels produce.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub(super) unsafe fn dot_fma(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut j = 0;
        while j + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(yp.add(j)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(xp.add(j + 8)),
                _mm256_loadu_ps(yp.add(j + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(xp.add(j + 16)),
                _mm256_loadu_ps(yp.add(j + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(xp.add(j + 24)),
                _mm256_loadu_ps(yp.add(j + 24)),
                acc3,
            );
            j += 32;
        }
        while j + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(yp.add(j)), acc0);
            j += 8;
        }
        let combined = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let mut s = hsum256(combined);
        while j < n {
            s = (*xp.add(j)).mul_add(*yp.add(j), s);
            j += 1;
        }
        s
    }

    /// Whole-kernel `ikj` fill over a zeroed output: k-ascending SAXPY rows
    /// via [`axpy_fma`], no zero-coefficient skip (see the module docs).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn ikj_fill_fma(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                axpy_fma(orow, a[i * k + p], &b[p * n..(p + 1) * n]);
            }
        }
    }

    /// Fills one row-chunk of the blocked matmul: the same packed-panel
    /// block structure as the scalar fill, with the inner SAXPY replaced by
    /// a 6×16 register-tiled FMA microkernel (accumulators live in YMM
    /// across the whole `kc` loop — one C load/store per block instead of
    /// one per `p`).
    pub(super) unsafe fn blocked_fill_fma(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        chunk: &mut [f32],
    ) {
        // The packing panel comes from the thread-local pool so the blocked
        // kernel allocates nothing in steady state on its calling thread.
        crate::ops::kernels::with_panel(KC.min(k) * NC.min(n), |panel| {
            // SAFETY: only called with `blocked_fill_fma`'s own contract —
            // the caller detected AVX2+FMA at runtime.
            unsafe { blocked_fill_fma_panel(a, b, k, n, row0, chunk, panel) }
        });
    }

    /// The blocked fill body over a caller-provided packing panel.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn blocked_fill_fma_panel(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        chunk: &mut [f32],
        panel: &mut [f32],
    ) {
        let rows = chunk.len() / n;
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                for p in 0..kc {
                    let src = &b[(pc + p) * n + jc..(pc + p) * n + jc + nc];
                    panel[p * nc..(p + 1) * nc].copy_from_slice(src);
                }
                let mut jr = 0;
                while jr + 16 <= nc {
                    let mut ii = 0;
                    while ii + MR <= rows {
                        micro_6x16(a, chunk, k, n, row0, ii, pc, kc, jc + jr, &*panel, nc, jr);
                        ii += MR;
                    }
                    while ii < rows {
                        micro_1x16(a, chunk, k, n, row0, ii, pc, kc, jc + jr, &*panel, nc, jr);
                        ii += 1;
                    }
                    jr += 16;
                }
                while jr + 8 <= nc {
                    for ii in 0..rows {
                        micro_1x8(a, chunk, k, n, row0, ii, pc, kc, jc + jr, &*panel, nc, jr);
                    }
                    jr += 8;
                }
                if jr < nc {
                    // Scalar FMA tail columns: p-ascending per element, same
                    // chain as every vector path.
                    for ii in 0..rows {
                        let arow = &a[(row0 + ii) * k + pc..(row0 + ii) * k + pc + kc];
                        let orow = &mut chunk[ii * n + jc + jr..ii * n + jc + nc];
                        for (p, &aip) in arow.iter().enumerate() {
                            let prow = &panel[p * nc + jr..(p + 1) * nc];
                            for (o, &bv) in orow.iter_mut().zip(prow) {
                                *o = aip.mul_add(bv, *o);
                            }
                        }
                    }
                }
            }
        }
    }

    /// 6-row × 16-column microkernel tile: 12 YMM accumulators carried
    /// through the `kc` loop.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_6x16(
        a: &[f32],
        chunk: &mut [f32],
        k: usize,
        n: usize,
        row0: usize,
        ii: usize,
        pc: usize,
        kc: usize,
        col: usize,
        panel: &[f32],
        nc: usize,
        jr: usize,
    ) {
        let cp = chunk.as_mut_ptr();
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let base = cp.add((ii + r) * n + col);
            accr[0] = _mm256_loadu_ps(base);
            accr[1] = _mm256_loadu_ps(base.add(8));
        }
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(pp.add(p * nc + jr));
            let b1 = _mm256_loadu_ps(pp.add(p * nc + jr + 8));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((row0 + ii + r) * k + pc + p));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let base = cp.add((ii + r) * n + col);
            _mm256_storeu_ps(base, accr[0]);
            _mm256_storeu_ps(base.add(8), accr[1]);
        }
    }

    /// 1-row × 16-column microkernel tile (row remainder of the 6×16 sweep).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_1x16(
        a: &[f32],
        chunk: &mut [f32],
        k: usize,
        n: usize,
        row0: usize,
        ii: usize,
        pc: usize,
        kc: usize,
        col: usize,
        panel: &[f32],
        nc: usize,
        jr: usize,
    ) {
        let base = chunk.as_mut_ptr().add(ii * n + col);
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        let mut acc0 = _mm256_loadu_ps(base);
        let mut acc1 = _mm256_loadu_ps(base.add(8));
        for p in 0..kc {
            let av = _mm256_set1_ps(*ap.add((row0 + ii) * k + pc + p));
            acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pp.add(p * nc + jr)), acc0);
            acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pp.add(p * nc + jr + 8)), acc1);
        }
        _mm256_storeu_ps(base, acc0);
        _mm256_storeu_ps(base.add(8), acc1);
    }

    /// 1-row × 8-column microkernel tile (column remainder strip).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_1x8(
        a: &[f32],
        chunk: &mut [f32],
        k: usize,
        n: usize,
        row0: usize,
        ii: usize,
        pc: usize,
        kc: usize,
        col: usize,
        panel: &[f32],
        nc: usize,
        jr: usize,
    ) {
        let base = chunk.as_mut_ptr().add(ii * n + col);
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        let mut acc = _mm256_loadu_ps(base);
        for p in 0..kc {
            let av = _mm256_set1_ps(*ap.add((row0 + ii) * k + pc + p));
            acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(pp.add(p * nc + jr)), acc);
        }
        _mm256_storeu_ps(base, acc);
    }

    /// Fills one row-chunk of `matmul_nt`: each element is [`dot_fma`] of
    /// two contiguous rows.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn nt_fill_fma(
        a: &[f32],
        bt: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        chunk: &mut [f32],
    ) {
        let rows = chunk.len() / n;
        for ii in 0..rows {
            let arow = &a[(row0 + ii) * k..(row0 + ii + 1) * k];
            let orow = &mut chunk[ii * n..(ii + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_fma(arow, &bt[j * k..(j + 1) * k]);
            }
        }
    }

    /// Fixed-order horizontal sum of eight i32 lanes — exact under any
    /// order, the fixed tree is just for clarity.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    unsafe fn hsum256_epi32(v: __m256i) -> i32 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        let q = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(q, _mm_shuffle_epi32(q, 0b00_00_11_10));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b00_00_00_01));
        _mm_cvtsi128_si32(s1)
    }

    /// Int8 dot product with exact i32 accumulation — bit-identical to
    /// [`crate::ops::kernels::dot_i8`] because integer addition is
    /// associative.
    ///
    /// The 32-byte step runs the maddubs/madd ladder with the sign trick
    /// from the module docs: `|x|` as u8 (codes are ≥ −127, so `|x| ≤ 127`)
    /// times `y·sgn(x)` as i8 keeps each i16 pair sum within ±32258, then
    /// `madd(·, 1)` widens pairs into the i32 accumulator.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub(super) unsafe fn dot_q8(x: &[i8], y: &[i8]) -> i32 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let ones = _mm256_set1_epi16(1);
        let mut acc = _mm256_setzero_si256();
        let mut j = 0;
        while j + 32 <= n {
            let qx = _mm256_loadu_si256(xp.add(j) as *const __m256i);
            let qy = _mm256_loadu_si256(yp.add(j) as *const __m256i);
            let ax = _mm256_sign_epi8(qx, qx);
            let sy = _mm256_sign_epi8(qy, qx);
            let pairs = _mm256_maddubs_epi16(ax, sy);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
            j += 32;
        }
        let mut s = hsum256_epi32(acc);
        while j < n {
            s += *xp.add(j) as i32 * *yp.add(j) as i32;
            j += 1;
        }
        s
    }

    /// Output-channel block width of the ladder q8 microkernel: enough i32
    /// accumulators to amortize the lhs-chunk load (and its `|x|`
    /// derivation) across several rhs rows, small enough to stay in YMM
    /// registers alongside the shared operands.
    const Q8_NR: usize = 4;

    /// Output-channel block width of the VNNI q8 microkernel. Wider than
    /// [`Q8_NR`] because the VNNI kernel is bound by the `vpdpbusd`
    /// accumulation chain's latency, not by instruction count: eight
    /// independent accumulator chains keep the pipeline full, and eight
    /// accumulators plus the shared lhs chunk still fit the YMM file.
    const Q8_NR_VNNI: usize = 8;

    /// Rhs-row tile footprint for the q8 fills. One lhs row sweeping all
    /// `n·k` rhs bytes evicts L1 whenever the rhs outgrows it (64 KiB at
    /// 256×256), turning every inner load into an L2 hit; at int8 arithmetic
    /// density that L2 stream — not the ALUs — becomes the bound. Tiling the
    /// rhs rows to this budget and sweeping *all* lhs rows over each tile
    /// keeps the tile L1-resident (48 KiB L1d, leaving room for the lhs row
    /// and outputs). Loop interchange only regroups exactly-accumulated
    /// integer dots, so tiling is invisible to results.
    const Q8_JC_BYTES: usize = 16 * 1024;

    /// Horizontally sums eight i32 accumulators into one vector whose lane
    /// `r` is the full sum of `acc[r]` — a `hadd` tree (4+2 hadds, one
    /// cross-lane unshuffle) replacing eight scalar [`hsum256_epi32`] calls
    /// in the q8 VNNI epilogue. Integer addition is associative, so the tree
    /// regrouping is exact.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn hsum8x256_epi32(acc: [__m256i; 8]) -> __m256i {
        let s01 = _mm256_hadd_epi32(acc[0], acc[1]);
        let s23 = _mm256_hadd_epi32(acc[2], acc[3]);
        let s45 = _mm256_hadd_epi32(acc[4], acc[5]);
        let s67 = _mm256_hadd_epi32(acc[6], acc[7]);
        let s0123 = _mm256_hadd_epi32(s01, s23);
        let s4567 = _mm256_hadd_epi32(s45, s67);
        // hadd interleaves 128-bit halves: lane r's partial sums sit in the
        // low half of one permute and the high half of the other.
        let lo = _mm256_permute2x128_si256(s0123, s4567, 0x20);
        let hi = _mm256_permute2x128_si256(s0123, s4567, 0x31);
        _mm256_add_epi32(lo, hi)
    }

    /// Fills one row-chunk of `matmul_q8_nt_into` with the maddubs/madd
    /// ladder, register-blocked [`Q8_NR`] output channels at a time so each
    /// 32-byte lhs chunk (and its `|x|` form) is loaded once per block
    /// instead of once per output, and rhs-row tiled to [`Q8_JC_BYTES`] so
    /// the streamed rhs stays L1-resident. Integer accumulation is exact, so
    /// any such regrouping stays bit-identical to [`dot_q8`] and to the
    /// scalar kernel; the final rescale is the *same* left-to-right f32
    /// expression as the scalar fill.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn q8_nt_fill(
        qa: &[i8],
        a_scales: &[f32],
        qbt: &[i8],
        b_scales: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        chunk: &mut [f32],
    ) {
        let rows = chunk.len() / n;
        let kv = k & !31;
        let ones = _mm256_set1_epi16(1);
        let bp = qbt.as_ptr();
        let jc_rows = (Q8_JC_BYTES / k.max(1)).max(Q8_NR) & !(Q8_NR - 1);
        let mut jc = 0;
        while jc < n {
            let jend = (jc + jc_rows).min(n);
            for ii in 0..rows {
                let i = row0 + ii;
                let arow = &qa[i * k..(i + 1) * k];
                let ap = arow.as_ptr();
                let ascale = a_scales[i];
                let orow = &mut chunk[ii * n..(ii + 1) * n];
                let mut j = jc;
                while j + Q8_NR <= jend {
                    let mut acc = [_mm256_setzero_si256(); Q8_NR];
                    let mut p = 0;
                    while p + 32 <= k {
                        let qx = _mm256_loadu_si256(ap.add(p) as *const __m256i);
                        let ax = _mm256_sign_epi8(qx, qx);
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let qy = _mm256_loadu_si256(bp.add((j + r) * k + p) as *const __m256i);
                            let sy = _mm256_sign_epi8(qy, qx);
                            let pairs = _mm256_maddubs_epi16(ax, sy);
                            *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(pairs, ones));
                        }
                        p += 32;
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let mut d = hsum256_epi32(*accr);
                        for (p, &av) in arow.iter().enumerate().skip(kv) {
                            d += av as i32 * *bp.add((j + r) * k + p) as i32;
                        }
                        orow[j + r] = d as f32 * ascale * b_scales[j + r];
                    }
                    j += Q8_NR;
                }
                while j < jend {
                    let d = dot_q8(arow, &qbt[j * k..(j + 1) * k]);
                    orow[j] = d as f32 * ascale * b_scales[j];
                    j += 1;
                }
            }
            jc = jend;
        }
    }

    std::thread_local! {
        /// Per-thread scratch holding `Σ_p qbt[j, p]` over the vectorized
        /// prefix of `k`, for the VNNI fill's bias correction. Fully
        /// rewritten by every fill call before being read, so pooling it
        /// (like `kernels::with_panel`) keeps the serving hot path
        /// allocation-free after warm-up.
        static Q8_ROWSUM: std::cell::RefCell<Vec<i32>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// [`q8_nt_fill`] on AVX-VNNI hardware: `vpdpbusd` fuses the whole
    /// maddubs/madd/add ladder into one u8×i8→i32 dot-accumulate.
    ///
    /// `vpdpbusd`'s first operand is *unsigned*, so instead of the sign
    /// trick this kernel biases the lhs codes: `u = x + 128` (one XOR with
    /// 0x80, shared across the whole output-channel block), giving
    /// `Σ u·y = Σ x·y + 128·Σ y`. The correction term `Σ y` per output
    /// channel is independent of the lhs, computed once per fill into
    /// [`Q8_ROWSUM`] — also with `vpdpbusd`, against an all-ones unsigned
    /// operand. Every quantity is an exactly-accumulated integer (lane
    /// peaks stay below `k·2¹²` and dots below `k·2¹⁵`, so i32 holds any
    /// realistic `k`), hence this path is bit-identical to [`dot_q8`], the
    /// ladder fill, and the scalar kernel; the rescale expression is again
    /// identical. Like the ladder, the rhs rows are tiled to
    /// [`Q8_JC_BYTES`], and when `k` has no 32-byte tail the eight
    /// accumulators drain through [`hsum8x256_epi32`] into one vectorized
    /// rescale/store.
    #[target_feature(enable = "avx2", enable = "fma", enable = "avxvnni")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn q8_nt_fill_vnni(
        qa: &[i8],
        a_scales: &[f32],
        qbt: &[i8],
        b_scales: &[f32],
        k: usize,
        n: usize,
        row0: usize,
        chunk: &mut [f32],
    ) {
        let rows = chunk.len() / n;
        let kv = k & !31;
        let bp = qbt.as_ptr();
        Q8_ROWSUM.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.len() < n {
                buf.resize(n, 0);
            }
            let rowsum = &mut buf[..n];
            let ones_u8 = _mm256_set1_epi8(1);
            for (j, rs) in rowsum.iter_mut().enumerate() {
                let mut acc = _mm256_setzero_si256();
                let mut p = 0;
                while p + 32 <= kv {
                    let qy = _mm256_loadu_si256(bp.add(j * k + p) as *const __m256i);
                    acc = _mm256_dpbusd_avx_epi32(acc, ones_u8, qy);
                    p += 32;
                }
                *rs = hsum256_epi32(acc);
            }
            let bias = _mm256_set1_epi8(-128);
            let jc_rows = (Q8_JC_BYTES / k.max(1)).max(Q8_NR_VNNI) & !(Q8_NR_VNNI - 1);
            let mut jc = 0;
            while jc < n {
                let jend = (jc + jc_rows).min(n);
                for ii in 0..rows {
                    let i = row0 + ii;
                    let arow = &qa[i * k..(i + 1) * k];
                    let ap = arow.as_ptr();
                    let ascale = a_scales[i];
                    let orow = &mut chunk[ii * n..(ii + 1) * n];
                    let mut j = jc;
                    while j + Q8_NR_VNNI <= jend {
                        let mut acc = [_mm256_setzero_si256(); Q8_NR_VNNI];
                        let mut p = 0;
                        while p + 32 <= k {
                            let qx = _mm256_loadu_si256(ap.add(p) as *const __m256i);
                            // x + 128 as u8 == flip the sign bit.
                            let ux = _mm256_xor_si256(qx, bias);
                            for (r, accr) in acc.iter_mut().enumerate() {
                                let qy =
                                    _mm256_loadu_si256(bp.add((j + r) * k + p) as *const __m256i);
                                *accr = _mm256_dpbusd_avx_epi32(*accr, ux, qy);
                            }
                            p += 32;
                        }
                        if kv == k {
                            // No k-tail: sum all eight accumulators with the
                            // hadd tree and rescale vectorized. `cvtepi32_ps`
                            // rounds exactly like `as f32` and the two `mul`s
                            // keep the scalar epilogue's left-to-right order,
                            // so the lanes are bit-identical to it.
                            let sums = hsum8x256_epi32(acc);
                            let rs = _mm256_loadu_si256(rowsum.as_ptr().add(j) as *const __m256i);
                            let d = _mm256_sub_epi32(sums, _mm256_slli_epi32(rs, 7));
                            let o = _mm256_mul_ps(
                                _mm256_mul_ps(_mm256_cvtepi32_ps(d), _mm256_set1_ps(ascale)),
                                _mm256_loadu_ps(b_scales.as_ptr().add(j)),
                            );
                            _mm256_storeu_ps(orow.as_mut_ptr().add(j), o);
                        } else {
                            for (r, accr) in acc.iter().enumerate() {
                                let mut d = hsum256_epi32(*accr) - 128 * rowsum[j + r];
                                for (p, &av) in arow.iter().enumerate().skip(kv) {
                                    d += av as i32 * *bp.add((j + r) * k + p) as i32;
                                }
                                orow[j + r] = d as f32 * ascale * b_scales[j + r];
                            }
                        }
                        j += Q8_NR_VNNI;
                    }
                    while j < jend {
                        let d = dot_q8(arow, &qbt[j * k..(j + 1) * k]);
                        orow[j] = d as f32 * ascale * b_scales[j];
                        j += 1;
                    }
                }
                jc = jend;
            }
        });
    }

    /// Fills one output row-chunk of `matmul_tn` with SAXPY rows (the same
    /// i-ascending accumulation as the scalar fill, minus the zero skip).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn tn_fill_fma(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        p0: usize,
        chunk: &mut [f32],
    ) {
        let prows = chunk.len() / n;
        for i in 0..m {
            let aseg = &a[i * k + p0..i * k + p0 + prows];
            let brow = &b[i * n..(i + 1) * n];
            for (pp, &aip) in aseg.iter().enumerate() {
                axpy_fma(&mut chunk[pp * n..(pp + 1) * n], aip, brow);
            }
        }
    }

    macro_rules! avx_bin {
        ($name:ident, $lane:ident, $op:tt) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            pub(super) unsafe fn $name(a: &[f32], b: &[f32]) -> Vec<f32> {
                let n = a.len();
                let mut out = vec![0.0f32; n];
                let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
                let mut j = 0;
                while j + 8 <= n {
                    let v = $lane(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(bp.add(j)));
                    _mm256_storeu_ps(op.add(j), v);
                    j += 8;
                }
                while j < n {
                    *op.add(j) = *ap.add(j) $op *bp.add(j);
                    j += 1;
                }
                out
            }
        };
    }

    avx_bin!(vadd_fma, _mm256_add_ps, +);
    avx_bin!(vsub_fma, _mm256_sub_ps, -);
    avx_bin!(vmul_fma, _mm256_mul_ps, *);
    avx_bin!(vdiv_fma, _mm256_div_ps, /);

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vadd_scalar_fma(x: &[f32], s: f32) -> Vec<f32> {
        let n = x.len();
        let mut out = vec![0.0f32; n];
        let vs = _mm256_set1_ps(s);
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(op.add(j), _mm256_add_ps(_mm256_loadu_ps(xp.add(j)), vs));
            j += 8;
        }
        while j < n {
            *op.add(j) = *xp.add(j) + s;
            j += 1;
        }
        out
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vmul_scalar_fma(x: &[f32], s: f32) -> Vec<f32> {
        let n = x.len();
        let mut out = vec![0.0f32; n];
        let vs = _mm256_set1_ps(s);
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(op.add(j), _mm256_mul_ps(_mm256_loadu_ps(xp.add(j)), vs));
            j += 8;
        }
        while j < n {
            *op.add(j) = *xp.add(j) * s;
            j += 1;
        }
        out
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vrelu_fma(x: &[f32]) -> Vec<f32> {
        let n = x.len();
        let mut out = vec![0.0f32; n];
        let zero = _mm256_setzero_ps();
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(op.add(j), _mm256_max_ps(_mm256_loadu_ps(xp.add(j)), zero));
            j += 8;
        }
        while j < n {
            *op.add(j) = (*xp.add(j)).max(0.0);
            j += 1;
        }
        out
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vabs_fma(x: &[f32]) -> Vec<f32> {
        let n = x.len();
        let mut out = vec![0.0f32; n];
        let mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let (xp, op) = (x.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(op.add(j), _mm256_and_ps(_mm256_loadu_ps(xp.add(j)), mask));
            j += 8;
        }
        while j < n {
            *op.add(j) = (*xp.add(j)).abs();
            j += 1;
        }
        out
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vadd_assign_fma(out: &mut [f32], x: &[f32]) {
        let n = out.len();
        let (op, xp) = (out.as_mut_ptr(), x.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(op.add(j)), _mm256_loadu_ps(xp.add(j)));
            _mm256_storeu_ps(op.add(j), v);
            j += 8;
        }
        while j < n {
            *op.add(j) += *xp.add(j);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn add_prod_assign_fma(out: &mut [f32], a: &[f32], b: &[f32]) {
        let n = out.len();
        let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let prod = _mm256_mul_ps(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(bp.add(j)));
            _mm256_storeu_ps(op.add(j), _mm256_add_ps(_mm256_loadu_ps(op.add(j)), prod));
            j += 8;
        }
        while j < n {
            *op.add(j) += *ap.add(j) * *bp.add(j);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vmul_into_fma(dst: &mut [f32], a: &[f32], b: &[f32]) {
        let n = dst.len();
        let (dp, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_mul_ps(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(bp.add(j)));
            _mm256_storeu_ps(dp.add(j), v);
            j += 8;
        }
        while j < n {
            *dp.add(j) = *ap.add(j) * *bp.add(j);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn inplace_scale_fma(row: &mut [f32], s: f32) {
        let n = row.len();
        let vs = _mm256_set1_ps(s);
        let rp = row.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(rp.add(j), _mm256_mul_ps(_mm256_loadu_ps(rp.add(j)), vs));
            j += 8;
        }
        while j < n {
            *rp.add(j) *= s;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn inplace_add_scalar_fma(row: &mut [f32], s: f32) {
        let n = row.len();
        let vs = _mm256_set1_ps(s);
        let rp = row.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(rp.add(j), _mm256_add_ps(_mm256_loadu_ps(rp.add(j)), vs));
            j += 8;
        }
        while j < n {
            *rp.add(j) += s;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn inplace_div_scalar_fma(row: &mut [f32], d: f32) {
        let n = row.len();
        let vd = _mm256_set1_ps(d);
        let rp = row.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= n {
            _mm256_storeu_ps(rp.add(j), _mm256_div_ps(_mm256_loadu_ps(rp.add(j)), vd));
            j += 8;
        }
        while j < n {
            *rp.add(j) /= d;
            j += 1;
        }
    }

    /// The canonical SIMD row sum: four 8-lane accumulators over 32-element
    /// chunks, one 8-lane accumulator for the 8-element remainder,
    /// fixed-order combine, sequential tail.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub(super) unsafe fn vsum_fma(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut j = 0;
        while j + 32 <= n {
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(xp.add(j)));
            acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(xp.add(j + 8)));
            acc2 = _mm256_add_ps(acc2, _mm256_loadu_ps(xp.add(j + 16)));
            acc3 = _mm256_add_ps(acc3, _mm256_loadu_ps(xp.add(j + 24)));
            j += 32;
        }
        while j + 8 <= n {
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(xp.add(j)));
            j += 8;
        }
        let combined = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let mut s = hsum256(combined);
        while j < n {
            s += *xp.add(j);
            j += 1;
        }
        s
    }

    /// Multiply-then-add dot in exactly [`vsum_fma`]'s lane pattern: bitwise
    /// equal to `vsum_fma` over the pre-rounded elementwise products.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub(super) unsafe fn vdot_nofma(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut j = 0;
        while j + 32 <= n {
            let p0 = _mm256_mul_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(yp.add(j)));
            let p1 = _mm256_mul_ps(_mm256_loadu_ps(xp.add(j + 8)), _mm256_loadu_ps(yp.add(j + 8)));
            let p2 =
                _mm256_mul_ps(_mm256_loadu_ps(xp.add(j + 16)), _mm256_loadu_ps(yp.add(j + 16)));
            let p3 =
                _mm256_mul_ps(_mm256_loadu_ps(xp.add(j + 24)), _mm256_loadu_ps(yp.add(j + 24)));
            acc0 = _mm256_add_ps(acc0, p0);
            acc1 = _mm256_add_ps(acc1, p1);
            acc2 = _mm256_add_ps(acc2, p2);
            acc3 = _mm256_add_ps(acc3, p3);
            j += 32;
        }
        while j + 8 <= n {
            let p = _mm256_mul_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(yp.add(j)));
            acc0 = _mm256_add_ps(acc0, p);
            j += 8;
        }
        let combined = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let mut s = hsum256(combined);
        while j < n {
            s += *xp.add(j) * *yp.add(j);
            j += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn vmax_fma(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut j = 0;
        while j + 8 <= n {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(xp.add(j)));
            j += 8;
        }
        let mut s = hmax256(acc);
        while j < n {
            s = s.max(*xp.add(j));
            j += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn softmax_bwd_row_fma(
        dx: &mut [f32],
        y: &[f32],
        g: &[f32],
        dot: f32,
        scale: f32,
    ) {
        let n = dx.len();
        let (dp, yp, gp) = (dx.as_mut_ptr(), y.as_ptr(), g.as_ptr());
        let vdot = _mm256_set1_ps(dot);
        let vscale = _mm256_set1_ps(scale);
        let mut j = 0;
        while j + 8 <= n {
            let inner = _mm256_sub_ps(_mm256_loadu_ps(gp.add(j)), vdot);
            let v = _mm256_mul_ps(vscale, _mm256_mul_ps(_mm256_loadu_ps(yp.add(j)), inner));
            _mm256_storeu_ps(dp.add(j), v);
            j += 8;
        }
        while j < n {
            *dp.add(j) = scale * (*yp.add(j) * (*gp.add(j) - dot));
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn layernorm_bwd_dx_row_fma(
        dx: &mut [f32],
        dh: &[f32],
        xhat: &[f32],
        mean_dh: f32,
        mean_dh_xhat: f32,
        inv_std: f32,
    ) {
        let n = dx.len();
        let (dp, hp, xp) = (dx.as_mut_ptr(), dh.as_ptr(), xhat.as_ptr());
        let vmean = _mm256_set1_ps(mean_dh);
        let vmx = _mm256_set1_ps(mean_dh_xhat);
        let vis = _mm256_set1_ps(inv_std);
        let mut j = 0;
        while j + 8 <= n {
            let centered = _mm256_sub_ps(_mm256_loadu_ps(hp.add(j)), vmean);
            let xterm = _mm256_mul_ps(_mm256_loadu_ps(xp.add(j)), vmx);
            let v = _mm256_mul_ps(vis, _mm256_sub_ps(centered, xterm));
            _mm256_storeu_ps(dp.add(j), v);
            j += 8;
        }
        while j < n {
            *dp.add(j) = inv_std * (*hp.add(j) - mean_dh - *xp.add(j) * mean_dh_xhat);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn batchnorm_apply_row_fma(
        out: &mut [f32],
        x: &[f32],
        mean: &[f32],
        inv_std: &[f32],
        gamma: &[f32],
        beta: &[f32],
    ) {
        let n = out.len();
        let op = out.as_mut_ptr();
        let (xp, mp, ip, gp, bp) =
            (x.as_ptr(), mean.as_ptr(), inv_std.as_ptr(), gamma.as_ptr(), beta.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let centered = _mm256_sub_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(mp.add(j)));
            let scaled = _mm256_mul_ps(
                _mm256_mul_ps(centered, _mm256_loadu_ps(ip.add(j))),
                _mm256_loadu_ps(gp.add(j)),
            );
            _mm256_storeu_ps(op.add(j), _mm256_add_ps(scaled, _mm256_loadu_ps(bp.add(j))));
            j += 8;
        }
        while j < n {
            let centered = *xp.add(j) - *mp.add(j);
            *op.add(j) = ((centered * *ip.add(j)) * *gp.add(j)) + *bp.add(j);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn batchnorm_var_accum_row_fma(var: &mut [f32], x: &[f32], mean: &[f32]) {
        let n = var.len();
        let (vp, xp, mp) = (var.as_mut_ptr(), x.as_ptr(), mean.as_ptr());
        let mut j = 0;
        while j + 8 <= n {
            let centered = _mm256_sub_ps(_mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(mp.add(j)));
            let sq = _mm256_mul_ps(centered, centered);
            _mm256_storeu_ps(vp.add(j), _mm256_add_ps(_mm256_loadu_ps(vp.add(j)), sq));
            j += 8;
        }
        while j < n {
            let centered = *xp.add(j) - *mp.add(j);
            *vp.add(j) += centered * centered;
            j += 1;
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::backend::simd_available;

    fn filled(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..len).map(f).collect()
    }

    #[test]
    fn avx_primitives_match_scalar_within_tolerance() {
        if !simd_available() {
            return;
        }
        for len in [1usize, 5, 8, 15, 31, 32, 33, 100] {
            let x = filled(len, |i| ((i * 7 % 13) as f32 - 6.0) * 0.21);
            let y = filled(len, |i| ((i * 5 % 11) as f32 - 5.0) * 0.17);
            // SAFETY: guarded by `simd_available`.
            unsafe {
                let s: f32 = x.iter().sum();
                assert!((avx::vsum_fma(&x) - s).abs() <= 1e-4 * s.abs().max(1.0), "sum len {len}");
                let d: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                assert!((avx::dot_fma(&x, &y) - d).abs() <= 1e-4 * d.abs().max(1.0));
                assert!((avx::vdot_nofma(&x, &y) - d).abs() <= 1e-4 * d.abs().max(1.0));
                let mx = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                assert_eq!(avx::vmax_fma(&x), mx, "max len {len}");
                let mut out = y.clone();
                avx::axpy_fma(&mut out, 0.37, &x);
                for (i, (o, (yy, xx))) in out.iter().zip(y.iter().zip(&x)).enumerate() {
                    let expect = 0.37f32.mul_add(*xx, *yy);
                    assert_eq!(*o, expect, "axpy lane {i} len {len}");
                }
            }
        }
    }

    #[test]
    fn avx_ikj_matches_scalar_reference() {
        if !simd_available() {
            return;
        }
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (9, 16, 24), (13, 40, 21)] {
            let a = filled(m * k, |i| ((i * 37 % 19) as f32 - 9.0) * 0.11);
            let b = filled(k * n, |i| ((i * 23 % 17) as f32 - 8.0) * 0.13);
            let mut fast = vec![0.0f32; m * n];
            // SAFETY: guarded by `simd_available`.
            unsafe { avx::ikj_fill_fma(&mut fast, &a, &b, m, k, n) };
            let reference = crate::ops::kernels::matmul_naive(&a, &b, m, k, n);
            for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
                assert!(
                    (f - r).abs() <= 1e-4 * r.abs().max(1.0),
                    "[{i}] {f} vs {r} at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn avx_q8_dot_is_exactly_the_scalar_i32_dot() {
        if !simd_available() {
            return;
        }
        // Integer accumulation is exact, so the AVX2 maddubs/madd ladder
        // must equal the scalar dot *as integers* — including at the
        // saturation-hazard extremes (±127 everywhere).
        for len in [0usize, 1, 5, 31, 32, 33, 64, 100, 130] {
            let x: Vec<i8> = (0..len).map(|i| (((i * 37 + 11) % 255) as i32 - 127) as i8).collect();
            let y: Vec<i8> = (0..len).map(|i| (((i * 53 + 7) % 255) as i32 - 127) as i8).collect();
            // SAFETY: guarded by `simd_available`.
            let fast = unsafe { avx::dot_q8(&x, &y) };
            assert_eq!(fast, crate::ops::kernels::dot_i8(&x, &y), "len {len}");
            let worst_x = vec![127i8; len.max(1)];
            let worst_y = vec![-127i8; len.max(1)];
            // SAFETY: guarded by `simd_available`.
            let fast = unsafe { avx::dot_q8(&worst_x, &worst_y) };
            assert_eq!(fast, -(127i32 * 127) * len.max(1) as i32, "worst-case len {len}");
        }
    }

    /// Shapes that between them exercise every q8 fill path: k-tails
    /// (`k % 32 != 0`), the tail-free vectorized epilogue, output-channel
    /// block tails (`n % Q8_NR != 0`), and rhs tiles smaller than `n`
    /// (`512 × 67 > Q8_JC_BYTES` splits `n = 67` into multiple tiles).
    const Q8_FILL_SHAPES: [(usize, usize, usize); 4] =
        [(9, 67, 13), (4, 64, 32), (5, 512, 67), (1, 33, 8)];

    /// The q8 fill kernels' shared signature (lhs codes/scales, rhs
    /// codes/scales, `k`, `n`, `row0`, output chunk).
    type Q8Fill = unsafe fn(&[i8], &[f32], &[i8], &[f32], usize, usize, usize, &mut [f32]);

    /// Quantizes deterministic data and runs `fill` against the scalar
    /// kernel's per-element expression, asserting bitwise equality.
    fn assert_q8_fill_bit_identical(fill: Q8Fill, label: &str) {
        for (m, k, n) in Q8_FILL_SHAPES {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 41 % 29) as f32 - 14.0) * 0.05).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 31 % 37) as f32 - 18.0) * 0.04).collect();
            let qb = crate::quant::QuantizedMatrix::from_row_major(&b, k, n);
            let mut qa = vec![0i8; m * k];
            let mut a_scales = vec![0.0f32; m];
            crate::quant::quantize_rows_i8(&a, m, k, &mut qa, &mut a_scales);
            let mut fast = vec![0.0f32; m * n];
            // SAFETY: callers guard on the features their `fill` needs.
            unsafe { fill(&qa, &a_scales, qb.data(), qb.scales(), k, n, 0, &mut fast) };
            let mut scalar = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    let d = crate::ops::kernels::dot_i8(
                        &qa[i * k..(i + 1) * k],
                        &qb.data()[j * k..(j + 1) * k],
                    );
                    scalar[i * n + j] = d as f32 * a_scales[i] * qb.scales()[j];
                }
            }
            assert_eq!(fast, scalar, "{label} diverged from scalar at {m}x{k}x{n}");
        }
    }

    #[test]
    fn avx_q8_fill_is_bit_identical_to_scalar_kernel() {
        if !simd_available() {
            return;
        }
        assert_q8_fill_bit_identical(avx::q8_nt_fill, "int8 ladder fill");
    }

    #[test]
    fn avx_q8_vnni_fill_is_bit_identical_to_scalar_kernel() {
        if !simd_available() || !std::arch::is_x86_feature_detected!("avxvnni") {
            return;
        }
        assert_q8_fill_bit_identical(avx::q8_nt_fill_vnni, "int8 VNNI fill");
    }

    #[test]
    fn avx_blocked_fill_is_bit_identical_to_avx_ikj() {
        if !simd_available() {
            return;
        }
        // The invariant the size dispatch and the batched-serving
        // equivalence rest on: under SIMD, the blocked microkernel and the
        // SAXPY ikj kernel produce the same bits.
        for (m, k, n) in [(7, 33, 25), (65, 130, 195), (12, 200, 17), (70, 64, 256)] {
            let a = filled(m * k, |i| ((i * 31 % 23) as f32 - 11.0) * 0.07);
            let b = filled(k * n, |i| ((i * 29 % 19) as f32 - 9.0) * 0.09);
            let mut blocked = vec![0.0f32; m * n];
            let mut ikj = vec![0.0f32; m * n];
            // SAFETY: guarded by `simd_available`.
            unsafe {
                avx::blocked_fill_fma(&a, &b, k, n, 0, &mut blocked);
                avx::ikj_fill_fma(&mut ikj, &a, &b, m, k, n);
            }
            assert_eq!(blocked, ikj, "microkernel diverged at {m}x{k}x{n}");
        }
    }
}
