//! Elementwise unary maps and activation functions.
//!
//! The polynomial maps (`relu`, `square`, `abs`) run their forward pass
//! through the lane-exact SIMD primitives when the SIMD backend is active —
//! identical results, wider execution. The transcendental maps stay scalar
//! (there is no vector `exp`/`tanh` in `std::arch`).

use crate::ops::simd;
use crate::tensor::Tensor;

/// The ELU forward map — shared by the autograd op and the inference data
/// plane so the two planes are bit-identical by construction.
#[inline]
pub(crate) fn elu_scalar(x: f32, alpha: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        alpha * (x.exp() - 1.0)
    }
}

/// `sqrt(2/pi)` of the tanh-approximated GELU.
pub(crate) const GELU_C: f32 = 0.797_884_6;

/// The GELU forward map (tanh approximation) — shared by the autograd op
/// and the inference data plane.
#[inline]
pub(crate) fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

/// Builds a unary elementwise op from a whole-slice forward map (so the
/// forward can be vectorized) and a per-element derivative that receives
/// the *input* value.
fn unary_from_slice<F, D>(x: &Tensor, f: F, df: D) -> Tensor
where
    F: Fn(&[f32]) -> Vec<f32>,
    D: Fn(f32) -> f32 + 'static,
{
    let input = x.to_vec();
    let data = f(&input);
    Tensor::from_op(
        data,
        &x.shape(),
        vec![x.clone()],
        Box::new(move |g| vec![g.iter().zip(&input).map(|(gi, xi)| gi * df(*xi)).collect()]),
    )
}

/// Builds a unary elementwise op from a per-element forward map and a
/// derivative that receives the *input* value.
fn unary_from_input<F, D>(x: &Tensor, f: F, df: D) -> Tensor
where
    F: Fn(f32) -> f32,
    D: Fn(f32) -> f32 + 'static,
{
    unary_from_slice(x, |xs| xs.iter().copied().map(&f).collect(), df)
}

impl Tensor {
    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.mul_scalar(-1.0)
    }

    /// Elementwise natural exponent.
    pub fn exp(&self) -> Tensor {
        unary_from_input(self, |x| x.exp(), |x| x.exp())
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        unary_from_input(self, |x| x.ln(), |x| 1.0 / x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary_from_input(self, |x| x.sqrt(), |x| 0.5 / x.sqrt())
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        unary_from_slice(self, |xs| simd::vmul(xs, xs), |x| 2.0 * x)
    }

    /// Elementwise reciprocal `1/x`.
    pub fn recip(&self) -> Tensor {
        unary_from_input(self, |x| 1.0 / x, |x| -1.0 / (x * x))
    }

    /// Elementwise absolute value. The derivative at zero is taken as 0.
    pub fn abs(&self) -> Tensor {
        unary_from_slice(self, simd::vabs, |x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary_from_slice(self, simd::vrelu, |x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Exponential linear unit with `alpha = 1` (the activation used by the
    /// paper's GNN layers, Eq. 4).
    pub fn elu(&self) -> Tensor {
        self.elu_with_alpha(1.0)
    }

    /// Exponential linear unit: `x` for `x > 0`, `alpha * (e^x - 1)` otherwise.
    pub fn elu_with_alpha(&self, alpha: f32) -> Tensor {
        unary_from_input(
            self,
            move |x| elu_scalar(x, alpha),
            move |x| if x > 0.0 { 1.0 } else { alpha * x.exp() },
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        unary_from_input(
            self,
            |x| 1.0 / (1.0 + (-x).exp()),
            |x| {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            },
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary_from_input(self, |x| x.tanh(), |x| 1.0 - x.tanh() * x.tanh())
    }

    /// Gaussian error linear unit (tanh approximation), used by the temporal
    /// transformer's feed-forward block.
    pub fn gelu(&self) -> Tensor {
        const C: f32 = GELU_C;
        unary_from_input(self, gelu_scalar, |x| {
            let inner = C * (x + 0.044715 * x * x * x);
            let t = inner.tanh();
            let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x);
            0.5 * (1.0 + t) + 0.5 * x * dt
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).requires_grad(true)
    }

    #[test]
    fn exp_ln_inverse() {
        let x = leaf(vec![0.5, 1.5]);
        let y = x.exp().ln();
        let out = y.to_vec();
        assert!((out[0] - 0.5).abs() < 1e-6);
        assert!((out[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn relu_gradient_gates() {
        let x = leaf(vec![-2.0, 3.0]);
        let y = x.relu().sum_all();
        assert_eq!(y.item(), 3.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn elu_matches_definition() {
        let x = leaf(vec![-1.0, 2.0]);
        let y = x.elu();
        let out = y.to_vec();
        assert!((out[0] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert_eq!(out[1], 2.0);
        y.sum_all().backward();
        let g = x.grad().unwrap();
        assert!((g[0] - (-1.0f32).exp()).abs() < 1e-6);
        assert_eq!(g[1], 1.0);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let x = leaf(vec![0.0]);
        let y = x.sigmoid();
        assert!((y.item() - 0.5).abs() < 1e-6);
        y.backward();
        assert!((x.grad().unwrap()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sqrt_grad() {
        let x = leaf(vec![4.0]);
        let y = x.sqrt();
        assert_eq!(y.item(), 2.0);
        y.backward();
        assert!((x.grad().unwrap()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn abs_grad_sign() {
        let x = leaf(vec![-3.0, 0.0, 2.0]);
        let y = x.abs().sum_all();
        assert_eq!(y.item(), 5.0);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_close_to_relu_for_large_inputs() {
        let x = leaf(vec![10.0, -10.0]);
        let y = x.gelu().to_vec();
        assert!((y[0] - 10.0).abs() < 1e-3);
        assert!(y[1].abs() < 1e-3);
    }
}
