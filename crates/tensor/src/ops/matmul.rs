//! 2-D matrix multiplication and transpose.
//!
//! Forward products dispatch between the in-order reference kernel (small
//! operands — bit-identical to the seed implementation) and the blocked,
//! panel-packed, multi-threaded kernel in [`kernels`](super::kernels) (large
//! operands). Backward passes never materialize a transpose: `dA = G·Bᵀ` and
//! `dB = Aᵀ·G` run through the transposed-input kernels
//! [`kernels::matmul_nt`](super::kernels::matmul_nt) /
//! [`kernels::matmul_tn`](super::kernels::matmul_tn) directly on the buffers
//! captured at forward time.

use crate::ops::kernels::{
    check_dims, matmul_blocked, matmul_ikj, matmul_nt, matmul_tn, BLOCKED_DISPATCH_THRESHOLD,
};
use crate::tensor::Tensor;

/// Row-major matrix product `[m,k] x [k,n] -> [m,n]` used both by the
/// forward pass and by the backward closures. Dispatches on problem size:
/// below [`BLOCKED_DISPATCH_THRESHOLD`] flops the in-order `ikj` kernel
/// runs (bit-identical to the seed), above it the blocked threaded kernel.
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != k*n` — the raw boundary
/// validates so shape bugs surface here instead of as silent garbage or an
/// out-of-bounds index deep inside a kernel.
pub(crate) fn matmul_raw(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    check_dims(a, b, m, k, n, "matmul_raw");
    if m * k * n >= BLOCKED_DISPATCH_THRESHOLD {
        matmul_blocked(a, b, m, k, n)
    } else {
        matmul_ikj(a, b, m, k, n)
    }
}

pub(crate) fn transpose_raw(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

impl Tensor {
    /// Matrix product of two 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let sa = self.shape();
        let sb = other.shape();
        assert_eq!(sa.len(), 2, "matmul: lhs must be 2-D, got {sa:?}");
        assert_eq!(sb.len(), 2, "matmul: rhs must be 2-D, got {sb:?}");
        assert_eq!(sa[1], sb[0], "matmul: inner dims {} vs {}", sa[1], sb[0]);
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let a = self.to_vec();
        let b = other.to_vec();
        let data = matmul_raw(&a, &b, m, k, n);
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                // dA = G · Bᵀ and dB = Aᵀ · G via the transposed-input fast
                // paths: b ([k,n]) and a ([m,k]) are consumed as-is, no
                // transpose buffer is ever built.
                let da = matmul_nt(g, &b, m, n, k);
                let db = matmul_tn(&a, g, m, k, n);
                vec![da, db]
            }),
        )
    }

    /// Matrix product with a pre-transposed right-hand side:
    /// `self [m,k] × otherᵀ -> [m,n]` where `other` is stored `[n,k]`.
    ///
    /// Attention's `Q·Kᵀ` uses this to skip materializing `Kᵀ` (one fewer
    /// graph node and one fewer `[k,n]` allocation per head per forward).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the `k` dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use akg_tensor::Tensor;
    /// let q = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
    /// let k = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
    /// let fast = q.matmul_t(&k);
    /// let slow = q.matmul(&k.transpose());
    /// assert_eq!(fast.to_vec(), slow.to_vec());
    /// ```
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        let sa = self.shape();
        let sb = other.shape();
        assert_eq!(sa.len(), 2, "matmul_t: lhs must be 2-D, got {sa:?}");
        assert_eq!(sb.len(), 2, "matmul_t: rhs must be 2-D, got {sb:?}");
        assert_eq!(sa[1], sb[1], "matmul_t: inner dims {} vs {}", sa[1], sb[1]);
        let (m, k, n) = (sa[0], sa[1], sb[0]);
        let a = self.to_vec();
        let bt = other.to_vec(); // B stored transposed: [n, k]
        let data = matmul_nt(&a, &bt, m, k, n);
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                // C = A·Bᵀ with B stored [n,k]:
                //   dA = G · B      ([m,n] × [n,k])
                //   dB = Gᵀ · A     ([n,m] × [m,k])
                let da = matmul_raw(g, &bt, m, n, k);
                let db = matmul_tn(g, &a, m, n, k);
                vec![da, db]
            }),
        )
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "transpose: expected 2-D tensor, got {s:?}");
        let (m, n) = (s[0], s[1]);
        let data = transpose_raw(&self.to_vec(), m, n);
        Tensor::from_op(
            data,
            &[n, m],
            vec![self.clone()],
            Box::new(move |g| vec![transpose_raw(g, n, m)]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye).to_vec(), a.to_vec());
    }

    #[test]
    fn matmul_gradients() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).requires_grad(true);
        let c = a.matmul(&b); // [1,1] = 11
        assert_eq!(c.to_vec(), vec![11.0]);
        c.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0, 4.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose_with_grads() {
        let q =
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25, 1.5, -0.75], &[2, 3]).requires_grad(true);
        let k_data = vec![1.0, 0.5, -0.5, 2.0, 0.0, 1.0, -1.0, 0.5, 0.3, 0.3, 0.3, 0.3];
        let k = Tensor::from_vec(k_data, &[4, 3]).requires_grad(true);
        let fast = q.matmul_t(&k);
        assert_eq!(fast.shape(), vec![2, 4]);
        fast.square().sum_all().backward();
        let (gq_fast, gk_fast) = (q.grad().unwrap(), k.grad().unwrap());

        let q2 = Tensor::from_vec(q.to_vec(), &[2, 3]).requires_grad(true);
        let k2 = Tensor::from_vec(k.to_vec(), &[4, 3]).requires_grad(true);
        q2.matmul(&k2.transpose()).square().sum_all().backward();
        for (f, s) in fast.to_vec().iter().zip(q2.matmul(&k2.transpose()).to_vec()) {
            assert!((f - s).abs() < 1e-5);
        }
        for (f, s) in gq_fast.iter().zip(q2.grad().unwrap()) {
            assert!((f - s).abs() < 1e-4, "dQ mismatch {f} vs {s}");
        }
        for (f, s) in gk_fast.iter().zip(k2.grad().unwrap()) {
            assert!((f - s).abs() < 1e-4, "dK mismatch {f} vs {s}");
        }
    }

    #[test]
    fn large_matmul_crosses_blocked_dispatch() {
        // 64x64x64 = exactly the threshold: exercises the blocked path
        // through the public op, against the naive kernel.
        let dim = 64;
        let a: Vec<f32> = (0..dim * dim).map(|i| ((i % 13) as f32 - 6.0) * 0.05).collect();
        let b: Vec<f32> = (0..dim * dim).map(|i| ((i % 11) as f32 - 5.0) * 0.07).collect();
        let fast = Tensor::from_vec(a.clone(), &[dim, dim])
            .matmul(&Tensor::from_vec(b.clone(), &[dim, dim]))
            .to_vec();
        let reference = crate::ops::kernels::matmul_naive(&a, &b, dim, dim, dim);
        for (f, r) in fast.iter().zip(&reference) {
            assert!((f - r).abs() <= 1e-5 * r.abs().max(1.0), "{f} vs {r}");
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), vec![3, 2]);
        assert_eq!(t.transpose().to_vec(), a.to_vec());
    }

    #[test]
    fn transpose_gradient_transposes_back() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[2, 2]);
        let y = a.transpose().mul(&mask).sum_all(); // selects a[0][0]
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "expected m*k")]
    fn matmul_raw_rejects_short_lhs() {
        // Regression: the raw boundary must validate slice lengths against
        // m/k/n instead of silently indexing out of bounds (or worse,
        // producing a plausible-looking partial product).
        let _ = matmul_raw(&[1.0; 5], &[1.0; 6], 2, 3, 2);
    }

    #[test]
    #[should_panic(expected = "expected k*n")]
    fn matmul_raw_rejects_short_rhs() {
        let _ = matmul_raw(&[1.0; 6], &[1.0; 5], 2, 3, 2);
    }
}
