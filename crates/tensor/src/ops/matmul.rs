//! 2-D matrix multiplication and transpose.

use crate::tensor::Tensor;

/// Plain row-major matrix product `[m,k] x [k,n] -> [m,n]` used both by the
/// forward pass and by the backward closures.
pub(crate) fn matmul_raw(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
    out
}

pub(crate) fn transpose_raw(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

impl Tensor {
    /// Matrix product of two 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let sa = self.shape();
        let sb = other.shape();
        assert_eq!(sa.len(), 2, "matmul: lhs must be 2-D, got {sa:?}");
        assert_eq!(sb.len(), 2, "matmul: rhs must be 2-D, got {sb:?}");
        assert_eq!(sa[1], sb[0], "matmul: inner dims {} vs {}", sa[1], sb[0]);
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let a = self.to_vec();
        let b = other.to_vec();
        let data = matmul_raw(&a, &b, m, k, n);
        Tensor::from_op(
            data,
            &[m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                // dA = G * B^T ; dB = A^T * G
                let bt = transpose_raw(&b, k, n);
                let da = matmul_raw(g, &bt, m, n, k);
                let at = transpose_raw(&a, m, k);
                let db = matmul_raw(&at, g, k, m, n);
                vec![da, db]
            }),
        )
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "transpose: expected 2-D tensor, got {s:?}");
        let (m, n) = (s[0], s[1]);
        let data = transpose_raw(&self.to_vec(), m, n);
        Tensor::from_op(
            data,
            &[n, m],
            vec![self.clone()],
            Box::new(move |g| vec![transpose_raw(g, n, m)]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye).to_vec(), a.to_vec());
    }

    #[test]
    fn matmul_gradients() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).requires_grad(true);
        let c = a.matmul(&b); // [1,1] = 11
        assert_eq!(c.to_vec(), vec![11.0]);
        c.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0, 4.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), vec![3, 2]);
        assert_eq!(t.transpose().to_vec(), a.to_vec());
    }

    #[test]
    fn transpose_gradient_transposes_back() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad(true);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[2, 2]);
        let y = a.transpose().mul(&mask).sum_all(); // selects a[0][0]
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }
}
