//! # akg-tensor
//!
//! Tensor and reverse-mode autograd substrate for the `adaptive-kg`
//! reproduction of *"Continuous GNN-based Anomaly Detection on Edge using
//! Efficient Adaptive Knowledge Graph Learning"* (DATE 2025).
//!
//! There is no Rust GNN/autograd ecosystem dependency here by design: the
//! paper's models are small (per-layer width 8, a short transformer), so this
//! crate implements exactly the operator set they need, with finite-difference
//! verified gradients ([`gradcheck`]).
//!
//! ## Layout
//!
//! - [`Tensor`]: row-major `f32` array with a recorded backward graph
//! - [`ops`]: differentiable operations (arithmetic, matmul, reductions,
//!   shape, gather/scatter, softmax/cross-entropy), with the raw
//!   blocked/threaded matmul kernels exposed in [`ops::kernels`]
//! - [`inference`] + [`workspace`]: the serving data plane — raw-slice
//!   forward ops writing into [`Workspace`]-pooled buffers, zero autograd
//!   bookkeeping and zero steady-state allocation, bit-identical per backend
//!   to the autograd ops (the training/adaptation plane stays on [`Tensor`])
//! - [`par`]: the [`Parallelism`] configuration and the scoped-thread worker
//!   pool the kernels use
//! - [`backend`]: the runtime-selected [`Backend`] (portable scalar kernels
//!   vs. AVX2+FMA SIMD kernels, detected at startup)
//! - [`quant`]: the int8 serving plane's representation — [`Precision`],
//!   [`QuantizedMatrix`] (symmetric per-row-scaled int8 weights), and the
//!   dynamic activation quantizer the q8 kernels consume
//! - [`nn`]: layers — [`nn::Linear`], [`nn::Embedding`],
//!   [`nn::norm::BatchNorm1d`], [`nn::norm::LayerNorm`],
//!   [`nn::attention::TransformerEncoder`]
//! - [`optim`]: [`optim::Sgd`] and [`optim::AdamW`] (decoupled weight decay)
//! - [`init`]: seeded initializers
//! - [`gradcheck`]: numerical gradient verification
//!
//! ## Example
//!
//! ```
//! use akg_tensor::{Tensor, nn::{Linear, Module}, optim::{AdamW, Optimizer}};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let layer = Linear::new(2, 1, &mut rng);
//! let mut opt = AdamW::with_lr(layer.params(), 1e-2);
//! let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
//! for _ in 0..10 {
//!     opt.zero_grad();
//!     let loss = layer.forward(&x).square().sum_all();
//!     loss.backward();
//!     opt.step();
//! }
//! ```

#![warn(missing_docs)]

mod tensor;

pub mod backend;
pub mod gradcheck;
pub mod inference;
pub mod init;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod par;
pub mod quant;
pub mod workspace;

pub use backend::Backend;
pub use gradcheck::{gradcheck, GradCheckReport};
pub use par::Parallelism;
pub use quant::{Precision, QuantizedMatrix};
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};
