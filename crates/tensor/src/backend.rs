//! Runtime-selectable compute backend for the raw `f32` kernels.
//!
//! Every hot kernel in this crate exists in two forms: the portable scalar
//! implementation (the numerics of record — bit-identical to the pre-SIMD
//! code on every platform) and, on `x86_64`, an explicit AVX2+FMA
//! implementation in [`crate::ops::simd`]. Which form runs is a process-wide
//! policy set here, mirroring how [`crate::par`] configures the thread pool:
//! tensors are `Rc`-based, so the knob lives beneath the autograd graph and a
//! single setting governs every op.
//!
//! ## Selection
//!
//! - [`Backend::Auto`] (the default): use SIMD when the running CPU reports
//!   AVX2 **and** FMA (checked once via `is_x86_feature_detected!`), scalar
//!   otherwise. Non-`x86_64` hosts always resolve to scalar.
//! - [`Backend::Scalar`]: force the scalar kernels. This is the
//!   reproducibility switch — scalar results are bit-identical across every
//!   machine and to the pre-SIMD history of this repository.
//! - [`Backend::Simd`]: request SIMD explicitly. On a host without AVX2+FMA
//!   this still resolves to scalar (requesting an unsupported ISA must not
//!   crash an edge deployment), so `Simd` means "SIMD if the hardware can".
//!
//! ## Numerics policy
//!
//! The SIMD kernels are *not* bit-identical to scalar: the matmul family
//! contracts multiply-add pairs with FMA (one rounding instead of two) and
//! row reductions use lane-parallel partial sums. Divergence is
//! accumulation-order only and property-tested to stay within `1e-4`
//! (`tensor/tests/proptest_kernels.rs`). What **is** guaranteed, per
//! backend:
//!
//! - results are bit-for-bit deterministic across runs and thread counts;
//! - `matmul_blocked` ≡ `matmul_ikj` per element (both sides of the
//!   size-dispatch threshold agree exactly), which the batched-serving
//!   equivalence suite relies on;
//! - the fused softmax and the instance/grouped batch-norm paths remain
//!   bit-identical to their composed formulations.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementations the raw `f32` ops run.
///
/// # Examples
///
/// ```
/// use akg_tensor::backend::{set_backend, effective_backend, Backend};
///
/// set_backend(Backend::Scalar);
/// assert_eq!(effective_backend(), Backend::Scalar);
///
/// // `Auto` resolves to Simd exactly when the CPU supports AVX2+FMA.
/// set_backend(Backend::Auto);
/// let resolved = effective_backend();
/// assert!(resolved == Backend::Scalar || resolved == Backend::Simd);
/// # set_backend(Backend::Auto); // leave the default behind
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels — bit-identical on every platform.
    Scalar,
    /// AVX2+FMA kernels where the hardware supports them (falls back to
    /// scalar on hosts without AVX2+FMA rather than crashing).
    Simd,
    /// Detect at runtime: SIMD when available, scalar otherwise (default).
    Auto,
}

const AUTO: u8 = 0;
const SCALAR: u8 = 1;
const SIMD: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(AUTO);

/// Sets the process-wide backend policy for all raw kernels.
pub fn set_backend(b: Backend) {
    let v = match b {
        Backend::Auto => AUTO,
        Backend::Scalar => SCALAR,
        Backend::Simd => SIMD,
    };
    BACKEND.store(v, Ordering::Relaxed);
}

/// The currently configured policy (as set, before hardware resolution).
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        SCALAR => Backend::Scalar,
        SIMD => Backend::Simd,
        _ => Backend::Auto,
    }
}

/// Whether this host's CPU supports the AVX2+FMA kernels (detected once,
/// cached). Always `false` off `x86_64`.
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// Whether kernels will take the SIMD path right now (policy ∧ hardware).
#[inline]
pub fn simd_active() -> bool {
    BACKEND.load(Ordering::Relaxed) != SCALAR && simd_available()
}

/// The backend kernels will actually run: [`Backend::Scalar`] or
/// [`Backend::Simd`], never [`Backend::Auto`].
pub fn effective_backend() -> Backend {
    if simd_active() {
        Backend::Simd
    } else {
        Backend::Scalar
    }
}

/// Human-readable summary of the SIMD-relevant CPU features this host
/// reports, for perf reports and logs (e.g. `"avx2 fma avx512f"`, or
/// `"none"`).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = Vec::new();
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        if feats.is_empty() {
            "none".to_string()
        } else {
            feats.join(" ")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none".to_string()
    }
}

/// Serializes in-crate tests that either mutate the process-wide backend or
/// assert cross-call bitwise equality (which a concurrent backend flip would
/// break). The lock lives here so every test module in the crate shares one.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_round_trips() {
        let _guard = test_lock();
        let before = backend();
        for b in [Backend::Scalar, Backend::Simd, Backend::Auto] {
            set_backend(b);
            assert_eq!(backend(), b);
        }
        set_backend(before);
    }

    #[test]
    fn scalar_policy_deactivates_simd() {
        let _guard = test_lock();
        let before = backend();
        set_backend(Backend::Scalar);
        assert!(!simd_active());
        assert_eq!(effective_backend(), Backend::Scalar);
        set_backend(before);
    }

    #[test]
    fn auto_resolves_to_hardware() {
        let _guard = test_lock();
        let before = backend();
        set_backend(Backend::Auto);
        assert_eq!(simd_active(), simd_available());
        set_backend(before);
    }

    #[test]
    fn feature_summary_is_nonempty() {
        assert!(!cpu_features().is_empty());
    }
}
