//! Finite-difference gradient checking for the autograd engine.

use crate::tensor::Tensor;

/// Result of a gradient check: the worst relative error observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error across all checked coordinates.
    pub max_rel_error: f32,
    /// Number of coordinates checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the analytical gradients are within `tol` of the numerical
    /// ones.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compares analytical gradients against central finite differences.
///
/// `f` must build a scalar loss from the given leaf tensors. Each call must
/// rebuild the graph from the leaves' *current data* (the checker perturbs
/// the data in place).
///
/// # Panics
///
/// Panics if `f` returns a non-scalar tensor.
pub fn gradcheck<F>(leaves: &[Tensor], f: F, eps: f32) -> GradCheckReport
where
    F: Fn(&[Tensor]) -> Tensor,
{
    for leaf in leaves {
        leaf.zero_grad();
    }
    let loss = f(leaves);
    assert_eq!(loss.numel(), 1, "gradcheck: loss must be scalar");
    loss.backward();
    let analytical: Vec<Vec<f32>> =
        leaves.iter().map(|l| l.grad().unwrap_or_else(|| vec![0.0; l.numel()])).collect();

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;
    for (li, leaf) in leaves.iter().enumerate() {
        for (i, &a) in analytical[li].iter().enumerate() {
            let orig = leaf.to_vec()[i];
            set_at(leaf, i, orig + eps);
            let plus = f(leaves).item();
            set_at(leaf, i, orig - eps);
            let minus = f(leaves).item();
            set_at(leaf, i, orig);
            let numerical = (plus - minus) / (2.0 * eps);
            // The 0.1 floor makes the comparison absolute for small
            // gradients, which is what f32 finite differences can resolve.
            let denom = a.abs().max(numerical.abs()).max(0.1);
            let rel = (a - numerical).abs() / denom;
            if rel > max_rel {
                max_rel = rel;
            }
            checked += 1;
        }
    }
    GradCheckReport { max_rel_error: max_rel, checked }
}

fn set_at(t: &Tensor, i: usize, v: f32) {
    t.update_data(|data| data[i] = v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_polynomial() {
        let x = Tensor::from_vec(vec![0.5, -1.2, 2.0], &[3]).requires_grad(true);
        let report =
            gradcheck(&[x], |ls| ls[0].square().mul_scalar(3.0).add_scalar(1.0).sum_all(), 1e-3);
        assert!(report.passes(1e-2), "max rel error {}", report.max_rel_error);
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn passes_on_matmul_softmax_chain() {
        let w = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[2, 2]).requires_grad(true);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let report = gradcheck(&[w], |ls| x.matmul(&ls[0]).softmax_rows().square().sum_all(), 1e-3);
        assert!(report.passes(1e-2), "max rel error {}", report.max_rel_error);
    }

    #[test]
    fn detects_wrong_gradient() {
        // A "loss" that perturbs data out-of-graph would break the check; we
        // emulate a wrong gradient by comparing |x| near a kink, where finite
        // differences and the analytical subgradient disagree.
        let x = Tensor::from_vec(vec![1e-5], &[1]).requires_grad(true);
        let report = gradcheck(&[x], |ls| ls[0].abs().sum_all(), 1e-3);
        assert!(!report.passes(1e-3));
    }
}
