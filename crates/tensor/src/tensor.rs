//! The [`Tensor`] type: a reference-counted, reverse-mode-differentiable
//! multi-dimensional array of `f32`.
//!
//! The autograd design is tape-free: every operation that produces a tensor
//! records (a) handles to its parent tensors and (b) a backward closure that
//! maps the output gradient to per-parent gradient contributions. Calling
//! [`Tensor::backward`] on a scalar runs a reverse topological sweep and
//! accumulates gradients into every tracked ancestor.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Backward closure: given the gradient w.r.t. this tensor's output, return
/// one gradient buffer per parent (in the same order as the recorded parents).
pub(crate) type BackwardFn = Box<dyn Fn(&[f32]) -> Vec<Vec<f32>>>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) data: Vec<f32>,
    pub(crate) shape: Vec<usize>,
    pub(crate) grad: Option<Vec<f32>>,
    /// Leaf flag: gradients should be retained here after `backward`.
    pub(crate) requires_grad: bool,
    /// True when this tensor participates in a graph that reaches a
    /// `requires_grad` leaf, so gradients must flow through it.
    pub(crate) tracked: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A multi-dimensional `f32` array with reverse-mode automatic
/// differentiation.
///
/// `Tensor` is a cheap-to-clone handle (internally `Rc`); clones share the
/// same storage and gradient. Tensors are row-major.
///
/// # Examples
///
/// ```
/// use akg_tensor::Tensor;
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad(true);
/// let y = x.square().sum_all();
/// y.backward();
/// assert_eq!(x.grad().unwrap(), vec![2.0, 4.0, 6.0]);
/// ```
pub struct Tensor {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { inner: Rc::clone(&self.inner) }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Tensor")
            .field("id", &inner.id)
            .field("shape", &inner.shape)
            .field("requires_grad", &inner.requires_grad)
            .field("data", &inner.data)
            .finish()
    }
}

fn numel_of(shape: &[usize]) -> usize {
    shape.iter().product::<usize>().max(if shape.is_empty() { 1 } else { 0 })
}

impl Tensor {
    // ----------------------------------------------------------------
    // Constructors
    // ----------------------------------------------------------------

    /// Creates a tensor from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel_of(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            inner: Rc::new(RefCell::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data,
                shape: shape.to_vec(),
                grad: None,
                requires_grad: false,
                tracked: false,
                parents: Vec::new(),
                backward: None,
            })),
        }
    }

    /// A scalar tensor of shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], &[1])
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![0.0; numel_of(shape)], shape)
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![1.0; numel_of(shape)], shape)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor::from_vec(vec![value; numel_of(shape)], shape)
    }

    /// Internal: create an op output with recorded parents and backward fn.
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: &[usize],
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Self {
        let tracked = parents.iter().any(Tensor::is_tracked);
        let out = Tensor::from_vec(data, shape);
        if tracked {
            let mut inner = out.inner.borrow_mut();
            inner.tracked = true;
            inner.parents = parents;
            inner.backward = Some(backward);
        }
        out
    }

    // ----------------------------------------------------------------
    // Accessors
    // ----------------------------------------------------------------

    /// Unique identity of the underlying storage.
    pub fn id(&self) -> u64 {
        self.inner.borrow().id
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().shape.clone()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.inner.borrow().data.len()
    }

    /// Copies the underlying row-major data out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.borrow().data.clone()
    }

    /// Runs `f` over a borrow of the underlying row-major data without
    /// copying it — the zero-allocation read path batched serving uses to
    /// gather token-table rows.
    ///
    /// # Panics
    ///
    /// Panics (borrow conflict) if `f` re-enters this tensor mutably, e.g.
    /// via [`Tensor::update_data`].
    pub fn with_data<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        f(&self.inner.borrow().data)
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let inner = self.inner.borrow();
        assert_eq!(inner.data.len(), 1, "item() on non-scalar tensor {:?}", inner.shape);
        inner.data[0]
    }

    /// Element at a row-major flat index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn at(&self, idx: usize) -> f32 {
        self.inner.borrow().data[idx]
    }

    /// Element of a 2-D tensor at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let inner = self.inner.borrow();
        assert_eq!(inner.shape.len(), 2, "at2 on non-2D tensor");
        let cols = inner.shape[1];
        inner.data[row * cols + col]
    }

    /// Whether gradients are retained on this tensor after `backward`.
    pub fn requires_grad_flag(&self) -> bool {
        self.inner.borrow().requires_grad
    }

    pub(crate) fn is_tracked(&self) -> bool {
        let inner = self.inner.borrow();
        inner.tracked || inner.requires_grad
    }

    /// Marks this tensor as a differentiable leaf (builder style).
    ///
    /// # Examples
    ///
    /// ```
    /// use akg_tensor::Tensor;
    /// let w = Tensor::zeros(&[2, 2]).requires_grad(true);
    /// assert!(w.requires_grad_flag());
    /// ```
    pub fn requires_grad(self, value: bool) -> Self {
        {
            let mut inner = self.inner.borrow_mut();
            inner.requires_grad = value;
        }
        self
    }

    /// Sets the `requires_grad` flag in place (used to freeze/unfreeze
    /// parameters between the training and adaptation phases).
    pub fn set_requires_grad(&self, value: bool) {
        self.inner.borrow_mut().requires_grad = value;
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.borrow().grad.clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad = None;
    }

    /// Returns a new leaf tensor sharing no graph history with `self`.
    pub fn detach(&self) -> Tensor {
        let inner = self.inner.borrow();
        Tensor::from_vec(inner.data.clone(), &inner.shape)
    }

    /// Overwrites the data in place without recording a graph operation.
    ///
    /// # Panics
    ///
    /// Panics if `data` length mismatches the tensor's element count.
    pub fn set_data(&self, data: &[f32]) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(inner.data.len(), data.len(), "set_data length mismatch");
        inner.data.copy_from_slice(data);
    }

    /// Applies `f` to the raw data in place (no autograd). Used by optimizers.
    pub fn update_data<F: FnOnce(&mut [f32])>(&self, f: F) {
        let mut inner = self.inner.borrow_mut();
        f(&mut inner.data);
    }

    pub(crate) fn accumulate_grad(&self, contribution: &[f32]) {
        let mut inner = self.inner.borrow_mut();
        debug_assert_eq!(inner.data.len(), contribution.len(), "gradient shape mismatch");
        match &mut inner.grad {
            Some(g) => {
                for (gi, ci) in g.iter_mut().zip(contribution) {
                    *gi += ci;
                }
            }
            None => inner.grad = Some(contribution.to_vec()),
        }
    }

    /// Like [`Tensor::accumulate_grad`] but takes ownership of the
    /// contribution, so the first contribution to a tensor becomes its
    /// gradient buffer directly instead of being copied. Backward closures
    /// return freshly-allocated buffers, so the reverse sweep moves every
    /// single-use gradient rather than cloning it.
    pub(crate) fn accumulate_grad_owned(&self, contribution: Vec<f32>) {
        let mut inner = self.inner.borrow_mut();
        debug_assert_eq!(inner.data.len(), contribution.len(), "gradient shape mismatch");
        match &mut inner.grad {
            Some(g) => {
                for (gi, ci) in g.iter_mut().zip(&contribution) {
                    *gi += ci;
                }
            }
            None => inner.grad = Some(contribution),
        }
    }

    // ----------------------------------------------------------------
    // Backward
    // ----------------------------------------------------------------

    /// Runs reverse-mode differentiation from this scalar tensor, seeding the
    /// output gradient with `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar; use [`Tensor::backward_with`]
    /// to seed a non-scalar output.
    pub fn backward(&self) {
        assert_eq!(self.numel(), 1, "backward() requires a scalar; use backward_with");
        self.backward_with(&[1.0]);
    }

    /// Runs reverse-mode differentiation seeding the output gradient with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed` length mismatches the tensor's element count.
    pub fn backward_with(&self, seed: &[f32]) {
        assert_eq!(self.numel(), seed.len(), "backward seed length mismatch");
        // Iterative post-order DFS so deep graphs cannot overflow the stack.
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((node, children_done)) = stack.pop() {
            let id = node.id();
            if children_done {
                topo.push(node);
                continue;
            }
            if !visited.insert(id) {
                continue;
            }
            stack.push((node.clone(), true));
            let parents = node.inner.borrow().parents.clone();
            for p in parents {
                if p.is_tracked() && !visited.contains(&p.id()) {
                    stack.push((p, false));
                }
            }
        }
        self.accumulate_grad(seed);
        for node in topo.iter().rev() {
            let (grad_out, parents) = {
                let mut inner = node.inner.borrow_mut();
                if inner.backward.is_none() {
                    continue;
                }
                // Intermediate nodes never need their gradient again after
                // this visit, so take the buffer out instead of cloning it;
                // only leaves (requires_grad) retain a copy for the caller.
                let grad = if inner.requires_grad {
                    match &inner.grad {
                        Some(g) => g.clone(),
                        None => continue,
                    }
                } else {
                    match inner.grad.take() {
                        Some(g) => g,
                        None => continue,
                    }
                };
                (grad, inner.parents.clone())
            };
            // Call the closure without holding the borrow (the closure only
            // captures copied data, never the node itself).
            let contributions = {
                let inner = node.inner.borrow();
                (inner.backward.as_ref().expect("backward fn"))(&grad_out)
            };
            debug_assert_eq!(contributions.len(), parents.len());
            for (parent, contribution) in parents.iter().zip(contributions) {
                if parent.is_tracked() {
                    // Move the buffer: a parent's first contribution becomes
                    // its gradient storage with no copy.
                    parent.accumulate_grad_owned(contribution);
                }
            }
        }
    }
}

impl Tensor {
    /// Rescales the accumulated gradient so its L2 norm is at most
    /// `max_norm` (no-op when there is no gradient or it is already small).
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let mut inner = self.inner.borrow_mut();
        let Some(grad) = &mut inner.grad else { return 0.0 };
        let norm = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for g in grad.iter_mut() {
                *g *= scale;
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_shape_checked() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.shape(), vec![2, 2]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Tensor::zeros(&[3]);
        let b = a.clone();
        a.set_data(&[1.0, 2.0, 3.0]);
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn detach_cuts_history() {
        let a = Tensor::ones(&[2]).requires_grad(true);
        let b = a.detach();
        assert!(!b.is_tracked());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let x = Tensor::from_vec(vec![3.0], &[1]).requires_grad(true);
        let y = x.clone().mul(&x); // x^2, x used twice
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![6.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::scalar(2.0).requires_grad(true);
        let y = x.square();
        y.backward();
        assert!(x.grad().is_some());
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn untracked_graph_records_nothing() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::ones(&[2]);
        let c = a.add(&b);
        assert!(!c.is_tracked());
        assert!(c.inner.borrow().backward.is_none());
    }

    #[test]
    #[should_panic(expected = "requires a scalar")]
    fn backward_requires_scalar() {
        let x = Tensor::ones(&[2]).requires_grad(true);
        x.backward();
    }
}
