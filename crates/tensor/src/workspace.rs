//! Size-keyed pools of reusable `f32` buffers for the inference data plane.
//!
//! The serving path (see [`crate::inference`]) never allocates in steady
//! state: every intermediate activation lives in a buffer leased from a
//! [`Workspace`] and returned after use. Because a deployed model's shapes
//! are fixed, the set of distinct buffer sizes a forward pass needs is
//! finite — after the first few frames the pools contain one buffer per
//! (size, simultaneous-use) pair and every subsequent lease is a pop + a
//! `memset`, so a long-lived deployment reaches a **fixed memory high-water
//! mark** ([`WorkspaceStats::high_water_bytes`] stabilizes; the runtime soak
//! test asserts this).
//!
//! Pools are intentionally dumb: exact-size matching, LIFO reuse, no eviction
//! (an edge deployment wants a stable footprint, not a shrinking one).
//!
//! # Examples
//!
//! ```
//! use akg_tensor::workspace::Workspace;
//!
//! let mut ws = Workspace::new();
//! let a = ws.lease(64); // zeroed, freshly allocated
//! ws.release(a);
//! let b = ws.lease(64); // reused: no new allocation
//! assert_eq!(ws.stats().buffers_created, 1);
//! assert_eq!(ws.stats().leases, 2);
//! ws.release(b);
//! ```

use std::collections::HashMap;

/// Counters describing a [`Workspace`]'s allocation behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkspaceStats {
    /// Fixed-size buffer leases served (`f32` and `i8`, hits + misses).
    pub leases: u64,
    /// Fixed-size buffers ever allocated (`f32` and `i8` pool misses).
    pub buffers_created: usize,
    /// Bytes backing the fixed-size buffers (`f32` and `i8`) ever
    /// allocated. Since every buffer returns to its pool, this is the
    /// workspace's memory high-water mark; it stabilizes once the
    /// deployment has seen every shape it will ever serve.
    pub bytes_created: usize,
    /// Growable scratch vectors (`f32` and index) ever allocated.
    pub scratch_created: usize,
}

impl WorkspaceStats {
    /// The workspace's fixed-size-pool memory high-water mark in bytes.
    pub fn high_water_bytes(&self) -> usize {
        self.bytes_created
    }
}

/// A pool of reusable buffers backing the allocation-free inference path.
///
/// Four kinds of scratch are pooled:
///
/// - **fixed-size `f32` buffers** ([`Workspace::lease`] /
///   [`Workspace::release`]): keyed by exact length, handed out **zeroed**
///   (the contract every op in [`crate::inference`] assumes for its outputs);
/// - **fixed-size `i8` buffers** ([`Workspace::lease_i8`] /
///   [`Workspace::release_i8`]): the same contract, backing the dynamic
///   activation-quantization scratch of the int8 plane
///   ([`crate::quant`]) — counted into the same high-water stats;
/// - **growable `f32` vectors** ([`Workspace::lease_vec`]): handed out
///   empty with retained capacity, for `clear()`/`extend` result buffers;
/// - **growable index vectors** ([`Workspace::lease_idx`]): the same, for
///   `usize` gather/scatter index scratch.
#[derive(Debug, Default)]
pub struct Workspace {
    pools: HashMap<usize, Vec<Vec<f32>>>,
    pools_i8: HashMap<usize, Vec<Vec<i8>>>,
    vec_pool: Vec<Vec<f32>>,
    idx_pool: Vec<Vec<usize>>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Leases a zeroed buffer of exactly `len` elements. Reuses a pooled
    /// buffer of that size when one is free; allocates (and counts) one
    /// otherwise. Pair with [`Workspace::release`].
    pub fn lease(&mut self, len: usize) -> Vec<f32> {
        self.stats.leases += 1;
        if let Some(pool) = self.pools.get_mut(&len) {
            if let Some(mut buf) = pool.pop() {
                buf.fill(0.0);
                return buf;
            }
        }
        self.stats.buffers_created += 1;
        self.stats.bytes_created += len * std::mem::size_of::<f32>();
        vec![0.0f32; len]
    }

    /// Returns a buffer obtained from [`Workspace::lease`] to its size pool.
    /// The buffer's length must not have been changed while leased.
    pub fn release(&mut self, buf: Vec<f32>) {
        self.pools.entry(buf.len()).or_default().push(buf);
    }

    /// Leases a zeroed `i8` buffer of exactly `len` elements — the int8
    /// plane's activation-quantization scratch. Reuses a pooled buffer of
    /// that size when one is free; allocates (and counts, into the same
    /// high-water stats as the `f32` pools) one otherwise. Pair with
    /// [`Workspace::release_i8`].
    pub fn lease_i8(&mut self, len: usize) -> Vec<i8> {
        self.stats.leases += 1;
        if let Some(pool) = self.pools_i8.get_mut(&len) {
            if let Some(mut buf) = pool.pop() {
                buf.fill(0);
                return buf;
            }
        }
        self.stats.buffers_created += 1;
        self.stats.bytes_created += len;
        vec![0i8; len]
    }

    /// Returns a buffer obtained from [`Workspace::lease_i8`] to its size
    /// pool. The buffer's length must not have been changed while leased.
    pub fn release_i8(&mut self, buf: Vec<i8>) {
        self.pools_i8.entry(buf.len()).or_default().push(buf);
    }

    /// Leases an empty growable `f32` vector (capacity retained across
    /// reuses). Pair with [`Workspace::release_vec`].
    pub fn lease_vec(&mut self) -> Vec<f32> {
        match self.vec_pool.pop() {
            Some(v) => v,
            None => {
                self.stats.scratch_created += 1;
                Vec::new()
            }
        }
    }

    /// Returns a growable `f32` vector to the pool (cleared, capacity kept).
    pub fn release_vec(&mut self, mut v: Vec<f32>) {
        v.clear();
        self.vec_pool.push(v);
    }

    /// Leases an empty growable index vector (capacity retained across
    /// reuses). Pair with [`Workspace::release_idx`].
    pub fn lease_idx(&mut self) -> Vec<usize> {
        match self.idx_pool.pop() {
            Some(v) => v,
            None => {
                self.stats.scratch_created += 1;
                Vec::new()
            }
        }
    }

    /// Returns an index vector to the pool (cleared, capacity kept).
    pub fn release_idx(&mut self, mut v: Vec<usize>) {
        v.clear();
        self.idx_pool.push(v);
    }

    /// Allocation counters so far.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_zeroed_after_reuse() {
        let mut ws = Workspace::new();
        let mut a = ws.lease(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.release(a);
        let b = ws.lease(8);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer not zeroed");
        ws.release(b);
    }

    #[test]
    fn high_water_stabilizes_under_repeated_shapes() {
        let mut ws = Workspace::new();
        for _ in 0..100 {
            let a = ws.lease(16);
            let b = ws.lease(32);
            ws.release(a);
            ws.release(b);
        }
        let stats = ws.stats();
        assert_eq!(stats.buffers_created, 2);
        assert_eq!(stats.high_water_bytes(), (16 + 32) * 4);
        assert_eq!(stats.leases, 200);
    }

    #[test]
    fn simultaneous_leases_of_one_size_get_distinct_buffers() {
        let mut ws = Workspace::new();
        let a = ws.lease(4);
        let b = ws.lease(4);
        assert_eq!(ws.stats().buffers_created, 2);
        ws.release(a);
        ws.release(b);
        let _ = ws.lease(4);
        assert_eq!(ws.stats().buffers_created, 2);
    }

    #[test]
    fn i8_pool_reuses_and_counts_into_shared_stats() {
        let mut ws = Workspace::new();
        for _ in 0..50 {
            let f = ws.lease(16);
            let mut q = ws.lease_i8(16);
            assert!(q.iter().all(|&v| v == 0), "leased i8 buffer not zeroed");
            q.iter_mut().for_each(|v| *v = -5);
            ws.release(f);
            ws.release_i8(q);
        }
        let stats = ws.stats();
        assert_eq!(stats.buffers_created, 2, "one f32 + one i8 buffer");
        assert_eq!(stats.high_water_bytes(), 16 * 4 + 16);
        assert_eq!(stats.leases, 100);
    }

    #[test]
    fn i8_and_f32_pools_of_one_size_are_distinct() {
        let mut ws = Workspace::new();
        let f = ws.lease(8);
        ws.release(f);
        // An i8 lease of the same length must not raid the f32 pool.
        let q = ws.lease_i8(8);
        assert_eq!(ws.stats().buffers_created, 2);
        ws.release_i8(q);
    }

    #[test]
    fn scratch_vectors_retain_capacity() {
        let mut ws = Workspace::new();
        let mut v = ws.lease_idx();
        v.extend(0..100);
        ws.release_idx(v);
        let v = ws.lease_idx();
        assert!(v.is_empty());
        assert!(v.capacity() >= 100);
        ws.release_idx(v);
        assert_eq!(ws.stats().scratch_created, 1);
    }
}
