//! Property-based verification of the autograd engine: every differentiable
//! op must agree with central finite differences on random inputs, and core
//! algebraic identities must hold.

use akg_tensor::{gradcheck, Tensor};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

/// Values bounded away from zero, for div/ln/sqrt-safe denominators.
fn positive_vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.2f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_mul_grads_match_fd(a in vec_strategy(6), b in vec_strategy(6)) {
        let x = Tensor::from_vec(a, &[6]).requires_grad(true);
        let y = Tensor::from_vec(b, &[6]).requires_grad(true);
        let report = gradcheck(&[x, y], |ls| ls[0].add(&ls[1]).mul(&ls[0]).sum_all(), 1e-2);
        prop_assert!(report.passes(2e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn div_grads_match_fd(a in vec_strategy(4), b in positive_vec_strategy(4)) {
        let x = Tensor::from_vec(a, &[4]).requires_grad(true);
        let y = Tensor::from_vec(b, &[4]).requires_grad(true);
        let report = gradcheck(&[x, y], |ls| ls[0].div(&ls[1]).sum_all(), 1e-2);
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn matmul_grads_match_fd(a in vec_strategy(6), b in vec_strategy(6)) {
        let x = Tensor::from_vec(a, &[2, 3]).requires_grad(true);
        let y = Tensor::from_vec(b, &[3, 2]).requires_grad(true);
        let report = gradcheck(&[x, y], |ls| ls[0].matmul(&ls[1]).square().sum_all(), 1e-2);
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn softmax_grads_match_fd(a in vec_strategy(6)) {
        let x = Tensor::from_vec(a, &[2, 3]).requires_grad(true);
        let report = gradcheck(&[x], |ls| ls[0].softmax_rows().square().sum_all(), 1e-2);
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn elu_gelu_grads_match_fd(a in vec_strategy(5)) {
        // keep away from the ELU kink at 0
        let shifted: Vec<f32> = a.iter().map(|v| if v.abs() < 0.05 { v + 0.1 } else { *v }).collect();
        let x = Tensor::from_vec(shifted, &[5]).requires_grad(true);
        let report = gradcheck(&[x], |ls| ls[0].elu().gelu().sum_all(), 1e-2);
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn cross_entropy_grads_match_fd(a in vec_strategy(8), t in 0usize..4) {
        let x = Tensor::from_vec(a, &[2, 4]).requires_grad(true);
        let targets = [t, 3 - t.min(3)];
        let report = gradcheck(&[x], |ls| ls[0].cross_entropy(&targets), 1e-2);
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn gather_scatter_grads_match_fd(a in vec_strategy(8)) {
        let x = Tensor::from_vec(a, &[4, 2]).requires_grad(true);
        let report = gradcheck(
            &[x],
            |ls| {
                ls[0]
                    .index_select_rows(&[0, 2, 2, 3])
                    .scatter_add_rows(&[1, 0, 1, 1], 3)
                    .square()
                    .sum_all()
            },
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn softmax_rows_always_sum_to_one(a in vec_strategy(12)) {
        let x = Tensor::from_vec(a, &[3, 4]);
        let y = x.softmax_rows().to_vec();
        for r in 0..3 {
            let s: f32 = y[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn addition_commutes(a in vec_strategy(6), b in vec_strategy(6)) {
        let x = Tensor::from_vec(a, &[6]);
        let y = Tensor::from_vec(b, &[6]);
        prop_assert_eq!(x.add(&y).to_vec(), y.add(&x).to_vec());
    }

    #[test]
    fn matmul_distributes_over_add(a in vec_strategy(4), b in vec_strategy(4), c in vec_strategy(4)) {
        let x = Tensor::from_vec(a, &[2, 2]);
        let y = Tensor::from_vec(b, &[2, 2]);
        let z = Tensor::from_vec(c, &[2, 2]);
        let lhs = x.matmul(&y.add(&z)).to_vec();
        let rhs = x.matmul(&y).add(&x.matmul(&z)).to_vec();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-4);
        }
    }

    #[test]
    fn grad_linear_in_seed(a in vec_strategy(4)) {
        // d(2L)/dx == 2 * dL/dx
        let x1 = Tensor::from_vec(a.clone(), &[4]).requires_grad(true);
        let l1 = x1.square().sum_all();
        l1.backward();
        let g1 = x1.grad().unwrap();

        let x2 = Tensor::from_vec(a, &[4]).requires_grad(true);
        let l2 = x2.square().sum_all().mul_scalar(2.0);
        l2.backward();
        let g2 = x2.grad().unwrap();
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_then_slice_is_identity(a in vec_strategy(6), b in vec_strategy(4)) {
        let x = Tensor::from_vec(a.clone(), &[3, 2]);
        let y = Tensor::from_vec(b.clone(), &[2, 2]);
        let joined = Tensor::concat_rows(&[x, y]);
        prop_assert_eq!(joined.slice_rows(0, 3).to_vec(), a);
        prop_assert_eq!(joined.slice_rows(3, 5).to_vec(), b);
    }
}
