//! Property-based verification of the hot-path kernels: the blocked /
//! transposed-input / parallel matmuls and the fused softmax and layernorm
//! ops must match their naive reference formulations within 1e-5 on random
//! inputs, stay bit-for-bit deterministic across thread counts, and pass
//! finite-difference gradient checks.
//!
//! The SIMD-vs-scalar section at the bottom pins the backend contract:
//! AVX2+FMA results agree with the scalar kernels within 1e-4 (matmul
//! family, fused softmax/layernorm, scatter/gather, reductions), gradients
//! still pass finite-difference checks under `Backend::Auto`, and forcing
//! `Backend::Scalar` keeps the bit-exact identities the equivalence suites
//! rely on. Tests that flip the process-wide backend hold `BACKEND_LOCK` so
//! concurrent test threads never observe a mid-computation switch.

use akg_tensor::backend::{backend, set_backend, simd_available, Backend};
use akg_tensor::ops::kernels::{matmul_blocked, matmul_ikj, matmul_naive, matmul_nt, matmul_tn};
use akg_tensor::par::{set_parallelism, Parallelism};
use akg_tensor::{gradcheck, Tensor};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Enough random elements for the largest `m*k` / `k*n` drawn below.
const POOL: usize = 24 * 40;

/// Serializes every test that changes (or depends bitwise on) the
/// process-wide backend setting.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` under the given backend, restoring the previous policy after.
/// Callers must hold [`BACKEND_LOCK`].
fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = backend();
    set_backend(b);
    let r = f();
    set_backend(prev);
    r
}

fn pool_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, POOL)
}

fn assert_close(fast: &[f32], reference: &[f32], tol: f32) -> Result<(), String> {
    for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
        let scale = f.abs().max(r.abs()).max(1.0);
        if (f - r).abs() > tol * scale {
            return Err(format!("[{i}] {f} vs {r}"));
        }
    }
    Ok(())
}

/// Reference `B` (shape `[k, n]`) from its transposed storage `[n, k]`.
fn untranspose(bt: &[f32], n: usize, k: usize) -> Vec<f32> {
    let mut b = vec![0.0f32; k * n];
    for j in 0..n {
        for p in 0..k {
            b[p * n + j] = bt[j * k + p];
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        let (a, b) = (&a[..m * k], &b[..k * n]);
        let reference = matmul_naive(a, b, m, k, n);
        prop_assert!(assert_close(&matmul_blocked(a, b, m, k, n), &reference, 1e-5).is_ok());
    }

    #[test]
    fn nt_and_tn_match_naive(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        // A·Bᵀ with B stored [n, k]:
        let (a_s, bt) = (&a[..m * k], &b[..n * k]);
        let reference = matmul_naive(a_s, &untranspose(bt, n, k), m, k, n);
        prop_assert!(assert_close(&matmul_nt(a_s, bt, m, k, n), &reference, 1e-5).is_ok());
        // Aᵀ·G with A [m, k], G [m, n]:
        let g = &b[..m * n];
        let at = untranspose(a_s, m, k);
        let reference = matmul_naive(&at, g, k, m, n);
        prop_assert!(assert_close(&matmul_tn(a_s, g, m, k, n), &reference, 1e-5).is_ok());
    }

    #[test]
    fn blocked_bit_identical_across_thread_counts(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        let _guard = lock_backend();
        let (a, b) = (&a[..m * k], &b[..k * n]);
        set_parallelism(Parallelism::Threads(1));
        let one = matmul_blocked(a, b, m, k, n);
        for t in [2usize, 3, 8] {
            set_parallelism(Parallelism::Threads(t));
            prop_assert_eq!(&one, &matmul_blocked(a, b, m, k, n));
        }
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn fused_softmax_matches_composed(
        m in 1usize..10, n in 1usize..12, scale in 0.05f32..2.0,
        x in proptest::collection::vec(-3.0f32..3.0, 10 * 12),
        mask_bits in proptest::collection::vec(0u8..2, 10 * 12),
    ) {
        let data = x[..m * n].to_vec();
        let mask: Vec<f32> =
            mask_bits[..m * n].iter().enumerate().map(|(i, &b)| {
                // never mask out a whole row (softmax of all -1e9 is fine
                // numerically but compares garbage to garbage)
                if b == 1 && i % n != 0 { -1e9 } else { 0.0 }
            }).collect();
        let t = Tensor::from_vec(data.clone(), &[m, n]);
        let fused = t.softmax_rows_scaled_masked(scale, Some(&mask)).to_vec();
        let composed =
            t.mul_scalar(scale).add_const(&mask).softmax_rows().to_vec();
        prop_assert!(assert_close(&fused, &composed, 1e-5).is_ok());
    }

    #[test]
    fn fused_softmax_grads_match_fd(
        scale in 0.2f32..1.5,
        x in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        let t = Tensor::from_vec(x, &[2, 3]).requires_grad(true);
        let mask = vec![0.0, -1e9, 0.0, 0.0, 0.0, -1e9];
        let report = gradcheck(
            &[t],
            |ls| ls[0].softmax_rows_scaled_masked(scale, Some(&mask)).square().sum_all(),
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn fused_layernorm_matches_composed(
        m in 1usize..8, n in 2usize..16,
        x in proptest::collection::vec(-3.0f32..3.0, 8 * 16),
        gamma in proptest::collection::vec(-1.5f32..1.5, 16),
        beta in proptest::collection::vec(-1.0f32..1.0, 16),
    ) {
        let t = Tensor::from_vec(x[..m * n].to_vec(), &[m, n]);
        let g = Tensor::from_vec(gamma[..n].to_vec(), &[n]);
        let b = Tensor::from_vec(beta[..n].to_vec(), &[n]);
        let fused = t.layer_norm(&g, &b, 1e-5).to_vec();
        let mean = t.mean_axis1();
        let centered = t.add_col(&mean.neg());
        let var = centered.square().mean_axis1();
        let inv_std = var.add_scalar(1e-5).sqrt().recip();
        let composed = centered.mul_col(&inv_std).mul_bias(&g).add_bias(&b).to_vec();
        prop_assert!(assert_close(&fused, &composed, 1e-5).is_ok());
    }

    #[test]
    fn fused_layernorm_grads_match_fd(
        x in proptest::collection::vec(-2.0f32..2.0, 6),
        gamma in proptest::collection::vec(0.5f32..1.5, 3),
    ) {
        let t = Tensor::from_vec(x, &[2, 3]).requires_grad(true);
        let g = Tensor::from_vec(gamma, &[3]).requires_grad(true);
        let b = Tensor::zeros(&[3]).requires_grad(true);
        let report = gradcheck(
            &[t, g, b],
            |ls| ls[0].layer_norm(&ls[1], &ls[2], 1e-5).square().sum_all(),
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose(
        m in 1usize..8, k in 1usize..12, n in 1usize..8,
        a in proptest::collection::vec(-2.0f32..2.0, 8 * 12),
        b in proptest::collection::vec(-2.0f32..2.0, 8 * 12),
    ) {
        let q = Tensor::from_vec(a[..m * k].to_vec(), &[m, k]);
        let kt = Tensor::from_vec(b[..n * k].to_vec(), &[n, k]);
        let fast = q.matmul_t(&kt).to_vec();
        let slow = q.matmul(&kt.transpose()).to_vec();
        prop_assert!(assert_close(&fast, &slow, 1e-5).is_ok());
    }
}

// ---------------------------------------------------------------------------
// SIMD backend contract
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The whole matmul family agrees across backends within 1e-4 (the
    /// documented FMA/accumulation-order tolerance). On hosts without
    /// AVX2+FMA both runs take the scalar path and the check is trivially
    /// exact.
    #[test]
    fn simd_matmul_family_matches_scalar(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        let _guard = lock_backend();
        let (a_mk, b_kn) = (&a[..m * k], &b[..k * n]);
        let (bt_nk, g_mn) = (&b[..n * k], &b[..m * n]);
        type Run = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);
        let run = |backend| {
            with_backend(backend, || -> Run {
                (
                    matmul_ikj(a_mk, b_kn, m, k, n),
                    matmul_blocked(a_mk, b_kn, m, k, n),
                    matmul_nt(a_mk, bt_nk, m, k, n),
                    matmul_tn(a_mk, g_mn, m, k, n),
                )
            })
        };
        let scalar = run(Backend::Scalar);
        let simd = run(Backend::Simd);
        for (which, (s, v)) in [
            ("ikj", (&scalar.0, &simd.0)),
            ("blocked", (&scalar.1, &simd.1)),
            ("nt", (&scalar.2, &simd.2)),
            ("tn", (&scalar.3, &simd.3)),
        ] {
            prop_assert!(assert_close(v, s, 1e-4).is_ok(), "{} diverged", which);
        }
    }

    /// The fused softmax forward is *bit-identical* across backends: its
    /// scale/mask/max/normalize steps are per-lane-exact and the exp+sum
    /// pass is scalar on both.
    #[test]
    fn simd_fused_softmax_is_bitwise_backend_stable(
        m in 1usize..10, n in 1usize..12, scale in 0.05f32..2.0,
        x in proptest::collection::vec(-3.0f32..3.0, 10 * 12),
        mask_bits in proptest::collection::vec(0u8..2, 10 * 12),
    ) {
        let _guard = lock_backend();
        let data = x[..m * n].to_vec();
        let mask: Vec<f32> = mask_bits[..m * n]
            .iter()
            .enumerate()
            .map(|(i, &b)| if b == 1 && i % n != 0 { -1e9 } else { 0.0 })
            .collect();
        let run = |backend| {
            with_backend(backend, || {
                Tensor::from_vec(data.clone(), &[m, n])
                    .softmax_rows_scaled_masked(scale, Some(&mask))
                    .to_vec()
            })
        };
        prop_assert_eq!(run(Backend::Scalar), run(Backend::Simd));
    }

    /// Fused layer-norm forward and all three gradients agree across
    /// backends within 1e-4 (the row reductions reorder under SIMD).
    #[test]
    fn simd_layernorm_fwd_bwd_matches_scalar(
        m in 1usize..8, n in 2usize..16,
        x in proptest::collection::vec(-3.0f32..3.0, 8 * 16),
        gamma in proptest::collection::vec(-1.5f32..1.5, 16),
        beta in proptest::collection::vec(-1.0f32..1.0, 16),
    ) {
        let _guard = lock_backend();
        type Run = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);
        let run = |backend| {
            with_backend(backend, || -> Run {
                let t = Tensor::from_vec(x[..m * n].to_vec(), &[m, n]).requires_grad(true);
                let g = Tensor::from_vec(gamma[..n].to_vec(), &[n]).requires_grad(true);
                let b = Tensor::from_vec(beta[..n].to_vec(), &[n]).requires_grad(true);
                let y = t.layer_norm(&g, &b, 1e-5);
                y.square().sum_all().backward();
                (y.to_vec(), t.grad().unwrap(), g.grad().unwrap(), b.grad().unwrap())
            })
        };
        let scalar = run(Backend::Scalar);
        let simd = run(Backend::Simd);
        for (which, (s, v)) in [
            ("forward", (&scalar.0, &simd.0)),
            ("dx", (&scalar.1, &simd.1)),
            ("dgamma", (&scalar.2, &simd.2)),
            ("dbeta", (&scalar.3, &simd.3)),
        ] {
            prop_assert!(assert_close(v, s, 1e-4).is_ok(), "{} diverged", which);
        }
    }

    /// Scatter-add, gather, and their gradients are bit-identical across
    /// backends: the SIMD side only adds whole rows lane-exactly, in the
    /// same source order as the scalar loops.
    #[test]
    fn simd_scatter_gather_bitwise_backend_stable(
        rows in 2usize..12, n in 1usize..10,
        x in proptest::collection::vec(-2.0f32..2.0, 12 * 10),
        picks in proptest::collection::vec(0usize..12, 18),
    ) {
        let _guard = lock_backend();
        let data = x[..rows * n].to_vec();
        let idx: Vec<usize> = picks.iter().map(|&p| p % rows).collect();
        type Run = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);
        let run = |backend| {
            with_backend(backend, || -> Run {
                let t = Tensor::from_vec(data.clone(), &[rows, n]).requires_grad(true);
                let gathered = t.index_select_rows(&idx);
                gathered.sum_all().backward();
                let src =
                    Tensor::from_vec(data[..idx.len().min(rows) * n].to_vec(), &[idx.len().min(rows), n])
                        .requires_grad(true);
                let scattered = src.scatter_add_rows(&idx[..src.shape()[0]], rows);
                scattered.square().sum_all().backward();
                (gathered.to_vec(), t.grad().unwrap(), scattered.to_vec(), src.grad().unwrap())
            })
        };
        let scalar = run(Backend::Scalar);
        let simd = run(Backend::Simd);
        prop_assert_eq!(scalar, simd);
    }

    /// Reductions: `sum_axis0` is bit-stable across backends (row-ascending
    /// per column either way); `sum_all` / `sum_axis1` reorder under SIMD
    /// and must stay within 1e-4.
    #[test]
    fn simd_reductions_match_scalar(
        m in 1usize..10, n in 1usize..40,
        x in proptest::collection::vec(-2.0f32..2.0, 10 * 40),
    ) {
        let _guard = lock_backend();
        let data = x[..m * n].to_vec();
        type Run = (Vec<f32>, Vec<f32>, Vec<f32>);
        let run = |backend| {
            with_backend(backend, || -> Run {
                let t = Tensor::from_vec(data.clone(), &[m, n]);
                (t.sum_all().to_vec(), t.sum_axis0().to_vec(), t.sum_axis1().to_vec())
            })
        };
        let scalar = run(Backend::Scalar);
        let simd = run(Backend::Simd);
        // sum_axis0 must be bit-stable across backends.
        prop_assert_eq!(&scalar.1, &simd.1);
        prop_assert!(assert_close(&simd.0, &scalar.0, 1e-4).is_ok(), "sum_all diverged");
        prop_assert!(assert_close(&simd.2, &scalar.2, 1e-4).is_ok(), "sum_axis1 diverged");
    }
}

/// Finite-difference gradient checks pass under `Backend::Auto` — i.e. with
/// SIMD kernels live wherever this host supports them.
#[test]
fn gradchecks_pass_under_auto_backend() {
    let _guard = lock_backend();
    with_backend(Backend::Auto, || {
        let a =
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75], &[2, 3]).requires_grad(true);
        let b = Tensor::from_vec(vec![0.3, 1.2, -0.6, 0.8, 1.1, -0.4], &[3, 2]).requires_grad(true);
        let report = gradcheck(&[a, b], |ls| ls[0].matmul(&ls[1]).square().sum_all(), 1e-2);
        assert!(report.passes(2e-2), "matmul gradcheck: {}", report.max_rel_error);

        let x =
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75], &[2, 3]).requires_grad(true);
        let gamma = Tensor::from_vec(vec![1.2, 0.8, -0.5], &[3]).requires_grad(true);
        let beta = Tensor::from_vec(vec![0.0, 0.1, -0.1], &[3]).requires_grad(true);
        let report = gradcheck(
            &[x, gamma, beta],
            |ls| ls[0].layer_norm(&ls[1], &ls[2], 1e-5).square().sum_all(),
            1e-2,
        );
        assert!(report.passes(2e-2), "layernorm gradcheck: {}", report.max_rel_error);

        let s = Tensor::from_vec(vec![0.4, -0.9, 1.3, 0.2, -0.5, 0.7], &[2, 3]).requires_grad(true);
        let report = gradcheck(
            &[s],
            |ls| ls[0].softmax_rows_scaled_masked(0.7, None).square().sum_all(),
            1e-2,
        );
        assert!(report.passes(3e-2), "softmax gradcheck: {}", report.max_rel_error);
    });
}

/// Forcing `Backend::Scalar` preserves the bit-exact identities the PR 3
/// equivalence and persistence suites are built on: blocked ≡ ikj across the
/// dispatch threshold, fused softmax ≡ the composed chain, and repeated runs
/// are deterministic.
#[test]
fn forced_scalar_keeps_dispatch_and_fusion_bit_exact() {
    let _guard = lock_backend();
    with_backend(Backend::Scalar, || {
        let (m, k, n) = (33, 48, 29);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 31 % 23) as f32 - 11.0) * 0.07).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 29 % 19) as f32 - 9.0) * 0.09).collect();
        assert_eq!(matmul_blocked(&a, &b, m, k, n), matmul_ikj(&a, &b, m, k, n));
        assert_eq!(matmul_blocked(&a, &b, m, k, n), matmul_blocked(&a, &b, m, k, n));

        let x = Tensor::from_vec(b[..6 * n].to_vec(), &[6, n]);
        let mask: Vec<f32> =
            (0..6 * n).map(|i| if i % 5 == 3 && i % n != 0 { -1e9 } else { 0.0 }).collect();
        let fused = x.softmax_rows_scaled_masked(0.25, Some(&mask)).to_vec();
        let composed = x.mul_scalar(0.25).add_const(&mask).softmax_rows().to_vec();
        assert_eq!(fused, composed);
    });
}

/// Under the SIMD backend, blocked and ikj still agree bit-for-bit — the
/// invariant that makes the size-dispatch threshold numerically invisible
/// (and keeps batched serving ≡ single-stream scoring).
#[test]
fn simd_backend_keeps_dispatch_bit_exact() {
    let _guard = lock_backend();
    if !simd_available() {
        return;
    }
    with_backend(Backend::Simd, || {
        for (m, k, n) in [(7, 33, 25), (65, 130, 195), (12, 200, 17)] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.11).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 23 % 17) as f32 - 8.0) * 0.13).collect();
            assert_eq!(
                matmul_blocked(&a, &b, m, k, n),
                matmul_ikj(&a, &b, m, k, n),
                "blocked != ikj at {m}x{k}x{n}"
            );
        }
    });
}
