//! Property-based verification of the hot-path kernels: the blocked /
//! transposed-input / parallel matmuls and the fused softmax and layernorm
//! ops must match their naive reference formulations within 1e-5 on random
//! inputs, stay bit-for-bit deterministic across thread counts, and pass
//! finite-difference gradient checks.

use akg_tensor::ops::kernels::{matmul_blocked, matmul_naive, matmul_nt, matmul_tn};
use akg_tensor::par::{set_parallelism, Parallelism};
use akg_tensor::{gradcheck, Tensor};
use proptest::prelude::*;

/// Enough random elements for the largest `m*k` / `k*n` drawn below.
const POOL: usize = 24 * 40;

fn pool_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, POOL)
}

fn assert_close(fast: &[f32], reference: &[f32], tol: f32) -> Result<(), String> {
    for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
        let scale = f.abs().max(r.abs()).max(1.0);
        if (f - r).abs() > tol * scale {
            return Err(format!("[{i}] {f} vs {r}"));
        }
    }
    Ok(())
}

/// Reference `B` (shape `[k, n]`) from its transposed storage `[n, k]`.
fn untranspose(bt: &[f32], n: usize, k: usize) -> Vec<f32> {
    let mut b = vec![0.0f32; k * n];
    for j in 0..n {
        for p in 0..k {
            b[p * n + j] = bt[j * k + p];
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        let (a, b) = (&a[..m * k], &b[..k * n]);
        let reference = matmul_naive(a, b, m, k, n);
        prop_assert!(assert_close(&matmul_blocked(a, b, m, k, n), &reference, 1e-5).is_ok());
    }

    #[test]
    fn nt_and_tn_match_naive(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        // A·Bᵀ with B stored [n, k]:
        let (a_s, bt) = (&a[..m * k], &b[..n * k]);
        let reference = matmul_naive(a_s, &untranspose(bt, n, k), m, k, n);
        prop_assert!(assert_close(&matmul_nt(a_s, bt, m, k, n), &reference, 1e-5).is_ok());
        // Aᵀ·G with A [m, k], G [m, n]:
        let g = &b[..m * n];
        let at = untranspose(a_s, m, k);
        let reference = matmul_naive(&at, g, k, m, n);
        prop_assert!(assert_close(&matmul_tn(a_s, g, m, k, n), &reference, 1e-5).is_ok());
    }

    #[test]
    fn blocked_bit_identical_across_thread_counts(
        m in 1usize..24, k in 1usize..40, n in 1usize..24,
        a in pool_strategy(), b in pool_strategy(),
    ) {
        let (a, b) = (&a[..m * k], &b[..k * n]);
        set_parallelism(Parallelism::Threads(1));
        let one = matmul_blocked(a, b, m, k, n);
        for t in [2usize, 3, 8] {
            set_parallelism(Parallelism::Threads(t));
            prop_assert_eq!(&one, &matmul_blocked(a, b, m, k, n));
        }
        set_parallelism(Parallelism::Auto);
    }

    #[test]
    fn fused_softmax_matches_composed(
        m in 1usize..10, n in 1usize..12, scale in 0.05f32..2.0,
        x in proptest::collection::vec(-3.0f32..3.0, 10 * 12),
        mask_bits in proptest::collection::vec(0u8..2, 10 * 12),
    ) {
        let data = x[..m * n].to_vec();
        let mask: Vec<f32> =
            mask_bits[..m * n].iter().enumerate().map(|(i, &b)| {
                // never mask out a whole row (softmax of all -1e9 is fine
                // numerically but compares garbage to garbage)
                if b == 1 && i % n != 0 { -1e9 } else { 0.0 }
            }).collect();
        let t = Tensor::from_vec(data.clone(), &[m, n]);
        let fused = t.softmax_rows_scaled_masked(scale, Some(&mask)).to_vec();
        let composed =
            t.mul_scalar(scale).add_const(&mask).softmax_rows().to_vec();
        prop_assert!(assert_close(&fused, &composed, 1e-5).is_ok());
    }

    #[test]
    fn fused_softmax_grads_match_fd(
        scale in 0.2f32..1.5,
        x in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        let t = Tensor::from_vec(x, &[2, 3]).requires_grad(true);
        let mask = vec![0.0, -1e9, 0.0, 0.0, 0.0, -1e9];
        let report = gradcheck(
            &[t],
            |ls| ls[0].softmax_rows_scaled_masked(scale, Some(&mask)).square().sum_all(),
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn fused_layernorm_matches_composed(
        m in 1usize..8, n in 2usize..16,
        x in proptest::collection::vec(-3.0f32..3.0, 8 * 16),
        gamma in proptest::collection::vec(-1.5f32..1.5, 16),
        beta in proptest::collection::vec(-1.0f32..1.0, 16),
    ) {
        let t = Tensor::from_vec(x[..m * n].to_vec(), &[m, n]);
        let g = Tensor::from_vec(gamma[..n].to_vec(), &[n]);
        let b = Tensor::from_vec(beta[..n].to_vec(), &[n]);
        let fused = t.layer_norm(&g, &b, 1e-5).to_vec();
        let mean = t.mean_axis1();
        let centered = t.add_col(&mean.neg());
        let var = centered.square().mean_axis1();
        let inv_std = var.add_scalar(1e-5).sqrt().recip();
        let composed = centered.mul_col(&inv_std).mul_bias(&g).add_bias(&b).to_vec();
        prop_assert!(assert_close(&fused, &composed, 1e-5).is_ok());
    }

    #[test]
    fn fused_layernorm_grads_match_fd(
        x in proptest::collection::vec(-2.0f32..2.0, 6),
        gamma in proptest::collection::vec(0.5f32..1.5, 3),
    ) {
        let t = Tensor::from_vec(x, &[2, 3]).requires_grad(true);
        let g = Tensor::from_vec(gamma, &[3]).requires_grad(true);
        let b = Tensor::zeros(&[3]).requires_grad(true);
        let report = gradcheck(
            &[t, g, b],
            |ls| ls[0].layer_norm(&ls[1], &ls[2], 1e-5).square().sum_all(),
            1e-2,
        );
        prop_assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose(
        m in 1usize..8, k in 1usize..12, n in 1usize..8,
        a in proptest::collection::vec(-2.0f32..2.0, 8 * 12),
        b in proptest::collection::vec(-2.0f32..2.0, 8 * 12),
    ) {
        let q = Tensor::from_vec(a[..m * k].to_vec(), &[m, k]);
        let kt = Tensor::from_vec(b[..n * k].to_vec(), &[n, k]);
        let fast = q.matmul_t(&kt).to_vec();
        let slow = q.matmul(&kt.transpose()).to_vec();
        prop_assert!(assert_close(&fast, &slow, 1e-5).is_ok());
    }
}
