//! Edge-device energy/memory model turning FLOP counts into the physical
//! quantities Table I reports (joules, gigabytes, bandwidth).

use serde::{Deserialize, Serialize};

/// A simple energy/memory model of an edge device.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EdgeDevice {
    /// Energy per FLOP in joules (Jetson-class devices sit around
    /// 10–100 pJ/FLOP; we use a conservative 50 pJ).
    pub joules_per_flop: f64,
    /// Bytes of storage per model/KG parameter (f32).
    pub bytes_per_param: u64,
}

impl Default for EdgeDevice {
    fn default() -> Self {
        EdgeDevice { joules_per_flop: 50e-12, bytes_per_param: 4 }
    }
}

impl EdgeDevice {
    /// Energy in joules for a FLOP count.
    pub fn energy_joules(&self, flops: u64) -> f64 {
        flops as f64 * self.joules_per_flop
    }

    /// Storage in gigabytes for a parameter count.
    pub fn storage_gb(&self, params: u64) -> f64 {
        (params * self.bytes_per_param) as f64 / 1e9
    }
}

/// The paper's published constants for the cloud baseline (Table I, baseline
/// column). These are *taken from the paper*, not measured here — our
/// simulator has no GPT-4 to measure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CloudBaseline {
    /// FLOPs per KG generation with GPT-4.
    pub kg_generation_flops: f64,
    /// GPT-4 memory during generation (GB).
    pub gpt4_memory_gb: f64,
    /// Wall-clock minutes per KG generation.
    pub kg_generation_minutes: f64,
    /// KG updates per month in the evaluated scenario.
    pub updates_per_month: u64,
    /// Network bandwidth per month for KG updates (GB).
    pub bandwidth_gb_per_month: f64,
    /// Memory footprint of the KG itself (GB).
    pub kg_memory_gb: f64,
    /// Edge storage requirement (GB).
    pub edge_storage_gb: f64,
}

impl Default for CloudBaseline {
    /// Table I's baseline numbers.
    fn default() -> Self {
        CloudBaseline {
            kg_generation_flops: 1e15,
            gpt4_memory_gb: 200.0,
            kg_generation_minutes: 1.0,
            updates_per_month: 4,
            bandwidth_gb_per_month: 2.0,
            kg_memory_gb: 0.5,
            edge_storage_gb: 1.0,
        }
    }
}

impl CloudBaseline {
    /// Total cloud FLOPs per month.
    pub fn monthly_flops(&self) -> f64 {
        self.updates_per_month as f64 * self.kg_generation_flops
    }

    /// Total KG update minutes per month.
    pub fn monthly_update_minutes(&self) -> f64 {
        self.updates_per_month as f64 * self.kg_generation_minutes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly() {
        let dev = EdgeDevice::default();
        assert_eq!(dev.energy_joules(2_000_000_000), 2.0 * dev.energy_joules(1_000_000_000));
    }

    #[test]
    fn default_baseline_matches_paper() {
        let b = CloudBaseline::default();
        assert_eq!(b.kg_generation_flops, 1e15);
        assert_eq!(b.gpt4_memory_gb, 200.0);
        assert_eq!(b.updates_per_month, 4);
        assert_eq!(b.monthly_flops(), 4e15);
        assert_eq!(b.monthly_update_minutes(), 4.0);
    }

    #[test]
    fn daily_adaptation_energy_is_small() {
        // the paper reports ~5 J per adaptation; 1e9 FLOPs at 50 pJ = 0.05 J
        // of pure compute, comfortably under that envelope.
        let dev = EdgeDevice::default();
        let e = dev.energy_joules(1_000_000_000);
        assert!(e < 5.0, "edge adaptation energy {e} J");
    }

    #[test]
    fn storage_conversion() {
        let dev = EdgeDevice::default();
        assert!((dev.storage_gb(250_000_000) - 1.0).abs() < 1e-9);
    }
}
