//! Table I generator: the side-by-side accounting of the cloud-update
//! baseline vs the proposed edge-adaptation method.

use crate::energy::{CloudBaseline, EdgeDevice};
use serde::{Deserialize, Serialize};

/// Measured quantities of the proposed (edge) method, supplied by the
/// experiment harness from the actual simulator run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EdgeMeasurement {
    /// FLOPs of one daily adaptation loop (measured analytically from the
    /// deployed model's dimensions).
    pub adaptation_flops_per_day: u64,
    /// Adaptation loops per day (paper scenario: 1).
    pub adaptations_per_day: u64,
    /// Average test AUC over the evaluation period.
    pub average_auc: f32,
    /// Wall-clock seconds of one adaptation loop on this machine.
    pub adaptation_seconds: f64,
    /// Dense-weight bytes of the deployed decision model served at f32
    /// (what the cloud baseline ships to the edge).
    pub model_bytes_f32: usize,
    /// The same weights re-coded to the int8 serving plane (per-row-scaled
    /// symmetric quantization; see `akg-tensor`'s `QuantizedMatrix`).
    pub model_bytes_int8: usize,
}

/// Baseline-side AUC (the paper reports 0.93 with fresh cloud KGs).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BaselineMeasurement {
    /// Average AUC with cloud KG regeneration at each trend change.
    pub average_auc: f32,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostRow {
    /// Metric name.
    pub metric: String,
    /// Baseline (cloud) value.
    pub baseline: String,
    /// Proposed (edge) value.
    pub proposed: String,
}

/// The full Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostReport {
    /// Section → rows.
    pub sections: Vec<(String, Vec<CostRow>)>,
}

impl CostReport {
    /// Builds Table I from the paper's cloud constants and our measured edge
    /// numbers.
    pub fn build(
        cloud: &CloudBaseline,
        device: &EdgeDevice,
        baseline: &BaselineMeasurement,
        edge: &EdgeMeasurement,
    ) -> Self {
        let row = |metric: &str, baseline: String, proposed: String| CostRow {
            metric: metric.to_string(),
            baseline,
            proposed,
        };
        let setup = vec![
            row("Human Intervention", "Yes".into(), "Yes".into()),
            row(
                "Initial KG Generation Time (minutes)",
                format!("{}", cloud.kg_generation_minutes),
                format!("{}", cloud.kg_generation_minutes),
            ),
            row(
                "Initial KG Generation Computational Cost (FLOPs)",
                format!("{:.0e}", cloud.kg_generation_flops),
                format!("{:.0e}", cloud.kg_generation_flops),
            ),
            row(
                "Memory Usage for KG (GB)",
                format!("{}", cloud.kg_memory_gb),
                format!("{}", cloud.kg_memory_gb),
            ),
            row(
                "Memory Usage for GPT-4 during Initial KG Generation (GB)",
                format!("{}", cloud.gpt4_memory_gb),
                format!("{}", cloud.gpt4_memory_gb),
            ),
            row(
                "Edge Device Storage Requirements (GB)",
                format!("{}", cloud.edge_storage_gb),
                format!("{}", cloud.edge_storage_gb),
            ),
            row(
                "Detection Model Weight Footprint on Edge (bytes)",
                format!("{} (f32)", edge.model_bytes_f32),
                format!(
                    "{} (int8, {:.1}x smaller)",
                    edge.model_bytes_int8,
                    edge.model_bytes_f32 as f64 / edge.model_bytes_int8.max(1) as f64
                ),
            ),
        ];

        let monthly_edge_flops = edge.adaptation_flops_per_day * edge.adaptations_per_day * 30;
        let energy_per_update = device.energy_joules(edge.adaptation_flops_per_day);
        let maintenance = vec![
            row("Human Intervention", "Yes".into(), "No".into()),
            row(
                "KG Update Frequency (per month)",
                format!("{}", cloud.updates_per_month),
                "0".into(),
            ),
            row(
                "KG Update Time per Update (minutes)",
                format!("{}", cloud.kg_generation_minutes),
                "0".into(),
            ),
            row(
                "Total KG Update Time (minutes/month)",
                format!("{}", cloud.monthly_update_minutes()),
                "0".into(),
            ),
            row(
                "GPT-4 Computational Cost per KG Update (FLOPs/update)",
                format!("{:.0e}", cloud.kg_generation_flops),
                "0".into(),
            ),
            row(
                "Total GPT-4 Computational Cost (FLOPs/month)",
                format!("{:.0e}", cloud.monthly_flops()),
                "0".into(),
            ),
            row(
                "Edge Device Computational Cost per Adaptation (FLOPs/day)",
                "N/A".into(),
                format!("{:.2e}", edge.adaptation_flops_per_day as f64),
            ),
            row(
                "Total Edge Device Computational Cost (FLOPs/month)",
                "N/A".into(),
                format!("{:.2e}", monthly_edge_flops as f64),
            ),
            row(
                "Memory Usage for GPT-4 during Updates (GB)",
                format!("{}", cloud.gpt4_memory_gb),
                "0".into(),
            ),
            row(
                "Network Bandwidth Usage for KG Updates (GB/month)",
                format!("High (Approx. {} GB)", cloud.bandwidth_gb_per_month),
                "Zero".into(),
            ),
            row(
                "Edge Device Energy Consumption per Update (Joules)",
                "N/A".into(),
                format!("Minimal (Approx. {:.2} J)", energy_per_update.max(0.01)),
            ),
        ];

        let operational = vec![
            row(
                "Average AUC score",
                format!("{:.2}", baseline.average_auc),
                format!("{:.2}", edge.average_auc),
            ),
            row(
                "Latency for KG Update (seconds)",
                "High (Cloud-dependent)".into(),
                format!("Low (Real-time, measured {:.3} s)", edge.adaptation_seconds),
            ),
            row(
                "Scalability (Number of Edge Devices Supported)",
                "Limited by Cloud Resources".into(),
                "High (Independent)".into(),
            ),
        ];

        CostReport {
            sections: vec![
                ("Initial Setup".to_string(), setup),
                ("Monthly Updates and Maintenance".to_string(), maintenance),
                ("Operational Performance".to_string(), operational),
            ],
        }
    }

    /// Renders the table as aligned plain text (the shape of the paper's
    /// Table I).
    pub fn render(&self) -> String {
        let mut width_metric = "Metric".len();
        let mut width_base = "Baseline (Cloud KG Updates)".len();
        for (_, rows) in &self.sections {
            for r in rows {
                width_metric = width_metric.max(r.metric.len());
                width_base = width_base.max(r.baseline.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:width_metric$} | {:width_base$} | {}\n",
            "Metric", "Baseline (Cloud KG Updates)", "Proposed (Edge KG Adaptation)",
        ));
        out.push_str(&format!(
            "{} | {} | {}\n",
            "-".repeat(width_metric),
            "-".repeat(width_base),
            "-".repeat("Proposed (Edge KG Adaptation)".len()),
        ));
        for (section, rows) in &self.sections {
            out.push_str(&format!("[{section}]\n"));
            for r in rows {
                out.push_str(&format!(
                    "{:width_metric$} | {:width_base$} | {}\n",
                    r.metric, r.baseline, r.proposed,
                ));
            }
        }
        out
    }

    /// Finds a row by metric name across sections (first match).
    pub fn row(&self, metric: &str) -> Option<&CostRow> {
        self.sections.iter().flat_map(|(_, rows)| rows).find(|r| r.metric == metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CostReport {
        CostReport::build(
            &CloudBaseline::default(),
            &EdgeDevice::default(),
            &BaselineMeasurement { average_auc: 0.93 },
            &EdgeMeasurement {
                adaptation_flops_per_day: 1_000_000_000,
                adaptations_per_day: 1,
                average_auc: 0.91,
                adaptation_seconds: 0.2,
                model_bytes_f32: 10304,
                model_bytes_int8: 3448,
            },
        )
    }

    #[test]
    fn has_three_sections() {
        let r = report();
        assert_eq!(r.sections.len(), 3);
        assert_eq!(r.sections[0].0, "Initial Setup");
    }

    #[test]
    fn proposed_method_has_zero_cloud_cost() {
        let r = report();
        let row = r.row("Total GPT-4 Computational Cost (FLOPs/month)").unwrap();
        assert_eq!(row.baseline, "4e15");
        assert_eq!(row.proposed, "0");
        let bw = r.row("Network Bandwidth Usage for KG Updates (GB/month)").unwrap();
        assert_eq!(bw.proposed, "Zero");
    }

    #[test]
    fn auc_row_formats() {
        let r = report();
        let row = r.row("Average AUC score").unwrap();
        assert_eq!(row.baseline, "0.93");
        assert_eq!(row.proposed, "0.91");
    }

    #[test]
    fn render_contains_all_rows() {
        let r = report();
        let text = r.render();
        for (_, rows) in &r.sections {
            for row in rows {
                assert!(text.contains(&row.metric), "missing {}", row.metric);
            }
        }
    }

    #[test]
    fn model_footprint_row_reports_quantized_shrink() {
        let r = report();
        let row = r.row("Detection Model Weight Footprint on Edge (bytes)").unwrap();
        assert_eq!(row.baseline, "10304 (f32)");
        assert_eq!(row.proposed, "3448 (int8, 3.0x smaller)");
    }

    #[test]
    fn monthly_edge_flops_scale() {
        let r = report();
        let row = r.row("Total Edge Device Computational Cost (FLOPs/month)").unwrap();
        assert_eq!(row.proposed, "3.00e10");
    }
}
