//! # akg-cost
//!
//! The computational-cost accounting behind the paper's Table I: analytic
//! per-component FLOP counts for the deployed model ([`flops`]), an
//! edge-device energy/storage model and the paper's published cloud-baseline
//! constants ([`energy`]), and the table generator itself ([`report`]).
//!
//! The proposed-method column of Table I is *measured* from this
//! implementation (model dimensions → FLOPs → joules); the baseline column
//! reuses the constants the paper reports for GPT-4 cloud regeneration,
//! which our simulator cannot measure.
//!
//! ## Modules
//!
//! - [`flops`] — [`ModelDims`] captures every dimension of a deployed
//!   mission system (KG sizes, embedding widths, attention shape) and
//!   derives per-inference and per-adaptation FLOP counts analytically,
//!   component by component (GNN message passing, temporal attention,
//!   classifier head, token updates).
//! - [`energy`] — [`EdgeDevice`] converts FLOPs into joules and watts for a
//!   Jetson-class device, and [`CloudBaseline`] carries the paper's
//!   published GPT-4-in-the-cloud constants (update cadence, memory,
//!   bandwidth).
//! - [`report`] — [`CostReport`] assembles both columns into the Table I
//!   layout rendered by the `table1_cost` binary in `akg-bench`, keeping
//!   "published constant" and "measured here" entries visibly distinct.
//!
//! The cost model is monotone in every size dimension — growing the KG,
//! window, or number of missions never reports fewer FLOPs — which the
//! workspace's property tests assert.
//!
//! ## Example
//!
//! ```
//! use akg_cost::flops::{KgDims, ModelDims};
//! let dims = ModelDims {
//!     kgs: 1,
//!     kg: KgDims { nodes: 20, edges: 40, levels: 5 },
//!     embed_dim: 64,
//!     gnn_dim: 8,
//!     window: 8,
//!     temporal_inner: 32,
//!     heads: 4,
//!     temporal_layers: 1,
//!     classes: 2,
//! };
//! assert!(dims.inference_flops() > 0);
//! ```

#![warn(missing_docs)]

pub mod energy;
pub mod flops;
pub mod report;

pub use energy::{CloudBaseline, EdgeDevice};
pub use flops::{KgDims, ModelDims};
pub use report::{BaselineMeasurement, CostReport, CostRow, EdgeMeasurement};
