//! Analytic FLOP accounting for every component of the deployed system —
//! the measured side of the paper's Table I.
//!
//! Counts follow the usual convention: a multiply–accumulate is 2 FLOPs; a
//! transcendental (exp/tanh/sqrt) is counted as 4.

use serde::{Deserialize, Serialize};

const TRANSCENDENTAL: u64 = 4;

/// Shape summary of one mission-specific KG as seen by the GNN.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KgDims {
    /// Live node count |V| (including sensor and embedding nodes).
    pub nodes: usize,
    /// Edge count |E|.
    pub edges: usize,
    /// Hierarchy levels d + 2.
    pub levels: usize,
}

/// Shape summary of the full decision model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelDims {
    /// Number of mission KGs `n`.
    pub kgs: usize,
    /// Per-KG shape (assumed homogeneous; use the max over KGs otherwise).
    pub kg: KgDims,
    /// Joint-embedding dimensionality feeding the sensor node.
    pub embed_dim: usize,
    /// GNN layer width `D_l` (the paper uses 8 at every layer).
    pub gnn_dim: usize,
    /// Temporal window `T`.
    pub window: usize,
    /// Temporal model inner dimensionality (paper: 128).
    pub temporal_inner: usize,
    /// Attention heads (paper: 8).
    pub heads: usize,
    /// Transformer encoder layers.
    pub temporal_layers: usize,
    /// Decision classes `n + 1`.
    pub classes: usize,
}

impl ModelDims {
    /// FLOPs of one dense sub-layer application at layer width `d_in ->
    /// d_out` over all |V| nodes (Eq. 1).
    pub fn dense_flops(&self, d_in: usize, d_out: usize) -> u64 {
        (2 * d_in * d_out * self.kg.nodes + d_out * self.kg.nodes) as u64
    }

    /// FLOPs of hierarchical message passing (Eq. 2): one elementwise
    /// product per edge.
    pub fn message_flops(&self) -> u64 {
        (self.kg.edges * self.gnn_dim) as u64
    }

    /// FLOPs of the hierarchical aggregation (Eq. 3): one add per edge plus
    /// one divide per receiving node.
    pub fn aggregate_flops(&self) -> u64 {
        ((self.kg.edges + self.kg.nodes) * self.gnn_dim) as u64
    }

    /// FLOPs of batch-norm + ELU over all nodes (Eq. 4).
    pub fn norm_act_flops(&self) -> u64 {
        // normalize (4 ops/element) + ELU (counted transcendental)
        ((4 + TRANSCENDENTAL as usize) * self.kg.nodes * self.gnn_dim) as u64
    }

    /// FLOPs of one full GNN layer.
    pub fn gnn_layer_flops(&self, d_in: usize) -> u64 {
        self.dense_flops(d_in, self.gnn_dim)
            + self.message_flops()
            + self.aggregate_flops()
            + self.norm_act_flops()
    }

    /// FLOPs of one hierarchical-GNN forward over all `n` KGs for a single
    /// frame: the first layer maps `embed_dim -> gnn_dim`, the remaining
    /// `levels - 1` layers map `gnn_dim -> gnn_dim`.
    pub fn gnn_forward_flops(&self) -> u64 {
        let first = self.gnn_layer_flops(self.embed_dim);
        let rest = (self.kg.levels.saturating_sub(1)) as u64 * self.gnn_layer_flops(self.gnn_dim);
        (first + rest) * self.kgs as u64
    }

    /// Reasoning embedding width `D = n * gnn_dim`.
    pub fn reasoning_dim(&self) -> usize {
        self.kgs * self.gnn_dim
    }

    /// FLOPs of one temporal-transformer forward over a `T x D` window.
    pub fn temporal_forward_flops(&self) -> u64 {
        let t = self.window as u64;
        let d = self.reasoning_dim() as u64;
        let inner = self.temporal_inner as u64;
        let qkv = 3 * 2 * t * d * inner;
        let attn = 2 * 2 * t * t * inner; // scores + weighted sum
        let softmax = TRANSCENDENTAL * t * t;
        let proj = 2 * t * inner * d;
        let ffn = 2 * 2 * t * d * (2 * inner) + TRANSCENDENTAL * t * 2 * inner;
        let norms = 2 * 8 * t * d;
        self.temporal_layers as u64 * (qkv + attn + softmax + proj + ffn + norms)
    }

    /// FLOPs of the decision head (Eq. 5) for one window.
    pub fn decision_flops(&self) -> u64 {
        let d = self.reasoning_dim() as u64;
        let c = self.classes as u64;
        2 * d * c + TRANSCENDENTAL * c
    }

    /// FLOPs of scoring one frame end to end (GNN + temporal + head).
    pub fn inference_flops(&self) -> u64 {
        self.gnn_forward_flops() + self.temporal_forward_flops() + self.decision_flops()
    }

    /// FLOPs of one adaptation step over `batch` pseudo-labelled frames:
    /// forward + backward (≈ 2× forward) + the token-embedding update
    /// (only the KG token table is touched, so the optimizer cost is the
    /// table size, not the model size).
    pub fn adaptation_step_flops(&self, batch: usize, token_table_entries: usize) -> u64 {
        let fw = self.inference_flops() * batch as u64;
        let bw = 2 * fw;
        let update = 10 * token_table_entries as u64; // AdamW per-entry ops
        fw + bw + update
    }

    /// Rough parameter count of the decision model.
    pub fn param_count(&self) -> u64 {
        let gnn = self.kgs
            * (self.embed_dim * self.gnn_dim
                + self.kg.levels.saturating_sub(1) * self.gnn_dim * self.gnn_dim);
        let d = self.reasoning_dim();
        let temporal = self.temporal_layers
            * (4 * d * self.temporal_inner + 2 * d * 2 * self.temporal_inner + 4 * d);
        let head = d * self.classes + self.classes;
        (gnn + temporal + head) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ModelDims {
        ModelDims {
            kgs: 1,
            kg: KgDims { nodes: 20, edges: 40, levels: 5 },
            embed_dim: 64,
            gnn_dim: 8,
            window: 8,
            temporal_inner: 32,
            heads: 4,
            temporal_layers: 1,
            classes: 2,
        }
    }

    #[test]
    fn inference_flops_positive_and_composed() {
        let d = dims();
        assert_eq!(
            d.inference_flops(),
            d.gnn_forward_flops() + d.temporal_forward_flops() + d.decision_flops()
        );
        assert!(d.inference_flops() > 0);
    }

    #[test]
    fn flops_scale_with_kg_count() {
        let one = dims();
        let two = ModelDims { kgs: 2, ..dims() };
        assert_eq!(two.gnn_forward_flops(), 2 * one.gnn_forward_flops());
        assert!(two.inference_flops() > one.inference_flops());
    }

    #[test]
    fn adaptation_dominated_by_backward() {
        let d = dims();
        let step = d.adaptation_step_flops(4, 1000);
        assert!(step >= 3 * d.inference_flops() * 4);
    }

    #[test]
    fn edge_scale_is_modest() {
        // the headline claim: daily edge adaptation ~1e9 FLOPs, i.e. far
        // below one cloud KG regeneration at 1e15
        let d = dims();
        let daily = d.adaptation_step_flops(16, 2000);
        assert!(daily < 1_000_000_000_000, "daily adaptation {daily} FLOPs");
    }

    #[test]
    fn param_count_reasonable() {
        let d = dims();
        let p = d.param_count();
        assert!(p > 100 && p < 10_000_000, "params {p}");
    }
}
