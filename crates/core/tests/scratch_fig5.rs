use akg_core::experiment::{run_trend_shift, TrendShiftParams};
use akg_data::{DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;

#[test]
#[ignore]
fn scratch_fig5() {
    for seed in [42u64, 43] {
        let mut cfg = DatasetConfig::scaled(0.03)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery, AnomalyClass::Explosion])
            .with_seed(seed);
        cfg.test_normal = 25;
        cfg.test_anomalous = 30;
        let ds = SyntheticUcfCrime::generate(cfg);
        for (name, shifted) in
            [("weak", AnomalyClass::Robbery), ("strong", AnomalyClass::Explosion)]
        {
            let mut params = TrendShiftParams::quick(AnomalyClass::Stealing, shifted);
            params.seed = seed;
            params.system.seed = seed;
            params.train = params.train.with_seed(seed);
            let result = run_trend_shift(&ds, &params);
            print!("== seed {seed} {name}: init {:.2} | A:", result.initial_auc);
            for p in &result.adaptive.points {
                print!(" {:.2}", p.auc);
            }
            print!(" | S:");
            for p in &result.static_kg.points {
                print!(" {:.2}", p.auc);
            }
            println!(
                " | post A {:.3} vs S {:.3}",
                result.adaptive.post_shift_mean_auc(),
                result.static_kg.post_shift_mean_auc()
            );
        }
    }
}
