//! The data-plane/training-plane split's load-bearing contract: the
//! inference plane (`DecisionModel::*_infer`, raw slices + workspace
//! buffers, what `Engine::score_window` / `score_windows_batch` serve
//! through) must be **bit-identical** to the autograd plane
//! (`DecisionModel::predict` / `anomaly_scores_batch`, the training and
//! adaptation path) — per backend, at every batch size.
//!
//! Tests here flip the process-wide compute backend, so they follow the
//! `BACKEND_LOCK` discipline of `tensor/tests/proptest_kernels.rs`: every
//! test that changes (or depends bitwise on) the backend holds the lock,
//! and the backend is restored before releasing it.

use akg_core::engine::{Engine, Session};
use akg_core::model::WindowBatchItem;
use akg_core::pipeline::SystemConfig;
use akg_kg::AnomalyClass;
use akg_tensor::backend::{backend, set_backend, Backend};
use akg_tensor::nn::Module;
use proptest::prelude::*;
use proptest::{run_property, ProptestConfig};
use std::sync::{Mutex, MutexGuard};

/// Serializes every test that changes (or depends bitwise on) the
/// process-wide backend setting.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` under the given backend, restoring the previous policy after.
/// Callers must hold [`BACKEND_LOCK`].
fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = backend();
    set_backend(b);
    let r = f();
    set_backend(prev);
    r
}

/// Both serving backends. `Simd` resolves to scalar on hosts without
/// AVX2+FMA, so this is safe (and still meaningful) everywhere.
const BACKENDS: [Backend; 2] = [Backend::Scalar, Backend::Simd];

fn build_engine(b: Backend) -> Engine {
    // `Engine::build` applies its config's backend process-wide, which is
    // exactly what we want inside the lock.
    let engine = Engine::build(
        &[AnomalyClass::Stealing],
        &SystemConfig { backend: b, ..Default::default() },
    );
    engine.model.set_frozen(true);
    engine
}

/// A deterministic window of `window_len` frame embeddings.
fn make_window(engine: &Engine, salt: usize) -> Vec<Vec<f32>> {
    let dim = engine.config().embed_dim;
    let w = engine.config().window;
    (0..w)
        .map(|t| (0..dim).map(|c| ((salt * 31 + t * 7 + c) % 13) as f32 * 0.05 - 0.2).collect())
        .collect()
}

/// The autograd plane's single-window score (the pre-split serving path).
fn autograd_score(engine: &Engine, session: &Session, window: &[Vec<f32>]) -> f32 {
    let kgs: Vec<_> = session.kgs.iter().collect();
    let layouts: Vec<_> = session.layouts.iter().collect();
    engine.model.anomaly_score(&kgs, &layouts, &session.table, window)
}

/// The autograd plane's batched scores.
fn autograd_scores_batch(engine: &Engine, batch: &[(&Session, &[Vec<f32>])]) -> Vec<f32> {
    let items: Vec<WindowBatchItem<'_>> = batch
        .iter()
        .map(|(session, window)| WindowBatchItem {
            kgs: &session.kgs,
            layouts: &session.layouts,
            table: &session.table,
            window,
        })
        .collect();
    engine.model.anomaly_scores_batch(&items)
}

#[test]
fn inference_plane_matches_autograd_plane_bitwise_at_batch_1_4_16() {
    let _guard = lock_backend();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b);
            for n_streams in [1usize, 4, 16] {
                let sessions: Vec<Session> =
                    (0..n_streams).map(|i| engine.new_session(i as u64)).collect();
                let windows: Vec<Vec<Vec<f32>>> =
                    (0..n_streams).map(|s| make_window(&engine, s)).collect();
                let batch: Vec<(&Session, &[Vec<f32>])> =
                    sessions.iter().zip(&windows).map(|(s, w)| (s, w.as_slice())).collect();
                // Inference plane: the serving entry points.
                let infer_batched = engine.score_windows_batch(&batch);
                // Autograd plane: the oracle.
                let auto_batched = autograd_scores_batch(&engine, &batch);
                assert_eq!(
                    infer_batched, auto_batched,
                    "batched inference diverged from autograd at B={n_streams} under {b:?}"
                );
                for (i, (session, window)) in batch.iter().enumerate() {
                    let infer_single = engine.score_window(session, window);
                    let auto_single = autograd_score(&engine, session, window);
                    assert_eq!(
                        infer_single, auto_single,
                        "single-window inference diverged at item {i} under {b:?}"
                    );
                    assert_eq!(
                        infer_batched[i], infer_single,
                        "batched vs single inference diverged at item {i} under {b:?}"
                    );
                }
            }
        });
    }
}

#[test]
fn predict_window_matches_autograd_predict_bitwise() {
    let _guard = lock_backend();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b);
            let session = engine.new_session(3);
            let window = make_window(&engine, 7);
            let infer = engine.predict_window(&session, &window);
            let kgs: Vec<_> = session.kgs.iter().collect();
            let layouts: Vec<_> = session.layouts.iter().collect();
            let auto = engine.model.predict(&kgs, &layouts, &session.table, &window);
            assert_eq!(infer, auto, "predict_window diverged from autograd predict under {b:?}");
        });
    }
}

#[test]
fn random_windows_property_inference_equals_autograd_bitwise() {
    let _guard = lock_backend();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b);
            let dim = engine.config().embed_dim;
            let w = engine.config().window;
            let sessions: Vec<Session> = (0..4).map(|i| engine.new_session(40 + i)).collect();
            let frame = proptest::collection::vec(-2.0f32..2.0, dim);
            run_property(
                &format!("infer_equals_autograd_{b:?}"),
                &ProptestConfig::with_cases(12),
                |rng, _case| {
                    let windows: Vec<Vec<Vec<f32>>> =
                        (0..4).map(|_| (0..w).map(|_| frame.generate(rng)).collect()).collect();
                    let batch: Vec<(&Session, &[Vec<f32>])> =
                        sessions.iter().zip(&windows).map(|(s, w)| (s, w.as_slice())).collect();
                    let infer = engine.score_windows_batch(&batch);
                    let auto = autograd_scores_batch(&engine, &batch);
                    prop_assert_eq!(&infer, &auto);
                    for (i, (session, window)) in batch.iter().enumerate() {
                        prop_assert_eq!(infer[i], autograd_score(&engine, session, window));
                    }
                    Ok(())
                },
            );
        });
    }
}

/// Adapted state must not break the equivalence: after real token updates
/// and possible restructures, the session's fork differs from the engine's
/// template — the planes must still agree bit-for-bit.
#[test]
fn equivalence_holds_on_adapted_sessions() {
    use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
    use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
    let _guard = lock_backend();
    let ds = SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.01)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(9),
    );
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b);
            let mut session = engine.new_session(11);
            let mut adapter = ContinuousAdapter::attach(
                &engine,
                &mut session,
                AdaptConfig { n_window: 16, lag: 8, interval: 8, min_k: 1, ..Default::default() },
            );
            let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 21);
            for i in 0..48 {
                if i == 24 {
                    stream.shift_to(AnomalyClass::Robbery);
                }
                let (frame, _) = stream.next_frame();
                adapter.observe_stream(&engine, &mut session, &frame);
            }
            let window = make_window(&engine, 5);
            assert_eq!(
                engine.score_window(&session, &window),
                autograd_score(&engine, &session, &window),
                "planes diverged on an adapted session under {b:?}"
            );
        });
    }
}
