//! The int8 serving plane's bounded-divergence contract against the f32
//! oracle.
//!
//! [`akg_tensor::Precision::Int8`] swaps the engine's dense weight matrices
//! for per-row-scaled int8 twins; the autograd plane (training, adaptation)
//! keeps reading the f32 masters. This suite pins down the three properties
//! the swap must preserve:
//!
//! 1. **Bounded score divergence** — int8 and f32 engines built from the
//!    same seed score any window within a small bound of each other
//!    (property-tested over random windows, both backends).
//! 2. **Reversibility** — flipping the model back to f32 restores *bitwise*
//!    equality with an all-f32 engine: quantization is a serving-plane
//!    overlay, never a weight mutation.
//! 3. **AUC regression gate** — on the Fig. 5 evaluation protocol (train,
//!    then frame-level ROC-AUC on the held-out mission subset), the int8
//!    plane's AUC stays within 0.01 of f32 on the same seeds.
//!
//! Tests here flip the process-wide compute backend, so they follow the
//! `BACKEND_LOCK` discipline of `tests/infer_equivalence.rs`.

use akg_core::engine::{Engine, Session};
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_core::train::train_decision_model;
use akg_core::TrainConfig;
use akg_data::{DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_tensor::backend::{backend, set_backend, Backend};
use akg_tensor::nn::Module;
use akg_tensor::Precision;
use proptest::prelude::*;
use proptest::{run_property, ProptestConfig};
use std::sync::{Mutex, MutexGuard};

/// Serializes every test that changes (or depends bitwise on) the
/// process-wide backend setting.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` under the given backend, restoring the previous policy after.
/// Callers must hold [`BACKEND_LOCK`].
fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = backend();
    set_backend(b);
    let r = f();
    set_backend(prev);
    r
}

/// Both serving backends (`Simd` resolves to scalar on non-AVX2 hosts).
const BACKENDS: [Backend; 2] = [Backend::Scalar, Backend::Simd];

/// Maximum |int8 − f32| anomaly-score divergence we accept. Scores are
/// probabilities in [0, 1]; per-element weight error is ≤ scale/2 and
/// activations are dynamically quantized, so end-to-end drift through the
/// small paper model stays well inside this.
const SCORE_BOUND: f32 = 0.05;

fn build_engine(b: Backend, precision: Precision) -> Engine {
    let engine = Engine::build(
        &[AnomalyClass::Stealing],
        &SystemConfig { backend: b, precision, ..Default::default() },
    );
    engine.model.set_frozen(true);
    engine
}

/// A deterministic window of `window` frame embeddings.
fn make_window(engine: &Engine, salt: usize) -> Vec<Vec<f32>> {
    let dim = engine.config().embed_dim;
    let w = engine.config().window;
    (0..w)
        .map(|t| (0..dim).map(|c| ((salt * 31 + t * 7 + c) % 13) as f32 * 0.05 - 0.2).collect())
        .collect()
}

#[test]
fn int8_engine_reports_precision_and_quarter_footprint() {
    let _guard = lock_backend();
    with_backend(Backend::Scalar, || {
        let f32_engine = build_engine(Backend::Scalar, Precision::F32);
        let int8_engine = build_engine(Backend::Scalar, Precision::Int8);
        assert_eq!(f32_engine.precision(), Precision::F32);
        assert_eq!(int8_engine.precision(), Precision::Int8);
        let f32_bytes = f32_engine.model_bytes();
        let int8_bytes = int8_engine.model_bytes();
        assert_eq!(f32_bytes, f32_engine.model.weight_matrix_bytes_f32());
        assert_eq!(int8_bytes, int8_engine.model.weight_matrix_bytes_int8());
        assert_eq!(f32_bytes, int8_engine.model.weight_matrix_bytes_f32());
        // The asymptotic shrink is 4x; per-row f32 scales cost 4/k of that
        // on a [k, n] matrix, and the paper model's width-8 GNN layers sit
        // at 4·8/(8+4) ≈ 2.67x — so the whole-model ratio lands near 3x.
        let ratio = f32_bytes as f64 / int8_bytes as f64;
        assert!(
            ratio > 2.5,
            "int8 footprint shrink too small: {f32_bytes} vs {int8_bytes} ({ratio:.2}x)"
        );
    });
}

#[test]
fn int8_scores_track_f32_within_bound_on_random_windows() {
    let _guard = lock_backend();
    for b in BACKENDS {
        with_backend(b, || {
            let f32_engine = build_engine(b, Precision::F32);
            let int8_engine = build_engine(b, Precision::Int8);
            let dim = f32_engine.config().embed_dim;
            let w = f32_engine.config().window;
            let f32_session = f32_engine.new_session(7);
            let int8_session = int8_engine.new_session(7);
            let frame = proptest::collection::vec(-2.0f32..2.0, dim);
            run_property(
                &format!("int8_divergence_{b:?}"),
                &ProptestConfig::with_cases(16),
                |rng, _case| {
                    let window: Vec<Vec<f32>> = (0..w).map(|_| frame.generate(rng)).collect();
                    let s32 = f32_engine.score_window(&f32_session, &window);
                    let s8 = int8_engine.score_window(&int8_session, &window);
                    prop_assert!((0.0..=1.0).contains(&s8));
                    prop_assert!(
                        (s8 - s32).abs() <= SCORE_BOUND,
                        "int8 score {} diverged from f32 {} beyond {} under {:?}",
                        s8,
                        s32,
                        SCORE_BOUND,
                        b
                    );
                    Ok(())
                },
            );
        });
    }
}

/// Batched int8 serving must stay bit-identical to single-window int8
/// serving — the PR 3 batching contract holds *within* the quantized plane
/// too (quantized codes and i32 accumulation are row-independent).
#[test]
fn int8_batched_scoring_matches_single_bitwise() {
    let _guard = lock_backend();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b, Precision::Int8);
            let sessions: Vec<Session> = (0..4).map(|i| engine.new_session(i as u64)).collect();
            let windows: Vec<Vec<Vec<f32>>> = (0..4).map(|s| make_window(&engine, s)).collect();
            let batch: Vec<(&Session, &[Vec<f32>])> =
                sessions.iter().zip(&windows).map(|(s, w)| (s, w.as_slice())).collect();
            let batched = engine.score_windows_batch(&batch);
            for (i, (session, window)) in batch.iter().enumerate() {
                let single = engine.score_window(session, window);
                assert_eq!(
                    batched[i], single,
                    "int8 batched vs single diverged at item {i} under {b:?}"
                );
            }
        });
    }
}

/// Quantization is an overlay, not a mutation: dropping back to f32
/// restores bitwise equality with an engine that was never quantized.
#[test]
fn clearing_int8_restores_bitwise_f32_scores() {
    let _guard = lock_backend();
    for b in BACKENDS {
        with_backend(b, || {
            let f32_engine = build_engine(b, Precision::F32);
            let mut int8_engine = build_engine(b, Precision::Int8);
            let window = make_window(&f32_engine, 3);
            let f32_session = f32_engine.new_session(5);
            let int8_session = int8_engine.new_session(5);
            let s8 = int8_engine.score_window(&int8_session, &window);
            int8_engine.model.set_precision(Precision::F32);
            assert_eq!(int8_engine.precision(), Precision::F32);
            let restored = int8_engine.score_window(&int8_session, &window);
            let oracle = f32_engine.score_window(&f32_session, &window);
            assert_eq!(restored, oracle, "f32 restore not bitwise under {b:?}");
            // And the quantized score was a genuinely different plane
            // (otherwise this test proves nothing).
            assert_ne!(s8, oracle, "int8 plane never engaged under {b:?}");
        });
    }
}

/// The Fig. 5 harness gate: train once (training is f32 either way), then
/// evaluate the held-out mission subset at both precisions — frame-level
/// ROC-AUC must agree within 0.01. Flipping the precision on one trained
/// system is exactly "same seeds" with half the cost of training twice.
#[test]
fn int8_auc_within_one_point_of_f32_on_fig5_protocol() {
    let _guard = lock_backend();
    with_backend(Backend::Auto, || {
        let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(11),
        );
        let videos: Vec<&akg_data::Video> = ds.train.iter().collect();
        let cfg = TrainConfig { steps: 100, batch_size: 12, ..TrainConfig::fast() };
        train_decision_model(&mut sys, &videos, &cfg);
        let subset = ds.test_subset(AnomalyClass::Stealing);
        let auc_f32 = sys.evaluate_auc(&subset);
        sys.engine.model.set_precision(Precision::Int8);
        let auc_int8 = sys.evaluate_auc(&subset);
        assert!(auc_f32 > 0.7, "f32 baseline AUC too low: {auc_f32}");
        assert!(
            (auc_int8 - auc_f32).abs() <= 0.01,
            "int8 AUC regressed: f32 {auc_f32} vs int8 {auc_int8}"
        );
    });
}

/// Training after an int8 build must re-derive the codes: the engine never
/// serves a quantization of the *initial* weights once training has moved
/// the masters.
#[test]
fn training_refreshes_stale_int8_codes() {
    let _guard = lock_backend();
    with_backend(Backend::Scalar, || {
        let config = SystemConfig {
            backend: Backend::Scalar,
            precision: Precision::Int8,
            ..Default::default()
        };
        let mut sys = MissionSystem::build(&[AnomalyClass::Stealing], &config);
        let window = make_window(&sys.engine, 1);
        let before = sys.score_window(&window);
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(11),
        );
        let videos: Vec<&akg_data::Video> = ds.train.iter().collect();
        let cfg = TrainConfig { steps: 20, batch_size: 4, ..TrainConfig::fast() };
        train_decision_model(&mut sys, &videos, &cfg);
        assert_eq!(sys.engine.precision(), Precision::Int8);
        let after = sys.score_window(&window);
        assert_ne!(before, after, "trained int8 engine still serves pre-training codes");
        // The refreshed codes must equal quantizing the current masters
        // from scratch: re-deriving in place is idempotent.
        let served = sys.score_window(&window);
        sys.engine.model.refresh_quantized();
        assert_eq!(sys.score_window(&window), served, "refresh_quantized not idempotent");
    });
}
