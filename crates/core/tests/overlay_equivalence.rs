//! The copy-on-write session contract: an **overlay** session (sparse
//! adapted-row map over the engine's shared table, KGs shared until first
//! structural edit — `Engine::new_session`) must behave **bit-identically**
//! to a **dense-fork** session (`Engine::new_session_dense`) through real
//! adaptation: per-frame scores, the final resolved table, replacements,
//! spare-row cursors, and adaptation events — under Scalar AND Simd, f32 and
//! int8, fixed and fuzzed adapt schedules.
//!
//! Tests here flip the process-wide compute backend, so they follow the
//! `BACKEND_LOCK` discipline of `tensor/tests/proptest_kernels.rs`.

use akg_core::adapt::{AdaptConfig, ContinuousAdapter};
use akg_core::engine::Engine;
use akg_core::pipeline::{MissionSystem, SystemConfig};
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_tensor::backend::{backend, set_backend, Backend};
use akg_tensor::Precision;
use proptest::prelude::*;
use proptest::{run_property, ProptestConfig};
use std::sync::{Mutex, MutexGuard};

/// Serializes every test that changes (or depends bitwise on) the
/// process-wide backend setting.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` under the given backend, restoring the previous policy after.
/// Callers must hold [`BACKEND_LOCK`].
fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = backend();
    set_backend(b);
    let r = f();
    set_backend(prev);
    r
}

/// Both serving backends. `Simd` resolves to scalar on hosts without
/// AVX2+FMA, so this is safe (and still meaningful) everywhere.
const BACKENDS: [Backend; 2] = [Backend::Scalar, Backend::Simd];

/// Same engine recipe as `runtime/tests/equivalence.rs`: the trained
/// `MissionSystem` pipeline (seed 5), whose scores demonstrably trip the
/// anomaly trigger on the dataset below — so adaptation actually fires.
fn build_engine(b: Backend, precision: Precision) -> Engine {
    MissionSystem::build(
        &[AnomalyClass::Stealing],
        &SystemConfig { seed: 5, backend: b, precision, ..Default::default() },
    )
    .engine
}

/// Same dataset recipe as `runtime/tests/equivalence.rs`, whose suite proves
/// this schedule actually drives token updates (non-vacuous adaptation).
fn dataset() -> SyntheticUcfCrime {
    SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(77),
    )
}

fn frame_seed(stream: usize) -> u64 {
    0xBEEF ^ (stream as u64 * 101)
}

fn stream_seed(stream: usize) -> u64 {
    1000 + stream as u64
}

/// One run's observable fingerprint, everything the contract compares.
#[derive(Debug, PartialEq)]
struct Outcome {
    score_bits: Vec<u32>,
    table_bits: Vec<u32>,
    replacements: usize,
    events: usize,
    next_spare: usize,
}

/// Drives one session (overlay or dense) through `frames` frames of the
/// given stream, shifting the trend at `shift_at`.
#[allow(clippy::too_many_arguments)]
fn run_session(
    engine: &Engine,
    ds: &SyntheticUcfCrime,
    dense: bool,
    cfg: AdaptConfig,
    frame_seed: u64,
    stream_seed: u64,
    frames: usize,
    shift_at: usize,
) -> Outcome {
    let mut session =
        if dense { engine.new_session_dense(frame_seed) } else { engine.new_session(frame_seed) };
    assert_eq!(session.table.is_overlay(), !dense);
    let mut adapter = ContinuousAdapter::attach(engine, &mut session, cfg);
    let mut stream = AdaptationStream::new(ds, AnomalyClass::Stealing, 0.5, stream_seed);
    let mut score_bits = Vec::with_capacity(frames);
    for i in 0..frames {
        if i == shift_at {
            stream.shift_to(AnomalyClass::Robbery);
        }
        let (frame, _) = stream.next_frame();
        score_bits.push(adapter.observe_stream(engine, &mut session, &frame).to_bits());
    }
    Outcome {
        score_bits,
        table_bits: session.table.to_dense_vec().iter().map(|v| v.to_bits()).collect(),
        replacements: adapter.replacements(),
        events: adapter.events().len(),
        next_spare: session.table.next_spare(),
    }
}

/// Runs the overlay-vs-dense comparison across four independent streams
/// (the same per-stream seeding as `runtime/tests/equivalence.rs`) and
/// requires at least one stream to have actually changed its table.
fn check_pairs(engine: &Engine, ds: &SyntheticUcfCrime, label: &str) {
    let base_bits: Vec<u32> = engine.table_base().iter().map(|v| v.to_bits()).collect();
    let mut any_adapted = false;
    for s in 0..4 {
        let cfg = adapt_cfg(s);
        let overlay = run_session(engine, ds, false, cfg, frame_seed(s), stream_seed(s), 48, 24);
        let dense = run_session(engine, ds, true, cfg, frame_seed(s), stream_seed(s), 48, 24);
        assert_eq!(overlay, dense, "{label}/stream {s}: overlay diverged from dense fork");
        any_adapted |= dense.table_bits != base_bits;
    }
    assert!(any_adapted, "{label}: no stream adapted its table — vacuous equivalence");
}

fn adapt_cfg(stream: usize) -> AdaptConfig {
    AdaptConfig {
        n_window: 16,
        lag: 8,
        interval: 8,
        min_k: 1,
        max_k: 4,
        seed: stream as u64,
        ..Default::default()
    }
}

#[test]
fn overlay_equals_dense_fork_through_adaptation_f32() {
    let _guard = lock_backend();
    let ds = dataset();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b, Precision::F32);
            check_pairs(&engine, &ds, &format!("f32/{b:?}"));
        });
    }
}

#[test]
fn overlay_equals_dense_fork_through_adaptation_int8() {
    let _guard = lock_backend();
    let ds = dataset();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b, Precision::Int8);
            assert_eq!(engine.precision(), Precision::Int8);
            check_pairs(&engine, &ds, &format!("int8/{b:?}"));
        });
    }
}

/// Fuzzed adapt schedules: random interval/window/shift/stream positions
/// must never open a gap between the overlay and dense paths.
#[test]
fn random_adapt_schedules_property_overlay_equals_dense() {
    let _guard = lock_backend();
    let ds = dataset();
    for b in BACKENDS {
        with_backend(b, || {
            let engine = build_engine(b, Precision::F32);
            run_property(
                &format!("overlay_equals_dense_{b:?}"),
                &ProptestConfig::with_cases(4),
                |rng, _case| {
                    let interval = (4usize..=10).generate(rng);
                    let n_window = (12usize..=24).generate(rng);
                    let frames = (36usize..=56).generate(rng);
                    let shift_at = (8usize..frames).generate(rng);
                    let stream_seed = (0u64..1000).generate(rng);
                    let cfg = AdaptConfig {
                        n_window,
                        lag: n_window / 2,
                        interval,
                        min_k: 1,
                        ..Default::default()
                    };
                    let overlay =
                        run_session(&engine, &ds, false, cfg, 7, stream_seed, frames, shift_at);
                    let dense =
                        run_session(&engine, &ds, true, cfg, 7, stream_seed, frames, shift_at);
                    prop_assert_eq!(&overlay, &dense);
                    Ok(())
                },
            );
        });
    }
}

/// The overlay checkpoint (adapted-row delta) must round-trip: capture an
/// adapted overlay session, restore into a fresh overlay session of the same
/// engine, and both continue identically — and the delta checkpoint must be
/// dramatically smaller than the dense full-table form.
#[test]
fn overlay_checkpoint_roundtrips_and_shrinks() {
    use akg_core::persist::{checkpoint_session, restore_session};
    let _guard = lock_backend();
    let ds = dataset();
    with_backend(Backend::Scalar, || {
        let engine = build_engine(Backend::Scalar, Precision::F32);
        // sweep the four streams and keep the first whose overlay actually
        // materialized rows — the round-trip must not be vacuous
        let mut adapted = None;
        for s in 0..4 {
            let cfg = adapt_cfg(s);
            let mut session = engine.new_session(frame_seed(s));
            let mut adapter = ContinuousAdapter::attach(&engine, &mut session, cfg);
            let mut stream =
                AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, stream_seed(s));
            for i in 0..48 {
                if i == 24 {
                    stream.shift_to(AnomalyClass::Robbery);
                }
                let (frame, _) = stream.next_frame();
                adapter.observe_stream(&engine, &mut session, &frame);
            }
            if !session.table.overlay_delta().is_empty() {
                adapted = Some((s, session, adapter, stream));
                break;
            }
        }
        let (s, mut session, mut adapter, mut stream) =
            adapted.expect("no stream adapted — vacuous round-trip");
        let cfg = adapt_cfg(s);

        let cp = checkpoint_session(&session, &adapter);
        assert!(cp.table_overlay);
        assert!(cp.token_table.is_empty(), "overlay checkpoint must not carry the dense table");
        assert!(!cp.table_delta.is_empty());
        let overlay_bytes = serde_json::to_string(&cp).unwrap().len();

        // dense baseline for the same adapted state
        let mut dense = engine.new_session_dense(frame_seed(s));
        let mut dense_adapter = ContinuousAdapter::attach(&engine, &mut dense, cfg);
        let mut dense_stream =
            AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, stream_seed(s));
        for i in 0..48 {
            if i == 24 {
                dense_stream.shift_to(AnomalyClass::Robbery);
            }
            let (frame, _) = dense_stream.next_frame();
            dense_adapter.observe_stream(&engine, &mut dense, &frame);
        }
        let dense_bytes =
            serde_json::to_string(&checkpoint_session(&dense, &dense_adapter)).unwrap().len();
        assert!(
            overlay_bytes * 5 <= dense_bytes,
            "overlay checkpoint ({overlay_bytes} B) not much smaller than dense ({dense_bytes} B)"
        );

        // restore and continue bit-identically against the uninterrupted run
        let mut twin = engine.new_session(99); // deliberately wrong seed: restore must fix it
        let mut twin_adapter = restore_session(&engine, &mut twin, cfg, &cp).unwrap();
        for _ in 0..24 {
            let (f1, _) = stream.next_frame();
            let s1 = adapter.observe_stream(&engine, &mut session, &f1);
            let s2 = twin_adapter.observe_stream(&engine, &mut twin, &f1);
            assert_eq!(s1.to_bits(), s2.to_bits(), "restored overlay session diverged");
        }
        assert_eq!(
            session.table.to_dense_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            twin.table.to_dense_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(adapter.replacements(), twin_adapter.replacements());
    });
}
