//! Deployment-artifact persistence: serialize a trained [`MissionSystem`]'s
//! state (KG structures, node-token assignments, token table, model
//! parameters) so it can be shipped to an edge device and restored there —
//! the "Model Deploy" arrow of the paper's Fig. 2.
//!
//! Architecture/config is *not* serialized: the loader validates that the
//! receiving system was built with matching dimensions, then overwrites its
//! parameters. This matches the paper's deployment model, where the code
//! image is fixed and only learned state moves.

use crate::pipeline::MissionSystem;
use akg_kg::{KnowledgeGraph, NodeId};
use akg_tensor::nn::Module;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Serializable learned state of a mission system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemState {
    /// Mission names (sanity-checked on load).
    pub missions: Vec<String>,
    /// KG structures, one JSON document per mission.
    pub kgs: Vec<String>,
    /// Node-token assignments per KG (node id → token-table rows).
    pub node_tokens: Vec<HashMap<usize, Vec<usize>>>,
    /// Per-KG mission embeddings.
    pub mission_embeddings: Vec<Vec<f32>>,
    /// The token-embedding table data.
    pub token_table: Vec<f32>,
    /// Decision-model parameters in `Module::params` order.
    pub model_params: Vec<Vec<f32>>,
}

/// Captures the learned state of a system.
pub fn save_state(sys: &MissionSystem) -> SystemState {
    SystemState {
        missions: sys.missions.iter().map(|m| m.name().to_string()).collect(),
        kgs: sys.kgs.iter().map(|t| t.kg.to_json().expect("KG serializes")).collect(),
        node_tokens: sys
            .kgs
            .iter()
            .map(|t| t.node_tokens.iter().map(|(id, rows)| (id.0, rows.clone())).collect())
            .collect(),
        mission_embeddings: sys.kgs.iter().map(|t| t.mission_embedding.clone()).collect(),
        token_table: sys.table.param().to_vec(),
        model_params: sys.model.params().iter().map(|p| p.to_vec()).collect(),
    }
}

/// Serializes the state to JSON.
///
/// # Errors
///
/// Returns the serializer's message on failure.
pub fn save_state_json(sys: &MissionSystem) -> Result<String, String> {
    serde_json::to_string(&save_state(sys)).map_err(|e| e.to_string())
}

/// Restores learned state into a system built with the *same configuration*
/// (missions, dimensions, vocabulary).
///
/// # Errors
///
/// Returns a message if missions, parameter shapes, or table sizes disagree.
pub fn load_state(sys: &mut MissionSystem, state: &SystemState) -> Result<(), String> {
    let missions: Vec<String> = sys.missions.iter().map(|m| m.name().to_string()).collect();
    if missions != state.missions {
        return Err(format!("mission mismatch: system {missions:?} vs state {:?}", state.missions));
    }
    if sys.table.param().numel() != state.token_table.len() {
        return Err(format!(
            "token table size mismatch: {} vs {}",
            sys.table.param().numel(),
            state.token_table.len()
        ));
    }
    let params = sys.model.params();
    if params.len() != state.model_params.len() {
        return Err(format!(
            "model parameter count mismatch: {} vs {}",
            params.len(),
            state.model_params.len()
        ));
    }
    for (i, (p, saved)) in params.iter().zip(&state.model_params).enumerate() {
        if p.numel() != saved.len() {
            return Err(format!("parameter {i} shape mismatch"));
        }
    }
    if state.kgs.len() != sys.kgs.len() {
        return Err("KG count mismatch".to_string());
    }

    // all checks passed; apply
    for (i, kg_json) in state.kgs.iter().enumerate() {
        let kg = KnowledgeGraph::from_json(kg_json)?;
        let errors = kg.validate();
        if !errors.is_empty() {
            return Err(format!("restored KG {i} invalid: {errors:?}"));
        }
        sys.kgs[i].kg = kg;
        sys.kgs[i].node_tokens =
            state.node_tokens[i].iter().map(|(id, rows)| (NodeId(*id), rows.clone())).collect();
        sys.kgs[i].mission_embedding = state.mission_embeddings[i].clone();
        sys.rebuild_layout(i);
    }
    sys.table.param().set_data(&state.token_table);
    for (p, saved) in sys.model.params().iter().zip(&state.model_params) {
        p.set_data(saved);
    }
    Ok(())
}

/// Deserializes and restores state from JSON.
///
/// # Errors
///
/// Returns a message on parse or validation failure.
pub fn load_state_json(sys: &mut MissionSystem, json: &str) -> Result<(), String> {
    let state: SystemState = serde_json::from_str(json).map_err(|e| e.to_string())?;
    load_state(sys, &state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SystemConfig;
    use akg_kg::AnomalyClass;

    fn system(seed: u64) -> MissionSystem {
        MissionSystem::build(
            &[AnomalyClass::Stealing],
            &SystemConfig { seed, ..SystemConfig::default() },
        )
    }

    fn sample_score(sys: &mut MissionSystem) -> f32 {
        sys.model.set_train(false);
        let frame = akg_data::Frame {
            concepts: vec![("grab".into(), 1.0), ("person".into(), 0.6)],
            label: None,
        };
        let emb = sys.embed_frame(&frame);
        let w = sys.model.config().window;
        sys.score_window(&vec![emb; w])
    }

    #[test]
    fn round_trip_restores_behaviour() {
        let mut original = system(3);
        let state = save_state(&original);
        // perturb the original's parameters, then restore
        for p in original.model.params() {
            p.update_data(|d| {
                for v in d.iter_mut() {
                    *v += 0.5;
                }
            });
        }
        original.table.param().update_data(|d| {
            for v in d.iter_mut() {
                *v -= 0.25;
            }
        });
        let perturbed_state = save_state(&original);
        assert_ne!(perturbed_state.model_params, state.model_params);
        load_state(&mut original, &state).unwrap();
        let restored = save_state(&original);
        assert_eq!(restored.model_params, state.model_params);
        assert_eq!(restored.token_table, state.token_table);
    }

    #[test]
    fn json_round_trip_preserves_scores() {
        let mut sys = system(4);
        let before = sample_score(&mut sys);
        let json = save_state_json(&sys).unwrap();
        // a freshly built twin (same config) restores to identical behaviour
        let mut twin = system(4);
        load_state_json(&mut twin, &json).unwrap();
        // use the same frame rng state: rebuild both to align rng
        let mut sys2 = system(4);
        load_state_json(&mut sys2, &json).unwrap();
        let a = sample_score(&mut twin);
        let b = sample_score(&mut sys2);
        assert_eq!(a, b, "restored twins disagree");
        // and close to the original's score (same params, same rng seed)
        assert!((a - before).abs() < 1e-6, "restored behaviour differs: {a} vs {before}");
    }

    #[test]
    fn load_rejects_mission_mismatch() {
        let sys = system(5);
        let state = save_state(&sys);
        let mut other = MissionSystem::build(
            &[AnomalyClass::Explosion],
            &SystemConfig { seed: 5, ..SystemConfig::default() },
        );
        assert!(load_state(&mut other, &state).is_err());
    }

    #[test]
    fn load_rejects_corrupt_kg() {
        let sys = system(6);
        let mut state = save_state(&sys);
        state.kgs[0] = "{not valid json".to_string();
        let mut twin = system(6);
        assert!(load_state(&mut twin, &state).is_err());
    }
}
