//! Deployment-artifact persistence: serialize a trained [`MissionSystem`]'s
//! learned state (KG structures, node-token assignments, token table, model
//! parameters) *and* its live per-session serving state (frame-RNG position,
//! spare-row cursor, and optionally the full adaptation-loop state) so an
//! edge deployment can be checkpointed mid-stream and resumed elsewhere with
//! bit-identical behaviour — the "Model Deploy" arrow of the paper's Fig. 2,
//! extended to warm hand-off.
//!
//! Architecture/config is *not* serialized: the loader validates that the
//! receiving system was built with matching dimensions, then overwrites its
//! parameters. This matches the paper's deployment model, where the code
//! image is fixed and only learned state moves.

use crate::adapt::{AdaptConfig, AdaptSnapshot, ContinuousAdapter};
use crate::engine::{CowVec, Engine, Session};
use crate::pipeline::MissionSystem;
use akg_kg::{KnowledgeGraph, NodeId};
use akg_tensor::nn::Module;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Live per-session serving state: what distinguishes a mid-stream
/// deployment from a freshly loaded one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionState {
    /// The token table's spare-row cursor (next adaptation-created row).
    pub next_spare: usize,
    /// Frame-embedding RNG state (xoshiro256++ words).
    pub frame_rng: Vec<u64>,
    /// The adaptation loop's resumable state, when an adapter was attached
    /// at save time.
    pub adapter: Option<AdaptSnapshot>,
}

/// Serializable learned state of a mission system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemState {
    /// Mission names (sanity-checked on load).
    pub missions: Vec<String>,
    /// KG structures, one JSON document per mission.
    pub kgs: Vec<String>,
    /// Node-token assignments per KG (node id → token-table rows).
    pub node_tokens: Vec<HashMap<usize, Vec<usize>>>,
    /// Per-KG mission embeddings.
    pub mission_embeddings: Vec<Vec<f32>>,
    /// The token-embedding table data (the session's adaptive fork).
    pub token_table: Vec<f32>,
    /// Decision-model parameters in `Module::params` order.
    pub model_params: Vec<Vec<f32>>,
    /// Per-session serving state.
    pub session: SessionState,
}

/// Captures the learned state of a system (no adapter attached — the
/// adaptation-loop state is omitted; see [`save_state_with_adapter`]).
pub fn save_state(sys: &MissionSystem) -> SystemState {
    save_state_inner(sys, None)
}

/// Captures the learned state of a system *and* its live adaptation loop,
/// so [`load_state`] + [`ContinuousAdapter::restore`] resume the deployment
/// exactly where it stopped.
pub fn save_state_with_adapter(sys: &MissionSystem, adapter: &ContinuousAdapter) -> SystemState {
    save_state_inner(sys, Some(adapter.snapshot()))
}

fn save_state_inner(sys: &MissionSystem, adapter: Option<AdaptSnapshot>) -> SystemState {
    SystemState {
        missions: sys.engine.missions.iter().map(|m| m.name().to_string()).collect(),
        kgs: sys.session.kgs.iter().map(|t| t.kg.to_json().expect("KG serializes")).collect(),
        node_tokens: sys
            .session
            .kgs
            .iter()
            .map(|t| t.node_tokens.iter().map(|(id, rows)| (id.0, rows.clone())).collect())
            .collect(),
        mission_embeddings: sys.session.kgs.iter().map(|t| t.mission_embedding.clone()).collect(),
        token_table: sys.session.table.param().to_vec(),
        model_params: sys.engine.model.params().iter().map(|p| p.to_vec()).collect(),
        session: SessionState {
            next_spare: sys.session.table.next_spare(),
            frame_rng: sys.session.frame_rng.export_state().to_vec(),
            adapter,
        },
    }
}

/// Serializes the state to JSON.
///
/// # Errors
///
/// Returns the serializer's message on failure.
pub fn save_state_json(sys: &MissionSystem) -> Result<String, String> {
    serde_json::to_string(&save_state(sys)).map_err(|e| e.to_string())
}

/// Restores learned state into a system built with the *same configuration*
/// (missions, dimensions, vocabulary), including the session's spare-row
/// cursor and frame-RNG position. When the state carries an adapter
/// snapshot, re-attach it afterwards with [`ContinuousAdapter::restore`].
///
/// # Errors
///
/// Returns a message if missions, parameter shapes, table sizes, or RNG
/// state disagree.
pub fn load_state(sys: &mut MissionSystem, state: &SystemState) -> Result<(), String> {
    let missions: Vec<String> = sys.engine.missions.iter().map(|m| m.name().to_string()).collect();
    if missions != state.missions {
        return Err(format!("mission mismatch: system {missions:?} vs state {:?}", state.missions));
    }
    if sys.session.table.param().numel() != state.token_table.len() {
        return Err(format!(
            "token table size mismatch: {} vs {}",
            sys.session.table.param().numel(),
            state.token_table.len()
        ));
    }
    let params = sys.engine.model.params();
    if params.len() != state.model_params.len() {
        return Err(format!(
            "model parameter count mismatch: {} vs {}",
            params.len(),
            state.model_params.len()
        ));
    }
    for (i, (p, saved)) in params.iter().zip(&state.model_params).enumerate() {
        if p.numel() != saved.len() {
            return Err(format!("parameter {i} shape mismatch"));
        }
    }
    if state.kgs.len() != sys.session.kgs.len() {
        return Err("KG count mismatch".to_string());
    }
    let frame_rng: [u64; 4] = state
        .session
        .frame_rng
        .as_slice()
        .try_into()
        .map_err(|_| "frame RNG state must hold 4 words".to_string())?;
    if frame_rng == [0; 4] {
        return Err("frame RNG state is all-zero".to_string());
    }
    if let Some(adapter) = &state.session.adapter {
        // Validate here so a corrupt checkpoint surfaces as an Err instead
        // of a panic inside the later `ContinuousAdapter::restore` call.
        let rng: Result<[u64; 4], _> = adapter.rng.as_slice().try_into();
        match rng {
            Err(_) => return Err("adapter RNG state must hold 4 words".to_string()),
            Ok(words) if words == [0; 4] => return Err("adapter RNG state is all-zero".to_string()),
            Ok(_) => {}
        }
    }

    // all checks passed; apply
    for (i, kg_json) in state.kgs.iter().enumerate() {
        let kg = KnowledgeGraph::from_json(kg_json)?;
        let errors = kg.validate();
        if !errors.is_empty() {
            return Err(format!("restored KG {i} invalid: {errors:?}"));
        }
        sys.session.kgs[i].kg = kg;
        sys.session.kgs[i].node_tokens =
            state.node_tokens[i].iter().map(|(id, rows)| (NodeId(*id), rows.clone())).collect();
        sys.session.kgs[i].mission_embedding = state.mission_embeddings[i].clone();
        sys.rebuild_layout(i);
    }
    sys.session.table.param().set_data(&state.token_table);
    sys.session.table.restore_spare_cursor(state.session.next_spare);
    sys.session.frame_rng = StdRng::restore_state(frame_rng);
    for (p, saved) in sys.engine.model.params().iter().zip(&state.model_params) {
        p.set_data(saved);
    }
    Ok(())
}

/// Deserializes and restores state from JSON.
///
/// # Errors
///
/// Returns a message on parse or validation failure.
pub fn load_state_json(sys: &mut MissionSystem, json: &str) -> Result<(), String> {
    let state: SystemState = serde_json::from_str(json).map_err(|e| e.to_string())?;
    load_state(sys, &state)
}

/// A session-granular checkpoint: everything that distinguishes one live
/// serving stream from a freshly opened one against the *same immutable
/// engine* — the KG structures and token assignments the stream has adapted,
/// its token-table fork, its RNG positions, and its full adaptation-loop
/// state.
///
/// This is the [`SystemState`] idea scoped down for the multi-stream serving
/// runtime: the shared `Engine` (decision model, tokenizer, concept space)
/// never mutates per stream, so a crashed shard worker only needs its
/// streams' `SessionCheckpoint`s plus the deterministic `EngineSpec` rebuild
/// to resume bit-identically. Node-token maps are stored sorted by node id
/// so serialized checkpoints are byte-deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Whether the session's KGs/layouts were still the engine's shared
    /// templates at capture (no structural adaptation yet). When true, the
    /// three per-KG arrays are left empty and restore re-points the session
    /// at the engine's templates — the engine reconstructs them
    /// deterministically, so serializing them would be redundant bytes.
    pub kgs_shared: bool,
    /// KG structures, one JSON document per mission (empty when
    /// `kgs_shared`).
    pub kgs: Vec<String>,
    /// Node-token assignments per KG, sorted by node id (empty when
    /// `kgs_shared`).
    pub node_tokens: Vec<Vec<(usize, Vec<usize>)>>,
    /// Per-KG mission embeddings (empty when `kgs_shared`).
    pub mission_embeddings: Vec<Vec<f32>>,
    /// Whether the capture came from an overlay table (adapted-row delta)
    /// rather than a dense fork (full matrix).
    pub table_overlay: bool,
    /// The session's full dense table (dense sessions only; empty for
    /// overlays).
    pub token_table: Vec<f32>,
    /// The overlay's adapted rows, sorted by row index (overlay sessions
    /// only; empty for dense). This is what collapses a checkpoint from the
    /// full-table hundreds of KB to a delta proportional to the rows
    /// adaptation actually touched.
    pub table_delta: Vec<(usize, Vec<f32>)>,
    /// The token table's spare-row cursor.
    pub next_spare: usize,
    /// Frame-embedding RNG state (xoshiro256++ words).
    pub frame_rng: Vec<u64>,
    /// The adaptation loop's resumable state.
    pub adapter: AdaptSnapshot,
}

/// Captures a live session and its adaptation loop into a
/// [`SessionCheckpoint`]. Overlay sessions capture only their adapted-row
/// delta (and skip KG bodies entirely while they still share the engine's
/// templates); dense sessions capture the full state as before.
pub fn checkpoint_session(session: &Session, adapter: &ContinuousAdapter) -> SessionCheckpoint {
    let kgs_shared = session.kgs.is_shared() && session.layouts.is_shared();
    let (kgs, node_tokens, mission_embeddings) = if kgs_shared {
        (Vec::new(), Vec::new(), Vec::new())
    } else {
        (
            session.kgs.iter().map(|t| t.kg.to_json().expect("KG serializes")).collect(),
            session
                .kgs
                .iter()
                .map(|t| {
                    let mut rows: Vec<(usize, Vec<usize>)> =
                        t.node_tokens.iter().map(|(id, rows)| (id.0, rows.clone())).collect();
                    rows.sort_unstable_by_key(|(id, _)| *id);
                    rows
                })
                .collect(),
            session.kgs.iter().map(|t| t.mission_embedding.clone()).collect(),
        )
    };
    let table_overlay = session.table.is_overlay();
    let (token_table, table_delta) = if table_overlay {
        (Vec::new(), session.table.overlay_delta())
    } else {
        (session.table.param().to_vec(), Vec::new())
    };
    SessionCheckpoint {
        kgs_shared,
        kgs,
        node_tokens,
        mission_embeddings,
        table_overlay,
        token_table,
        table_delta,
        next_spare: session.table.next_spare(),
        frame_rng: session.frame_rng.export_state().to_vec(),
        adapter: adapter.snapshot(),
    }
}

/// Restores a [`SessionCheckpoint`] into a freshly opened session of the
/// same engine, returning the re-attached adaptation loop. Follows the
/// [`load_state`] discipline: validate everything first, mutate only after
/// every check has passed, so a corrupt checkpoint leaves the session
/// untouched.
///
/// # Errors
///
/// Returns a message if KG counts, table sizes, or RNG states disagree with
/// the receiving session, or a stored KG fails to parse its header checks.
pub fn restore_session(
    engine: &Engine,
    session: &mut Session,
    cfg: AdaptConfig,
    cp: &SessionCheckpoint,
) -> Result<ContinuousAdapter, String> {
    if cp.kgs_shared {
        if !cp.kgs.is_empty() || !cp.node_tokens.is_empty() || !cp.mission_embeddings.is_empty() {
            return Err("shared-KG checkpoint carries KG bodies".to_string());
        }
    } else {
        if cp.kgs.len() != session.kgs.len() {
            return Err(format!(
                "checkpoint KG count mismatch: {} vs session {}",
                cp.kgs.len(),
                session.kgs.len()
            ));
        }
        if cp.node_tokens.len() != cp.kgs.len() || cp.mission_embeddings.len() != cp.kgs.len() {
            return Err("checkpoint per-KG arrays disagree in length".to_string());
        }
    }
    let (capacity, dim) = (session.table.capacity(), session.table.dim());
    if cp.table_overlay {
        if !session.table.is_overlay() {
            return Err("overlay checkpoint cannot restore into a dense session".to_string());
        }
        if !cp.token_table.is_empty() {
            return Err("overlay checkpoint carries a dense table".to_string());
        }
        let mut prev: Option<usize> = None;
        for (r, v) in &cp.table_delta {
            if *r >= capacity {
                return Err(format!("checkpoint delta row {r} out of bounds ({capacity})"));
            }
            if v.len() != dim {
                return Err(format!("checkpoint delta row {r} has {} values, want {dim}", v.len()));
            }
            if prev.is_some_and(|p| p >= *r) {
                return Err("checkpoint delta rows must be sorted and unique".to_string());
            }
            prev = Some(*r);
        }
    } else {
        if session.table.is_overlay() {
            return Err("dense checkpoint cannot restore into an overlay session".to_string());
        }
        if !cp.table_delta.is_empty() {
            return Err("dense checkpoint carries an overlay delta".to_string());
        }
        if capacity * dim != cp.token_table.len() {
            return Err(format!(
                "checkpoint token table size mismatch: {} vs session {}",
                cp.token_table.len(),
                capacity * dim
            ));
        }
    }
    if !(session.table.vocab_len()..=capacity).contains(&cp.next_spare) {
        return Err(format!(
            "checkpoint spare cursor {} outside [{}, {capacity}]",
            cp.next_spare,
            session.table.vocab_len()
        ));
    }
    let frame_rng: [u64; 4] = cp
        .frame_rng
        .as_slice()
        .try_into()
        .map_err(|_| "checkpoint frame RNG state must hold 4 words".to_string())?;
    if frame_rng == [0; 4] {
        return Err("checkpoint frame RNG state is all-zero".to_string());
    }
    let adapter_rng: Result<[u64; 4], _> = cp.adapter.rng.as_slice().try_into();
    match adapter_rng {
        Err(_) => return Err("checkpoint adapter RNG state must hold 4 words".to_string()),
        Ok(words) if words == [0; 4] => {
            return Err("checkpoint adapter RNG state is all-zero".to_string())
        }
        Ok(_) => {}
    }
    // Parse and structurally validate every KG before touching the session.
    let mut kgs = Vec::with_capacity(cp.kgs.len());
    for (i, kg_json) in cp.kgs.iter().enumerate() {
        let kg = KnowledgeGraph::from_json(kg_json)?;
        let errors = kg.validate();
        if !errors.is_empty() {
            return Err(format!("checkpoint KG {i} invalid: {errors:?}"));
        }
        kgs.push(kg);
    }

    // all checks passed; apply
    if cp.kgs_shared {
        // The engine's templates ARE the checkpointed state — re-point the
        // session at them (dropping any private copies a previous restore
        // may have left behind).
        session.kgs = CowVec::shared(Arc::clone(&engine.kgs));
        session.layouts = CowVec::shared(Arc::clone(&engine.layouts));
    } else {
        for (i, kg) in kgs.into_iter().enumerate() {
            session.kgs[i].kg = kg;
            session.kgs[i].node_tokens =
                cp.node_tokens[i].iter().map(|(id, rows)| (NodeId(*id), rows.clone())).collect();
            session.kgs[i].mission_embedding = cp.mission_embeddings[i].clone();
            session.rebuild_layout(i);
        }
    }
    if cp.table_overlay {
        session.table.apply_overlay_delta(&cp.table_delta);
    } else {
        session.table.param().set_data(&cp.token_table);
    }
    session.table.restore_spare_cursor(cp.next_spare);
    session.frame_rng = StdRng::restore_state(frame_rng);
    Ok(ContinuousAdapter::restore(engine, session, cfg, &cp.adapter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::AdaptConfig;
    use crate::pipeline::SystemConfig;
    use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
    use akg_kg::AnomalyClass;

    fn system(seed: u64) -> MissionSystem {
        MissionSystem::build(
            &[AnomalyClass::Stealing],
            &SystemConfig { seed, ..SystemConfig::default() },
        )
    }

    fn sample_score(sys: &mut MissionSystem) -> f32 {
        sys.engine.model.set_train(false);
        let frame = akg_data::Frame {
            concepts: vec![("grab".into(), 1.0), ("person".into(), 0.6)],
            label: None,
        };
        let emb = sys.embed_frame(&frame);
        let w = sys.engine.model.config().window;
        sys.score_window(&vec![emb; w])
    }

    #[test]
    fn round_trip_restores_behaviour() {
        let mut original = system(3);
        let state = save_state(&original);
        // perturb the original's parameters, then restore
        for p in original.engine.model.params() {
            p.update_data(|d| {
                for v in d.iter_mut() {
                    *v += 0.5;
                }
            });
        }
        original.session.table.param().update_data(|d| {
            for v in d.iter_mut() {
                *v -= 0.25;
            }
        });
        let perturbed_state = save_state(&original);
        assert_ne!(perturbed_state.model_params, state.model_params);
        load_state(&mut original, &state).unwrap();
        let restored = save_state(&original);
        assert_eq!(restored.model_params, state.model_params);
        assert_eq!(restored.token_table, state.token_table);
    }

    #[test]
    fn json_round_trip_preserves_scores() {
        let mut sys = system(4);
        let before = sample_score(&mut sys);
        let json = save_state_json(&sys).unwrap();
        // a freshly built twin (same config) restores to identical behaviour
        let mut twin = system(4);
        load_state_json(&mut twin, &json).unwrap();
        let a = sample_score(&mut twin);
        // the saved frame-RNG position means the twin continues *after* the
        // original's sample draw — so it must NOT equal `before` (one draw
        // later) but a second restored twin must agree exactly
        let mut sys2 = system(4);
        load_state_json(&mut sys2, &json).unwrap();
        let b = sample_score(&mut sys2);
        assert_eq!(a, b, "restored twins disagree");
        let _ = before;
    }

    #[test]
    fn restored_rng_continues_not_restarts() {
        let mut sys = system(7);
        // advance the stream RNG, then checkpoint
        let _ = sample_score(&mut sys);
        let json = save_state_json(&sys).unwrap();
        let next_original = sample_score(&mut sys);
        let mut twin = system(7);
        load_state_json(&mut twin, &json).unwrap();
        let next_restored = sample_score(&mut twin);
        assert_eq!(next_original, next_restored, "restored frame RNG did not continue the stream");
    }

    #[test]
    fn load_then_continue_matches_uninterrupted_run() {
        // The regression the multi-stream refactor demands: checkpoint a
        // deployment mid-adaptation, restore it into a fresh twin, and the
        // twin's subsequent scores (and adaptation decisions) must be
        // identical to the uninterrupted original's.
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(31),
        );
        let cfg = AdaptConfig {
            n_window: 24,
            lag: 12,
            interval: 8,
            min_k: 1,
            max_k: 4,
            ..AdaptConfig::default()
        };
        let mut sys = system(11);
        let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 13);
        for _ in 0..40 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        let state = save_state_with_adapter(&sys, &adapter);
        assert!(state.session.adapter.is_some());
        // JSON round-trip to prove the whole checkpoint serializes
        let json = serde_json::to_string(&state).unwrap();
        let state: SystemState = serde_json::from_str(&json).unwrap();

        let mut twin = system(11);
        load_state(&mut twin, &state).unwrap();
        let mut twin_adapter = ContinuousAdapter::restore(
            &twin.engine,
            &mut twin.session,
            cfg,
            state.session.adapter.as_ref().unwrap(),
        );
        assert_eq!(twin_adapter.observed(), adapter.observed());

        // continue both on the identical remaining stream
        let mut twin_stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 13);
        let _ = twin_stream.next_batch(40); // fast-forward past the checkpoint
        for i in 0..40 {
            let (f1, _) = stream.next_frame();
            let (f2, _) = twin_stream.next_frame();
            assert_eq!(f1, f2, "streams out of sync at {i}");
            let s1 = adapter.observe(&mut sys, &f1);
            let s2 = twin_adapter.observe(&mut twin, &f2);
            assert_eq!(s1, s2, "restored run diverged at frame {i}");
        }
        assert_eq!(adapter.replacements(), twin_adapter.replacements());
        assert_eq!(
            sys.session.table.param().to_vec(),
            twin.session.table.param().to_vec(),
            "restored table diverged after continuation"
        );
    }

    #[test]
    fn session_checkpoint_resumes_bit_identically() {
        // The recovery primitive the sharded supervisor rests on: checkpoint
        // a mid-adaptation session, restore it into a fresh session of an
        // identically built engine, and the continuation must match the
        // uninterrupted run bit for bit.
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(31),
        );
        let cfg = AdaptConfig {
            n_window: 24,
            lag: 12,
            interval: 8,
            min_k: 1,
            max_k: 4,
            ..AdaptConfig::default()
        };
        let mut sys = system(11);
        let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 13);
        for _ in 0..40 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        let cp = checkpoint_session(&sys.session, &adapter);
        // Serialized bytes must be deterministic (node-token maps sorted) —
        // two captures of the same state are byte-identical.
        assert_eq!(
            serde_json::to_string(&cp).unwrap(),
            serde_json::to_string(&checkpoint_session(&sys.session, &adapter)).unwrap(),
            "session checkpoint serialization is not byte-deterministic"
        );

        let mut twin = system(11);
        let mut twin_adapter = restore_session(&twin.engine, &mut twin.session, cfg, &cp).unwrap();
        assert_eq!(twin_adapter.observed(), adapter.observed());

        let mut twin_stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 13);
        let _ = twin_stream.next_batch(40); // fast-forward past the checkpoint
        for i in 0..40 {
            let (f1, _) = stream.next_frame();
            let (f2, _) = twin_stream.next_frame();
            let s1 = adapter.observe(&mut sys, &f1);
            let s2 = twin_adapter.observe(&mut twin, &f2);
            assert_eq!(s1, s2, "restored session diverged at frame {i}");
        }
        assert_eq!(adapter.replacements(), twin_adapter.replacements());
        assert_eq!(
            sys.session.table.param().to_vec(),
            twin.session.table.param().to_vec(),
            "restored session table diverged after continuation"
        );
    }

    #[test]
    fn restore_session_rejects_corrupt_checkpoint_without_mutating() {
        let mut sys = system(12);
        let adapter = ContinuousAdapter::new(&mut sys, AdaptConfig::default());
        let cp = checkpoint_session(&sys.session, &adapter);
        let cfg = *adapter.config();

        let mut twin = system(12);
        let untouched = twin.session.table.param().to_vec();

        let mut bad = cp.clone();
        bad.frame_rng = vec![1, 2, 3];
        assert!(restore_session(&twin.engine, &mut twin.session, cfg, &bad).is_err());

        let mut bad = cp.clone();
        bad.frame_rng = vec![0, 0, 0, 0];
        assert!(restore_session(&twin.engine, &mut twin.session, cfg, &bad).is_err());

        let mut bad = cp.clone();
        bad.adapter.rng = vec![7];
        assert!(restore_session(&twin.engine, &mut twin.session, cfg, &bad).is_err());

        let mut bad = cp.clone();
        bad.token_table.truncate(3);
        assert!(restore_session(&twin.engine, &mut twin.session, cfg, &bad).is_err());

        let mut bad = cp.clone();
        bad.kgs[0] = "{broken".to_string();
        assert!(restore_session(&twin.engine, &mut twin.session, cfg, &bad).is_err());

        assert_eq!(
            twin.session.table.param().to_vec(),
            untouched,
            "a rejected checkpoint must leave the session untouched"
        );
        // and the pristine checkpoint still restores fine afterwards
        assert!(restore_session(&twin.engine, &mut twin.session, cfg, &cp).is_ok());
    }

    #[test]
    fn load_rejects_mission_mismatch() {
        let sys = system(5);
        let state = save_state(&sys);
        let mut other = MissionSystem::build(
            &[AnomalyClass::Explosion],
            &SystemConfig { seed: 5, ..SystemConfig::default() },
        );
        assert!(load_state(&mut other, &state).is_err());
    }

    #[test]
    fn load_rejects_corrupt_kg() {
        let sys = system(6);
        let mut state = save_state(&sys);
        state.kgs[0] = "{not valid json".to_string();
        let mut twin = system(6);
        assert!(load_state(&mut twin, &state).is_err());
    }

    #[test]
    fn load_rejects_malformed_rng() {
        let sys = system(8);
        let mut state = save_state(&sys);
        state.session.frame_rng = vec![1, 2, 3];
        let mut twin = system(8);
        assert!(load_state(&mut twin, &state).is_err());
        state.session.frame_rng = vec![0, 0, 0, 0];
        assert!(load_state(&mut twin, &state).is_err());
    }

    #[test]
    fn load_rejects_malformed_adapter_rng() {
        let mut sys = system(9);
        let mut adapter = ContinuousAdapter::new(&mut sys, AdaptConfig::default());
        let mut state = save_state_with_adapter(&sys, &adapter);
        let _ = &mut adapter;
        state.session.adapter.as_mut().unwrap().rng = vec![1, 2];
        let mut twin = system(9);
        assert!(load_state(&mut twin, &state).is_err(), "short adapter RNG accepted");
        state.session.adapter.as_mut().unwrap().rng = vec![0, 0, 0, 0];
        assert!(load_state(&mut twin, &state).is_err(), "all-zero adapter RNG accepted");
    }
}
