//! # akg-core
//!
//! The paper's contribution: the lightweight hierarchical-GNN decision model
//! over mission-specific knowledge graphs, and — the headline — **continuous
//! KG adaptive learning on edge devices** (DATE 2025,
//! "Continuous GNN-based Anomaly Detection on Edge using Efficient Adaptive
//! Knowledge Graph Learning").
//!
//! Pipeline (paper Fig. 2):
//!
//! - **(A)** mission-specific KG generation — [`akg_kg`] with the synthetic
//!   oracle,
//! - **(B)** decision-model training — [`model`], [`loss`], [`train`],
//! - **(C)** deployment + continuous adaptation — [`adapt`]: top-`K`
//!   pseudo-anomalies with `K = |Δm| · N`, token-embedding-only updates, and
//!   the Fig. 4 prune/create rule; [`retrieval`] decodes the adapted
//!   embeddings back to words.
//!
//! ## Quick start
//!
//! ```
//! use akg_core::pipeline::{MissionSystem, SystemConfig};
//! use akg_kg::AnomalyClass;
//! use akg_tensor::nn::Module;
//!
//! let mut system = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
//! let frame = akg_data::Frame { concepts: vec![("walking".into(), 1.0)], label: None };
//! let embedding = system.embed_frame(&frame);
//! let window = vec![embedding; system.engine.model.config().window];
//! let score = system.score_window(&window);
//! assert!((0.0..=1.0).contains(&score));
//! ```
//!
//! For multi-stream serving, build the [`engine::Engine`] directly and give
//! every stream its own [`engine::Session`] (see the `akg-runtime` crate).

#![warn(missing_docs)]

pub mod adapt;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod loss;
pub mod model;
pub mod persist;
pub mod pipeline;
pub mod retrieval;
pub mod tokenize;
pub mod train;

pub use adapt::{AdaptConfig, AdaptEvent, ContinuousAdapter};
pub use config::{ModelConfig, TrainConfig};
pub use engine::{CowVec, Engine, Session};
pub use experiment::{
    run_retrieval_drift, run_trend_shift, RetrievalDriftParams, RetrievalDriftResult,
    TrendShiftCurve, TrendShiftParams, TrendShiftResult,
};
pub use model::{DecisionModel, HierarchicalGnn, KgLayout, WindowBatchItem};
pub use persist::{
    checkpoint_session, load_state, load_state_json, restore_session, save_state, save_state_json,
    SessionCheckpoint, SystemState,
};
pub use pipeline::{MissionSystem, SystemConfig};
pub use retrieval::{InterpretableRetrieval, RetrievedWord};
pub use tokenize::{TokenTable, TokenizedKg};
pub use train::{train_decision_model, TrainReport};
