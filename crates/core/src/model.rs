//! The lightweight GNN-based decision model (paper Sec. III-C): per-KG
//! hierarchical GNN (Eqs. 1–4), concatenated reasoning embeddings, the
//! short-term temporal transformer, and the linear+softmax decision head
//! (Eq. 5).

use crate::config::ModelConfig;
use crate::tokenize::{TokenTable, TokenizedKg};
use akg_kg::{NodeId, NodeKind};
use akg_tensor::inference as inf;
use akg_tensor::nn::attention::TransformerEncoder;
use akg_tensor::nn::norm::BatchNorm1d;
use akg_tensor::nn::{Linear, Module};
use akg_tensor::{Precision, Tensor, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A row-indexed execution plan for one KG: node-id → row mapping and the
/// per-level gather/scatter indices the GNN layers need. Rebuilt whenever
/// adaptation changes the KG structure.
#[derive(Debug, Clone)]
pub struct KgLayout {
    /// Row order (row index → node id).
    pub rows: Vec<NodeId>,
    /// Inverse mapping.
    pub row_of: HashMap<NodeId, usize>,
    /// Sensor node's row.
    pub sensor_row: usize,
    /// Embedding node's row.
    pub embedding_row: usize,
    /// One plan per hierarchical message-passing step (level 1..=d+1).
    pub levels: Vec<LevelPlan>,
}

/// Gather/scatter plan for the edges into one level.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// Destination level.
    pub level: usize,
    /// Edge source rows.
    pub srcs: Vec<usize>,
    /// Edge destination rows.
    pub dsts: Vec<usize>,
    /// Per-row `1 / indegree` for rows at this level (0 elsewhere) — the
    /// mean-aggregation denominator of Eq. 3.
    pub inv_counts: Vec<f32>,
    /// Per-row passthrough mask: 1 for rows *not* at this level (their
    /// embeddings are preserved), 0 for receiving rows.
    pub keep_mask: Vec<f32>,
}

impl KgLayout {
    /// Builds the plan from a tokenized KG.
    ///
    /// # Panics
    ///
    /// Panics if the KG has no sensor/embedding node (call
    /// `attach_terminals` first).
    pub fn new(tkg: &TokenizedKg) -> Self {
        let kg = &tkg.kg;
        let sensor = kg.sensor().expect("KG must have a sensor node");
        let embedding = kg.embedding_node().expect("KG must have an embedding node");
        let mut rows: Vec<NodeId> = kg.nodes().map(|n| n.id).collect();
        rows.sort();
        let row_of: HashMap<NodeId, usize> =
            rows.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let n_rows = rows.len();
        let mut levels = Vec::new();
        for level in 1..=kg.depth() + 1 {
            let edges = kg.edges_into_level(level);
            let mut srcs = Vec::with_capacity(edges.len());
            let mut dsts = Vec::with_capacity(edges.len());
            let mut counts = vec![0usize; n_rows];
            for (s, d) in edges {
                srcs.push(row_of[&s]);
                dsts.push(row_of[&d]);
                counts[row_of[&d]] += 1;
            }
            let mut inv_counts = vec![0.0f32; n_rows];
            let mut keep_mask = vec![1.0f32; n_rows];
            for id in kg.node_ids_at_level(level) {
                let r = row_of[&id];
                keep_mask[r] = 0.0;
                if counts[r] > 0 {
                    inv_counts[r] = 1.0 / counts[r] as f32;
                }
            }
            levels.push(LevelPlan { level, srcs, dsts, inv_counts, keep_mask });
        }
        KgLayout {
            sensor_row: row_of[&sensor],
            embedding_row: row_of[&embedding],
            rows,
            row_of,
            levels,
        }
    }

    /// Number of node rows.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// Total edge count across level plans.
    pub fn edge_count(&self) -> usize {
        self.levels.iter().map(|l| l.srcs.len()).sum()
    }
}

/// One hierarchical GNN layer's parameters: the dense sub-layer (Eq. 1) and
/// batch normalization (Eq. 4). Message passing and aggregation (Eqs. 2–3)
/// are parameter-free index operations.
#[derive(Debug)]
struct GnnLayer {
    dense: Linear,
    norm: BatchNorm1d,
}

/// The hierarchical GNN over one mission-specific KG.
///
/// Layer 0 refines the raw joint-space embeddings into the GNN width; layers
/// `1..=d+1` propagate reasoning along the hierarchy — `d + 2` parametrized
/// layers in total, as in the paper.
#[derive(Debug)]
pub struct HierarchicalGnn {
    input_layer: GnnLayer,
    message_layers: Vec<GnnLayer>,
    gnn_dim: usize,
}

/// The shared message-passing combine of Eqs. 2–3: gather source/destination
/// rows of `h`, multiply them into edge messages, scatter-add the messages
/// onto their destination rows (the one tensor-level
/// [`Tensor::scatter_add_rows`] entry point both the single-window and the
/// batched forward go through — so one kernel serves both), average by
/// in-degree, and blend with the passthrough rows.
///
/// `srcs`/`dsts` index rows of `h`; `inv_counts`/`keep_mask` are per-row
/// coefficients over all `out_rows` rows (the batched caller passes the
/// block-diagonal concatenation of its replicas' plans).
fn propagate_messages(
    h: &Tensor,
    srcs: &[usize],
    dsts: &[usize],
    inv_counts: &[f32],
    keep_mask: &[f32],
    out_rows: usize,
) -> Tensor {
    let src = h.index_select_rows(srcs);
    let dst = h.index_select_rows(dsts);
    let messages = src.mul(&dst); // Eq. 2: X_s ⊙ X_d
    let summed = messages.scatter_add_rows(dsts, out_rows);
    let averaged = summed.scale_rows(inv_counts); // Eq. 3 mean
    let kept = h.scale_rows(keep_mask); // passthrough 1(d ∉ V(l))
    kept.add(&averaged)
}

impl HierarchicalGnn {
    /// Creates the GNN for a KG of `depth` reasoning levels.
    ///
    /// The per-layer BatchNorm normalizes across the graph's node rows; each
    /// forward pass is one graph, so the layers use per-graph (instance)
    /// statistics in eval mode too — switching to global running statistics
    /// would change the trained function.
    pub fn new(depth: usize, embed_dim: usize, gnn_dim: usize, rng: &mut StdRng) -> Self {
        let make_norm = || {
            let mut n = BatchNorm1d::new(gnn_dim);
            n.set_track_running_stats(false);
            n
        };
        let input_layer =
            GnnLayer { dense: Linear::new(embed_dim, gnn_dim, rng), norm: make_norm() };
        let message_layers = (0..=depth)
            .map(|_| GnnLayer { dense: Linear::new(gnn_dim, gnn_dim, rng), norm: make_norm() })
            .collect();
        HierarchicalGnn { input_layer, message_layers, gnn_dim }
    }

    /// GNN width `D_l`.
    pub fn gnn_dim(&self) -> usize {
        self.gnn_dim
    }

    /// Number of parametrized layers (`d + 2`).
    pub fn layer_count(&self) -> usize {
        1 + self.message_layers.len()
    }

    /// Visits every dense sub-layer: the input layer first, then the
    /// message layers in order.
    fn visit_linears(&self, f: &mut dyn FnMut(&Linear)) {
        f(&self.input_layer.dense);
        for l in &self.message_layers {
            f(&l.dense);
        }
    }

    /// Mutable form of [`HierarchicalGnn::visit_linears`], same order.
    fn visit_linears_mut(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        f(&mut self.input_layer.dense);
        for l in &mut self.message_layers {
            f(&mut l.dense);
        }
    }

    /// Runs the hierarchical forward pass: `x0` is the `[|V|, embed_dim]`
    /// node-feature matrix (sensor row = frame embedding); returns the
    /// embedding node's final vector `[gnn_dim]`.
    ///
    /// Takes `&self`: the per-layer batch norms always normalize with the
    /// current graph's node statistics (instance mode — see
    /// [`HierarchicalGnn::new`]), so no layer state is ever read *or*
    /// written, and one trained GNN can serve any number of streams.
    ///
    /// # Panics
    ///
    /// Panics if the layout's level-plan count mismatches the layer count.
    pub fn forward(&self, layout: &KgLayout, x0: &Tensor) -> Tensor {
        assert_eq!(
            layout.levels.len(),
            self.message_layers.len(),
            "layout depth {} != model depth {}",
            layout.levels.len(),
            self.message_layers.len()
        );
        // layer 0: dense + norm + activation on every node
        let mut x = {
            let h = self.input_layer.dense.forward(x0);
            self.input_layer.norm.forward_instance(&h).elu()
        };
        // layers 1..=d+1: hierarchical message passing
        for (layer, plan) in self.message_layers.iter().zip(&layout.levels) {
            let h = layer.dense.forward(&x); // Eq. 1
            let combined = if plan.srcs.is_empty() {
                h
            } else {
                propagate_messages(
                    &h,
                    &plan.srcs,
                    &plan.dsts,
                    &plan.inv_counts,
                    &plan.keep_mask,
                    layout.node_count(),
                )
            };
            x = layer.norm.forward_instance(&combined).elu(); // Eq. 4
        }
        x.slice_rows(layout.embedding_row, layout.embedding_row + 1).flatten()
    }

    /// Batched forward over `layouts.len()` independent graph replicas
    /// stacked into one `[B·|V|, embed_dim]` node-feature matrix (replica
    /// `b` occupies rows `b·|V| .. (b+1)·|V|`). Every dense sub-layer runs
    /// as **one** matmul over all replicas instead of `B` small ones; batch
    /// normalization uses per-replica statistics
    /// ([`akg_tensor::nn::norm::BatchNorm1d::forward_instance_grouped`]), so
    /// each replica's output is bit-identical to running
    /// [`HierarchicalGnn::forward`] on it alone. Returns the `[B, gnn_dim]`
    /// matrix of embedding-node outputs.
    ///
    /// Replicas may carry *different* layouts (streams whose KGs have
    /// structurally adapted apart) as long as node counts and level counts
    /// agree — always true for sessions of one engine, since structural
    /// adaptation replaces nodes one-for-one.
    ///
    /// This is an inference path: the result is detached from the autograd
    /// graph (adaptation gradients flow through the single-window path).
    ///
    /// # Panics
    ///
    /// Panics if `layouts` is empty, node/level counts disagree across
    /// replicas or with the model, or `x0` is not `[B·|V|, _]`.
    pub fn forward_batch(&self, layouts: &[&KgLayout], x0: &Tensor) -> Tensor {
        assert!(!layouts.is_empty(), "forward_batch: no replicas");
        let b = layouts.len();
        let v = layouts[0].node_count();
        for layout in layouts {
            assert_eq!(layout.node_count(), v, "forward_batch: node-count mismatch");
            assert_eq!(
                layout.levels.len(),
                self.message_layers.len(),
                "layout depth {} != model depth {}",
                layout.levels.len(),
                self.message_layers.len()
            );
        }
        assert_eq!(x0.shape()[0], b * v, "forward_batch: x0 must have B·|V| rows");
        let mut x = {
            let h = self.input_layer.dense.forward(x0);
            self.input_layer.norm.forward_instance_grouped(&h, b).elu()
        };
        let mut srcs: Vec<usize> = Vec::new();
        let mut dsts: Vec<usize> = Vec::new();
        let mut inv_counts: Vec<f32> = Vec::new();
        let mut keep_mask: Vec<f32> = Vec::new();
        for (li, layer) in self.message_layers.iter().enumerate() {
            let h = layer.dense.forward(&x);
            srcs.clear();
            dsts.clear();
            inv_counts.clear();
            keep_mask.clear();
            for (bi, layout) in layouts.iter().enumerate() {
                let plan = &layout.levels[li];
                let off = bi * v;
                if plan.srcs.is_empty() {
                    // An edgeless level passes `h` through unchanged on the
                    // single path; all-ones keep + zero averages reproduce
                    // that for this replica's rows.
                    inv_counts.extend(std::iter::repeat_n(0.0, v));
                    keep_mask.extend(std::iter::repeat_n(1.0, v));
                } else {
                    srcs.extend(plan.srcs.iter().map(|&s| s + off));
                    dsts.extend(plan.dsts.iter().map(|&d| d + off));
                    inv_counts.extend_from_slice(&plan.inv_counts);
                    keep_mask.extend_from_slice(&plan.keep_mask);
                }
            }
            let combined = if srcs.is_empty() {
                h
            } else {
                propagate_messages(&h, &srcs, &dsts, &inv_counts, &keep_mask, b * v)
            };
            x = layer.norm.forward_instance_grouped(&combined, b).elu();
        }
        let embedding_rows: Vec<usize> =
            layouts.iter().enumerate().map(|(bi, l)| bi * v + l.embedding_row).collect();
        x.index_select_rows(&embedding_rows)
    }

    /// Inference-plane form of [`HierarchicalGnn::forward_batch`]: the same
    /// stacked forward over raw slices and workspace-leased buffers — one
    /// dense matmul per layer across all replicas, per-replica grouped
    /// normalization, the same gather ⊙ gather → scatter-add → average →
    /// passthrough message combine — with zero `Rc`/`RefCell` and zero
    /// steady-state allocation. **Bit-identical per backend** to the
    /// autograd path: every op either shares the autograd op's kernel or
    /// replicates its exact accumulation order (property-tested in
    /// `tests/infer_equivalence.rs`).
    ///
    /// `x0` is the stacked `[B·|V|, embed_dim]` node-feature matrix; `out`
    /// receives the `[B, gnn_dim]` embedding-node outputs.
    ///
    /// # Panics
    ///
    /// Panics under [`HierarchicalGnn::forward_batch`]'s conditions, or if
    /// `out` is not `B × gnn_dim`.
    pub fn forward_batch_infer(
        &self,
        layouts: &[&KgLayout],
        x0: &[f32],
        out: &mut [f32],
        ws: &mut Workspace,
    ) {
        assert!(!layouts.is_empty(), "forward_batch_infer: no replicas");
        let b = layouts.len();
        let v = layouts[0].node_count();
        for layout in layouts {
            assert_eq!(layout.node_count(), v, "forward_batch_infer: node-count mismatch");
            assert_eq!(
                layout.levels.len(),
                self.message_layers.len(),
                "layout depth {} != model depth {}",
                layout.levels.len(),
                self.message_layers.len()
            );
        }
        let rows = b * v;
        let gd = self.gnn_dim;
        assert_eq!(
            x0.len(),
            rows * self.input_layer.dense.in_features(),
            "forward_batch_infer: x0 must be B·|V| × embed_dim"
        );
        assert_eq!(out.len(), b * gd, "forward_batch_infer: out must be B × gnn_dim");
        let mut h = ws.lease(rows * gd);
        let mut x = ws.lease(rows * gd);
        self.input_layer.dense.forward_infer(x0, rows, &mut h, ws);
        self.input_layer.norm.forward_instance_grouped_infer(&h, b, &mut x, ws);
        inf::elu_inplace(&mut x);
        let mut srcs = ws.lease_idx();
        let mut dsts = ws.lease_idx();
        let mut inv_counts = ws.lease(rows);
        let mut keep_mask = ws.lease(rows);
        for (li, layer) in self.message_layers.iter().enumerate() {
            layer.dense.forward_infer(&x, rows, &mut h, ws); // Eq. 1
            srcs.clear();
            dsts.clear();
            for (bi, layout) in layouts.iter().enumerate() {
                let plan = &layout.levels[li];
                let off = bi * v;
                if plan.srcs.is_empty() {
                    // Edgeless level: all-ones keep + zero averages pass `h`
                    // through unchanged for this replica's rows.
                    inv_counts[off..off + v].fill(0.0);
                    keep_mask[off..off + v].fill(1.0);
                } else {
                    srcs.extend(plan.srcs.iter().map(|&s| s + off));
                    dsts.extend(plan.dsts.iter().map(|&d| d + off));
                    inv_counts[off..off + v].copy_from_slice(&plan.inv_counts);
                    keep_mask[off..off + v].copy_from_slice(&plan.keep_mask);
                }
            }
            if !srcs.is_empty() {
                // The raw `propagate_messages`: gather both endpoints,
                // multiply into edge messages, scatter-add, average, blend
                // with the passthrough rows — the combined result lands in
                // `h`, exactly where the autograd path's `combined` goes.
                let e = srcs.len();
                let mut src_rows = ws.lease(e * gd);
                let mut dst_rows = ws.lease(e * gd);
                let mut messages = ws.lease(e * gd);
                inf::gather_rows_into(&mut src_rows, &h, gd, &srcs);
                inf::gather_rows_into(&mut dst_rows, &h, gd, &dsts);
                inf::hadamard_into(&mut messages, &src_rows, &dst_rows); // Eq. 2
                let mut summed = ws.lease(rows * gd);
                inf::scatter_add_rows_into(&mut summed, &messages, gd, &dsts);
                inf::scale_rows_inplace(&mut summed, &inv_counts, gd); // Eq. 3 mean
                inf::scale_rows_inplace(&mut h, &keep_mask, gd); // passthrough
                inf::add_assign(&mut h, &summed);
                ws.release(src_rows);
                ws.release(dst_rows);
                ws.release(messages);
                ws.release(summed);
            }
            layer.norm.forward_instance_grouped_infer(&h, b, &mut x, ws); // Eq. 4
            inf::elu_inplace(&mut x);
        }
        for (bi, layout) in layouts.iter().enumerate() {
            let r = bi * v + layout.embedding_row;
            out[bi * gd..(bi + 1) * gd].copy_from_slice(&x[r * gd..(r + 1) * gd]);
        }
        ws.release(h);
        ws.release(x);
        ws.release(inv_counts);
        ws.release(keep_mask);
        ws.release_idx(srcs);
        ws.release_idx(dsts);
    }
}

impl Module for HierarchicalGnn {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.input_layer.dense.params();
        p.extend(self.input_layer.norm.params());
        for l in &self.message_layers {
            p.extend(l.dense.params());
            p.extend(l.norm.params());
        }
        p
    }

    fn set_train(&mut self, train: bool) {
        self.input_layer.norm.set_train(train);
        for l in &mut self.message_layers {
            l.norm.set_train(train);
        }
    }
}

/// The full decision model: one hierarchical GNN per mission KG, the
/// temporal transformer, and the decision head.
#[derive(Debug)]
pub struct DecisionModel {
    gnns: Vec<HierarchicalGnn>,
    temporal: TransformerEncoder,
    head: Linear,
    config: ModelConfig,
    n_missions: usize,
    precision: Precision,
}

impl DecisionModel {
    /// Builds the model for `depths[i]`-level mission KGs.
    ///
    /// # Panics
    ///
    /// Panics if `depths` is empty.
    pub fn new(depths: &[usize], config: &ModelConfig) -> Self {
        assert!(!depths.is_empty(), "DecisionModel: need at least one mission KG");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let gnns: Vec<HierarchicalGnn> = depths
            .iter()
            .map(|&d| HierarchicalGnn::new(d, config.embed_dim, config.gnn_dim, &mut rng))
            .collect();
        let d = depths.len() * config.gnn_dim;
        let temporal = TransformerEncoder::new(
            d,
            config.temporal_inner,
            config.heads,
            config.temporal_layers,
            &mut rng,
        );
        let head = Linear::new(d, depths.len() + 1, &mut rng);
        DecisionModel {
            gnns,
            temporal,
            head,
            config: *config,
            n_missions: depths.len(),
            precision: Precision::F32,
        }
    }

    /// The serving-plane precision the model's weights are currently held
    /// in. [`Precision::Int8`] means every dense weight matrix (GNN dense
    /// sub-layers, transformer projections, decision head) carries a
    /// pre-quantized int8 twin that the inference plane dispatches to;
    /// biases, norms, and the autograd plane stay f32 either way.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Switches the serving-plane precision and (re)builds or clears the
    /// quantized weight twins accordingly. The autograd plane is untouched
    /// — training and adaptation always read the f32 masters.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.refresh_quantized();
    }

    /// Re-derives the quantized weight twins from the current f32 masters
    /// (or drops them under [`Precision::F32`]). Call after any pass that
    /// mutates model weights — e.g. at the end of offline training — so the
    /// int8 plane never serves stale codes.
    pub fn refresh_quantized(&mut self) {
        let quantize = self.precision == Precision::Int8;
        self.visit_linears_mut(&mut |lin: &mut Linear| {
            if quantize {
                lin.quantize_int8();
            } else {
                lin.clear_int8();
            }
        });
    }

    /// Visits every dense layer of the model: each GNN's layers in mission
    /// order, then the temporal transformer's projections, then the head.
    fn visit_linears(&self, f: &mut dyn FnMut(&Linear)) {
        for g in &self.gnns {
            g.visit_linears(f);
        }
        self.temporal.visit_linears(f);
        f(&self.head);
    }

    /// Mutable form of [`DecisionModel::visit_linears`], same order.
    fn visit_linears_mut(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        for g in &mut self.gnns {
            g.visit_linears_mut(f);
        }
        self.temporal.visit_linears_mut(f);
        f(&mut self.head);
    }

    /// Bytes the serving plane's dense weight matrices occupy at the current
    /// precision (int8 codes + per-row scales when quantized, f32 otherwise).
    /// Biases and norm parameters are excluded — they are identical across
    /// precisions.
    pub fn weight_matrix_bytes(&self) -> usize {
        let mut total = 0usize;
        self.visit_linears(&mut |lin: &Linear| total += lin.weight_matrix_bytes());
        total
    }

    /// [`DecisionModel::weight_matrix_bytes`] as it would be at f32.
    pub fn weight_matrix_bytes_f32(&self) -> usize {
        let mut total = 0usize;
        self.visit_linears(&mut |lin: &Linear| total += lin.weight_matrix_bytes_f32());
        total
    }

    /// [`DecisionModel::weight_matrix_bytes`] as it would be at int8.
    pub fn weight_matrix_bytes_int8(&self) -> usize {
        let mut total = 0usize;
        self.visit_linears(&mut |lin: &Linear| total += lin.weight_matrix_bytes_int8());
        total
    }

    /// Number of mission KGs `n`.
    pub fn n_missions(&self) -> usize {
        self.n_missions
    }

    /// Reasoning embedding width `D = n · gnn_dim`.
    pub fn reasoning_dim(&self) -> usize {
        self.n_missions * self.config.gnn_dim
    }

    /// Decision classes (`n + 1`: normal + one per mission anomaly).
    pub fn n_classes(&self) -> usize {
        self.n_missions + 1
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Builds the `[|V|, embed_dim]` node-feature matrix for one KG: the
    /// sensor row carries the frame embedding, reasoning rows the (mean)
    /// token embeddings, and the embedding-node row zeros.
    pub fn node_features(
        &self,
        tkg: &TokenizedKg,
        layout: &KgLayout,
        table: &TokenTable,
        frame_embedding: &[f32],
    ) -> Tensor {
        let dim = self.config.embed_dim;
        let mut rows: Vec<Tensor> = Vec::with_capacity(layout.node_count());
        for &id in &layout.rows {
            let node = tkg.kg.node(id).expect("layout row refers to live node");
            match node.kind {
                NodeKind::Sensor => {
                    rows.push(Tensor::from_vec(frame_embedding.to_vec(), &[1, dim]));
                }
                NodeKind::Embedding => {
                    rows.push(Tensor::from_vec(tkg.mission_embedding.clone(), &[1, dim]));
                }
                NodeKind::Reasoning => {
                    let tokens = tkg.tokens_of(id).expect("reasoning node tokenized");
                    rows.push(table.node_embedding(tokens));
                }
            }
        }
        Tensor::concat_rows(&rows)
    }

    /// Computes the per-frame reasoning embedding `f_t` (concatenation of
    /// every KG's embedding-node output) for one frame embedding.
    ///
    /// # Panics
    ///
    /// Panics if the number of KGs mismatches the model.
    pub fn reasoning_embedding(
        &self,
        kgs: &[&TokenizedKg],
        layouts: &[&KgLayout],
        table: &TokenTable,
        frame_embedding: &[f32],
    ) -> Tensor {
        assert_eq!(kgs.len(), self.gnns.len(), "KG count mismatch");
        assert_eq!(layouts.len(), self.gnns.len(), "layout count mismatch");
        let mut parts = Vec::with_capacity(self.gnns.len());
        for i in 0..self.gnns.len() {
            let x0 = self.node_features(kgs[i], layouts[i], table, frame_embedding);
            parts.push(self.gnns[i].forward(layouts[i], &x0));
        }
        Tensor::concat_vecs(&parts)
    }

    /// Applies the temporal model to a window of per-frame reasoning
    /// embeddings (each `[D]`), returning `f'_t` `[D]` for the last frame.
    ///
    /// # Panics
    ///
    /// Panics if `window` is empty.
    pub fn temporal_embedding(&self, window: &[Tensor]) -> Tensor {
        assert!(!window.is_empty(), "temporal_embedding: empty window");
        let d = self.reasoning_dim();
        let rows: Vec<Tensor> = window.iter().map(|f| f.reshape(&[1, d])).collect();
        let seq = Tensor::concat_rows(&rows);
        self.temporal.forward_last(&seq)
    }

    /// Decision logits `[1, n + 1]` from `f'_t` (Eq. 5 without the softmax;
    /// apply [`Tensor::softmax_rows`] for probabilities).
    pub fn logits(&self, temporal_embedding: &Tensor) -> Tensor {
        let d = self.reasoning_dim();
        self.head.forward(&temporal_embedding.reshape(&[1, d]))
    }

    /// Full forward for one window: probabilities `[n + 1]` for the last
    /// frame of the window.
    pub fn predict(
        &self,
        kgs: &[&TokenizedKg],
        layouts: &[&KgLayout],
        table: &TokenTable,
        frame_window: &[Vec<f32>],
    ) -> Vec<f32> {
        let embeddings: Vec<Tensor> =
            frame_window.iter().map(|f| self.reasoning_embedding(kgs, layouts, table, f)).collect();
        let temporal = self.temporal_embedding(&embeddings);
        self.logits(&temporal).softmax_rows().to_vec()
    }

    /// The anomaly score `p_A = 1 − p_N` for one window.
    pub fn anomaly_score(
        &self,
        kgs: &[&TokenizedKg],
        layouts: &[&KgLayout],
        table: &TokenTable,
        frame_window: &[Vec<f32>],
    ) -> f32 {
        1.0 - self.predict(kgs, layouts, table, frame_window)[0]
    }

    // ----------------------------------------------------------------
    // Batched serving path: B windows through one forward per GNN layer
    // ----------------------------------------------------------------

    /// Stacked node features for `frames.len()` replicas of one KG:
    /// `[F·|V|, embed_dim]`, replica `t` in rows `t·|V| .. (t+1)·|V|`. Row
    /// values are computed with the same arithmetic as
    /// [`DecisionModel::node_features`] (the reasoning rows via the ordered
    /// token-mean of [`TokenTable::node_embedding_mean`]), so the stacked
    /// matrix is the bit-exact concatenation of the per-frame matrices.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or a layout row refers to a dead node.
    pub fn node_features_batch(
        &self,
        tkg: &TokenizedKg,
        layout: &KgLayout,
        table: &TokenTable,
        frames: &[&[f32]],
    ) -> Tensor {
        assert!(!frames.is_empty(), "node_features_batch: no frames");
        let dim = self.config.embed_dim;
        let v = layout.node_count();
        let mut data = vec![0.0f32; frames.len() * v * dim];
        // Non-sensor rows are frame-independent: compute each once, then
        // copy into every replica (`None` marks the sensor row, which takes
        // the replica's frame embedding).
        let template: Vec<Option<Vec<f32>>> = layout
            .rows
            .iter()
            .map(|&id| {
                let node = tkg.kg.node(id).expect("layout row refers to live node");
                match node.kind {
                    NodeKind::Sensor => None,
                    NodeKind::Embedding => Some(tkg.mission_embedding.clone()),
                    NodeKind::Reasoning => {
                        let tokens = tkg.tokens_of(id).expect("reasoning node tokenized");
                        Some(table.node_embedding_mean(tokens))
                    }
                }
            })
            .collect();
        for (t, frame) in frames.iter().enumerate() {
            assert_eq!(frame.len(), dim, "node_features_batch: frame dim mismatch");
            let block = &mut data[t * v * dim..(t + 1) * v * dim];
            for (r, row) in template.iter().enumerate() {
                let out = &mut block[r * dim..(r + 1) * dim];
                out.copy_from_slice(row.as_deref().unwrap_or(frame));
            }
        }
        Tensor::from_vec(data, &[frames.len() * v, dim])
    }

    /// Per-item reasoning-embedding sequences for a cross-stream batch: each
    /// returned tensor is the item's `[window, D]` sequence of per-frame
    /// reasoning embeddings, computed with **one** stacked
    /// [`HierarchicalGnn::forward_batch`] per mission KG across all items
    /// and frames (one matmul per GNN layer instead of `B·window`).
    ///
    /// Bit-identical per item to mapping
    /// [`DecisionModel::reasoning_embedding`] over its frames.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, an item's KG/layout counts mismatch the
    /// model, or an item's window is empty.
    pub fn reasoning_embeddings_batch(&self, items: &[WindowBatchItem<'_>]) -> Vec<Tensor> {
        assert!(!items.is_empty(), "reasoning_embeddings_batch: empty batch");
        for item in items {
            assert_eq!(item.kgs.len(), self.gnns.len(), "KG count mismatch");
            assert_eq!(item.layouts.len(), self.gnns.len(), "layout count mismatch");
            assert!(!item.window.is_empty(), "reasoning_embeddings_batch: empty window");
        }
        let mut per_kg: Vec<Tensor> = Vec::with_capacity(self.gnns.len());
        for i in 0..self.gnns.len() {
            let mut parts: Vec<Tensor> = Vec::with_capacity(items.len());
            let mut layout_refs: Vec<&KgLayout> = Vec::new();
            for item in items {
                let frames: Vec<&[f32]> = item.window.iter().map(Vec::as_slice).collect();
                parts.push(self.node_features_batch(
                    &item.kgs[i],
                    &item.layouts[i],
                    item.table,
                    &frames,
                ));
                layout_refs.extend(std::iter::repeat_n(&item.layouts[i], item.window.len()));
            }
            let x0 = Tensor::concat_rows(&parts);
            per_kg.push(self.gnns[i].forward_batch(&layout_refs, &x0));
        }
        let joined = Tensor::concat_cols(&per_kg); // [Σ windows, D]
        let mut out = Vec::with_capacity(items.len());
        let mut offset = 0usize;
        for item in items {
            out.push(joined.slice_rows(offset, offset + item.window.len()));
            offset += item.window.len();
        }
        out
    }

    /// Stacks per-item temporal embeddings into `[B, D]`: applies the
    /// temporal model to each `[window, D]` sequence (attention stays
    /// per-sequence — frames of different streams must never attend to each
    /// other) and concatenates the last-frame outputs row-wise.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty.
    pub fn temporal_embedding_batch(&self, seqs: &[Tensor]) -> Tensor {
        assert!(!seqs.is_empty(), "temporal_embedding_batch: empty batch");
        let d = self.reasoning_dim();
        let rows: Vec<Tensor> =
            seqs.iter().map(|s| self.temporal.forward_last(s).reshape(&[1, d])).collect();
        Tensor::concat_rows(&rows)
    }

    /// Decision logits `[B, n + 1]` for a `[B, D]` stack of temporal
    /// embeddings — one head matmul for the whole batch. Each row is
    /// bit-identical to [`DecisionModel::logits`] on that row alone (row
    /// results of the matmul kernels are independent of the other rows).
    pub fn logits_batch(&self, temporal_embeddings: &Tensor) -> Tensor {
        self.head.forward(temporal_embeddings)
    }

    /// Batched full forward: per-item class probabilities for the last frame
    /// of each window. Bit-identical per item to [`DecisionModel::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes mismatch the model.
    pub fn predict_batch(&self, items: &[WindowBatchItem<'_>]) -> Vec<Vec<f32>> {
        let seqs = self.reasoning_embeddings_batch(items);
        let temporal = self.temporal_embedding_batch(&seqs);
        let probs = self.logits_batch(&temporal).softmax_rows().to_vec();
        let c = self.n_classes();
        probs.chunks(c).map(<[f32]>::to_vec).collect()
    }

    /// Batched anomaly scores `p_A = 1 − p_N`, one per item. Bit-identical
    /// per item to [`DecisionModel::anomaly_score`].
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes mismatch the model.
    pub fn anomaly_scores_batch(&self, items: &[WindowBatchItem<'_>]) -> Vec<f32> {
        self.predict_batch(items).iter().map(|p| 1.0 - p[0]).collect()
    }

    // ----------------------------------------------------------------
    // Inference data plane: the serving path. No autograd, no Rc/RefCell,
    // zero steady-state allocation — and bit-identical per backend to the
    // autograd plane above, which remains the training/adaptation path and
    // the equivalence oracle (tests/infer_equivalence.rs).
    // ----------------------------------------------------------------

    /// Inference-plane form of [`DecisionModel::node_features_batch`]:
    /// stacked `[F·|V|, embed_dim]` node features for `frames.len()`
    /// replicas of one KG, written into `out`. Frame-independent rows are
    /// computed once into a workspace-leased template (reasoning rows via
    /// [`TokenTable::node_embedding_mean_into`] — the same arithmetic as the
    /// autograd path) and copied per replica.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty, a frame or `out` has the wrong length,
    /// or a layout row refers to a dead node.
    pub fn node_features_batch_into(
        &self,
        tkg: &TokenizedKg,
        layout: &KgLayout,
        table: &TokenTable,
        frames: &[&[f32]],
        out: &mut [f32],
        ws: &mut Workspace,
    ) {
        assert!(!frames.is_empty(), "node_features_batch_into: no frames");
        let dim = self.config.embed_dim;
        let v = layout.node_count();
        assert_eq!(out.len(), frames.len() * v * dim, "node_features_batch_into: out size");
        let mut template = ws.lease(v * dim);
        let mut sensor_rows = ws.lease_idx();
        for (r, &id) in layout.rows.iter().enumerate() {
            let node = tkg.kg.node(id).expect("layout row refers to live node");
            let slot = &mut template[r * dim..(r + 1) * dim];
            match node.kind {
                NodeKind::Sensor => sensor_rows.push(r),
                NodeKind::Embedding => slot.copy_from_slice(&tkg.mission_embedding),
                NodeKind::Reasoning => {
                    let tokens = tkg.tokens_of(id).expect("reasoning node tokenized");
                    table.node_embedding_mean_into(tokens, slot);
                }
            }
        }
        for (t, frame) in frames.iter().enumerate() {
            assert_eq!(frame.len(), dim, "node_features_batch_into: frame dim mismatch");
            let block = &mut out[t * v * dim..(t + 1) * v * dim];
            block.copy_from_slice(&template);
            for &r in sensor_rows.iter() {
                block[r * dim..(r + 1) * dim].copy_from_slice(frame);
            }
        }
        ws.release(template);
        ws.release_idx(sensor_rows);
    }

    /// Inference-plane batched full forward: class probabilities for the
    /// last frame of each item's window, flattened `[B · (n + 1)]` into
    /// `out` (cleared first). Mirrors [`DecisionModel::predict_batch`]
    /// stage-for-stage — stacked GNN forward per mission KG, per-sequence
    /// temporal model, one head matmul, fused row softmax — and is
    /// **bit-identical per backend** to it (and therefore, via the PR 3
    /// batched-equals-single contract, to [`DecisionModel::predict`]).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, any window is empty, or shapes mismatch
    /// the model.
    pub fn predict_probs_batch_infer(
        &self,
        items: &[InferWindowItem<'_>],
        ws: &mut Workspace,
        out: &mut Vec<f32>,
    ) {
        assert!(!items.is_empty(), "predict_probs_batch_infer: empty batch");
        for item in items {
            assert_eq!(item.kgs.len(), self.gnns.len(), "KG count mismatch");
            assert_eq!(item.layouts.len(), self.gnns.len(), "layout count mismatch");
            assert!(!item.window.is_empty(), "predict_probs_batch_infer: empty window");
        }
        let total: usize = items.iter().map(|i| i.window.len()).sum();
        let d = self.reasoning_dim();
        let gd = self.config.gnn_dim;
        let dim = self.config.embed_dim;
        // Per-frame reasoning embeddings `[Σ windows, D]`, one stacked GNN
        // forward per mission KG (the column-concat of the per-KG outputs).
        let mut joined = ws.lease(total * d);
        for i in 0..self.gnns.len() {
            let v = items[0].layouts[i].node_count();
            let mut x0 = ws.lease(total * v * dim);
            let mut layout_refs: Vec<&KgLayout> = Vec::with_capacity(total);
            let mut row0 = 0usize;
            for item in items {
                let f = item.window.len();
                self.node_features_batch_into(
                    &item.kgs[i],
                    &item.layouts[i],
                    item.table,
                    item.window,
                    &mut x0[row0 * v * dim..(row0 + f) * v * dim],
                    ws,
                );
                layout_refs.extend(std::iter::repeat_n(&item.layouts[i], f));
                row0 += f;
            }
            let mut gout = ws.lease(total * gd);
            self.gnns[i].forward_batch_infer(&layout_refs, &x0, &mut gout, ws);
            for r in 0..total {
                joined[r * d + i * gd..r * d + (i + 1) * gd]
                    .copy_from_slice(&gout[r * gd..(r + 1) * gd]);
            }
            ws.release(x0);
            ws.release(gout);
        }
        // Temporal model per item (attention never crosses streams), last
        // step of each window stacked `[B, D]`.
        let b = items.len();
        let mut tstack = ws.lease(b * d);
        let mut row0 = 0usize;
        for (bi, item) in items.iter().enumerate() {
            let w = item.window.len();
            let mut seq = ws.lease(w * d);
            seq.copy_from_slice(&joined[row0 * d..(row0 + w) * d]);
            self.temporal.forward_last_infer(&mut seq, w, &mut tstack[bi * d..(bi + 1) * d], ws);
            ws.release(seq);
            row0 += w;
        }
        // Head + softmax: one matmul over the whole batch, fused row
        // softmax (scale 1, no mask) — exactly `logits_batch` +
        // `softmax_rows`.
        let c = self.n_classes();
        let mut logits = ws.lease(b * c);
        self.head.forward_infer(&tstack, b, &mut logits, ws);
        inf::softmax_rows_scaled_masked_inplace(&mut logits, b, c, 1.0, None);
        out.clear();
        out.extend_from_slice(&logits);
        ws.release(joined);
        ws.release(tstack);
        ws.release(logits);
    }

    /// Inference-plane batched anomaly scores `p_A = 1 − p_N` into `out`
    /// (cleared first), one per item — the serving entry point behind
    /// `Engine::score_windows_batch`. Bit-identical per backend to
    /// [`DecisionModel::anomaly_scores_batch`].
    ///
    /// # Panics
    ///
    /// Panics under [`DecisionModel::predict_probs_batch_infer`]'s
    /// conditions.
    pub fn anomaly_scores_batch_infer(
        &self,
        items: &[InferWindowItem<'_>],
        ws: &mut Workspace,
        out: &mut Vec<f32>,
    ) {
        let mut probs = ws.lease_vec();
        self.predict_probs_batch_infer(items, ws, &mut probs);
        let c = self.n_classes();
        out.clear();
        out.extend(probs.chunks_exact(c).map(|p| 1.0 - p[0]));
        ws.release_vec(probs);
    }

    /// Inference-plane single-window anomaly score — a batch of one through
    /// [`DecisionModel::anomaly_scores_batch_infer`]. Bit-identical per
    /// backend to [`DecisionModel::anomaly_score`] (single and batched
    /// autograd paths agree bitwise by the PR 3 contract).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or shapes mismatch the model.
    pub fn anomaly_score_infer(
        &self,
        kgs: &[TokenizedKg],
        layouts: &[KgLayout],
        table: &TokenTable,
        window: &[&[f32]],
        ws: &mut Workspace,
    ) -> f32 {
        let items = [InferWindowItem { kgs, layouts, table, window }];
        let mut out = ws.lease_vec();
        self.anomaly_scores_batch_infer(&items, ws, &mut out);
        let score = out[0];
        ws.release_vec(out);
        score
    }

    /// Inference-plane single-window class probabilities — the serving form
    /// of [`DecisionModel::predict`], written into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or shapes mismatch the model.
    pub fn predict_infer(
        &self,
        kgs: &[TokenizedKg],
        layouts: &[KgLayout],
        table: &TokenTable,
        window: &[&[f32]],
        ws: &mut Workspace,
        out: &mut Vec<f32>,
    ) {
        let items = [InferWindowItem { kgs, layouts, table, window }];
        self.predict_probs_batch_infer(&items, ws, out);
    }
}

/// One window of a cross-stream *inference-plane* serving batch: the same
/// adaptive state as [`WindowBatchItem`], but with the window as borrowed
/// frame slices so callers (rolling windows, pre-pad paths) never clone
/// embedding buffers just to score them.
#[derive(Debug, Clone, Copy)]
pub struct InferWindowItem<'a> {
    /// The stream's tokenized mission KGs.
    pub kgs: &'a [TokenizedKg],
    /// The stream's execution layouts (aligned with `kgs`).
    pub layouts: &'a [KgLayout],
    /// The stream's token-embedding table.
    pub table: &'a TokenTable,
    /// The window of frame embeddings, oldest first.
    pub window: &'a [&'a [f32]],
}

/// One window of a cross-stream serving batch: the stream's adaptive state
/// (its KGs, layouts, and token table — typically a session's) plus the
/// window of frame embeddings to score.
#[derive(Debug, Clone, Copy)]
pub struct WindowBatchItem<'a> {
    /// The stream's tokenized mission KGs.
    pub kgs: &'a [TokenizedKg],
    /// The stream's execution layouts (aligned with `kgs`).
    pub layouts: &'a [KgLayout],
    /// The stream's token-embedding table.
    pub table: &'a TokenTable,
    /// The window of frame embeddings, oldest first.
    pub window: &'a [Vec<f32>],
}

impl Module for DecisionModel {
    fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.gnns.iter().flat_map(Module::params).collect();
        p.extend(self.temporal.params());
        p.extend(self.head.params());
        p
    }

    /// Retained for `Module`-trait compatibility, but a no-op for this
    /// model's behaviour: the GNN norms always normalize with instance
    /// statistics (train/eval identical — see [`HierarchicalGnn::forward`])
    /// and the temporal stack is stateless LayerNorm. Scoring never depends
    /// on the flag.
    fn set_train(&mut self, train: bool) {
        for g in &mut self.gnns {
            g.set_train(train);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_embed::{BpeTokenizer, JointSpaceBuilder};
    use akg_kg::{generate_kg, GeneratorConfig, SyntheticOracle};

    fn fixture() -> (TokenizedKg, KgLayout, TokenTable, ModelConfig) {
        let ont = akg_kg::Ontology::new();
        let corpus = ont.corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), 600);
        let config = ModelConfig::fast();
        let space = JointSpaceBuilder::new(config.embed_dim, 13, 3).build();
        let mut oracle = SyntheticOracle::perfect(1);
        let kg = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle).kg;
        let tkg = TokenizedKg::new(kg, &tokenizer, space.embed_text("stealing"));
        let layout = KgLayout::new(&tkg);
        let table = TokenTable::new(&tokenizer, &space, 8);
        (tkg, layout, table, config)
    }

    #[test]
    fn layout_rows_cover_graph() {
        let (tkg, layout, _, _) = fixture();
        assert_eq!(layout.node_count(), tkg.kg.node_count());
        assert_eq!(layout.edge_count(), tkg.kg.edge_count());
        assert_eq!(layout.levels.len(), tkg.kg.depth() + 1);
    }

    #[test]
    fn layout_masks_consistent() {
        let (tkg, layout, _, _) = fixture();
        for plan in &layout.levels {
            for (r, (&inv, &keep)) in plan.inv_counts.iter().zip(&plan.keep_mask).enumerate() {
                let id = layout.rows[r];
                let at_level = tkg.kg.node(id).unwrap().level == plan.level;
                assert_eq!(keep == 0.0, at_level, "row {r} keep mask wrong");
                if inv > 0.0 {
                    assert!(at_level);
                }
            }
        }
    }

    #[test]
    fn gnn_layer_count_is_depth_plus_two() {
        let (tkg, _, _, config) = fixture();
        let mut rng = StdRng::seed_from_u64(0);
        let gnn = HierarchicalGnn::new(tkg.kg.depth(), config.embed_dim, config.gnn_dim, &mut rng);
        assert_eq!(gnn.layer_count(), tkg.kg.depth() + 2);
    }

    #[test]
    fn forward_produces_gnn_dim_vector() {
        let (tkg, layout, table, config) = fixture();
        let model = DecisionModel::new(&[tkg.kg.depth()], &config);
        let frame = vec![0.1f32; config.embed_dim];
        let r = model.reasoning_embedding(&[&tkg], &[&layout], &table, &frame);
        assert_eq!(r.shape(), vec![config.gnn_dim]);
    }

    #[test]
    fn predict_outputs_distribution() {
        let (tkg, layout, table, config) = fixture();
        let mut model = DecisionModel::new(&[tkg.kg.depth()], &config);
        model.set_train(false);
        let window: Vec<Vec<f32>> =
            (0..config.window).map(|i| vec![0.05 * i as f32; config.embed_dim]).collect();
        let probs = model.predict(&[&tkg], &[&layout], &table, &window);
        assert_eq!(probs.len(), 2);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn gradients_flow_to_token_table_through_frozen_model() {
        let (tkg, layout, table, config) = fixture();
        let mut model = DecisionModel::new(&[tkg.kg.depth()], &config);
        model.set_train(false);
        model.set_frozen(true);
        table.set_frozen(false);
        let frame = vec![0.2f32; config.embed_dim];
        let r = model.reasoning_embedding(&[&tkg], &[&layout], &table, &frame);
        let t = model.temporal_embedding(&[r.clone(), r]);
        let logits = model.logits(&t);
        logits.cross_entropy(&[1]).backward();
        assert!(table.param().grad().is_some(), "token table got no gradient");
        for p in model.params() {
            assert!(p.grad().is_none(), "frozen model retained gradient");
        }
    }

    #[test]
    fn different_frames_give_different_scores() {
        let (tkg, layout, table, config) = fixture();
        let mut model = DecisionModel::new(&[tkg.kg.depth()], &config);
        model.set_train(false);
        let w1: Vec<Vec<f32>> = vec![vec![0.5; config.embed_dim]; config.window];
        let w2: Vec<Vec<f32>> = vec![vec![-0.5; config.embed_dim]; config.window];
        let s1 = model.anomaly_score(&[&tkg], &[&layout], &table, &w1);
        let s2 = model.anomaly_score(&[&tkg], &[&layout], &table, &w2);
        assert!((s1 - s2).abs() > 1e-6, "model is constant");
    }

    #[test]
    fn multi_kg_concatenates() {
        let ont = akg_kg::Ontology::new();
        let corpus = ont.corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), 600);
        let config = ModelConfig::fast();
        let space = JointSpaceBuilder::new(config.embed_dim, 13, 3).build();
        let table = TokenTable::new(&tokenizer, &space, 0);
        let mut o1 = SyntheticOracle::perfect(1);
        let mut o2 = SyntheticOracle::perfect(2);
        let kg1 = generate_kg("stealing", &GeneratorConfig::default(), &mut o1).kg;
        let kg2 = generate_kg("robbery", &GeneratorConfig::default(), &mut o2).kg;
        let t1 = TokenizedKg::new(kg1, &tokenizer, space.embed_text("stealing"));
        let t2 = TokenizedKg::new(kg2, &tokenizer, space.embed_text("robbery"));
        let (l1, l2) = (KgLayout::new(&t1), KgLayout::new(&t2));
        let model = DecisionModel::new(&[t1.kg.depth(), t2.kg.depth()], &config);
        assert_eq!(model.reasoning_dim(), 2 * config.gnn_dim);
        assert_eq!(model.n_classes(), 3);
        let frame = vec![0.1f32; config.embed_dim];
        let r = model.reasoning_embedding(&[&t1, &t2], &[&l1, &l2], &table, &frame);
        assert_eq!(r.shape(), vec![2 * config.gnn_dim]);
    }
}
