//! Interpretable KG retrieval (paper Sec. III-E): translate adapted token
//! embeddings back into human-readable words by nearest-neighbour search
//! over the frozen BPE-vocabulary embedding table (CoOp-style, extended to
//! the joint space). Euclidean distance is the default metric, as in the
//! paper; cosine and dot product are available for the ablation.

use akg_embed::{retrieve_top_k, BpeTokenizer, JointSpace, Similarity};
use serde::{Deserialize, Serialize};

/// One retrieved word with its closeness score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievedWord {
    /// The decoded word (end-of-word marker stripped).
    pub word: String,
    /// Closeness under the query metric (larger = closer; Euclidean scores
    /// are negated distances).
    pub closeness: f32,
}

/// Nearest-word retrieval over the *initial* (pre-adaptation) token
/// embedding space — the fixed reference vocabulary the paper decodes
/// against.
#[derive(Debug, Clone)]
pub struct InterpretableRetrieval {
    words: Vec<String>,
    table: Vec<f32>,
    dim: usize,
}

impl InterpretableRetrieval {
    /// Builds the reference space from a tokenizer's vocabulary and the
    /// joint space. Sub-word fragments are retained (the paper notes that
    /// retrieved tokens "may not always make perfect sense"); the `<unk>`
    /// token is excluded.
    pub fn new(tokenizer: &BpeTokenizer, space: &JointSpace) -> Self {
        let mut words = Vec::new();
        let mut table = Vec::new();
        for (_, token) in tokenizer.vocab().iter() {
            if token == "<unk>" {
                continue;
            }
            let word = token.strip_suffix(akg_embed::bpe::END_OF_WORD).unwrap_or(token);
            words.push(word.to_string());
            table.extend(space.token_vector(token));
        }
        InterpretableRetrieval { words, table, dim: space.dim() }
    }

    /// Reference-vocabulary size.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Retrieves the `k` nearest vocabulary words to a learned embedding.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` mismatches the space dimensionality.
    pub fn nearest_words(&self, query: &[f32], k: usize, metric: Similarity) -> Vec<RetrievedWord> {
        retrieve_top_k(query, &self.table, self.dim, k, metric)
            .into_iter()
            .map(|hit| RetrievedWord {
                word: self.words[hit.index].clone(),
                closeness: hit.closeness,
            })
            .collect()
    }

    /// Mean Euclidean distance from `query` to the embeddings of the given
    /// words (skipping words absent from the vocabulary). Used for the
    /// Fig. 6 drift trajectories ("closer to the initial concept words" vs
    /// "closer to the other concept words").
    pub fn distance_to_words(&self, query: &[f32], words: &[&str]) -> f32 {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for target in words {
            if let Some(pos) = self.words.iter().position(|w| w == target) {
                let row = &self.table[pos * self.dim..(pos + 1) * self.dim];
                total += akg_embed::euclidean(query, row);
                count += 1;
            }
        }
        if count == 0 {
            f32::INFINITY
        } else {
            total / count as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_embed::JointSpaceBuilder;
    use akg_kg::Ontology;

    fn fixture() -> (BpeTokenizer, JointSpace) {
        let corpus = Ontology::new().corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), 700);
        let space = JointSpaceBuilder::new(24, 13, 5)
            .anchor("sneaky", 11, 0.9)
            .anchor("firearm", 8, 0.9)
            .build();
        (tokenizer, space)
    }

    #[test]
    fn retrieval_finds_own_word() {
        let (tok, space) = fixture();
        let retrieval = InterpretableRetrieval::new(&tok, &space);
        let query = space.word_vector("firearm");
        let hits = retrieval.nearest_words(&query, 3, Similarity::Euclidean);
        assert_eq!(hits[0].word, "firearm", "{hits:?}");
        assert!(hits[0].closeness >= -1e-4);
    }

    #[test]
    fn interpolated_embedding_flips_nearest_word() {
        let (tok, space) = fixture();
        let retrieval = InterpretableRetrieval::new(&tok, &space);
        let sneaky = space.word_vector("sneaky");
        let firearm = space.word_vector("firearm");
        // mostly sneaky -> retrieves sneaky; mostly firearm -> retrieves firearm
        let mix = |a: f32| -> Vec<f32> {
            sneaky.iter().zip(&firearm).map(|(s, f)| a * s + (1.0 - a) * f).collect()
        };
        let near_sneaky = retrieval.nearest_words(&mix(0.9), 1, Similarity::Euclidean);
        let near_firearm = retrieval.nearest_words(&mix(0.1), 1, Similarity::Euclidean);
        assert_eq!(near_sneaky[0].word, "sneaky");
        assert_eq!(near_firearm[0].word, "firearm");
    }

    #[test]
    fn distance_to_words_tracks_drift() {
        let (tok, space) = fixture();
        let retrieval = InterpretableRetrieval::new(&tok, &space);
        let sneaky = space.word_vector("sneaky");
        let firearm = space.word_vector("firearm");
        let d_initial = retrieval.distance_to_words(&sneaky, &["sneaky"]);
        let d_other = retrieval.distance_to_words(&sneaky, &["firearm"]);
        assert!(d_initial < d_other);
        let drifted: Vec<f32> =
            sneaky.iter().zip(&firearm).map(|(s, f)| 0.2 * s + 0.8 * f).collect();
        assert!(
            retrieval.distance_to_words(&drifted, &["firearm"])
                < retrieval.distance_to_words(&drifted, &["sneaky"])
        );
    }

    #[test]
    fn unknown_words_give_infinite_distance() {
        let (tok, space) = fixture();
        let retrieval = InterpretableRetrieval::new(&tok, &space);
        let q = vec![0.0; retrieval.dim()];
        assert_eq!(retrieval.distance_to_words(&q, &["zzznotaword"]), f32::INFINITY);
    }

    #[test]
    fn metrics_all_return_k_hits() {
        let (tok, space) = fixture();
        let retrieval = InterpretableRetrieval::new(&tok, &space);
        let q = space.word_vector("person");
        for metric in [Similarity::Euclidean, Similarity::Cosine, Similarity::Dot] {
            assert_eq!(retrieval.nearest_words(&q, 5, metric).len(), 5);
        }
    }
}
