//! Stage (C): continuous KG adaptive learning on the edge (paper Sec. III-D
//! and Fig. 4).
//!
//! The deployed system monitors the anomaly-score distribution. When the
//! windowed mean drops (`Δm = m_t − m_{t'} < 0`), the `K = |Δm| · N`
//! highest-scoring of the last `N` frames are taken as pseudo-anomalies and
//! backpropagated — updating **only** the KG token embeddings. Per-node
//! embedding movement is tracked: nodes whose step-to-step L2 movement keeps
//! *increasing* are diverging and get pruned and replaced by a fresh node
//! with a random token embedding and random edges at the same level.
//!
//! One [`ContinuousAdapter`] serves one stream: it owns the stream's score
//! tracker, embedding buffer, optimizer, and drift state, and operates on
//! the stream's [`Session`] through a shared [`Engine`] — all its updates
//! land in the session's private table fork and KG copies, so concurrent
//! streams adapt in full isolation. The legacy single-tenant entry points
//! (`&mut MissionSystem`) remain as thin wrappers.

use crate::engine::{Engine, Session};
use crate::loss::decision_loss_smoothed;
use crate::pipeline::MissionSystem;
use akg_eval::MeanShiftTracker;
use akg_kg::modify::{create_node, repair_connectivity, CreateConfig};
use akg_kg::NodeId;
use akg_tensor::optim::{Optimizer, Sgd};
use akg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Adaptation hyperparameters. `n_window` and `lag` are the paper's `N` and
/// `t'` (validation-tuned); the divergence patience controls how many
/// consecutive movement increases count as divergence.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Sliding-window size `N` over recent anomaly scores.
    pub n_window: usize,
    /// Mean-shift reference lag `t'` (in frames, rolling-reference mode).
    pub lag: usize,
    /// Anchor the reference mean `m_{t'}` at deployment time instead of a
    /// rolling lag; sustains adaptation while detection stays depressed.
    pub anchored_reference: bool,
    /// Token-embedding learning rate.
    pub lr: f32,
    /// Run the adaptation check every this many observed frames.
    pub interval: usize,
    /// Minimum `K` that actually triggers an update.
    pub min_k: usize,
    /// Cap on `K` per adaptation (bounds edge compute per loop).
    pub max_k: usize,
    /// L2 clip on the token-table gradient per update (bounds per-update
    /// embedding movement regardless of batch-norm amplification).
    pub max_grad_norm: f32,
    /// SGD passes over the selected batch per trigger (the paper performs
    /// a full backpropagation loop per adaptation).
    pub epochs_per_trigger: usize,
    /// Consecutive movement increases before a node is declared divergent.
    pub divergence_patience: usize,
    /// Ignore movements below this threshold when judging divergence.
    pub movement_epsilon: f32,
    /// Cap on structural replacements over the deployment's lifetime
    /// (bounded by the token table's spare rows anyway).
    pub max_replacements: usize,
    /// Random-wiring bounds for created nodes.
    pub create: CreateConfig,
    /// RNG seed (node creation wiring).
    pub seed: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            n_window: 64,
            lag: 32,
            anchored_reference: true,
            lr: 0.01,
            interval: 32,
            min_k: 2,
            max_k: 6,
            max_grad_norm: 1.0,
            epochs_per_trigger: 2,
            divergence_patience: 5,
            movement_epsilon: 2e-3,
            max_replacements: 4,
            create: CreateConfig::default(),
            seed: 0,
        }
    }
}

/// A notable event during adaptation, for experiment logging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdaptEvent {
    /// Token embeddings were updated from `k` pseudo-anomalies.
    TokenUpdate {
        /// Number of pseudo-anomaly windows used.
        k: usize,
        /// Adaptation loss value.
        loss: f32,
        /// Mean shift Δm that triggered the update.
        delta_m: f32,
    },
    /// A divergent node was pruned and replaced (Fig. 4 B→C).
    NodeReplaced {
        /// Which mission KG.
        kg: usize,
        /// The pruned node.
        pruned: NodeId,
        /// The pruned node's concept text.
        concept: String,
        /// The created node.
        created: NodeId,
        /// The level the replacement lives at.
        level: usize,
    },
}

#[derive(Debug, Clone)]
struct DriftState {
    last_embedding: Vec<f32>,
    last_movement: f32,
    rising_streak: usize,
}

/// One node's persisted drift-tracking entry (see [`AdaptSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftEntry {
    /// Mission-KG index.
    pub kg: usize,
    /// Node id (raw).
    pub node: usize,
    /// Last observed mean token embedding.
    pub last_embedding: Vec<f32>,
    /// Last step-to-step L2 movement.
    pub last_movement: f32,
    /// Consecutive movement increases so far.
    pub rising_streak: usize,
}

/// The persistable half of a [`ContinuousAdapter`]: everything needed to
/// resume the adaptation loop mid-stream with identical behaviour (score
/// tracker, embedding buffer, drift states, wiring RNG, counters). Event
/// history is logging-only and not persisted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptSnapshot {
    /// The mean-shift tracker (score window, reference state).
    pub tracker: MeanShiftTracker,
    /// Recent frame embeddings, oldest first.
    pub buffer: Vec<Vec<f32>>,
    /// Per-node drift-tracking states.
    pub drift: Vec<DriftEntry>,
    /// Node-creation wiring RNG state (xoshiro256++ words).
    pub rng: Vec<u64>,
    /// Structural replacements performed so far.
    pub replacements: usize,
    /// Frames observed so far.
    pub observed: usize,
    /// Created-node naming counter.
    pub adapted_node_counter: usize,
}

/// The continuous KG adaptive learner deployed alongside one stream.
#[derive(Debug)]
pub struct ContinuousAdapter {
    cfg: AdaptConfig,
    tracker: MeanShiftTracker,
    /// Recent frame embeddings, oldest first (capacity `n_window`).
    buffer: VecDeque<Vec<f32>>,
    drift: HashMap<(usize, NodeId), DriftState>,
    rng: StdRng,
    replacements: usize,
    observed: usize,
    events: Vec<AdaptEvent>,
    adapted_node_counter: usize,
}

impl ContinuousAdapter {
    /// Creates the adapter for a single-tenant [`MissionSystem`]. Puts the
    /// system into adaptation mode (model frozen, token table trainable) and
    /// snapshots every node's current embedding for drift tracking.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval == 0` (the adaptation check would never run).
    pub fn new(sys: &mut MissionSystem, cfg: AdaptConfig) -> Self {
        sys.set_adaptation_mode(true);
        Self::attach(&sys.engine, &mut sys.session, cfg)
    }

    /// Creates the adapter for one stream's session. Freezes the shared
    /// model, unfreezes the session's table fork, and snapshots the
    /// session's node embeddings for drift tracking.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval == 0` (the adaptation check would never run).
    pub fn attach(engine: &Engine, session: &mut Session, cfg: AdaptConfig) -> Self {
        assert!(cfg.interval > 0, "AdaptConfig::interval must be positive");
        engine.set_adaptation_mode(session, true);
        let tracker = if cfg.anchored_reference {
            MeanShiftTracker::anchored(cfg.n_window)
        } else {
            MeanShiftTracker::new(cfg.n_window, cfg.lag)
        };
        let mut adapter = ContinuousAdapter {
            tracker,
            buffer: VecDeque::with_capacity(cfg.n_window),
            drift: HashMap::new(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xADA7),
            replacements: 0,
            observed: 0,
            events: Vec::new(),
            adapted_node_counter: 0,
            cfg,
        };
        adapter.snapshot_drift(session);
        adapter
    }

    fn snapshot_drift(&mut self, session: &Session) {
        for (ki, tkg) in session.kgs.iter().enumerate() {
            for (id, tokens) in &tkg.node_tokens {
                self.drift.entry((ki, *id)).or_insert_with(|| DriftState {
                    last_embedding: session.table.node_embedding_data(tokens),
                    last_movement: 0.0,
                    rising_streak: 0,
                });
            }
        }
    }

    /// The adaptation configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[AdaptEvent] {
        &self.events
    }

    /// Structural replacements performed so far.
    pub fn replacements(&self) -> usize {
        self.replacements
    }

    /// Frames observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Whether at least one frame has been ingested — i.e. whether the
    /// window buffer can back a scoring pass. The serving runtime checks
    /// this before scoring a stream whose frames have all been rejected at
    /// ingest validation.
    pub fn has_window(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// The current mean shift Δm.
    pub fn delta_m(&self) -> f32 {
        self.tracker.delta_m()
    }

    /// Observes one deployed frame: scores it, updates the score monitor,
    /// and — every `interval` frames — runs the adaptation check. Returns
    /// the anomaly score.
    pub fn observe(&mut self, sys: &mut MissionSystem, frame: &akg_data::Frame) -> f32 {
        self.observe_stream(&sys.engine, &mut sys.session, frame)
    }

    /// Observes a pre-embedded frame (when the caller manages embedding).
    pub fn observe_embedded(&mut self, sys: &mut MissionSystem, embedding: Vec<f32>) -> f32 {
        self.observe_embedded_stream(&sys.engine, &mut sys.session, embedding)
    }

    /// Runs one adaptation check immediately. See
    /// [`ContinuousAdapter::adapt_now_stream`].
    pub fn adapt_now(&mut self, sys: &mut MissionSystem) -> usize {
        self.adapt_now_stream(&sys.engine, &mut sys.session)
    }

    /// Per-stream form of [`ContinuousAdapter::observe`].
    pub fn observe_stream(
        &mut self,
        engine: &Engine,
        session: &mut Session,
        frame: &akg_data::Frame,
    ) -> f32 {
        let embedding = engine.embed_frame(session, frame);
        self.observe_embedded_stream(engine, session, embedding)
    }

    /// Per-stream form of [`ContinuousAdapter::observe_embedded`].
    pub fn observe_embedded_stream(
        &mut self,
        engine: &Engine,
        session: &mut Session,
        embedding: Vec<f32>,
    ) -> f32 {
        let window = self.push_embedding(engine, embedding);
        let score = engine.score_window(session, &window);
        self.complete_frame(engine, session, score);
        score
    }

    /// First half of one observation, split out so a batching runtime can
    /// interleave many streams: embeds the frame through the session's RNG,
    /// pushes it into the stream's buffer, and returns the rolling window to
    /// score. Must be paired with [`ContinuousAdapter::complete_frame`] once
    /// the window's score is available — together they are exactly
    /// [`ContinuousAdapter::observe_stream`].
    pub fn begin_frame(
        &mut self,
        engine: &Engine,
        session: &mut Session,
        frame: &akg_data::Frame,
    ) -> Vec<Vec<f32>> {
        let embedding = engine.embed_frame(session, frame);
        self.push_embedding(engine, embedding)
    }

    /// The ingest half of [`ContinuousAdapter::begin_frame`] without
    /// materializing a window: embeds the frame through the session's RNG
    /// and pushes it into the stream's buffer. The batching runtime pairs
    /// this with [`ContinuousAdapter::fill_window_refs`] — together they are
    /// `begin_frame` minus the per-frame window clones.
    pub fn ingest_frame(
        &mut self,
        engine: &Engine,
        session: &mut Session,
        frame: &akg_data::Frame,
    ) {
        let embedding = engine.embed_frame(session, frame);
        self.push_rotating(embedding);
    }

    /// The one rolling-buffer rotation both ingest paths share.
    fn push_rotating(&mut self, embedding: Vec<f32>) {
        if self.buffer.len() == self.cfg.n_window {
            self.buffer.pop_front();
        }
        self.buffer.push_back(embedding);
    }

    /// Appends the current rolling score window (ending at the newest
    /// ingested frame, front-padded to the model's window length by
    /// borrowing the oldest in-window frame) to `out` as borrowed slices —
    /// zero embedding copies. `out` is cleared first so a caller-reused
    /// buffer always carries exactly one window.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been ingested yet.
    pub fn fill_window_refs<'a>(&'a self, engine: &Engine, out: &mut Vec<&'a [f32]>) {
        assert!(!self.buffer.is_empty(), "fill_window_refs: no frame ingested");
        let window_len = engine.model.config().window;
        let end = self.buffer.len() - 1;
        let start = end.saturating_sub(window_len - 1);
        out.clear();
        let oldest = self.buffer[start].as_slice();
        out.resize(window_len - (end - start + 1), oldest);
        out.extend((start..=end).map(|i| self.buffer[i].as_slice()));
    }

    fn push_embedding(&mut self, engine: &Engine, embedding: Vec<f32>) -> Vec<Vec<f32>> {
        self.push_rotating(embedding);
        self.current_window(engine, self.buffer.len() - 1)
    }

    /// Second half of one observation: records the score produced for the
    /// window returned by [`ContinuousAdapter::begin_frame`] and — every
    /// `interval` frames — runs the adaptation check against the session.
    pub fn complete_frame(&mut self, engine: &Engine, session: &mut Session, score: f32) {
        self.complete_frame_skip_adapt(score);
        if self.observed.is_multiple_of(self.cfg.interval) {
            self.adapt_now_stream(engine, session);
        }
    }

    /// The degraded second half of one observation: records the score into
    /// the drift tracker (so trend statistics stay live) and counts the
    /// frame as observed, but never runs the adaptation check — no
    /// pseudo-label backprop, no prune/create restructuring. The serving
    /// runtime's "skip adaptation" degrade rung completes frames through
    /// this under ingest pressure; once pressure clears and frames complete
    /// through [`ContinuousAdapter::complete_frame`] again, the next
    /// `interval` boundary that lands on a fully-completed frame triggers
    /// the check as usual.
    pub fn complete_frame_skip_adapt(&mut self, score: f32) {
        self.tracker.push(score);
        self.observed += 1;
    }

    /// Rolling window (length = model window) ending at buffer index `end`,
    /// front-padded by repeating the oldest in-window frame — built
    /// front-to-back (no `insert(0, …)` shifting).
    fn current_window(&self, engine: &Engine, end: usize) -> Vec<Vec<f32>> {
        let window_len = engine.model.config().window;
        let start = end.saturating_sub(window_len - 1);
        let mut out: Vec<Vec<f32>> = Vec::with_capacity(window_len);
        for _ in (end - start + 1)..window_len {
            out.push(self.buffer[start].clone());
        }
        out.extend((start..=end).map(|i| self.buffer[i].clone()));
        out
    }

    /// Runs one adaptation check immediately: computes `K = |Δm| · N`,
    /// updates the session's token embeddings from the top-K recent frames
    /// if the trigger fires, then applies the drift-based prune/create rule.
    /// Returns the number of pseudo-anomalies used (0 when the trigger did
    /// not fire).
    pub fn adapt_now_stream(&mut self, engine: &Engine, session: &mut Session) -> usize {
        let k = self.tracker.adaptation_k().min(self.cfg.max_k);
        if k < self.cfg.min_k || self.buffer.len() < self.cfg.n_window / 2 {
            return 0;
        }
        let delta_m = self.tracker.delta_m();
        let loss = self.token_update(engine, session, k);
        self.events.push(AdaptEvent::TokenUpdate { k, loss, delta_m });
        self.update_drift_and_restructure(session);
        k
    }

    /// One token-embedding update from the top-K scored recent frames
    /// (pseudo-anomalies) balanced with the K lowest-scored (pseudo-normal)
    /// frames.
    fn token_update(&mut self, engine: &Engine, session: &mut Session, k: usize) -> f32 {
        let scores = self.tracker.window().scores();
        let offset = self.buffer.len().saturating_sub(scores.len());
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Confidence floor: a pseudo-anomaly must stand out from the current
        // score distribution (mean + ½σ). Right after a strong shift the
        // top-K is only weakly enriched in true anomalies; training on
        // barely-above-average frames reinforces noise and can invert the
        // detector.
        let floor = self.tracker.current_mean() + 0.5 * self.tracker.window().std();
        let anomalies: Vec<usize> =
            order.iter().copied().filter(|&i| scores[i] >= floor).take(k).collect();
        if anomalies.is_empty() {
            return 0.0;
        }
        // Twice as many pseudo-normals as pseudo-anomalies: contaminated
        // positive selections otherwise inflate normal scores in lockstep.
        let normals: Vec<usize> = order.iter().rev().copied().take(2 * anomalies.len()).collect();

        // Train against a transient dense scratch fork of the session table:
        // overlay and dense sessions share one update path (so their results
        // are bit-identical by construction — clip_grad_norm sees the same
        // full-capacity gradient layout either way), and overlays never need
        // a parameter tensor of their own. Plain SGD, deliberately:
        // scale-free optimizers (Adam family) move noise coordinates exactly
        // as fast as signal coordinates, so contaminated pseudo-labels would
        // drift the tokens as strongly as true anomaly signal. With SGD the
        // update magnitude is proportional to gradient consistency and
        // selection noise self-cancels. Momentum is zero, so a fresh
        // optimizer per trigger carries no lost state.
        let scratch = session.table.fork();
        let mut optimizer = Sgd::new(vec![scratch.param()], self.cfg.lr);

        let mut logit_rows: Vec<Tensor> = Vec::with_capacity(2 * k);
        let mut targets: Vec<usize> = Vec::with_capacity(2 * k);
        let mut windows: Vec<Vec<Vec<f32>>> = Vec::with_capacity(2 * k);
        for &idx in anomalies.iter().chain(&normals) {
            let Some(buf_idx) = idx.checked_add(offset) else { continue };
            if buf_idx >= self.buffer.len() {
                continue;
            }
            let window = self.current_window(engine, buf_idx);
            // pseudo-label: anomalies get the mission class with the highest
            // current conditional probability; normals class 0
            let is_anomaly = anomalies.contains(&idx);
            let target = if is_anomaly {
                let probs = engine.predict_window(session, &window);
                1 + probs[1..]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                0
            };
            logit_rows.push(engine.window_logits_with_table(session, &scratch, &window));
            targets.push(target);
            windows.push(window);
        }
        if logit_rows.is_empty() {
            return 0.0;
        }
        // First pass uses the logits already computed during selection;
        // later epochs re-run the forward pass against the updated table.
        let mut last_loss = 0.0;
        let model_cfg = *engine.model.config();
        for epoch in 0..self.cfg.epochs_per_trigger.max(1) {
            let logits = if epoch == 0 {
                Tensor::concat_rows(&logit_rows)
            } else {
                let rows: Vec<Tensor> = windows
                    .iter()
                    .map(|w| engine.window_logits_with_table(session, &scratch, w))
                    .collect();
                Tensor::concat_rows(&rows)
            };
            let loss = decision_loss_smoothed(
                &logits,
                &targets,
                model_cfg.label_smoothing,
                model_cfg.lambda_spa,
                model_cfg.lambda_smt,
            );
            optimizer.zero_grad();
            loss.backward();
            scratch.param().clip_grad_norm(self.cfg.max_grad_norm);
            optimizer.step();
            last_loss = loss.item();
        }
        // Fold the trained rows back: dense sessions copy the matrix,
        // overlays materialize exactly the rows whose bits changed.
        session.table.absorb_scratch(&scratch);
        last_loss
    }

    /// Fig. 4: after a token update, measure each node's embedding movement;
    /// non-increasing movement = converging (keep), increasing = diverging
    /// (prune + create a random-embedding replacement at the same level).
    fn update_drift_and_restructure(&mut self, session: &mut Session) {
        let mut to_replace: Vec<(usize, NodeId, usize)> = Vec::new();
        for (ki, tkg) in session.kgs.iter().enumerate() {
            for (id, tokens) in &tkg.node_tokens {
                let current = session.table.node_embedding_data(tokens);
                let state = self.drift.entry((ki, *id)).or_insert_with(|| DriftState {
                    last_embedding: current.clone(),
                    last_movement: 0.0,
                    rising_streak: 0,
                });
                let movement = l2(&current, &state.last_embedding);
                if movement > state.last_movement + self.cfg.movement_epsilon {
                    state.rising_streak += 1;
                } else {
                    state.rising_streak = 0;
                }
                let diverged = state.rising_streak >= self.cfg.divergence_patience;
                let streak = state.rising_streak;
                state.last_embedding = current;
                state.last_movement = movement;
                if diverged {
                    to_replace.push((ki, *id, streak));
                }
            }
        }
        // Replace at most one node per adaptation cycle (the most divergent
        // one): mass replacements would destroy the KG's learned reasoning
        // in a single step.
        to_replace.sort_by_key(|&(_, _, streak)| std::cmp::Reverse(streak));
        if let Some(&(ki, id, _)) = to_replace.first() {
            if self.replacements < self.cfg.max_replacements && session.table.spare_remaining() > 0
            {
                self.replace_node(session, ki, id);
            }
        }
    }

    /// Prune + create: the structural half of the adaptation mechanism.
    fn replace_node(&mut self, session: &mut Session, ki: usize, id: NodeId) {
        let Some(node) = session.kgs[ki].kg.node(id).cloned() else { return };
        // keep at least 2 nodes per level so the KG stays connected
        if session.kgs[ki].kg.node_ids_at_level(node.level).len() < 2 {
            return;
        }
        if session.kgs[ki].kg.prune_node(id).is_err() {
            return;
        }
        session.kgs[ki].unregister_node(id);
        self.drift.remove(&(ki, id));
        self.adapted_node_counter += 1;
        let concept = format!("<adapted-{}>", self.adapted_node_counter);
        let Ok(new_id) = create_node(
            &mut session.kgs[ki].kg,
            concept.clone(),
            node.level,
            &self.cfg.create,
            &mut self.rng,
        ) else {
            session.rebuild_layout(ki);
            return;
        };
        let Ok(row) = session.table.allocate_random_row(&mut self.rng) else {
            // no spare capacity: keep the structural change, tokens default
            session.kgs[ki].register_node(new_id, vec![0]);
            session.rebuild_layout(ki);
            return;
        };
        session.kgs[ki].register_node(new_id, vec![row]);
        self.drift.insert(
            (ki, new_id),
            DriftState {
                last_embedding: session.table.row_data(row),
                last_movement: 0.0,
                rising_streak: 0,
            },
        );
        repair_connectivity(&mut session.kgs[ki].kg, &mut self.rng);
        session.rebuild_layout(ki);
        self.replacements += 1;
        self.events.push(AdaptEvent::NodeReplaced {
            kg: ki,
            pruned: id,
            concept: node.concept,
            created: new_id,
            level: node.level,
        });
    }

    /// Current embedding snapshot of every tracked node (for interpretable
    /// retrieval / Fig. 6 trajectories).
    pub fn node_embeddings(&self, sys: &MissionSystem) -> HashMap<(usize, NodeId), Vec<f32>> {
        self.node_embeddings_stream(&sys.session)
    }

    /// Per-stream form of [`ContinuousAdapter::node_embeddings`].
    pub fn node_embeddings_stream(&self, session: &Session) -> HashMap<(usize, NodeId), Vec<f32>> {
        let mut out = HashMap::new();
        for (ki, tkg) in session.kgs.iter().enumerate() {
            for (id, tokens) in &tkg.node_tokens {
                out.insert((ki, *id), session.table.node_embedding_data(tokens));
            }
        }
        out
    }

    /// Captures the adapter's resumable state (see [`AdaptSnapshot`]).
    pub fn snapshot(&self) -> AdaptSnapshot {
        let mut drift: Vec<DriftEntry> = self
            .drift
            .iter()
            .map(|(&(kg, id), s)| DriftEntry {
                kg,
                node: id.0,
                last_embedding: s.last_embedding.clone(),
                last_movement: s.last_movement,
                rising_streak: s.rising_streak,
            })
            .collect();
        drift.sort_by_key(|e| (e.kg, e.node));
        AdaptSnapshot {
            tracker: self.tracker.clone(),
            buffer: self.buffer.iter().cloned().collect(),
            drift,
            rng: self.rng.export_state().to_vec(),
            replacements: self.replacements,
            observed: self.observed,
            adapted_node_counter: self.adapted_node_counter,
        }
    }

    /// Rebuilds an adapter mid-stream from a snapshot: the restored adapter
    /// continues the adaptation loop exactly where the saved one stopped
    /// (same tracker, buffer, drift streaks, wiring RNG, counters).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval == 0` or the snapshot's RNG state is
    /// malformed.
    pub fn restore(
        engine: &Engine,
        session: &mut Session,
        cfg: AdaptConfig,
        snapshot: &AdaptSnapshot,
    ) -> Self {
        let mut adapter = Self::attach(engine, session, cfg);
        adapter.tracker = snapshot.tracker.clone();
        adapter.buffer = snapshot.buffer.iter().cloned().collect();
        adapter.drift = snapshot
            .drift
            .iter()
            .map(|e| {
                (
                    (e.kg, NodeId(e.node)),
                    DriftState {
                        last_embedding: e.last_embedding.clone(),
                        last_movement: e.last_movement,
                        rising_streak: e.rising_streak,
                    },
                )
            })
            .collect();
        let rng_words: [u64; 4] =
            snapshot.rng.as_slice().try_into().expect("AdaptSnapshot: rng must hold 4 words");
        adapter.rng = StdRng::restore_state(rng_words);
        adapter.replacements = snapshot.replacements;
        adapter.observed = snapshot.observed;
        adapter.adapted_node_counter = snapshot.adapted_node_counter;
        adapter
    }
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MissionSystem, SystemConfig};
    use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
    use akg_kg::AnomalyClass;

    fn setup() -> (MissionSystem, SyntheticUcfCrime) {
        let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(21),
        );
        (sys, ds)
    }

    fn small_cfg() -> AdaptConfig {
        AdaptConfig {
            n_window: 24,
            lag: 12,
            interval: 8,
            min_k: 1,
            max_k: 4,
            ..AdaptConfig::default()
        }
    }

    #[test]
    fn observe_returns_scores_in_unit_interval() {
        let (mut sys, ds) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.3, 1);
        for _ in 0..30 {
            let (frame, _) = stream.next_frame();
            let score = adapter.observe(&mut sys, &frame);
            assert!((0.0..=1.0).contains(&score), "score {score}");
        }
        assert_eq!(adapter.observed(), 30);
    }

    #[test]
    fn adaptation_mode_enforced() {
        let (mut sys, _) = setup();
        let _adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        assert!(sys.session.table.param().requires_grad_flag());
        use akg_tensor::nn::Module;
        assert!(!sys.engine.model.params()[0].requires_grad_flag());
    }

    #[test]
    fn token_update_changes_only_token_table() {
        let (mut sys, ds) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        use akg_tensor::nn::Module;
        let model_before: Vec<Vec<f32>> =
            sys.engine.model.params().iter().map(|p| p.to_vec()).collect();
        let table_before = sys.session.table.param().to_vec();
        // feed high-score anomalous frames then normals to force a mean drop
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 1.0, 2);
        for _ in 0..16 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        let mut normal_stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.0, 3);
        for _ in 0..24 {
            let (f, _) = normal_stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        // force an update regardless of trigger state
        adapter.tracker = {
            let mut t = MeanShiftTracker::new(24, 12);
            for _ in 0..12 {
                t.push(0.9);
            }
            for _ in 0..12 {
                t.push(0.1);
            }
            t
        };
        let k = adapter.adapt_now(&mut sys);
        assert!(k >= 1, "adaptation did not trigger");
        let model_after: Vec<Vec<f32>> =
            sys.engine.model.params().iter().map(|p| p.to_vec()).collect();
        assert_eq!(model_before, model_after, "frozen model changed");
        assert_ne!(table_before, sys.session.table.param().to_vec(), "token table unchanged");
        // the engine's template table is untouched by session adaptation
        assert_eq!(sys.engine.table.param().to_vec().len(), table_before.len());
    }

    #[test]
    fn adaptation_never_touches_engine_template() {
        let (mut sys, ds) = setup();
        let engine_table_before = sys.engine.table.param().to_vec();
        let engine_kg_json = sys.engine.kgs[0].kg.to_json().unwrap();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 7);
        for _ in 0..40 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        assert_eq!(sys.engine.table.param().to_vec(), engine_table_before);
        assert_eq!(sys.engine.kgs[0].kg.to_json().unwrap(), engine_kg_json);
    }

    #[test]
    fn divergent_nodes_get_replaced() {
        let (mut sys, _) = setup();
        let cfg = AdaptConfig { divergence_patience: 1, ..small_cfg() };
        let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
        // manufacture divergence: keep increasing one node's token embedding
        let (victim_id, rows) = {
            let tkg = &sys.session.kgs[0];
            let (&id, tokens) = tkg.node_tokens.iter().next().unwrap();
            (id, tokens.clone())
        };
        let node_count_before = sys.session.kgs[0].kg.node_count();
        let dim = sys.session.table.dim();
        for step in 1..=4 {
            let bump = step as f32 * 0.5; // growing movement each step
            sys.session.table.param().update_data(|data| {
                for &r in &rows {
                    for c in 0..dim {
                        data[r * dim + c] += bump;
                    }
                }
            });
            adapter.update_drift_and_restructure(&mut sys.session);
            if adapter.replacements() > 0 {
                break;
            }
        }
        assert!(adapter.replacements() > 0, "no replacement happened");
        assert!(sys.session.kgs[0].kg.node(victim_id).is_none(), "victim not pruned");
        assert_eq!(sys.session.kgs[0].kg.node_count(), node_count_before);
        let errors = sys.session.kgs[0].kg.validate();
        assert!(errors.is_empty(), "{errors:?}");
        assert!(adapter.events().iter().any(|e| matches!(e, AdaptEvent::NodeReplaced { .. })));
    }

    #[test]
    fn stable_embeddings_are_not_replaced() {
        let (mut sys, _) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        for _ in 0..5 {
            adapter.update_drift_and_restructure(&mut sys.session);
        }
        assert_eq!(adapter.replacements(), 0);
    }

    #[test]
    fn no_trigger_without_mean_drop() {
        let (mut sys, ds) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.2, 5);
        for _ in 0..60 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        // scores fluctuate but without an engineered drop most checks no-op;
        // the system must stay healthy either way
        assert!(sys.session.kgs[0].kg.validate().is_empty());
    }

    #[test]
    fn begin_complete_decomposition_matches_observe() {
        let (sys, ds) = setup();
        let engine = sys.engine;
        let mut a = engine.new_session(100);
        let mut b = engine.new_session(100);
        let mut adapter_a = ContinuousAdapter::attach(&engine, &mut a, small_cfg());
        let mut adapter_b = ContinuousAdapter::attach(&engine, &mut b, small_cfg());
        let mut stream_a = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.4, 8);
        let mut stream_b = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.4, 8);
        for _ in 0..20 {
            let (fa, _) = stream_a.next_frame();
            let (fb, _) = stream_b.next_frame();
            let direct = adapter_a.observe_stream(&engine, &mut a, &fa);
            let window = adapter_b.begin_frame(&engine, &mut b, &fb);
            let score = engine.score_window(&b, &window);
            adapter_b.complete_frame(&engine, &mut b, score);
            assert_eq!(direct, score, "decomposed path diverged");
        }
        assert_eq!(adapter_a.observed(), adapter_b.observed());
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let (sys, ds) = setup();
        let engine = sys.engine;
        let mut session = engine.new_session(55);
        let mut adapter = ContinuousAdapter::attach(&engine, &mut session, small_cfg());
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 9);
        for _ in 0..30 {
            let (f, _) = stream.next_frame();
            adapter.observe_stream(&engine, &mut session, &f);
        }
        let snap = adapter.snapshot();
        let restored = ContinuousAdapter::restore(&engine, &mut session, small_cfg(), &snap);
        assert_eq!(restored.observed(), adapter.observed());
        assert_eq!(restored.replacements(), adapter.replacements());
        assert_eq!(restored.delta_m(), adapter.delta_m());
        let resnap = restored.snapshot();
        assert_eq!(resnap.rng, snap.rng);
        assert_eq!(resnap.buffer, snap.buffer);
        assert_eq!(resnap.drift.len(), snap.drift.len());
        // (the full save → load → continue-identically regression lives in
        // `persist::tests::load_then_continue_matches_uninterrupted_run`)
    }
}
