//! Stage (C): continuous KG adaptive learning on the edge (paper Sec. III-D
//! and Fig. 4).
//!
//! The deployed system monitors the anomaly-score distribution. When the
//! windowed mean drops (`Δm = m_t − m_{t'} < 0`), the `K = |Δm| · N`
//! highest-scoring of the last `N` frames are taken as pseudo-anomalies and
//! backpropagated — updating **only** the KG token embeddings. Per-node
//! embedding movement is tracked: nodes whose step-to-step L2 movement keeps
//! *increasing* are diverging and get pruned and replaced by a fresh node
//! with a random token embedding and random edges at the same level.

use crate::loss::decision_loss_smoothed;
use crate::pipeline::MissionSystem;
use akg_eval::MeanShiftTracker;
use akg_kg::modify::{create_node, repair_connectivity, CreateConfig};
use akg_kg::NodeId;
use akg_tensor::optim::{Optimizer, Sgd};
use akg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Adaptation hyperparameters. `n_window` and `lag` are the paper's `N` and
/// `t'` (validation-tuned); the divergence patience controls how many
/// consecutive movement increases count as divergence.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Sliding-window size `N` over recent anomaly scores.
    pub n_window: usize,
    /// Mean-shift reference lag `t'` (in frames, rolling-reference mode).
    pub lag: usize,
    /// Anchor the reference mean `m_{t'}` at deployment time instead of a
    /// rolling lag; sustains adaptation while detection stays depressed.
    pub anchored_reference: bool,
    /// Token-embedding learning rate.
    pub lr: f32,
    /// Run the adaptation check every this many observed frames.
    pub interval: usize,
    /// Minimum `K` that actually triggers an update.
    pub min_k: usize,
    /// Cap on `K` per adaptation (bounds edge compute per loop).
    pub max_k: usize,
    /// L2 clip on the token-table gradient per update (bounds per-update
    /// embedding movement regardless of batch-norm amplification).
    pub max_grad_norm: f32,
    /// SGD passes over the selected batch per trigger (the paper performs
    /// a full backpropagation loop per adaptation).
    pub epochs_per_trigger: usize,
    /// Consecutive movement increases before a node is declared divergent.
    pub divergence_patience: usize,
    /// Ignore movements below this threshold when judging divergence.
    pub movement_epsilon: f32,
    /// Cap on structural replacements over the deployment's lifetime
    /// (bounded by the token table's spare rows anyway).
    pub max_replacements: usize,
    /// Random-wiring bounds for created nodes.
    pub create: CreateConfig,
    /// RNG seed (node creation wiring).
    pub seed: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            n_window: 64,
            lag: 32,
            anchored_reference: true,
            lr: 0.01,
            interval: 32,
            min_k: 2,
            max_k: 6,
            max_grad_norm: 1.0,
            epochs_per_trigger: 2,
            divergence_patience: 5,
            movement_epsilon: 2e-3,
            max_replacements: 4,
            create: CreateConfig::default(),
            seed: 0,
        }
    }
}

/// A notable event during adaptation, for experiment logging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdaptEvent {
    /// Token embeddings were updated from `k` pseudo-anomalies.
    TokenUpdate {
        /// Number of pseudo-anomaly windows used.
        k: usize,
        /// Adaptation loss value.
        loss: f32,
        /// Mean shift Δm that triggered the update.
        delta_m: f32,
    },
    /// A divergent node was pruned and replaced (Fig. 4 B→C).
    NodeReplaced {
        /// Which mission KG.
        kg: usize,
        /// The pruned node.
        pruned: NodeId,
        /// The pruned node's concept text.
        concept: String,
        /// The created node.
        created: NodeId,
        /// The level the replacement lives at.
        level: usize,
    },
}

#[derive(Debug, Clone)]
struct DriftState {
    last_embedding: Vec<f32>,
    last_movement: f32,
    rising_streak: usize,
}

/// The continuous KG adaptive learner deployed alongside the decision model.
#[derive(Debug)]
pub struct ContinuousAdapter {
    cfg: AdaptConfig,
    tracker: MeanShiftTracker,
    /// Recent frame embeddings, oldest first (capacity `n_window`).
    buffer: VecDeque<Vec<f32>>,
    optimizer: Sgd,
    drift: HashMap<(usize, NodeId), DriftState>,
    rng: StdRng,
    replacements: usize,
    observed: usize,
    events: Vec<AdaptEvent>,
    adapted_node_counter: usize,
}

impl ContinuousAdapter {
    /// Creates the adapter for a deployed system. Puts the system into
    /// adaptation mode (model frozen, token table trainable) and snapshots
    /// every node's current embedding for drift tracking.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval == 0` (the adaptation check would never run).
    pub fn new(sys: &mut MissionSystem, cfg: AdaptConfig) -> Self {
        assert!(cfg.interval > 0, "AdaptConfig::interval must be positive");
        sys.set_adaptation_mode(true);
        // Plain SGD, deliberately: scale-free optimizers (Adam family) move
        // noise coordinates exactly as fast as signal coordinates, so
        // contaminated pseudo-labels would drift the tokens as strongly as
        // true anomaly signal. With SGD the update magnitude is proportional
        // to gradient consistency and selection noise self-cancels.
        let optimizer = Sgd::new(vec![sys.table.param()], cfg.lr);
        let tracker = if cfg.anchored_reference {
            MeanShiftTracker::anchored(cfg.n_window)
        } else {
            MeanShiftTracker::new(cfg.n_window, cfg.lag)
        };
        let mut adapter = ContinuousAdapter {
            tracker,
            buffer: VecDeque::with_capacity(cfg.n_window),
            optimizer,
            drift: HashMap::new(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xADA7),
            replacements: 0,
            observed: 0,
            events: Vec::new(),
            adapted_node_counter: 0,
            cfg,
        };
        adapter.snapshot_drift(sys);
        adapter
    }

    fn snapshot_drift(&mut self, sys: &MissionSystem) {
        for (ki, tkg) in sys.kgs.iter().enumerate() {
            for (id, tokens) in &tkg.node_tokens {
                self.drift.entry((ki, *id)).or_insert_with(|| DriftState {
                    last_embedding: sys.table.node_embedding_data(tokens),
                    last_movement: 0.0,
                    rising_streak: 0,
                });
            }
        }
    }

    /// The adaptation configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[AdaptEvent] {
        &self.events
    }

    /// Structural replacements performed so far.
    pub fn replacements(&self) -> usize {
        self.replacements
    }

    /// Frames observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// The current mean shift Δm.
    pub fn delta_m(&self) -> f32 {
        self.tracker.delta_m()
    }

    /// Observes one deployed frame: scores it, updates the score monitor,
    /// and — every `interval` frames — runs the adaptation check. Returns
    /// the anomaly score.
    pub fn observe(&mut self, sys: &mut MissionSystem, frame: &akg_data::Frame) -> f32 {
        let embedding = sys.embed_frame(frame);
        self.observe_embedded(sys, embedding)
    }

    /// Observes a pre-embedded frame (when the caller manages embedding).
    pub fn observe_embedded(&mut self, sys: &mut MissionSystem, embedding: Vec<f32>) -> f32 {
        if self.buffer.len() == self.cfg.n_window {
            self.buffer.pop_front();
        }
        self.buffer.push_back(embedding);
        let window = self.current_window(sys, self.buffer.len() - 1);
        let score = sys.score_window(&window);
        self.tracker.push(score);
        self.observed += 1;
        if self.observed.is_multiple_of(self.cfg.interval) {
            self.adapt_now(sys);
        }
        score
    }

    /// Rolling window (length = model window) ending at buffer index `end`.
    fn current_window(&self, sys: &MissionSystem, end: usize) -> Vec<Vec<f32>> {
        let window_len = sys.model.config().window;
        let start = end.saturating_sub(window_len - 1);
        let mut out: Vec<Vec<f32>> = (start..=end).map(|i| self.buffer[i].clone()).collect();
        while out.len() < window_len {
            out.insert(0, out[0].clone());
        }
        out
    }

    /// Runs one adaptation check immediately: computes `K = |Δm| · N`,
    /// updates token embeddings from the top-K recent frames if the trigger
    /// fires, then applies the drift-based prune/create rule. Returns the
    /// number of pseudo-anomalies used (0 when the trigger did not fire).
    pub fn adapt_now(&mut self, sys: &mut MissionSystem) -> usize {
        let k = self.tracker.adaptation_k().min(self.cfg.max_k);
        if k < self.cfg.min_k || self.buffer.len() < self.cfg.n_window / 2 {
            return 0;
        }
        let delta_m = self.tracker.delta_m();
        let loss = self.token_update(sys, k);
        self.events.push(AdaptEvent::TokenUpdate { k, loss, delta_m });
        self.update_drift_and_restructure(sys);
        k
    }

    /// One token-embedding update from the top-K scored recent frames
    /// (pseudo-anomalies) balanced with the K lowest-scored (pseudo-normal)
    /// frames.
    fn token_update(&mut self, sys: &mut MissionSystem, k: usize) -> f32 {
        let scores = self.tracker.window().scores();
        let offset = self.buffer.len().saturating_sub(scores.len());
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Confidence floor: a pseudo-anomaly must stand out from the current
        // score distribution (mean + ½σ). Right after a strong shift the
        // top-K is only weakly enriched in true anomalies; training on
        // barely-above-average frames reinforces noise and can invert the
        // detector.
        let floor = self.tracker.current_mean() + 0.5 * self.tracker.window().std();
        let anomalies: Vec<usize> =
            order.iter().copied().filter(|&i| scores[i] >= floor).take(k).collect();
        if anomalies.is_empty() {
            return 0.0;
        }
        // Twice as many pseudo-normals as pseudo-anomalies: contaminated
        // positive selections otherwise inflate normal scores in lockstep.
        let normals: Vec<usize> = order.iter().rev().copied().take(2 * anomalies.len()).collect();

        let mut logit_rows: Vec<Tensor> = Vec::with_capacity(2 * k);
        let mut targets: Vec<usize> = Vec::with_capacity(2 * k);
        let mut windows: Vec<Vec<Vec<f32>>> = Vec::with_capacity(2 * k);
        for &idx in anomalies.iter().chain(&normals) {
            let Some(buf_idx) = idx.checked_add(offset) else { continue };
            if buf_idx >= self.buffer.len() {
                continue;
            }
            let window = self.current_window(sys, buf_idx);
            // pseudo-label: anomalies get the mission class with the highest
            // current conditional probability; normals class 0
            let is_anomaly = anomalies.contains(&idx);
            let target = if is_anomaly {
                let probs = sys.predict_window(&window);
                1 + probs[1..]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                0
            };
            logit_rows.push(sys.window_logits(&window));
            targets.push(target);
            windows.push(window);
        }
        if logit_rows.is_empty() {
            return 0.0;
        }
        // First pass uses the logits already computed during selection;
        // later epochs re-run the forward pass against the updated table.
        let mut last_loss = 0.0;
        for epoch in 0..self.cfg.epochs_per_trigger.max(1) {
            let logits = if epoch == 0 {
                Tensor::concat_rows(&logit_rows)
            } else {
                let rows: Vec<Tensor> = windows.iter().map(|w| sys.window_logits(w)).collect();
                Tensor::concat_rows(&rows)
            };
            let loss = decision_loss_smoothed(
                &logits,
                &targets,
                sys.model.config().label_smoothing,
                sys.model.config().lambda_spa,
                sys.model.config().lambda_smt,
            );
            self.optimizer.zero_grad();
            loss.backward();
            sys.table.param().clip_grad_norm(self.cfg.max_grad_norm);
            self.optimizer.step();
            last_loss = loss.item();
        }
        last_loss
    }

    /// Fig. 4: after a token update, measure each node's embedding movement;
    /// non-increasing movement = converging (keep), increasing = diverging
    /// (prune + create a random-embedding replacement at the same level).
    fn update_drift_and_restructure(&mut self, sys: &mut MissionSystem) {
        let mut to_replace: Vec<(usize, NodeId, usize)> = Vec::new();
        for (ki, tkg) in sys.kgs.iter().enumerate() {
            for (id, tokens) in &tkg.node_tokens {
                let current = sys.table.node_embedding_data(tokens);
                let state = self.drift.entry((ki, *id)).or_insert_with(|| DriftState {
                    last_embedding: current.clone(),
                    last_movement: 0.0,
                    rising_streak: 0,
                });
                let movement = l2(&current, &state.last_embedding);
                if movement > state.last_movement + self.cfg.movement_epsilon {
                    state.rising_streak += 1;
                } else {
                    state.rising_streak = 0;
                }
                let diverged = state.rising_streak >= self.cfg.divergence_patience;
                let streak = state.rising_streak;
                state.last_embedding = current;
                state.last_movement = movement;
                if diverged {
                    to_replace.push((ki, *id, streak));
                }
            }
        }
        // Replace at most one node per adaptation cycle (the most divergent
        // one): mass replacements would destroy the KG's learned reasoning
        // in a single step.
        to_replace.sort_by_key(|&(_, _, streak)| std::cmp::Reverse(streak));
        if let Some(&(ki, id, _)) = to_replace.first() {
            if self.replacements < self.cfg.max_replacements && sys.table.spare_remaining() > 0 {
                self.replace_node(sys, ki, id);
            }
        }
    }

    /// Prune + create: the structural half of the adaptation mechanism.
    fn replace_node(&mut self, sys: &mut MissionSystem, ki: usize, id: NodeId) {
        let Some(node) = sys.kgs[ki].kg.node(id).cloned() else { return };
        // keep at least 2 nodes per level so the KG stays connected
        if sys.kgs[ki].kg.node_ids_at_level(node.level).len() < 2 {
            return;
        }
        if sys.kgs[ki].kg.prune_node(id).is_err() {
            return;
        }
        sys.kgs[ki].unregister_node(id);
        self.drift.remove(&(ki, id));
        self.adapted_node_counter += 1;
        let concept = format!("<adapted-{}>", self.adapted_node_counter);
        let Ok(new_id) = create_node(
            &mut sys.kgs[ki].kg,
            concept.clone(),
            node.level,
            &self.cfg.create,
            &mut self.rng,
        ) else {
            sys.rebuild_layout(ki);
            return;
        };
        let Ok(row) = sys.table.allocate_random_row(&mut self.rng) else {
            // no spare capacity: keep the structural change, tokens default
            sys.kgs[ki].register_node(new_id, vec![0]);
            sys.rebuild_layout(ki);
            return;
        };
        sys.kgs[ki].register_node(new_id, vec![row]);
        self.drift.insert(
            (ki, new_id),
            DriftState {
                last_embedding: sys.table.row_data(row),
                last_movement: 0.0,
                rising_streak: 0,
            },
        );
        repair_connectivity(&mut sys.kgs[ki].kg, &mut self.rng);
        sys.rebuild_layout(ki);
        self.replacements += 1;
        self.events.push(AdaptEvent::NodeReplaced {
            kg: ki,
            pruned: id,
            concept: node.concept,
            created: new_id,
            level: node.level,
        });
    }

    /// Current embedding snapshot of every tracked node (for interpretable
    /// retrieval / Fig. 6 trajectories).
    pub fn node_embeddings(&self, sys: &MissionSystem) -> HashMap<(usize, NodeId), Vec<f32>> {
        let mut out = HashMap::new();
        for (ki, tkg) in sys.kgs.iter().enumerate() {
            for (id, tokens) in &tkg.node_tokens {
                out.insert((ki, *id), sys.table.node_embedding_data(tokens));
            }
        }
        out
    }
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MissionSystem, SystemConfig};
    use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
    use akg_kg::AnomalyClass;

    fn setup() -> (MissionSystem, SyntheticUcfCrime) {
        let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(21),
        );
        (sys, ds)
    }

    fn small_cfg() -> AdaptConfig {
        AdaptConfig {
            n_window: 24,
            lag: 12,
            interval: 8,
            min_k: 1,
            max_k: 4,
            ..AdaptConfig::default()
        }
    }

    #[test]
    fn observe_returns_scores_in_unit_interval() {
        let (mut sys, ds) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.3, 1);
        for _ in 0..30 {
            let (frame, _) = stream.next_frame();
            let score = adapter.observe(&mut sys, &frame);
            assert!((0.0..=1.0).contains(&score), "score {score}");
        }
        assert_eq!(adapter.observed(), 30);
    }

    #[test]
    fn adaptation_mode_enforced() {
        let (mut sys, _) = setup();
        let _adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        assert!(sys.table.param().requires_grad_flag());
        use akg_tensor::nn::Module;
        assert!(!sys.model.params()[0].requires_grad_flag());
    }

    #[test]
    fn token_update_changes_only_token_table() {
        let (mut sys, ds) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        use akg_tensor::nn::Module;
        let model_before: Vec<Vec<f32>> = sys.model.params().iter().map(|p| p.to_vec()).collect();
        let table_before = sys.table.param().to_vec();
        // feed high-score anomalous frames then normals to force a mean drop
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 1.0, 2);
        for _ in 0..16 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        let mut normal_stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.0, 3);
        for _ in 0..24 {
            let (f, _) = normal_stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        // force an update regardless of trigger state
        adapter.tracker = {
            let mut t = MeanShiftTracker::new(24, 12);
            for _ in 0..12 {
                t.push(0.9);
            }
            for _ in 0..12 {
                t.push(0.1);
            }
            t
        };
        let k = adapter.adapt_now(&mut sys);
        assert!(k >= 1, "adaptation did not trigger");
        let model_after: Vec<Vec<f32>> = sys.model.params().iter().map(|p| p.to_vec()).collect();
        assert_eq!(model_before, model_after, "frozen model changed");
        assert_ne!(table_before, sys.table.param().to_vec(), "token table unchanged");
    }

    #[test]
    fn divergent_nodes_get_replaced() {
        let (mut sys, _) = setup();
        let cfg = AdaptConfig { divergence_patience: 1, ..small_cfg() };
        let mut adapter = ContinuousAdapter::new(&mut sys, cfg);
        // manufacture divergence: keep increasing one node's token embedding
        let (victim_id, rows) = {
            let tkg = &sys.kgs[0];
            let (&id, tokens) = tkg.node_tokens.iter().next().unwrap();
            (id, tokens.clone())
        };
        let node_count_before = sys.kgs[0].kg.node_count();
        let dim = sys.table.dim();
        for step in 1..=4 {
            let bump = step as f32 * 0.5; // growing movement each step
            sys.table.param().update_data(|data| {
                for &r in &rows {
                    for c in 0..dim {
                        data[r * dim + c] += bump;
                    }
                }
            });
            adapter.update_drift_and_restructure(&mut sys);
            if adapter.replacements() > 0 {
                break;
            }
        }
        assert!(adapter.replacements() > 0, "no replacement happened");
        assert!(sys.kgs[0].kg.node(victim_id).is_none(), "victim not pruned");
        assert_eq!(sys.kgs[0].kg.node_count(), node_count_before);
        assert!(sys.kgs[0].kg.validate().is_empty(), "{:?}", sys.kgs[0].kg.validate());
        assert!(adapter.events().iter().any(|e| matches!(e, AdaptEvent::NodeReplaced { .. })));
    }

    #[test]
    fn stable_embeddings_are_not_replaced() {
        let (mut sys, _) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        for _ in 0..5 {
            adapter.update_drift_and_restructure(&mut sys);
        }
        assert_eq!(adapter.replacements(), 0);
    }

    #[test]
    fn no_trigger_without_mean_drop() {
        let (mut sys, ds) = setup();
        let mut adapter = ContinuousAdapter::new(&mut sys, small_cfg());
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.2, 5);
        for _ in 0..60 {
            let (f, _) = stream.next_frame();
            adapter.observe(&mut sys, &f);
        }
        // scores fluctuate but without an engineered drop most checks no-op;
        // the system must stay healthy either way
        assert!(sys.kgs[0].kg.validate().is_empty());
    }
}
