//! Stage (B): training the lightweight GNN-based decision model on a
//! mission's videos. The token table stays frozen (node embeddings are the
//! joint-embedding model's knowledge); the GNN, temporal model and head
//! train with AdamW, cross-entropy, and the λ_spa/λ_smt regularizers.

use crate::config::TrainConfig;
use crate::loss::decision_loss_smoothed;
use crate::pipeline::MissionSystem;
use akg_data::Video;
use akg_kg::AnomalyClass;
use akg_tensor::nn::Module;
use akg_tensor::optim::{AdamW, AdamWConfig, Optimizer};
use akg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Loss after each step.
    pub loss_history: Vec<f32>,
    /// Steps executed.
    pub steps: usize,
    /// Final decaying threshold (weakly-supervised mode only).
    pub final_threshold: f32,
}

/// One sampled training window.
struct WindowSample {
    embeddings: Vec<Vec<f32>>,
    /// Class target: 0 = normal, `1 + mission index` = that anomaly.
    target: usize,
    /// Video-level label (for weak supervision).
    video_class: Option<AnomalyClass>,
}

/// Trains the system's decision model on the given videos (normal videos
/// plus videos of the deployed missions' classes).
///
/// In the default (frame-supervised) mode the synthetic generator's
/// frame-level labels supervise directly. In `weakly_supervised` mode only
/// video-level labels are used: frames of anomalous videos are
/// pseudo-labelled anomalous when their current anomaly score exceeds a
/// threshold that decays by α_d each step — our rendering of the paper's
/// decaying threshold.
///
/// # Panics
///
/// Panics if `videos` contains no normal video or no video of a deployed
/// mission class.
pub fn train_decision_model(
    sys: &mut MissionSystem,
    videos: &[&Video],
    cfg: &TrainConfig,
) -> TrainReport {
    let window_len = sys.engine.model.config().window;
    let missions = sys.engine.missions.clone();
    let normals: Vec<&Video> = videos.iter().copied().filter(|v| v.class.is_none()).collect();
    let anomalous: Vec<&Video> = videos
        .iter()
        .copied()
        .filter(|v| v.class.map(|c| missions.contains(&c)).unwrap_or(false))
        .collect();
    assert!(!normals.is_empty(), "training requires normal videos");
    assert!(!anomalous.is_empty(), "training requires mission-class videos");

    sys.set_adaptation_mode(false); // model trainable, table frozen
    sys.engine.model.set_train(true);
    let params = sys.engine.model.params();
    let mut opt = AdamW::new(
        params,
        AdamWConfig { lr: cfg.lr, weight_decay: cfg.weight_decay, ..AdamWConfig::default() },
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut loss_history = Vec::with_capacity(cfg.steps);
    let alpha_d = sys.engine.model.config().decay_threshold;
    let mut threshold = 1.0f32;
    let lambda_spa = sys.engine.model.config().lambda_spa;
    let lambda_smt = sys.engine.model.config().lambda_smt;
    let smoothing = sys.engine.model.config().label_smoothing;

    for _ in 0..cfg.steps {
        let mut batch: Vec<WindowSample> = Vec::with_capacity(cfg.batch_size);
        for b in 0..cfg.batch_size {
            // alternate normal / anomalous windows for balance
            let want_anomalous = b % 2 == 1;
            let sample = sample_window(
                sys,
                if want_anomalous { &anomalous } else { &normals },
                want_anomalous,
                &missions,
                window_len,
                &mut rng,
            );
            batch.push(sample);
        }

        if cfg.weakly_supervised {
            threshold *= alpha_d;
            relabel_weakly(sys, &mut batch, threshold, &missions);
        }

        let mut logit_rows = Vec::with_capacity(batch.len());
        let mut targets = Vec::with_capacity(batch.len());
        for sample in &batch {
            logit_rows.push(sys.window_logits(&sample.embeddings));
            targets.push(sample.target);
        }
        let logits = Tensor::concat_rows(&logit_rows);
        let loss = decision_loss_smoothed(&logits, &targets, smoothing, lambda_spa, lambda_smt);
        opt.zero_grad();
        loss.backward();
        opt.step();
        loss_history.push(loss.item());
    }

    sys.engine.model.set_train(false);
    // Training mutated the f32 masters; re-derive the int8 serving codes
    // (no-op at f32 precision) so the inference plane never serves stale
    // quantizations.
    sys.engine.model.refresh_quantized();
    TrainReport { steps: cfg.steps, loss_history, final_threshold: threshold }
}

/// Samples one training window ending at a random frame; when
/// `want_anomalous`, the end frame is drawn inside the anomaly segment.
fn sample_window(
    sys: &mut MissionSystem,
    pool: &[&Video],
    want_anomalous: bool,
    missions: &[AnomalyClass],
    window_len: usize,
    rng: &mut StdRng,
) -> WindowSample {
    let video = pool[rng.gen_range(0..pool.len())];
    let end = if want_anomalous {
        let (s, e) = video.anomaly_range.expect("anomalous pool video has a segment");
        rng.gen_range(s..e)
    } else {
        rng.gen_range(0..video.len())
    };
    let start = end.saturating_sub(window_len - 1);
    let mut embeddings: Vec<Vec<f32>> =
        video.frames[start..=end].iter().map(|f| sys.embed_frame(f)).collect();
    while embeddings.len() < window_len {
        embeddings.insert(0, embeddings[0].clone());
    }
    let target = match video.frames[end].label {
        Some(class) => missions.iter().position(|m| *m == class).map(|i| i + 1).unwrap_or(0),
        None => 0,
    };
    WindowSample { embeddings, target, video_class: video.class }
}

/// Weak supervision: ignore frame labels; pseudo-label windows from
/// anomalous videos as anomalous only when the model's current score clears
/// the decaying threshold.
fn relabel_weakly(
    sys: &mut MissionSystem,
    batch: &mut [WindowSample],
    threshold: f32,
    missions: &[AnomalyClass],
) {
    for sample in batch.iter_mut() {
        match sample.video_class {
            None => sample.target = 0,
            Some(class) => {
                let score = sys.score_window(&sample.embeddings);
                if score >= threshold.min(0.99) {
                    sample.target =
                        missions.iter().position(|m| *m == class).map(|i| i + 1).unwrap_or(0);
                } else {
                    sample.target = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SystemConfig;
    use akg_data::{DatasetConfig, SyntheticUcfCrime};

    fn quick_setup() -> (MissionSystem, SyntheticUcfCrime) {
        let sys = MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default());
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.015)
                .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
                .with_seed(11),
        );
        (sys, ds)
    }

    #[test]
    fn training_reduces_loss() {
        let (mut sys, ds) = quick_setup();
        let videos: Vec<&Video> = ds.train.iter().collect();
        let cfg = TrainConfig { steps: 40, batch_size: 8, ..TrainConfig::fast() };
        let report = train_decision_model(&mut sys, &videos, &cfg);
        assert_eq!(report.steps, 40);
        let first: f32 = report.loss_history[..5].iter().sum::<f32>() / 5.0;
        let last: f32 = report.loss_history[report.steps - 5..].iter().sum::<f32>() / 5.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn trained_model_separates_classes() {
        let (mut sys, ds) = quick_setup();
        let videos: Vec<&Video> = ds.train.iter().collect();
        let cfg = TrainConfig { steps: 100, batch_size: 12, ..TrainConfig::fast() };
        train_decision_model(&mut sys, &videos, &cfg);
        let subset = ds.test_subset(AnomalyClass::Stealing);
        let auc = sys.evaluate_auc(&subset);
        assert!(auc > 0.7, "trained AUC too low: {auc}");
    }

    #[test]
    fn weakly_supervised_mode_runs_and_decays_threshold() {
        let (mut sys, ds) = quick_setup();
        let videos: Vec<&Video> = ds.train.iter().collect();
        let cfg = TrainConfig {
            steps: 10,
            batch_size: 4,
            weakly_supervised: true,
            ..TrainConfig::fast()
        };
        let report = train_decision_model(&mut sys, &videos, &cfg);
        assert!(report.final_threshold < 1.0);
        assert!(report.final_threshold > 0.9);
    }

    #[test]
    #[should_panic(expected = "requires normal videos")]
    fn training_rejects_missing_normals() {
        let (mut sys, ds) = quick_setup();
        let videos: Vec<&Video> = ds.train.iter().filter(|v| v.class.is_some()).collect();
        train_decision_model(&mut sys, &videos, &TrainConfig::fast());
    }
}
