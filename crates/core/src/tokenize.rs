//! KG tokenization and the trainable token-embedding table.
//!
//! Every reasoning node's input embedding is the mean of its concept's BPE
//! token embeddings. The table is the *only* parameter set the continuous
//! adaptation phase updates; spare rows are pre-allocated so freshly created
//! nodes can receive a random token embedding without reallocating (which
//! would invalidate optimizer state).
//!
//! A table comes in two storage flavours behind one type: **dense** (a full
//! trainable [`Embedding`] — the engine template, single-tenant systems, and
//! the transient adaptation scratch) and **overlay** (a sparse copy-on-write
//! map of adapted rows over a shared `Arc`'d base — the per-session form,
//! whose resident size is proportional to the rows adaptation actually
//! touched, not the vocabulary). Every read path resolves base-or-overlay per
//! row with arithmetic bit-identical to the dense path, which is what lets
//! the overlay ≡ dense-fork equivalence contract hold bit-for-bit.

use akg_embed::{BpeTokenizer, JointSpace};
use akg_kg::{KnowledgeGraph, NodeId, NodeKind};
use akg_tensor::nn::{Embedding, Module};
use akg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Backing storage of a [`TokenTable`].
#[derive(Debug)]
enum Storage {
    /// Full-capacity trainable embedding.
    Dense(Embedding),
    /// Sparse copy-on-write overlay: rows materialize into `rows` on first
    /// write; everything else reads through to the shared immutable `base`.
    /// A `BTreeMap` keeps iteration (and therefore serialized deltas)
    /// deterministic.
    Overlay { base: Arc<Vec<f32>>, rows: BTreeMap<usize, Vec<f32>> },
}

/// The trainable token-embedding table: BPE vocabulary rows initialized from
/// the joint space, plus spare rows for adaptation-created nodes.
#[derive(Debug)]
pub struct TokenTable {
    storage: Storage,
    vocab_len: usize,
    capacity: usize,
    dim: usize,
    next_spare: usize,
}

impl TokenTable {
    /// Builds the table from a tokenizer's vocabulary and the joint space,
    /// reserving `spare_rows` rows for adaptation-created nodes.
    pub fn new(tokenizer: &BpeTokenizer, space: &JointSpace, spare_rows: usize) -> Self {
        let vocab = tokenizer.vocab();
        let dim = space.dim();
        let mut weights = space.token_table(vocab);
        weights.extend(std::iter::repeat_n(0.0, spare_rows * dim));
        let capacity = vocab.len() + spare_rows;
        TokenTable {
            storage: Storage::Dense(Embedding::from_weights(weights, capacity, dim)),
            vocab_len: vocab.len(),
            capacity,
            dim,
            next_spare: vocab.len(),
        }
    }

    /// Deep-copies the table into an independent *dense* twin: fresh tensor
    /// storage (no shared autograd state with `self`), same resolved weights,
    /// same spare-row cursor. Works from either storage flavour — forking an
    /// overlay densifies it. This is also how adaptation obtains its
    /// transient trainable scratch.
    pub fn fork(&self) -> TokenTable {
        let weights = self.to_dense_vec();
        TokenTable {
            storage: Storage::Dense(Embedding::from_weights(weights, self.capacity, self.dim)),
            vocab_len: self.vocab_len,
            capacity: self.capacity,
            dim: self.dim,
            next_spare: self.next_spare,
        }
    }

    /// A sparse copy-on-write fork over `base` (a flat `[capacity * dim]`
    /// snapshot of this table's resolved weights, shared across sessions).
    /// Starts with zero materialized rows, so its resident footprint is a
    /// cursor and an empty map until adaptation first writes.
    ///
    /// # Panics
    ///
    /// Panics if `base` does not match this table's `capacity * dim`.
    pub fn fork_overlay(&self, base: &Arc<Vec<f32>>) -> TokenTable {
        assert_eq!(
            base.len(),
            self.capacity * self.dim,
            "fork_overlay: base length must be capacity * dim"
        );
        TokenTable {
            storage: Storage::Overlay { base: Arc::clone(base), rows: BTreeMap::new() },
            vocab_len: self.vocab_len,
            capacity: self.capacity,
            dim: self.dim,
            next_spare: self.next_spare,
        }
    }

    /// The spare-row cursor: the next row [`TokenTable::allocate_random_row`]
    /// would hand out. Persisted with deployment state so a restored system
    /// keeps allocating from where it left off.
    pub fn next_spare(&self) -> usize {
        self.next_spare
    }

    /// Restores a persisted spare-row cursor.
    ///
    /// # Panics
    ///
    /// Panics if the cursor lies outside `[vocab_len, capacity]` (it must
    /// point into the spare region or one past its end).
    pub fn restore_spare_cursor(&mut self, next_spare: usize) {
        assert!(
            (self.vocab_len..=self.capacity).contains(&next_spare),
            "spare cursor {next_spare} outside [{}, {}]",
            self.vocab_len,
            self.capacity
        );
        self.next_spare = next_spare;
    }

    /// Non-differentiable mean embedding of the given rows with the *same*
    /// arithmetic as the differentiable [`TokenTable::node_embedding`]
    /// (rows summed in order, then scaled by the reciprocal count) — the
    /// batched serving path uses this to fill node-feature rows without
    /// creating graph nodes while staying bit-identical to the per-window
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any row is out of bounds.
    pub fn node_embedding_mean(&self, rows: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim()];
        self.node_embedding_mean_into(rows, &mut out);
        out
    }

    /// [`TokenTable::node_embedding_mean`] into a caller-provided buffer —
    /// the allocation-free form the inference data plane's node-feature
    /// assembly uses. Same arithmetic, same accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, `out` is not `dim` long, or any row is out
    /// of bounds.
    pub fn node_embedding_mean_into(&self, rows: &[usize], out: &mut [f32]) {
        assert!(!rows.is_empty(), "node_embedding_mean: empty row list");
        let dim = self.dim;
        assert_eq!(out.len(), dim, "node_embedding_mean_into: out must be [dim]");
        let inv = 1.0 / rows.len() as f32;
        match &self.storage {
            Storage::Dense(emb) => emb.weight().with_data(|w| {
                out.fill(0.0);
                for &r in rows {
                    let row = &w[r * dim..(r + 1) * dim];
                    for (o, v) in out.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                for o in out.iter_mut() {
                    *o *= inv;
                }
            }),
            Storage::Overlay { base, rows: adapted } => {
                out.fill(0.0);
                for &r in rows {
                    let row = resolve_row(base, adapted, dim, r);
                    for (o, v) in out.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                for o in out.iter_mut() {
                    *o *= inv;
                }
            }
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows belonging to the base BPE vocabulary.
    pub fn vocab_len(&self) -> usize {
        self.vocab_len
    }

    /// Remaining spare rows.
    pub fn spare_remaining(&self) -> usize {
        self.capacity - self.next_spare
    }

    /// Allocates a spare row initialized with a random unit-scaled embedding
    /// (the paper's "new node with a random token embedding"). Returns the
    /// row index.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a message when the spare pool is exhausted.
    pub fn allocate_random_row(&mut self, rng: &mut StdRng) -> Result<usize, String> {
        if self.next_spare >= self.capacity {
            return Err("token table spare rows exhausted".to_string());
        }
        let row = self.next_spare;
        self.next_spare += 1;
        let dim = self.dim;
        let scale = 1.0 / (dim as f32).sqrt();
        let noise: Vec<f32> = (0..dim).map(|_| rng.gen_range(-scale..scale)).collect();
        match &mut self.storage {
            Storage::Dense(emb) => emb.weight().update_data(|data| {
                data[row * dim..(row + 1) * dim].copy_from_slice(&noise);
            }),
            Storage::Overlay { rows, .. } => {
                rows.insert(row, noise);
            }
        }
        Ok(row)
    }

    /// Differentiable mean embedding of the given rows, shape `[1, dim]`.
    ///
    /// On an overlay table the result is a *constant* tensor (gradients never
    /// flow into an overlay — adaptation trains against a dense scratch fork
    /// and absorbs the result), built with the same summed-in-order,
    /// reciprocal-scaled arithmetic so forward values stay bit-identical to
    /// the dense path.
    pub fn node_embedding(&self, rows: &[usize]) -> Tensor {
        match &self.storage {
            Storage::Dense(emb) => emb.mean_of(rows),
            Storage::Overlay { .. } => {
                Tensor::from_vec(self.node_embedding_mean(rows), &[1, self.dim])
            }
        }
    }

    /// Non-differentiable snapshot of a node's mean embedding.
    pub fn node_embedding_data(&self, rows: &[usize]) -> Vec<f32> {
        let dim = self.dim;
        let mut out = vec![0.0f32; dim];
        match &self.storage {
            Storage::Dense(emb) => {
                let w = emb.weight().to_vec();
                for &r in rows {
                    for c in 0..dim {
                        out[c] += w[r * dim + c];
                    }
                }
            }
            Storage::Overlay { base, rows: adapted } => {
                for &r in rows {
                    let row = resolve_row(base, adapted, dim, r);
                    for c in 0..dim {
                        out[c] += row[c];
                    }
                }
            }
        }
        for v in &mut out {
            *v /= rows.len().max(1) as f32;
        }
        out
    }

    /// A raw row of the table.
    pub fn row_data(&self, row: usize) -> Vec<f32> {
        let dim = self.dim;
        match &self.storage {
            Storage::Dense(emb) => {
                let w = emb.weight().to_vec();
                w[row * dim..(row + 1) * dim].to_vec()
            }
            Storage::Overlay { base, rows } => resolve_row(base, rows, dim, row).to_vec(),
        }
    }

    /// The single trainable parameter (the table itself).
    ///
    /// # Panics
    ///
    /// Panics on an overlay table — overlays have no parameter tensor; fork
    /// a dense scratch with [`TokenTable::fork`] to train against.
    pub fn param(&self) -> Tensor {
        match &self.storage {
            Storage::Dense(emb) => emb.weight().clone(),
            Storage::Overlay { .. } => {
                panic!("TokenTable::param: overlay tables have no parameter tensor")
            }
        }
    }

    /// Freezes/unfreezes the table (frozen during initial decision-model
    /// training, the *only* unfrozen parameter during adaptation). No-op on
    /// an overlay table, which is never differentiated.
    pub fn set_frozen(&self, frozen: bool) {
        match &self.storage {
            Storage::Dense(emb) => emb.set_frozen(frozen),
            Storage::Overlay { .. } => {}
        }
    }

    /// Total row capacity (vocabulary plus spare region).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this table is a sparse copy-on-write overlay.
    pub fn is_overlay(&self) -> bool {
        matches!(self.storage, Storage::Overlay { .. })
    }

    /// Number of rows materialized in the overlay (0 for dense tables).
    pub fn overlay_rows(&self) -> usize {
        match &self.storage {
            Storage::Dense(_) => 0,
            Storage::Overlay { rows, .. } => rows.len(),
        }
    }

    /// The fully resolved weights, flat `[capacity * dim]`, regardless of
    /// storage flavour. The engine uses this to snapshot its trained template
    /// as the shared overlay base; persistence uses it to densify.
    pub fn to_dense_vec(&self) -> Vec<f32> {
        match &self.storage {
            Storage::Dense(emb) => emb.weight().to_vec(),
            Storage::Overlay { base, rows } => {
                let mut out = base.as_ref().clone();
                let dim = self.dim;
                for (r, row) in rows {
                    out[r * dim..(r + 1) * dim].copy_from_slice(row);
                }
                out
            }
        }
    }

    /// Folds a trained dense `scratch` fork back into this table. Dense
    /// tables copy the whole weight matrix; overlays materialize exactly the
    /// rows whose bits differ from the base (and refresh rows already
    /// materialized), so an absorbed overlay resolves bit-identically to the
    /// scratch while staying sparse.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is not dense or its geometry differs.
    pub fn absorb_scratch(&mut self, scratch: &TokenTable) {
        assert!(!scratch.is_overlay(), "absorb_scratch: scratch must be dense");
        assert_eq!(scratch.capacity, self.capacity, "absorb_scratch: capacity mismatch");
        assert_eq!(scratch.dim, self.dim, "absorb_scratch: dim mismatch");
        let values = scratch.to_dense_vec();
        let dim = self.dim;
        match &mut self.storage {
            Storage::Dense(emb) => emb.weight().set_data(&values),
            Storage::Overlay { base, rows } => {
                for r in 0..self.capacity {
                    let fresh = &values[r * dim..(r + 1) * dim];
                    if let Some(existing) = rows.get_mut(&r) {
                        existing.copy_from_slice(fresh);
                    } else {
                        let b = &base[r * dim..(r + 1) * dim];
                        if fresh.iter().zip(b).any(|(f, b)| f.to_bits() != b.to_bits()) {
                            rows.insert(r, fresh.to_vec());
                        }
                    }
                }
            }
        }
        self.next_spare = scratch.next_spare;
    }

    /// The overlay's materialized rows as a sorted `(row, values)` delta —
    /// the compact checkpoint form. Empty for dense tables.
    pub fn overlay_delta(&self) -> Vec<(usize, Vec<f32>)> {
        match &self.storage {
            Storage::Dense(_) => Vec::new(),
            Storage::Overlay { rows, .. } => rows.iter().map(|(r, v)| (*r, v.clone())).collect(),
        }
    }

    /// Replaces the overlay's materialized rows wholesale from a checkpoint
    /// delta (the inverse of [`TokenTable::overlay_delta`]).
    ///
    /// # Panics
    ///
    /// Panics on a dense table, or if a delta row is out of bounds or not
    /// `dim` long — callers validate deltas before applying.
    pub fn apply_overlay_delta(&mut self, delta: &[(usize, Vec<f32>)]) {
        let (capacity, dim) = (self.capacity, self.dim);
        match &mut self.storage {
            Storage::Dense(_) => {
                panic!("apply_overlay_delta: table is dense")
            }
            Storage::Overlay { rows, .. } => {
                rows.clear();
                for (r, v) in delta {
                    assert!(*r < capacity, "apply_overlay_delta: row {r} out of bounds");
                    assert_eq!(v.len(), dim, "apply_overlay_delta: row {r} has wrong dim");
                    rows.insert(*r, v.clone());
                }
            }
        }
    }

    /// Resident heap bytes attributable to this table. Dense tables own the
    /// full weight matrix; overlays own only the materialized rows (plus a
    /// small per-entry map overhead) — the shared base is counted once at the
    /// engine, not per session.
    pub fn state_bytes(&self) -> usize {
        match &self.storage {
            Storage::Dense(_) => self.capacity * self.dim * std::mem::size_of::<f32>(),
            Storage::Overlay { rows, .. } => {
                let per_row = self.dim * std::mem::size_of::<f32>()
                    + std::mem::size_of::<usize>()
                    + std::mem::size_of::<Vec<f32>>();
                rows.len() * per_row
            }
        }
    }
}

/// Resolves a row against an overlay: the materialized copy if present,
/// otherwise the shared base slice.
fn resolve_row<'a>(
    base: &'a [f32],
    rows: &'a BTreeMap<usize, Vec<f32>>,
    dim: usize,
    r: usize,
) -> &'a [f32] {
    match rows.get(&r) {
        Some(v) => v,
        None => &base[r * dim..(r + 1) * dim],
    }
}

/// A KG plus the token rows backing each node and the mission's own text
/// embedding (held by the embedding node, so the hierarchical messages
/// `X_s ⊙ X_d` into it compare propagated reasoning against the mission —
/// a zero embedding node would silence Eq. 2 entirely).
#[derive(Debug, Clone)]
pub struct TokenizedKg {
    /// The graph structure.
    pub kg: KnowledgeGraph,
    /// Token rows (into the [`TokenTable`]) per reasoning node.
    pub node_tokens: HashMap<NodeId, Vec<usize>>,
    /// The mission text's joint-space embedding (embedding-node input).
    pub mission_embedding: Vec<f32>,
}

impl TokenizedKg {
    /// Tokenizes every reasoning node's concept text. `mission_embedding`
    /// is the joint-space embedding of the mission text (see
    /// [`akg_embed::JointSpace::embed_text`]).
    ///
    /// # Panics
    ///
    /// Panics if `mission_embedding` is all zeros (it would block every
    /// hierarchical message into the embedding node).
    pub fn new(kg: KnowledgeGraph, tokenizer: &BpeTokenizer, mission_embedding: Vec<f32>) -> Self {
        assert!(mission_embedding.iter().any(|v| *v != 0.0), "mission embedding must be non-zero");
        let mut node_tokens = HashMap::new();
        for node in kg.nodes() {
            if node.kind == NodeKind::Reasoning {
                let ids: Vec<usize> =
                    tokenizer.encode(&node.concept).into_iter().map(usize::from).collect();
                let ids = if ids.is_empty() { vec![0] } else { ids };
                node_tokens.insert(node.id, ids);
            }
        }
        TokenizedKg { kg, node_tokens, mission_embedding }
    }

    /// Registers a freshly created node backed by the given table rows.
    pub fn register_node(&mut self, id: NodeId, rows: Vec<usize>) {
        self.node_tokens.insert(id, rows);
    }

    /// Forgets a pruned node's token assignment.
    pub fn unregister_node(&mut self, id: NodeId) {
        self.node_tokens.remove(&id);
    }

    /// Token rows of a node.
    pub fn tokens_of(&self, id: NodeId) -> Option<&[usize]> {
        self.node_tokens.get(&id).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_kg::{generate_kg, GeneratorConfig, SyntheticOracle};
    use rand::SeedableRng;

    fn fixture() -> (BpeTokenizer, JointSpace, KnowledgeGraph) {
        let ont = akg_kg::Ontology::new();
        let corpus = ont.corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), 600);
        let space = akg_embed::JointSpaceBuilder::new(16, 13, 3).build();
        let mut oracle = SyntheticOracle::perfect(1);
        let kg = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle).kg;
        (tokenizer, space, kg)
    }

    #[test]
    fn table_dimensions() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 8);
        assert_eq!(table.dim(), 16);
        assert_eq!(table.vocab_len(), tok.vocab().len());
        assert_eq!(table.spare_remaining(), 8);
    }

    #[test]
    fn spare_rows_allocate_until_exhausted() {
        let (tok, space, _) = fixture();
        let mut table = TokenTable::new(&tok, &space, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let r1 = table.allocate_random_row(&mut rng).unwrap();
        let r2 = table.allocate_random_row(&mut rng).unwrap();
        assert_eq!(r2, r1 + 1);
        assert!(table.allocate_random_row(&mut rng).is_err());
        // allocated rows are non-zero
        assert!(table.row_data(r1).iter().any(|v| *v != 0.0));
    }

    #[test]
    fn tokenized_kg_covers_all_reasoning_nodes() {
        let (tok, space, kg) = fixture();
        let reasoning: Vec<NodeId> =
            kg.nodes().filter(|n| n.kind == NodeKind::Reasoning).map(|n| n.id).collect();
        let tkg = TokenizedKg::new(kg, &tok, space.embed_text("stealing"));
        for id in reasoning {
            assert!(tkg.tokens_of(id).is_some(), "node {id} untokenized");
            assert!(!tkg.tokens_of(id).unwrap().is_empty());
        }
    }

    #[test]
    fn node_embedding_matches_manual_mean() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 0);
        let rows = vec![1, 2];
        let t = table.node_embedding(&rows);
        let manual = table.node_embedding_data(&rows);
        for (a, b) in t.to_vec().iter().zip(&manual) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_reach_only_used_rows() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 0);
        table.set_frozen(false);
        let emb = table.node_embedding(&[3]);
        emb.sum_all().backward();
        let grad = table.param().grad().unwrap();
        let dim = table.dim();
        assert!(grad[3 * dim..4 * dim].iter().any(|g| *g != 0.0));
        assert!(grad[..3 * dim].iter().all(|g| *g == 0.0));
    }

    #[test]
    fn frozen_table_retains_no_grad() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 0);
        table.set_frozen(true);
        table.node_embedding(&[0]).sum_all().backward();
        assert!(table.param().grad().is_none());
    }

    #[test]
    fn overlay_reads_are_bit_identical_to_dense() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 4);
        let base = Arc::new(table.to_dense_vec());
        let overlay = table.fork_overlay(&base);
        assert!(overlay.is_overlay());
        assert_eq!(overlay.overlay_rows(), 0);
        let rows = vec![1, 3, 5];
        let mut dense_out = vec![0.0f32; table.dim()];
        let mut overlay_out = vec![0.0f32; table.dim()];
        table.node_embedding_mean_into(&rows, &mut dense_out);
        overlay.node_embedding_mean_into(&rows, &mut overlay_out);
        assert_eq!(
            dense_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            overlay_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(table.node_embedding_data(&rows), overlay.node_embedding_data(&rows));
        assert_eq!(table.node_embedding(&rows).to_vec(), overlay.node_embedding(&rows).to_vec());
        assert_eq!(table.row_data(2), overlay.row_data(2));
        assert_eq!(table.to_dense_vec(), overlay.to_dense_vec());
    }

    #[test]
    fn overlay_allocation_matches_dense_and_stays_sparse() {
        let (tok, space, _) = fixture();
        let mut dense = TokenTable::new(&tok, &space, 2);
        let base = Arc::new(dense.to_dense_vec());
        let mut overlay = dense.fork_overlay(&base);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let rd = dense.allocate_random_row(&mut rng_a).unwrap();
        let ro = overlay.allocate_random_row(&mut rng_b).unwrap();
        assert_eq!(rd, ro);
        assert_eq!(dense.row_data(rd), overlay.row_data(ro));
        assert_eq!(overlay.overlay_rows(), 1);
        assert_eq!(dense.next_spare(), overlay.next_spare());
        assert!(overlay.state_bytes() < dense.state_bytes());
    }

    #[test]
    fn absorb_scratch_materializes_only_changed_rows() {
        let (tok, space, _) = fixture();
        let dense = TokenTable::new(&tok, &space, 2);
        let base = Arc::new(dense.to_dense_vec());
        let mut overlay = dense.fork_overlay(&base);
        let scratch = overlay.fork();
        let dim = scratch.dim();
        scratch.param().update_data(|d| {
            for v in &mut d[3 * dim..4 * dim] {
                *v += 1.0;
            }
        });
        overlay.absorb_scratch(&scratch);
        assert_eq!(overlay.overlay_rows(), 1);
        assert_eq!(overlay.to_dense_vec(), scratch.to_dense_vec());
        let delta = overlay.overlay_delta();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, 3);
        let mut restored = dense.fork_overlay(&base);
        restored.apply_overlay_delta(&delta);
        assert_eq!(restored.to_dense_vec(), overlay.to_dense_vec());
    }
}
