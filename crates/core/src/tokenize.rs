//! KG tokenization and the trainable token-embedding table.
//!
//! Every reasoning node's input embedding is the mean of its concept's BPE
//! token embeddings. The table is the *only* parameter set the continuous
//! adaptation phase updates; spare rows are pre-allocated so freshly created
//! nodes can receive a random token embedding without reallocating (which
//! would invalidate optimizer state).

use akg_embed::{BpeTokenizer, JointSpace};
use akg_kg::{KnowledgeGraph, NodeId, NodeKind};
use akg_tensor::nn::{Embedding, Module};
use akg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// The trainable token-embedding table: BPE vocabulary rows initialized from
/// the joint space, plus spare rows for adaptation-created nodes.
#[derive(Debug)]
pub struct TokenTable {
    emb: Embedding,
    vocab_len: usize,
    capacity: usize,
    next_spare: usize,
}

impl TokenTable {
    /// Builds the table from a tokenizer's vocabulary and the joint space,
    /// reserving `spare_rows` rows for adaptation-created nodes.
    pub fn new(tokenizer: &BpeTokenizer, space: &JointSpace, spare_rows: usize) -> Self {
        let vocab = tokenizer.vocab();
        let dim = space.dim();
        let mut weights = space.token_table(vocab);
        weights.extend(std::iter::repeat_n(0.0, spare_rows * dim));
        let capacity = vocab.len() + spare_rows;
        TokenTable {
            emb: Embedding::from_weights(weights, capacity, dim),
            vocab_len: vocab.len(),
            capacity,
            next_spare: vocab.len(),
        }
    }

    /// Deep-copies the table into an independent twin: fresh tensor storage
    /// (no shared autograd state with `self`), same weights, same spare-row
    /// cursor. This is how a serving session obtains its private adaptive
    /// copy of an engine's trained table — per-stream token updates then
    /// touch only the fork.
    pub fn fork(&self) -> TokenTable {
        let weights = self.emb.weight().to_vec();
        TokenTable {
            emb: Embedding::from_weights(weights, self.capacity, self.dim()),
            vocab_len: self.vocab_len,
            capacity: self.capacity,
            next_spare: self.next_spare,
        }
    }

    /// The spare-row cursor: the next row [`TokenTable::allocate_random_row`]
    /// would hand out. Persisted with deployment state so a restored system
    /// keeps allocating from where it left off.
    pub fn next_spare(&self) -> usize {
        self.next_spare
    }

    /// Restores a persisted spare-row cursor.
    ///
    /// # Panics
    ///
    /// Panics if the cursor lies outside `[vocab_len, capacity]` (it must
    /// point into the spare region or one past its end).
    pub fn restore_spare_cursor(&mut self, next_spare: usize) {
        assert!(
            (self.vocab_len..=self.capacity).contains(&next_spare),
            "spare cursor {next_spare} outside [{}, {}]",
            self.vocab_len,
            self.capacity
        );
        self.next_spare = next_spare;
    }

    /// Non-differentiable mean embedding of the given rows with the *same*
    /// arithmetic as the differentiable [`TokenTable::node_embedding`]
    /// (rows summed in order, then scaled by the reciprocal count) — the
    /// batched serving path uses this to fill node-feature rows without
    /// creating graph nodes while staying bit-identical to the per-window
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any row is out of bounds.
    pub fn node_embedding_mean(&self, rows: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim()];
        self.node_embedding_mean_into(rows, &mut out);
        out
    }

    /// [`TokenTable::node_embedding_mean`] into a caller-provided buffer —
    /// the allocation-free form the inference data plane's node-feature
    /// assembly uses. Same arithmetic, same accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, `out` is not `dim` long, or any row is out
    /// of bounds.
    pub fn node_embedding_mean_into(&self, rows: &[usize], out: &mut [f32]) {
        assert!(!rows.is_empty(), "node_embedding_mean: empty row list");
        let dim = self.dim();
        assert_eq!(out.len(), dim, "node_embedding_mean_into: out must be [dim]");
        self.emb.weight().with_data(|w| {
            out.fill(0.0);
            for &r in rows {
                let row = &w[r * dim..(r + 1) * dim];
                for (o, v) in out.iter_mut().zip(row) {
                    *o += v;
                }
            }
            let inv = 1.0 / rows.len() as f32;
            for o in out.iter_mut() {
                *o *= inv;
            }
        });
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.emb.dim()
    }

    /// Rows belonging to the base BPE vocabulary.
    pub fn vocab_len(&self) -> usize {
        self.vocab_len
    }

    /// Remaining spare rows.
    pub fn spare_remaining(&self) -> usize {
        self.capacity - self.next_spare
    }

    /// Allocates a spare row initialized with a random unit-scaled embedding
    /// (the paper's "new node with a random token embedding"). Returns the
    /// row index.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a message when the spare pool is exhausted.
    pub fn allocate_random_row(&mut self, rng: &mut StdRng) -> Result<usize, String> {
        if self.next_spare >= self.capacity {
            return Err("token table spare rows exhausted".to_string());
        }
        let row = self.next_spare;
        self.next_spare += 1;
        let dim = self.dim();
        let scale = 1.0 / (dim as f32).sqrt();
        let noise: Vec<f32> = (0..dim).map(|_| rng.gen_range(-scale..scale)).collect();
        self.emb.weight().update_data(|data| {
            data[row * dim..(row + 1) * dim].copy_from_slice(&noise);
        });
        Ok(row)
    }

    /// Differentiable mean embedding of the given rows, shape `[1, dim]`.
    pub fn node_embedding(&self, rows: &[usize]) -> Tensor {
        self.emb.mean_of(rows)
    }

    /// Non-differentiable snapshot of a node's mean embedding.
    pub fn node_embedding_data(&self, rows: &[usize]) -> Vec<f32> {
        let dim = self.dim();
        let w = self.emb.weight().to_vec();
        let mut out = vec![0.0f32; dim];
        for &r in rows {
            for c in 0..dim {
                out[c] += w[r * dim + c];
            }
        }
        for v in &mut out {
            *v /= rows.len().max(1) as f32;
        }
        out
    }

    /// A raw row of the table.
    pub fn row_data(&self, row: usize) -> Vec<f32> {
        let dim = self.dim();
        let w = self.emb.weight().to_vec();
        w[row * dim..(row + 1) * dim].to_vec()
    }

    /// The single trainable parameter (the table itself).
    pub fn param(&self) -> Tensor {
        self.emb.weight().clone()
    }

    /// Freezes/unfreezes the table (frozen during initial decision-model
    /// training, the *only* unfrozen parameter during adaptation).
    pub fn set_frozen(&self, frozen: bool) {
        self.emb.set_frozen(frozen);
    }
}

/// A KG plus the token rows backing each node and the mission's own text
/// embedding (held by the embedding node, so the hierarchical messages
/// `X_s ⊙ X_d` into it compare propagated reasoning against the mission —
/// a zero embedding node would silence Eq. 2 entirely).
#[derive(Debug, Clone)]
pub struct TokenizedKg {
    /// The graph structure.
    pub kg: KnowledgeGraph,
    /// Token rows (into the [`TokenTable`]) per reasoning node.
    pub node_tokens: HashMap<NodeId, Vec<usize>>,
    /// The mission text's joint-space embedding (embedding-node input).
    pub mission_embedding: Vec<f32>,
}

impl TokenizedKg {
    /// Tokenizes every reasoning node's concept text. `mission_embedding`
    /// is the joint-space embedding of the mission text (see
    /// [`akg_embed::JointSpace::embed_text`]).
    ///
    /// # Panics
    ///
    /// Panics if `mission_embedding` is all zeros (it would block every
    /// hierarchical message into the embedding node).
    pub fn new(kg: KnowledgeGraph, tokenizer: &BpeTokenizer, mission_embedding: Vec<f32>) -> Self {
        assert!(mission_embedding.iter().any(|v| *v != 0.0), "mission embedding must be non-zero");
        let mut node_tokens = HashMap::new();
        for node in kg.nodes() {
            if node.kind == NodeKind::Reasoning {
                let ids: Vec<usize> =
                    tokenizer.encode(&node.concept).into_iter().map(usize::from).collect();
                let ids = if ids.is_empty() { vec![0] } else { ids };
                node_tokens.insert(node.id, ids);
            }
        }
        TokenizedKg { kg, node_tokens, mission_embedding }
    }

    /// Registers a freshly created node backed by the given table rows.
    pub fn register_node(&mut self, id: NodeId, rows: Vec<usize>) {
        self.node_tokens.insert(id, rows);
    }

    /// Forgets a pruned node's token assignment.
    pub fn unregister_node(&mut self, id: NodeId) {
        self.node_tokens.remove(&id);
    }

    /// Token rows of a node.
    pub fn tokens_of(&self, id: NodeId) -> Option<&[usize]> {
        self.node_tokens.get(&id).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_kg::{generate_kg, GeneratorConfig, SyntheticOracle};
    use rand::SeedableRng;

    fn fixture() -> (BpeTokenizer, JointSpace, KnowledgeGraph) {
        let ont = akg_kg::Ontology::new();
        let corpus = ont.corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), 600);
        let space = akg_embed::JointSpaceBuilder::new(16, 13, 3).build();
        let mut oracle = SyntheticOracle::perfect(1);
        let kg = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle).kg;
        (tokenizer, space, kg)
    }

    #[test]
    fn table_dimensions() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 8);
        assert_eq!(table.dim(), 16);
        assert_eq!(table.vocab_len(), tok.vocab().len());
        assert_eq!(table.spare_remaining(), 8);
    }

    #[test]
    fn spare_rows_allocate_until_exhausted() {
        let (tok, space, _) = fixture();
        let mut table = TokenTable::new(&tok, &space, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let r1 = table.allocate_random_row(&mut rng).unwrap();
        let r2 = table.allocate_random_row(&mut rng).unwrap();
        assert_eq!(r2, r1 + 1);
        assert!(table.allocate_random_row(&mut rng).is_err());
        // allocated rows are non-zero
        assert!(table.row_data(r1).iter().any(|v| *v != 0.0));
    }

    #[test]
    fn tokenized_kg_covers_all_reasoning_nodes() {
        let (tok, space, kg) = fixture();
        let reasoning: Vec<NodeId> =
            kg.nodes().filter(|n| n.kind == NodeKind::Reasoning).map(|n| n.id).collect();
        let tkg = TokenizedKg::new(kg, &tok, space.embed_text("stealing"));
        for id in reasoning {
            assert!(tkg.tokens_of(id).is_some(), "node {id} untokenized");
            assert!(!tkg.tokens_of(id).unwrap().is_empty());
        }
    }

    #[test]
    fn node_embedding_matches_manual_mean() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 0);
        let rows = vec![1, 2];
        let t = table.node_embedding(&rows);
        let manual = table.node_embedding_data(&rows);
        for (a, b) in t.to_vec().iter().zip(&manual) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_reach_only_used_rows() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 0);
        table.set_frozen(false);
        let emb = table.node_embedding(&[3]);
        emb.sum_all().backward();
        let grad = table.param().grad().unwrap();
        let dim = table.dim();
        assert!(grad[3 * dim..4 * dim].iter().any(|g| *g != 0.0));
        assert!(grad[..3 * dim].iter().all(|g| *g == 0.0));
    }

    #[test]
    fn frozen_table_retains_no_grad() {
        let (tok, space, _) = fixture();
        let table = TokenTable::new(&tok, &space, 0);
        table.set_frozen(true);
        table.node_embedding(&[0]).sum_all().backward();
        assert!(table.param().grad().is_none());
    }
}
