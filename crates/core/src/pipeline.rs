//! End-to-end wiring of the three pipeline stages (paper Fig. 2): KG
//! generation (A), decision-model training (B) — and the deployment target
//! that stage (C), continuous adaptation, operates on.
//!
//! [`MissionSystem`] owns every component: tokenizer, joint space, token
//! table, tokenized KGs with layouts, and the decision model.

use crate::config::ModelConfig;
use crate::model::{DecisionModel, KgLayout};
use crate::tokenize::{TokenTable, TokenizedKg};
use akg_data::Frame;
use akg_embed::{BpeTokenizer, JointSpace, JointSpaceBuilder};
use akg_kg::{generate_kg, AnomalyClass, GeneratorConfig, Ontology, SyntheticOracle};
use akg_tensor::nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Observation-noise standard deviation of the synthetic frame encoder.
pub const FRAME_NOISE_STD: f32 = 0.02;

/// A fully-wired mission system: the deployable unit of the paper.
#[derive(Debug)]
pub struct MissionSystem {
    /// The deployed missions (one KG each).
    pub missions: Vec<AnomalyClass>,
    /// The BPE tokenizer (trained on the domain corpus).
    pub tokenizer: BpeTokenizer,
    /// The joint text/frame embedding space (ImageBind substitute).
    pub space: JointSpace,
    /// The trainable token-embedding table.
    pub table: TokenTable,
    /// Tokenized mission KGs.
    pub kgs: Vec<TokenizedKg>,
    /// Execution layouts (rebuilt after structural adaptation).
    pub layouts: Vec<KgLayout>,
    /// The GNN + temporal + head decision model.
    pub model: DecisionModel,
    frame_rng: StdRng,
}

/// Builder inputs for [`MissionSystem::build`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Model dimensions.
    pub model: ModelConfig,
    /// KG generation settings.
    pub generator: GeneratorConfig,
    /// Oracle error profile.
    pub oracle: akg_kg::ErrorProfile,
    /// BPE vocabulary budget.
    pub vocab_budget: usize,
    /// Spare token-table rows reserved for adaptation-created nodes.
    pub spare_rows: usize,
    /// Kernel thread-pool policy. Applied process-wide when the system is
    /// built (tensors are `Rc`-based, so parallelism lives inside the raw
    /// kernels — see [`akg_tensor::par`]); every matmul in the training,
    /// scoring, and adaptation loops, and every batched embedding lookup,
    /// runs under this setting. Results are bit-for-bit identical at any
    /// thread count.
    pub parallelism: akg_tensor::Parallelism,
    /// Master seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            model: ModelConfig::fast(),
            generator: GeneratorConfig::default(),
            oracle: akg_kg::ErrorProfile::realistic(),
            vocab_budget: 700,
            spare_rows: 32,
            parallelism: akg_tensor::Parallelism::Auto,
            seed: 0,
        }
    }
}

impl MissionSystem {
    /// Builds the system for the given missions: trains the BPE tokenizer on
    /// the domain corpus, constructs the joint space with one cluster per
    /// anomaly class (anchoring every ontology concept), generates one
    /// mission-specific KG per mission, tokenizes them, and initializes the
    /// decision model.
    pub fn build(missions: &[AnomalyClass], config: &SystemConfig) -> Self {
        akg_tensor::par::set_parallelism(config.parallelism);
        let ontology = Ontology::new();
        let corpus = ontology.corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), config.vocab_budget);

        // One cluster per anomaly class. Normal-activity words are left
        // *unanchored*: their embeddings are scattered hash-noise
        // directions, so normal footage is directionally diverse — exactly
        // why a mission-trained detector cannot carve a "normal vs
        // everything else" one-class boundary and stays mission-specific
        // (the property Fig. 5's post-shift performance drop rests on).
        let mut space_builder =
            JointSpaceBuilder::new(config.model.embed_dim, AnomalyClass::ALL.len(), config.seed);
        for &(a, b, cos) in ontology.related_classes() {
            space_builder = space_builder.correlate(a.index(), b.index(), cos);
        }
        for class in AnomalyClass::ALL {
            let concepts = ontology.all_concepts(class);
            for (rank, word) in concepts.iter().enumerate() {
                // salient concepts anchor tighter to the class center
                let affinity = 0.85 - 0.3 * (rank as f32 / concepts.len().max(1) as f32);
                space_builder = space_builder.anchor(word, class.index(), affinity);
            }
        }
        let space = space_builder.build();

        let table = TokenTable::new(&tokenizer, &space, config.spare_rows);

        let mut kgs = Vec::with_capacity(missions.len());
        for (i, mission) in missions.iter().enumerate() {
            let mut oracle = SyntheticOracle::new(config.oracle, config.seed ^ (i as u64 + 1));
            let report = generate_kg(mission.name(), &config.generator, &mut oracle);
            let mission_embedding = space.embed_text(mission.name());
            kgs.push(TokenizedKg::new(report.kg, &tokenizer, mission_embedding));
        }
        let layouts: Vec<KgLayout> = kgs.iter().map(KgLayout::new).collect();
        let depths: Vec<usize> = kgs.iter().map(|t| t.kg.depth()).collect();
        let model = DecisionModel::new(&depths, &config.model.with_seed(config.seed));

        MissionSystem {
            missions: missions.to_vec(),
            tokenizer,
            space,
            table,
            kgs,
            layouts,
            model,
            frame_rng: StdRng::seed_from_u64(config.seed ^ 0xF0F0),
        }
    }

    /// Encodes a frame into the joint space (the `E_I(F_t)` of the paper for
    /// our synthetic frames).
    pub fn embed_frame(&mut self, frame: &Frame) -> Vec<f32> {
        let activation = frame.activation();
        self.space.embed_bag(&activation, FRAME_NOISE_STD, &mut self.frame_rng)
    }

    /// Scores one window of frame embeddings (anomaly score `p_A` of the
    /// last frame). Runs in eval mode without recording gradients.
    pub fn score_window(&mut self, window: &[Vec<f32>]) -> f32 {
        let kgs: Vec<&TokenizedKg> = self.kgs.iter().collect();
        let layouts: Vec<&KgLayout> = self.layouts.iter().collect();
        self.model.anomaly_score(&kgs, &layouts, &self.table, window)
    }

    /// Class-probability prediction for one window.
    pub fn predict_window(&mut self, window: &[Vec<f32>]) -> Vec<f32> {
        let kgs: Vec<&TokenizedKg> = self.kgs.iter().collect();
        let layouts: Vec<&KgLayout> = self.layouts.iter().collect();
        self.model.predict(&kgs, &layouts, &self.table, window)
    }

    /// Differentiable logits for one window (used by training and
    /// adaptation).
    pub fn window_logits(&mut self, window: &[Vec<f32>]) -> akg_tensor::Tensor {
        let kgs: Vec<&TokenizedKg> = self.kgs.iter().collect();
        let layouts: Vec<&KgLayout> = self.layouts.iter().collect();
        let embeddings: Vec<akg_tensor::Tensor> = window
            .iter()
            .map(|f| self.model.reasoning_embedding(&kgs, &layouts, &self.table, f))
            .collect();
        let temporal = self.model.temporal_embedding(&embeddings);
        self.model.logits(&temporal)
    }

    /// Rebuilds the execution layout of KG `i` after structural change.
    pub fn rebuild_layout(&mut self, i: usize) {
        self.layouts[i] = KgLayout::new(&self.kgs[i]);
    }

    /// Scores every frame of a video with a rolling window, returning
    /// `(scores, labels)` aligned per frame. The first `window − 1` frames
    /// reuse the partial window (padded by repeating the first frame).
    pub fn score_video(&mut self, video: &akg_data::Video) -> (Vec<f32>, Vec<bool>) {
        let window_len = self.model.config().window;
        let mut scores = Vec::with_capacity(video.len());
        let mut labels = Vec::with_capacity(video.len());
        let mut window: VecDeque<Vec<f32>> = VecDeque::with_capacity(window_len);
        for frame in &video.frames {
            let emb = self.embed_frame(frame);
            if window.len() == window_len {
                window.pop_front();
            }
            window.push_back(emb);
            let mut padded: Vec<Vec<f32>> = window.iter().cloned().collect();
            while padded.len() < window_len {
                padded.insert(0, padded[0].clone());
            }
            scores.push(self.score_window(&padded));
            labels.push(frame.is_anomalous());
        }
        (scores, labels)
    }

    /// Frame-level ROC-AUC over a set of videos (the paper's test metric).
    pub fn evaluate_auc(&mut self, videos: &[&akg_data::Video]) -> f32 {
        let was_training = false;
        let _ = was_training;
        self.model.set_train(false);
        let mut all_scores = Vec::new();
        let mut all_labels = Vec::new();
        for v in videos {
            let (s, l) = self.score_video(v);
            all_scores.extend(s);
            all_labels.extend(l);
        }
        akg_eval::roc_auc(&all_scores, &all_labels)
    }

    /// Freezes everything except the token table (the adaptation regime) or
    /// restores the training regime (model trainable, table frozen).
    pub fn set_adaptation_mode(&mut self, adaptation: bool) {
        self.model.set_frozen(adaptation);
        self.table.set_frozen(!adaptation);
        self.model.set_train(false);
    }

    /// Cost-model dimensions of the deployed system (for Table I).
    pub fn cost_dims(&self) -> akg_cost_dims::ModelDimsLike {
        let nodes = self.kgs.iter().map(|t| t.kg.node_count()).max().unwrap_or(0);
        let edges = self.kgs.iter().map(|t| t.kg.edge_count()).max().unwrap_or(0);
        let levels = self.kgs.iter().map(|t| t.kg.total_levels()).max().unwrap_or(0);
        akg_cost_dims::ModelDimsLike {
            kgs: self.kgs.len(),
            nodes,
            edges,
            levels,
            embed_dim: self.model.config().embed_dim,
            gnn_dim: self.model.config().gnn_dim,
            window: self.model.config().window,
            temporal_inner: self.model.config().temporal_inner,
            heads: self.model.config().heads,
            temporal_layers: self.model.config().temporal_layers,
            classes: self.model.n_classes(),
            token_table_entries: self.table.vocab_len() * self.table.dim(),
        }
    }
}

/// A light mirror of `akg_cost::ModelDims` inputs so `akg-core` does not
/// depend on `akg-cost` (the bench harness converts).
pub mod akg_cost_dims {
    /// Dimension summary consumed by the cost model.
    #[derive(Debug, Clone, Copy)]
    pub struct ModelDimsLike {
        /// Number of mission KGs.
        pub kgs: usize,
        /// Max node count across KGs.
        pub nodes: usize,
        /// Max edge count across KGs.
        pub edges: usize,
        /// Max level count across KGs.
        pub levels: usize,
        /// Joint-embedding dimensionality.
        pub embed_dim: usize,
        /// GNN width.
        pub gnn_dim: usize,
        /// Temporal window.
        pub window: usize,
        /// Temporal inner dimensionality.
        pub temporal_inner: usize,
        /// Attention heads.
        pub heads: usize,
        /// Transformer layers.
        pub temporal_layers: usize,
        /// Decision classes.
        pub classes: usize,
        /// Token-table entries (rows × dim).
        pub token_table_entries: usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_data::{DatasetConfig, SyntheticUcfCrime};

    fn system() -> MissionSystem {
        MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default())
    }

    #[test]
    fn build_wires_all_components() {
        let sys = system();
        assert_eq!(sys.kgs.len(), 1);
        assert_eq!(sys.layouts.len(), 1);
        assert!(sys.kgs[0].kg.validate().is_empty());
        assert_eq!(sys.model.n_classes(), 2);
        assert!(sys.table.spare_remaining() > 0);
    }

    #[test]
    fn embed_frame_produces_model_dim() {
        let mut sys = system();
        let frame = Frame { concepts: vec![("walking".into(), 1.0)], label: None };
        let emb = sys.embed_frame(&frame);
        assert_eq!(emb.len(), sys.model.config().embed_dim);
    }

    #[test]
    fn score_window_in_unit_interval() {
        let mut sys = system();
        sys.model.set_train(false);
        let w = sys.model.config().window;
        let frame = Frame { concepts: vec![("walking".into(), 1.0)], label: None };
        let emb = sys.embed_frame(&frame);
        let score = sys.score_window(&vec![emb; w]);
        assert!((0.0..=1.0).contains(&score), "score {score}");
    }

    #[test]
    fn score_video_aligns_labels() {
        let mut sys = system();
        sys.model.set_train(false);
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.01).with_classes(&[AnomalyClass::Stealing]).with_seed(1),
        );
        let video = ds.train_videos_of(AnomalyClass::Stealing)[0];
        let (scores, labels) = sys.score_video(video);
        assert_eq!(scores.len(), video.len());
        assert_eq!(labels.len(), video.len());
        let (start, end) = video.anomaly_range.unwrap();
        assert!(labels[start] && labels[end - 1]);
    }

    #[test]
    fn adaptation_mode_toggles_freezing() {
        let mut sys = system();
        sys.set_adaptation_mode(true);
        assert!(!sys.model.params()[0].requires_grad_flag());
        assert!(sys.table.param().requires_grad_flag());
        sys.set_adaptation_mode(false);
        assert!(sys.model.params()[0].requires_grad_flag());
        assert!(!sys.table.param().requires_grad_flag());
    }

    #[test]
    fn untrained_auc_near_chance() {
        let mut sys = system();
        sys.model.set_train(false);
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.01).with_classes(&[AnomalyClass::Stealing]).with_seed(2),
        );
        let subset = ds.test_subset(AnomalyClass::Stealing);
        let auc = sys.evaluate_auc(&subset);
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn cost_dims_populated() {
        let sys = system();
        let dims = sys.cost_dims();
        assert!(dims.nodes > 0);
        assert!(dims.edges > 0);
        assert_eq!(dims.kgs, 1);
        assert!(dims.token_table_entries > 0);
    }
}
