//! End-to-end wiring of the three pipeline stages (paper Fig. 2): KG
//! generation (A), decision-model training (B) — and the deployment target
//! that stage (C), continuous adaptation, operates on.
//!
//! [`MissionSystem`] is the single-tenant facade: one shared
//! [`Engine`](crate::engine::Engine) plus exactly one
//! [`Session`](crate::engine::Session), presenting the same API the
//! pre-split monolith had. Multi-stream serving builds on the underlying
//! pair directly (see [`crate::engine`] and the `akg-runtime` crate).

use crate::config::ModelConfig;
use crate::engine::{Engine, Session};
use akg_data::Frame;
use akg_kg::AnomalyClass;

/// Observation-noise standard deviation of the synthetic frame encoder.
pub const FRAME_NOISE_STD: f32 = 0.02;

/// A fully-wired mission system: the deployable unit of the paper, as a
/// thin facade over an [`Engine`] and one [`Session`].
#[derive(Debug)]
pub struct MissionSystem {
    /// The shared, immutable-after-build half: tokenizer, joint space,
    /// trained token table, KG templates, layouts, decision model.
    pub engine: Engine,
    /// The single stream's adaptive state: table fork, KG copies, layouts,
    /// frame RNG.
    pub session: Session,
}

/// Builder inputs for [`MissionSystem::build`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Model dimensions.
    pub model: ModelConfig,
    /// KG generation settings.
    pub generator: akg_kg::GeneratorConfig,
    /// Oracle error profile.
    pub oracle: akg_kg::ErrorProfile,
    /// BPE vocabulary budget.
    pub vocab_budget: usize,
    /// Spare token-table rows reserved for adaptation-created nodes.
    pub spare_rows: usize,
    /// Kernel thread-pool policy. Applied process-wide when the system is
    /// built (tensors are `Rc`-based, so parallelism lives inside the raw
    /// kernels — see [`akg_tensor::par`]); every matmul in the training,
    /// scoring, and adaptation loops, and every batched embedding lookup,
    /// runs under this setting. Results are bit-for-bit identical at any
    /// thread count.
    pub parallelism: akg_tensor::Parallelism,
    /// Kernel compute-backend policy (scalar vs. AVX2+FMA SIMD), applied
    /// process-wide alongside `parallelism` when the system is built — see
    /// [`akg_tensor::backend`]. The default `Auto` uses SIMD wherever the
    /// CPU supports it; force [`akg_tensor::Backend::Scalar`] for bit-exact
    /// reproducibility against non-SIMD hosts or the pre-SIMD history.
    pub backend: akg_tensor::Backend,
    /// Serving-plane numeric precision. [`akg_tensor::Precision::Int8`]
    /// pre-quantizes the frozen decision-model weights once at
    /// [`Engine::build`] (per-row-scaled symmetric int8, see
    /// [`akg_tensor::quant`]); sessions, training, and adaptation stay f32
    /// — only the immutable engine weights change representation. Unlike
    /// `backend`, this is per-engine state, not a process-wide switch.
    pub precision: akg_tensor::Precision,
    /// Master seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            model: ModelConfig::fast(),
            generator: akg_kg::GeneratorConfig::default(),
            oracle: akg_kg::ErrorProfile::realistic(),
            vocab_budget: 700,
            spare_rows: 32,
            parallelism: akg_tensor::Parallelism::Auto,
            backend: akg_tensor::Backend::Auto,
            precision: akg_tensor::Precision::F32,
            seed: 0,
        }
    }
}

impl MissionSystem {
    /// Builds the system for the given missions: an [`Engine::build`] plus
    /// one session seeded exactly as the pre-split monolith seeded its frame
    /// RNG, so single-tenant behaviour is unchanged. The session is a
    /// *dense* fork — initial decision-model training differentiates through
    /// the session's table, which only the dense form supports.
    pub fn build(missions: &[AnomalyClass], config: &SystemConfig) -> Self {
        let engine = Engine::build(missions, config);
        let session = engine.new_session_dense(config.seed ^ 0xF0F0);
        MissionSystem { engine, session }
    }

    /// Encodes a frame into the joint space (the `E_I(F_t)` of the paper for
    /// our synthetic frames).
    pub fn embed_frame(&mut self, frame: &Frame) -> Vec<f32> {
        self.engine.embed_frame(&mut self.session, frame)
    }

    /// Scores one window of frame embeddings (anomaly score `p_A` of the
    /// last frame). Runs without recording gradients into the model.
    pub fn score_window(&self, window: &[Vec<f32>]) -> f32 {
        self.engine.score_window(&self.session, window)
    }

    /// Class-probability prediction for one window.
    pub fn predict_window(&self, window: &[Vec<f32>]) -> Vec<f32> {
        self.engine.predict_window(&self.session, window)
    }

    /// Differentiable logits for one window (used by training and
    /// adaptation).
    pub fn window_logits(&self, window: &[Vec<f32>]) -> akg_tensor::Tensor {
        self.engine.window_logits(&self.session, window)
    }

    /// Rebuilds the execution layout of KG `i` after structural change.
    pub fn rebuild_layout(&mut self, i: usize) {
        self.session.rebuild_layout(i);
    }

    /// Scores every frame of a video with a rolling window, returning
    /// `(scores, labels)` aligned per frame. The first `window − 1` frames
    /// reuse the partial window (padded by repeating the first frame).
    ///
    /// Evaluation runs through a dedicated RNG derived from the engine seed
    /// — it never advances the deployment stream's frame RNG, so evaluating
    /// mid-stream does not perturb subsequent stream results.
    pub fn score_video(&self, video: &akg_data::Video) -> (Vec<f32>, Vec<bool>) {
        self.engine.score_video(&self.session, video)
    }

    /// Frame-level ROC-AUC over a set of videos (the paper's test metric).
    pub fn evaluate_auc(&self, videos: &[&akg_data::Video]) -> f32 {
        self.engine.evaluate_auc(&self.session, videos)
    }

    /// Freezes everything except the token table (the adaptation regime) or
    /// restores the training regime (model trainable, table frozen).
    ///
    /// No train/eval mode switch is involved: the GNN's norms always use
    /// instance statistics (see [`crate::model::HierarchicalGnn::forward`]),
    /// so freezing is the only thing that distinguishes the two regimes.
    pub fn set_adaptation_mode(&mut self, adaptation: bool) {
        self.engine.set_adaptation_mode(&self.session, adaptation);
    }

    /// Cost-model dimensions of the deployed system (for Table I).
    pub fn cost_dims(&self) -> akg_cost_dims::ModelDimsLike {
        let kgs = &self.session.kgs;
        let nodes = kgs.iter().map(|t| t.kg.node_count()).max().unwrap_or(0);
        let edges = kgs.iter().map(|t| t.kg.edge_count()).max().unwrap_or(0);
        let levels = kgs.iter().map(|t| t.kg.total_levels()).max().unwrap_or(0);
        let config = self.engine.model.config();
        akg_cost_dims::ModelDimsLike {
            kgs: kgs.len(),
            nodes,
            edges,
            levels,
            embed_dim: config.embed_dim,
            gnn_dim: config.gnn_dim,
            window: config.window,
            temporal_inner: config.temporal_inner,
            heads: config.heads,
            temporal_layers: config.temporal_layers,
            classes: self.engine.model.n_classes(),
            token_table_entries: self.session.table.vocab_len() * self.session.table.dim(),
        }
    }
}

/// A light mirror of `akg_cost::ModelDims` inputs so `akg-core` does not
/// depend on `akg-cost` (the bench harness converts).
pub mod akg_cost_dims {
    /// Dimension summary consumed by the cost model.
    #[derive(Debug, Clone, Copy)]
    pub struct ModelDimsLike {
        /// Number of mission KGs.
        pub kgs: usize,
        /// Max node count across KGs.
        pub nodes: usize,
        /// Max edge count across KGs.
        pub edges: usize,
        /// Max level count across KGs.
        pub levels: usize,
        /// Joint-embedding dimensionality.
        pub embed_dim: usize,
        /// GNN width.
        pub gnn_dim: usize,
        /// Temporal window.
        pub window: usize,
        /// Temporal inner dimensionality.
        pub temporal_inner: usize,
        /// Attention heads.
        pub heads: usize,
        /// Transformer layers.
        pub temporal_layers: usize,
        /// Decision classes.
        pub classes: usize,
        /// Token-table entries (rows × dim).
        pub token_table_entries: usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_data::{DatasetConfig, SyntheticUcfCrime};
    use akg_tensor::nn::Module;

    fn system() -> MissionSystem {
        MissionSystem::build(&[AnomalyClass::Stealing], &SystemConfig::default())
    }

    #[test]
    fn build_wires_all_components() {
        let sys = system();
        assert_eq!(sys.session.kgs.len(), 1);
        assert_eq!(sys.session.layouts.len(), 1);
        assert!(sys.session.kgs[0].kg.validate().is_empty());
        assert_eq!(sys.engine.model.n_classes(), 2);
        assert!(sys.session.table.spare_remaining() > 0);
    }

    #[test]
    fn embed_frame_produces_model_dim() {
        let mut sys = system();
        let frame = Frame { concepts: vec![("walking".into(), 1.0)], label: None };
        let emb = sys.embed_frame(&frame);
        assert_eq!(emb.len(), sys.engine.model.config().embed_dim);
    }

    #[test]
    fn score_window_in_unit_interval() {
        let mut sys = system();
        let w = sys.engine.model.config().window;
        let frame = Frame { concepts: vec![("walking".into(), 1.0)], label: None };
        let emb = sys.embed_frame(&frame);
        let score = sys.score_window(&vec![emb; w]);
        assert!((0.0..=1.0).contains(&score), "score {score}");
    }

    #[test]
    fn score_video_aligns_labels() {
        let sys = system();
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.01).with_classes(&[AnomalyClass::Stealing]).with_seed(1),
        );
        let video = ds.train_videos_of(AnomalyClass::Stealing)[0];
        let (scores, labels) = sys.score_video(video);
        assert_eq!(scores.len(), video.len());
        assert_eq!(labels.len(), video.len());
        let (start, end) = video.anomaly_range.unwrap();
        assert!(labels[start] && labels[end - 1]);
    }

    #[test]
    fn adaptation_mode_toggles_freezing() {
        let mut sys = system();
        sys.set_adaptation_mode(true);
        assert!(!sys.engine.model.params()[0].requires_grad_flag());
        assert!(sys.session.table.param().requires_grad_flag());
        sys.set_adaptation_mode(false);
        assert!(sys.engine.model.params()[0].requires_grad_flag());
        assert!(!sys.session.table.param().requires_grad_flag());
    }

    #[test]
    fn untrained_auc_near_chance() {
        let sys = system();
        let ds = SyntheticUcfCrime::generate(
            DatasetConfig::scaled(0.01).with_classes(&[AnomalyClass::Stealing]).with_seed(2),
        );
        let subset = ds.test_subset(AnomalyClass::Stealing);
        let auc = sys.evaluate_auc(&subset);
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn cost_dims_populated() {
        let sys = system();
        let dims = sys.cost_dims();
        assert!(dims.nodes > 0);
        assert!(dims.edges > 0);
        assert_eq!(dims.kgs, 1);
        assert!(dims.token_table_entries > 0);
    }
}
