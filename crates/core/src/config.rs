//! Model and training configuration, with the paper's published
//! hyperparameters as the default profile and a scaled-down profile for
//! tests and quick benches.

use serde::{Deserialize, Serialize};

/// Dimensions and hyperparameters of the GNN-based decision model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Joint-embedding dimensionality (ImageBind-Huge uses 1024; our
    /// synthetic joint space defaults to 64, preserving the geometry while
    /// staying laptop-fast).
    pub embed_dim: usize,
    /// GNN layer width `D_l`. The paper uses 8 at every layer.
    pub gnn_dim: usize,
    /// Short-term temporal window `T` (frames per transformer input).
    pub window: usize,
    /// Temporal model inner dimensionality. Paper: 128.
    pub temporal_inner: usize,
    /// Attention heads. Paper: 8.
    pub heads: usize,
    /// Transformer encoder layers.
    pub temporal_layers: usize,
    /// Sparsity loss coefficient λ_spa. Paper: 0.001.
    pub lambda_spa: f32,
    /// Smoothness loss coefficient λ_smt. Paper: 0.001.
    pub lambda_smt: f32,
    /// Decaying threshold α_d for weakly-supervised pseudo-labelling.
    /// Paper: 0.9999.
    pub decay_threshold: f32,
    /// Label smoothing ε of the training/adaptation objective. Keeps scores
    /// calibrated; saturated scores would turn the adaptation trigger's
    /// top-K selection into noise.
    pub label_smoothing: f32,
    /// RNG seed for parameter initialization.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's configuration (Sec. IV-A), with our joint space's
    /// 64-dimensional embeddings.
    pub fn paper() -> Self {
        ModelConfig {
            embed_dim: 64,
            gnn_dim: 8,
            window: 8,
            temporal_inner: 128,
            heads: 8,
            temporal_layers: 1,
            lambda_spa: 0.001,
            lambda_smt: 0.001,
            decay_threshold: 0.9999,
            label_smoothing: 0.1,
            seed: 0,
        }
    }

    /// A scaled-down profile for unit tests and fast experiment smoke runs:
    /// same architecture, smaller widths and window.
    pub fn fast() -> Self {
        ModelConfig {
            embed_dim: 32,
            gnn_dim: 8,
            window: 4,
            temporal_inner: 32,
            heads: 4,
            temporal_layers: 1,
            ..ModelConfig::paper()
        }
    }

    /// Sets the parameter-initialization seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::paper()
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// AdamW learning rate. Paper: 1e-5 (our smaller synthetic problem
    /// trains well at 1e-3; profiles set this).
    pub lr: f32,
    /// Decoupled weight decay. Paper: 1.0.
    pub weight_decay: f32,
    /// Mini-batch size (windows per step). Paper: 128.
    pub batch_size: usize,
    /// Training steps. Paper: 3 000.
    pub steps: usize,
    /// Use weak (video-level) supervision with the decaying-threshold
    /// pseudo-labelling instead of frame labels.
    pub weakly_supervised: bool,
    /// Data-sampling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's published recipe.
    pub fn paper() -> Self {
        TrainConfig {
            lr: 1e-5,
            weight_decay: 1.0,
            batch_size: 128,
            steps: 3000,
            weakly_supervised: false,
            seed: 0,
        }
    }

    /// A fast recipe for tests and smoke runs: higher lr, tiny weight
    /// decay, small batches, few steps — enough to separate the synthetic
    /// classes.
    pub fn fast() -> Self {
        TrainConfig {
            lr: 3e-3,
            weight_decay: 1e-4,
            batch_size: 16,
            steps: 240,
            weakly_supervised: false,
            seed: 0,
        }
    }

    /// Sets the data-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_publication() {
        let m = ModelConfig::paper();
        assert_eq!(m.gnn_dim, 8);
        assert_eq!(m.temporal_inner, 128);
        assert_eq!(m.heads, 8);
        assert_eq!(m.lambda_spa, 0.001);
        assert_eq!(m.lambda_smt, 0.001);
        assert_eq!(m.decay_threshold, 0.9999);
        let t = TrainConfig::paper();
        assert_eq!(t.lr, 1e-5);
        assert_eq!(t.weight_decay, 1.0);
        assert_eq!(t.batch_size, 128);
        assert_eq!(t.steps, 3000);
    }

    #[test]
    fn fast_profile_is_smaller() {
        let fast = ModelConfig::fast();
        let paper = ModelConfig::paper();
        assert!(fast.embed_dim <= paper.embed_dim);
        assert!(fast.window <= paper.window);
        assert!(TrainConfig::fast().steps < TrainConfig::paper().steps);
    }

    #[test]
    fn inner_dim_divisible_by_heads() {
        for cfg in [ModelConfig::paper(), ModelConfig::fast()] {
            assert_eq!(cfg.temporal_inner % cfg.heads, 0);
        }
    }
}
