//! The training objective: cross-entropy plus the MissionGNN-style sparsity
//! (λ_spa) and temporal-smoothness (λ_smt) regularizers on the anomaly
//! score, both set to 0.001 in the paper.

use akg_tensor::Tensor;

/// Differentiable anomaly scores `p_A = 1 − p_N` from a batch of logits
/// `[m, n + 1]`, shape `[m, 1]`.
pub fn anomaly_scores(logits: &Tensor) -> Tensor {
    let probs = logits.softmax_rows();
    probs.slice_cols(0, 1).neg().add_scalar(1.0)
}

/// Sparsity regularizer: the mean anomaly score over the batch. Penalizing
/// it encodes the prior that anomalies are rare.
pub fn sparsity_loss(logits: &Tensor) -> Tensor {
    anomaly_scores(logits).mean_all()
}

/// Temporal smoothness regularizer: the mean squared difference between
/// consecutive anomaly scores, assuming the batch rows are consecutive
/// frames of one sequence. Returns zero for batches shorter than 2.
pub fn smoothness_loss(logits: &Tensor) -> Tensor {
    let scores = anomaly_scores(logits);
    let m = scores.shape()[0];
    if m < 2 {
        return Tensor::scalar(0.0);
    }
    let current = scores.slice_rows(1, m);
    let previous = scores.slice_rows(0, m - 1);
    current.sub(&previous).square().mean_all()
}

/// The full objective `CE + λ_spa · L_spa + λ_smt · L_smt`.
///
/// # Panics
///
/// Panics if `targets.len()` mismatches the batch size.
pub fn decision_loss(
    logits: &Tensor,
    targets: &[usize],
    lambda_spa: f32,
    lambda_smt: f32,
) -> Tensor {
    decision_loss_smoothed(logits, targets, 0.0, lambda_spa, lambda_smt)
}

/// [`decision_loss`] with label smoothing: the true class gets probability
/// `1 − ε`, the rest share `ε`. Smoothing keeps the model's scores
/// calibrated instead of saturating at 0/1 — saturated scores would make
/// the adaptation trigger's top-K selection pure noise.
///
/// # Panics
///
/// Panics if `targets.len()` mismatches the batch size, a target is out of
/// range, or `smoothing` is outside `[0, 1)`.
pub fn decision_loss_smoothed(
    logits: &Tensor,
    targets: &[usize],
    smoothing: f32,
    lambda_spa: f32,
    lambda_smt: f32,
) -> Tensor {
    assert!((0.0..1.0).contains(&smoothing), "smoothing must be in [0, 1)");
    let shape = logits.shape();
    let (m, c) = (shape[0], shape[1]);
    assert_eq!(targets.len(), m, "decision_loss: need one target per row");
    let ce = if smoothing == 0.0 {
        logits.cross_entropy(targets)
    } else {
        let off = smoothing / (c - 1).max(1) as f32;
        let mut soft = vec![off; m * c];
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < c, "decision_loss: target {t} out of range");
            soft[r * c + t] = 1.0 - smoothing;
        }
        logits.cross_entropy_soft(&Tensor::from_vec(soft, &[m, c]))
    };
    let spa = sparsity_loss(logits).mul_scalar(lambda_spa);
    let smt = smoothness_loss(logits).mul_scalar(lambda_smt);
    ce.add(&spa).add(&smt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomaly_scores_complement_normal_prob() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 2.0, 0.0], &[2, 3]);
        let probs = logits.softmax_rows().to_vec();
        let scores = anomaly_scores(&logits).to_vec();
        assert!((scores[0] - (1.0 - probs[0])).abs() < 1e-6);
        assert!((scores[1] - (1.0 - probs[3])).abs() < 1e-6);
    }

    #[test]
    fn sparsity_penalizes_high_anomaly_scores() {
        let anomalous = Tensor::from_vec(vec![-5.0, 5.0], &[1, 2]);
        let normal = Tensor::from_vec(vec![5.0, -5.0], &[1, 2]);
        assert!(sparsity_loss(&anomalous).item() > sparsity_loss(&normal).item());
    }

    #[test]
    fn smoothness_zero_for_constant_scores() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0], &[3, 2]);
        assert!(smoothness_loss(&logits).item() < 1e-8);
    }

    #[test]
    fn smoothness_positive_for_oscillation() {
        let logits = Tensor::from_vec(vec![5.0, -5.0, -5.0, 5.0, 5.0, -5.0], &[3, 2]);
        assert!(smoothness_loss(&logits).item() > 0.1);
    }

    #[test]
    fn smoothness_of_single_row_is_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert_eq!(smoothness_loss(&logits).item(), 0.0);
    }

    #[test]
    fn full_loss_reduces_to_ce_with_zero_lambdas() {
        let logits = Tensor::from_vec(vec![0.3, 0.7, 0.1, 0.9], &[2, 2]);
        let full = decision_loss(&logits, &[0, 1], 0.0, 0.0);
        let ce = logits.cross_entropy(&[0, 1]);
        assert!((full.item() - ce.item()).abs() < 1e-6);
    }

    #[test]
    fn loss_differentiable() {
        let logits = Tensor::from_vec(vec![0.1, -0.1, 0.2, 0.0], &[2, 2]).requires_grad(true);
        decision_loss(&logits, &[0, 1], 0.001, 0.001).backward();
        assert!(logits.grad().is_some());
    }
}
