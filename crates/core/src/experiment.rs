//! Experiment protocols of the paper's evaluation section, shared by the
//! bench harness, the examples and the integration tests:
//!
//! - [`run_trend_shift`] — Fig. 5: test AUC across an anomaly-trend shift,
//!   with vs without continuous KG adaptive learning.
//! - [`run_retrieval_drift`] — Fig. 6: token-embedding drift decoded via
//!   interpretable retrieval.

use crate::adapt::{AdaptConfig, ContinuousAdapter};
use crate::config::TrainConfig;
use crate::pipeline::{MissionSystem, SystemConfig};
use crate::retrieval::InterpretableRetrieval;
use crate::train::train_decision_model;
use akg_data::{AdaptationStream, SyntheticUcfCrime};
use akg_embed::Similarity;
use akg_kg::AnomalyClass;
use serde::{Deserialize, Serialize};

/// Parameters of a Fig. 5-style trend-shift run.
#[derive(Debug, Clone)]
pub struct TrendShiftParams {
    /// The initially trained anomaly class.
    pub initial: AnomalyClass,
    /// The class the trend shifts to.
    pub shifted: AnomalyClass,
    /// Measurement steps before the shift.
    pub steps_before: usize,
    /// Measurement steps after the shift.
    pub steps_after: usize,
    /// Deployed frames streamed between consecutive measurements.
    pub frames_per_step: usize,
    /// Fraction of anomalous frames in the deployment stream.
    pub anomaly_ratio: f64,
    /// System construction settings.
    pub system: SystemConfig,
    /// Initial-training settings.
    pub train: TrainConfig,
    /// Adaptation settings.
    pub adapt: AdaptConfig,
    /// Stream seed.
    pub seed: u64,
}

impl TrendShiftParams {
    /// A laptop-fast default for the given scenario.
    pub fn quick(initial: AnomalyClass, shifted: AnomalyClass) -> Self {
        TrendShiftParams {
            initial,
            shifted,
            steps_before: 2,
            steps_after: 4,
            frames_per_step: 256,
            anomaly_ratio: 0.5,
            system: SystemConfig::default(),
            train: TrainConfig::fast(),
            adapt: AdaptConfig::default(),
            seed: 0,
        }
    }
}

/// One measurement point of a trend-shift run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendShiftPoint {
    /// Continuous-learning step index (0 = right after initial training).
    pub step: usize,
    /// Whether the shift has happened at this step.
    pub after_shift: bool,
    /// Test AUC against the currently active anomaly class.
    pub auc: f32,
    /// Mean shift Δm at measurement time (adaptive runs only).
    pub delta_m: f32,
    /// Cumulative structural replacements (adaptive runs only).
    pub replacements: usize,
}

/// Result of one trend-shift run (one curve of Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendShiftCurve {
    /// Whether continuous KG adaptive learning was enabled.
    pub adaptive: bool,
    /// The measurement series.
    pub points: Vec<TrendShiftPoint>,
}

impl TrendShiftCurve {
    /// Mean AUC over the post-shift steps.
    pub fn post_shift_mean_auc(&self) -> f32 {
        let post: Vec<f32> = self.points.iter().filter(|p| p.after_shift).map(|p| p.auc).collect();
        if post.is_empty() {
            return 0.0;
        }
        post.iter().sum::<f32>() / post.len() as f32
    }

    /// AUC at the final step.
    pub fn final_auc(&self) -> f32 {
        self.points.last().map(|p| p.auc).unwrap_or(0.0)
    }

    /// Mean AUC over all steps (the Table I "Average AUC" entry).
    pub fn mean_auc(&self) -> f32 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.auc).sum::<f32>() / self.points.len() as f32
    }
}

/// Both curves of one Fig. 5 panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendShiftResult {
    /// With continuous KG adaptive learning.
    pub adaptive: TrendShiftCurve,
    /// Without (static KG).
    pub static_kg: TrendShiftCurve,
    /// AUC right after initial training, before deployment.
    pub initial_auc: f32,
}

/// Runs one Fig. 5 panel: trains on the initial class, deploys, streams
/// frames whose anomaly class shifts mid-run, and measures test AUC at every
/// step — once with adaptation enabled and once with a static KG
/// (deterministic seeds make the two runs directly comparable).
pub fn run_trend_shift(dataset: &SyntheticUcfCrime, params: &TrendShiftParams) -> TrendShiftResult {
    let adaptive = run_single(dataset, params, true);
    let static_kg = run_single(dataset, params, false);
    TrendShiftResult { initial_auc: adaptive.0, adaptive: adaptive.1, static_kg: static_kg.1 }
}

fn run_single(
    dataset: &SyntheticUcfCrime,
    params: &TrendShiftParams,
    adaptive: bool,
) -> (f32, TrendShiftCurve) {
    let mut sys = MissionSystem::build(&[params.initial], &params.system);
    let train_videos: Vec<&akg_data::Video> = dataset
        .train
        .iter()
        .filter(|v| v.class.is_none() || v.class == Some(params.initial))
        .collect();
    train_decision_model(&mut sys, &train_videos, &params.train);
    let initial_auc = {
        let subset = dataset.test_subset(params.initial);
        sys.evaluate_auc(&subset)
    };

    let mut adapter = ContinuousAdapter::new(&mut sys, params.adapt);
    if !adaptive {
        // static KG: the adapter machinery is bypassed entirely
        sys.set_adaptation_mode(true); // still frozen; nothing trains
    }
    let mut stream =
        AdaptationStream::new(dataset, params.initial, params.anomaly_ratio, params.seed);
    let mut points = Vec::new();
    let total_steps = params.steps_before + params.steps_after;
    for step in 0..total_steps {
        let after_shift = step >= params.steps_before;
        if step == params.steps_before {
            stream.shift_to(params.shifted);
        }
        for _ in 0..params.frames_per_step {
            let (frame, _) = stream.next_frame();
            if adaptive {
                adapter.observe(&mut sys, &frame);
            } else {
                // static run keeps consuming the stream (embedding advances
                // the same frame RNG as the adaptive run) but never adapts;
                // its AUC comes from evaluate_auc on the test subset below
                let _ = sys.embed_frame(&frame);
            }
        }
        let active = if after_shift { params.shifted } else { params.initial };
        let subset = dataset.test_subset(active);
        let auc = sys.evaluate_auc(&subset);
        points.push(TrendShiftPoint {
            step,
            after_shift,
            auc,
            delta_m: if adaptive { adapter.delta_m() } else { 0.0 },
            replacements: if adaptive { adapter.replacements() } else { 0 },
        });
    }
    (initial_auc, TrendShiftCurve { adaptive, points })
}

/// Parameters of a Fig. 6-style retrieval-drift run.
#[derive(Debug, Clone)]
pub struct RetrievalDriftParams {
    /// Trend-shift protocol driving the adaptation.
    pub shift: TrendShiftParams,
    /// Record the node-embedding snapshot every this many adaptation frames.
    pub snapshot_every: usize,
    /// Words considered "initial" concepts (distance axis 1 of Fig. 6).
    pub initial_words: Vec<String>,
    /// Words considered "other/new" concepts (distance axis 2).
    pub target_words: Vec<String>,
    /// Top-K for word retrieval.
    pub top_k: usize,
    /// Retrieval metric (the paper uses Euclidean).
    pub metric: Similarity,
}

/// One snapshot of the drift trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftSnapshot {
    /// Adaptation frame count at snapshot time.
    pub iteration: usize,
    /// Mean distance of tracked node embeddings to the initial words.
    pub distance_to_initial: f32,
    /// Mean distance to the target words.
    pub distance_to_target: f32,
    /// Top retrieved words across tracked nodes (deduplicated, most common
    /// first).
    pub retrieved: Vec<String>,
}

/// Result of a Fig. 6 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetrievalDriftResult {
    /// The trajectory snapshots.
    pub snapshots: Vec<DriftSnapshot>,
}

impl RetrievalDriftResult {
    /// Whether the trajectory net-moved toward the target concepts.
    pub fn moved_toward_target(&self) -> bool {
        match (self.snapshots.first(), self.snapshots.last()) {
            (Some(first), Some(last)) => {
                let start_gap = first.distance_to_target - first.distance_to_initial;
                let end_gap = last.distance_to_target - last.distance_to_initial;
                end_gap < start_gap
            }
            _ => false,
        }
    }
}

/// Runs the Fig. 6 protocol: adapts through a trend shift while recording
/// node-embedding snapshots and their interpretable retrievals.
pub fn run_retrieval_drift(
    dataset: &SyntheticUcfCrime,
    params: &RetrievalDriftParams,
) -> RetrievalDriftResult {
    let sp = &params.shift;
    let mut sys = MissionSystem::build(&[sp.initial], &sp.system);
    let train_videos: Vec<&akg_data::Video> =
        dataset.train.iter().filter(|v| v.class.is_none() || v.class == Some(sp.initial)).collect();
    train_decision_model(&mut sys, &train_videos, &sp.train);
    let retrieval = InterpretableRetrieval::new(&sys.engine.tokenizer, &sys.engine.space);
    let mut adapter = ContinuousAdapter::new(&mut sys, sp.adapt);
    let mut stream = AdaptationStream::new(dataset, sp.shifted, sp.anomaly_ratio, sp.seed);

    let initial_words: Vec<&str> = params.initial_words.iter().map(String::as_str).collect();
    let target_words: Vec<&str> = params.target_words.iter().map(String::as_str).collect();
    let total = (sp.steps_before + sp.steps_after) * sp.frames_per_step;
    let mut snapshots = Vec::new();
    for i in 0..total {
        let (frame, _) = stream.next_frame();
        adapter.observe(&mut sys, &frame);
        if i % params.snapshot_every == 0 || i + 1 == total {
            let embeddings = adapter.node_embeddings(&sys);
            let mut d_init = 0.0f32;
            let mut d_target = 0.0f32;
            let mut words: Vec<String> = Vec::new();
            for emb in embeddings.values() {
                d_init += retrieval.distance_to_words(emb, &initial_words);
                d_target += retrieval.distance_to_words(emb, &target_words);
                for hit in retrieval.nearest_words(emb, params.top_k, params.metric) {
                    if !words.contains(&hit.word) {
                        words.push(hit.word);
                    }
                }
            }
            let n = embeddings.len().max(1) as f32;
            snapshots.push(DriftSnapshot {
                iteration: i,
                distance_to_initial: d_init / n,
                distance_to_target: d_target / n,
                retrieved: words,
            });
        }
    }
    RetrievalDriftResult { snapshots }
}
