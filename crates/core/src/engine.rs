//! The serving split of the deployed system: one immutable-after-build
//! [`Engine`] holding everything N concurrent streams can share (tokenizer,
//! joint space, trained token table, tokenized mission KGs, execution
//! layouts, decision model), and one small [`Session`] per stream holding
//! everything continuous adaptation mutates (a private fork of the token
//! table, private KG copies and layouts, the frame-embedding RNG).
//!
//! The paper's deployment story (Fig. 2 stage C) is *continuous* scoring of
//! live streams on edge devices; this module is what lets one set of trained
//! weights serve many cameras at once. Per-stream isolation is by
//! construction: a session's pseudo-anomaly updates touch only its own table
//! fork and KG copies, never the engine's artifacts — so stream A's
//! adaptation can never perturb stream B's scores, and batched serving is
//! bit-identical to running each stream alone (property-tested in
//! `akg-runtime`).

use crate::config::ModelConfig;
use crate::model::{DecisionModel, InferWindowItem, KgLayout};
use crate::pipeline::{SystemConfig, FRAME_NOISE_STD};
use crate::tokenize::{TokenTable, TokenizedKg};
use akg_data::Frame;
use akg_embed::{BpeTokenizer, JointSpace, JointSpaceBuilder};
use akg_kg::{generate_kg, AnomalyClass, Ontology, SyntheticOracle};
use akg_tensor::{Workspace, WorkspaceStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A copy-on-write vector: shared (an `Arc` into the engine's immutable
/// template) until first mutable access, at which point it silently
/// materializes a private owned copy. `Deref`/`DerefMut` make it a drop-in
/// replacement for `Vec` at every existing call site — reads never copy,
/// and `session.kgs[i].kg = …`-style writes trigger the materialization.
#[derive(Debug, Clone)]
pub struct CowVec<T: Clone> {
    repr: CowRepr<T>,
}

#[derive(Debug, Clone)]
enum CowRepr<T> {
    Shared(Arc<Vec<T>>),
    Owned(Vec<T>),
}

impl<T: Clone> CowVec<T> {
    /// A shared view of the given template (zero-copy).
    pub fn shared(data: Arc<Vec<T>>) -> Self {
        CowVec { repr: CowRepr::Shared(data) }
    }

    /// A privately owned vector (the dense-fork form).
    pub fn owned(data: Vec<T>) -> Self {
        CowVec { repr: CowRepr::Owned(data) }
    }

    /// Whether the contents are still the shared template (no private copy
    /// has been materialized). Checkpoints use this to skip serializing
    /// state the engine can reconstruct.
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, CowRepr::Shared(_))
    }
}

impl<T: Clone> Deref for CowVec<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        match &self.repr {
            CowRepr::Shared(arc) => arc,
            CowRepr::Owned(v) => v,
        }
    }
}

impl<T: Clone> DerefMut for CowVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        if let CowRepr::Shared(arc) = &self.repr {
            self.repr = CowRepr::Owned(arc.as_ref().clone());
        }
        match &mut self.repr {
            CowRepr::Owned(v) => v,
            CowRepr::Shared(_) => unreachable!("CowVec materialized above"),
        }
    }
}

impl<'a, T: Clone> IntoIterator for &'a CowVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The shareable, immutable-after-build half of a deployed system.
///
/// Everything here is fixed once [`Engine::build`] (plus initial training)
/// completes: model *parameters* live in interior-mutable tensors so the
/// training phase can update them, but the serving path never writes —
/// every scoring entry point takes `&self` and threads per-stream mutable
/// state through an explicit [`Session`].
#[derive(Debug)]
pub struct Engine {
    /// The deployed missions (one KG each).
    pub missions: Vec<AnomalyClass>,
    /// The BPE tokenizer (trained on the domain corpus).
    pub tokenizer: BpeTokenizer,
    /// The joint text/frame embedding space (ImageBind substitute).
    pub space: JointSpace,
    /// The trained token-embedding table — the *template* every session
    /// forks its private adaptive copy from.
    pub table: TokenTable,
    /// Tokenized mission KGs (session templates), `Arc`'d so overlay
    /// sessions can share them without copying.
    pub kgs: Arc<Vec<TokenizedKg>>,
    /// Execution layouts matching [`Engine::kgs`].
    pub layouts: Arc<Vec<KgLayout>>,
    /// The GNN + temporal + head decision model (shared by all sessions).
    pub model: DecisionModel,
    /// Flat snapshot of [`Engine::table`]'s weights, shared by every overlay
    /// session as its copy-on-write base. Valid for the engine's lifetime:
    /// the template table is frozen during training and never written after
    /// build (test-enforced by `adaptation_never_touches_engine_template`).
    table_base: Arc<Vec<f32>>,
    seed: u64,
}

/// Per-stream serving state: everything continuous adaptation mutates.
///
/// Sessions are cheap relative to the engine and fully isolated from each
/// other — the "session-local token-table delta" design made literal: the
/// default session holds a *sparse copy-on-write overlay* over the engine's
/// table (adapted rows only) and shares the engine's KGs/layouts until the
/// first structural edit, so an unadapted session is a few hundred bytes,
/// not a full model copy. [`Engine::new_session_dense`] still hands out the
/// fully private dense fork (single-tenant training systems use it), and the
/// two forms are bit-identical in behaviour — the overlay ≡ dense contract
/// is enforced in `tests/overlay_equivalence.rs`.
#[derive(Debug)]
pub struct Session {
    /// The stream's private adaptive token table (overlay or dense fork).
    pub table: TokenTable,
    /// The stream's KG copies — shared with the engine until structural
    /// adaptation first edits them.
    pub kgs: CowVec<TokenizedKg>,
    /// Execution layouts matching [`Session::kgs`].
    pub layouts: CowVec<KgLayout>,
    /// The stream's frame-embedding noise generator. Per-stream, so scoring
    /// one stream never perturbs another stream's embedding sequence.
    pub frame_rng: StdRng,
    /// The stream's reusable inference workspace: scratch buffers for the
    /// single-stream scoring paths, pooled so steady-state serving
    /// allocates nothing. Interior-mutable because scratch is not semantic
    /// session state — scoring stays `&self` / `&Session` everywhere.
    workspace: RefCell<Workspace>,
}

impl Session {
    /// Rebuilds the execution layout of KG `i` after structural change.
    pub fn rebuild_layout(&mut self, i: usize) {
        self.layouts[i] = KgLayout::new(&self.kgs[i]);
    }

    /// Reseeds the frame-embedding RNG (aligning a session with a replayed
    /// stream).
    pub fn reseed(&mut self, seed: u64) {
        self.frame_rng = StdRng::seed_from_u64(seed);
    }

    /// Allocation counters of the session's inference workspace (the
    /// high-water mark stabilizes once every serving shape has been seen).
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.borrow().stats()
    }

    /// Estimated resident heap bytes this session *privately* owns: the
    /// table fork or overlay rows, plus KG/layout copies when materialized
    /// (shared templates count as pointer-sized). The session-tier bench
    /// reports this as bytes/session; it deliberately excludes the engine's
    /// shared artifacts and the transient workspace pools.
    pub fn state_bytes(&self) -> usize {
        let mut bytes = self.table.state_bytes();
        if self.kgs.is_shared() {
            bytes += std::mem::size_of::<Arc<Vec<TokenizedKg>>>();
        } else {
            for tkg in self.kgs.iter() {
                bytes += tokenized_kg_bytes(tkg);
            }
        }
        if self.layouts.is_shared() {
            bytes += std::mem::size_of::<Arc<Vec<KgLayout>>>();
        } else {
            for layout in self.layouts.iter() {
                bytes += layout_bytes(layout);
            }
        }
        bytes
    }
}

/// Estimated heap bytes of one tokenized KG copy (graph + token map +
/// mission embedding).
fn tokenized_kg_bytes(tkg: &TokenizedKg) -> usize {
    let node_bytes = tkg.kg.node_count() * (std::mem::size_of::<akg_kg::KgNode>() + 16);
    let edge_bytes = tkg.kg.edge_count() * std::mem::size_of::<(akg_kg::NodeId, akg_kg::NodeId)>();
    let token_bytes: usize = tkg
        .node_tokens
        .values()
        .map(|t| t.len() * std::mem::size_of::<usize>() + 2 * std::mem::size_of::<usize>())
        .sum();
    node_bytes + edge_bytes + token_bytes + tkg.mission_embedding.len() * 4
}

/// Estimated heap bytes of one execution layout copy.
fn layout_bytes(layout: &KgLayout) -> usize {
    let mut bytes = layout.rows.len() * std::mem::size_of::<akg_kg::NodeId>()
        + layout.row_of.len() * 3 * std::mem::size_of::<usize>();
    for level in &layout.levels {
        bytes += (level.srcs.len() + level.dsts.len()) * std::mem::size_of::<usize>()
            + (level.inv_counts.len() + level.keep_mask.len()) * 4;
    }
    bytes
}

impl Engine {
    /// Builds the engine for the given missions: trains the BPE tokenizer on
    /// the domain corpus, constructs the joint space with one cluster per
    /// anomaly class (anchoring every ontology concept), generates one
    /// mission-specific KG per mission, tokenizes them, and initializes the
    /// decision model.
    pub fn build(missions: &[AnomalyClass], config: &SystemConfig) -> Self {
        akg_tensor::par::set_parallelism(config.parallelism);
        akg_tensor::backend::set_backend(config.backend);
        let ontology = Ontology::new();
        let corpus = ontology.corpus();
        let tokenizer = BpeTokenizer::train(corpus.iter().map(String::as_str), config.vocab_budget);

        // One cluster per anomaly class. Normal-activity words are left
        // *unanchored*: their embeddings are scattered hash-noise
        // directions, so normal footage is directionally diverse — exactly
        // why a mission-trained detector cannot carve a "normal vs
        // everything else" one-class boundary and stays mission-specific
        // (the property Fig. 5's post-shift performance drop rests on).
        let mut space_builder =
            JointSpaceBuilder::new(config.model.embed_dim, AnomalyClass::ALL.len(), config.seed);
        for &(a, b, cos) in ontology.related_classes() {
            space_builder = space_builder.correlate(a.index(), b.index(), cos);
        }
        for class in AnomalyClass::ALL {
            let concepts = ontology.all_concepts(class);
            for (rank, word) in concepts.iter().enumerate() {
                // salient concepts anchor tighter to the class center
                let affinity = 0.85 - 0.3 * (rank as f32 / concepts.len().max(1) as f32);
                space_builder = space_builder.anchor(word, class.index(), affinity);
            }
        }
        let space = space_builder.build();

        let table = TokenTable::new(&tokenizer, &space, config.spare_rows);

        let mut kgs = Vec::with_capacity(missions.len());
        for (i, mission) in missions.iter().enumerate() {
            let mut oracle = SyntheticOracle::new(config.oracle, config.seed ^ (i as u64 + 1));
            let report = generate_kg(mission.name(), &config.generator, &mut oracle);
            let mission_embedding = space.embed_text(mission.name());
            kgs.push(TokenizedKg::new(report.kg, &tokenizer, mission_embedding));
        }
        let layouts: Vec<KgLayout> = kgs.iter().map(KgLayout::new).collect();
        let depths: Vec<usize> = kgs.iter().map(|t| t.kg.depth()).collect();
        let mut model = DecisionModel::new(&depths, &config.model.with_seed(config.seed));
        // Serving-plane precision is engine state: quantize the frozen
        // weight matrices once here (training later re-derives the codes
        // via `DecisionModel::refresh_quantized`). Sessions fork nothing
        // model-related, so adaptation stays f32 automatically.
        model.set_precision(config.precision);

        let table_base = Arc::new(table.to_dense_vec());
        Engine {
            missions: missions.to_vec(),
            tokenizer,
            space,
            table,
            kgs: Arc::new(kgs),
            layouts: Arc::new(layouts),
            model,
            table_base,
            seed: config.seed,
        }
    }

    /// The master seed the engine was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The serving-plane precision the engine's model weights are held in.
    pub fn precision(&self) -> akg_tensor::Precision {
        self.model.precision()
    }

    /// Bytes the decision model's dense weight matrices occupy at the
    /// engine's precision (the footprint the paper's edge-deployment story
    /// cares about; ≈4× smaller under [`akg_tensor::Precision::Int8`]).
    pub fn model_bytes(&self) -> usize {
        self.model.weight_matrix_bytes()
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// Creates a fresh per-stream session in the default *overlay* form: a
    /// sparse copy-on-write table over the engine's shared base, shared
    /// KG/layout templates (copied only on first structural edit), and a
    /// frame-embedding RNG seeded with `frame_seed`. Behaviour is
    /// bit-identical to [`Engine::new_session_dense`]; the resident
    /// footprint is proportional to what adaptation actually touched.
    pub fn new_session(&self, frame_seed: u64) -> Session {
        Session {
            table: self.table.fork_overlay(&self.table_base),
            kgs: CowVec::shared(Arc::clone(&self.kgs)),
            layouts: CowVec::shared(Arc::clone(&self.layouts)),
            frame_rng: StdRng::seed_from_u64(frame_seed),
            workspace: RefCell::new(Workspace::new()),
        }
    }

    /// Creates a session holding fully private *dense* copies: a trainable
    /// token-table fork plus owned KG/layout vectors. Single-tenant systems
    /// ([`crate::pipeline::MissionSystem`]) use this — initial training
    /// differentiates through the session table, which only the dense form
    /// supports — and the overlay equivalence suite uses it as the oracle.
    pub fn new_session_dense(&self, frame_seed: u64) -> Session {
        Session {
            table: self.table.fork(),
            kgs: CowVec::owned(self.kgs.as_ref().clone()),
            layouts: CowVec::owned(self.layouts.as_ref().clone()),
            frame_rng: StdRng::seed_from_u64(frame_seed),
            workspace: RefCell::new(Workspace::new()),
        }
    }

    /// The shared overlay base (the engine table's flat weight snapshot).
    /// Session-tier rehydration forks fresh overlays against it.
    pub fn table_base(&self) -> &Arc<Vec<f32>> {
        &self.table_base
    }

    /// Encodes a frame into the joint space through the session's private
    /// noise RNG (the `E_I(F_t)` of the paper for our synthetic frames).
    pub fn embed_frame(&self, session: &mut Session, frame: &Frame) -> Vec<f32> {
        let activation = frame.activation();
        self.space.embed_bag(&activation, FRAME_NOISE_STD, &mut session.frame_rng)
    }

    /// Scores one window of frame embeddings against a session's adaptive
    /// state (anomaly score `p_A` of the last frame).
    ///
    /// Serving runs on the inference data plane (raw-slice forwards over
    /// the session's pooled workspace — no autograd, no steady-state
    /// allocation), bit-identical per backend to the autograd plane that
    /// training and adaptation still use.
    pub fn score_window(&self, session: &Session, window: &[Vec<f32>]) -> f32 {
        let refs: Vec<&[f32]> = window.iter().map(Vec::as_slice).collect();
        self.score_window_refs(session, &refs)
    }

    /// [`Engine::score_window`] over borrowed frame slices — the rolling
    /// window / pre-pad callers use this to score without cloning a single
    /// embedding buffer.
    pub fn score_window_refs(&self, session: &Session, window: &[&[f32]]) -> f32 {
        let mut ws = session.workspace.borrow_mut();
        self.model.anomaly_score_infer(
            &session.kgs,
            &session.layouts,
            &session.table,
            window,
            &mut ws,
        )
    }

    /// Class-probability prediction for one window (inference plane; see
    /// [`Engine::score_window`]).
    pub fn predict_window(&self, session: &Session, window: &[Vec<f32>]) -> Vec<f32> {
        let refs: Vec<&[f32]> = window.iter().map(Vec::as_slice).collect();
        let mut ws = session.workspace.borrow_mut();
        let mut out = Vec::new();
        self.model.predict_infer(
            &session.kgs,
            &session.layouts,
            &session.table,
            &refs,
            &mut ws,
            &mut out,
        );
        out
    }

    /// Differentiable logits for one window (training and adaptation run
    /// through this; gradients reach the session's table fork).
    pub fn window_logits(&self, session: &Session, window: &[Vec<f32>]) -> akg_tensor::Tensor {
        self.window_logits_with_table(session, &session.table, window)
    }

    /// [`Engine::window_logits`] against an explicit table — adaptation
    /// trains a transient dense scratch fork through this (the session's own
    /// table may be a non-differentiable overlay), then absorbs the trained
    /// rows back.
    pub fn window_logits_with_table(
        &self,
        session: &Session,
        table: &TokenTable,
        window: &[Vec<f32>],
    ) -> akg_tensor::Tensor {
        let kgs: Vec<&TokenizedKg> = session.kgs.iter().collect();
        let layouts: Vec<&KgLayout> = session.layouts.iter().collect();
        let embeddings: Vec<akg_tensor::Tensor> = window
            .iter()
            .map(|f| self.model.reasoning_embedding(&kgs, &layouts, table, f))
            .collect();
        let temporal = self.model.temporal_embedding(&embeddings);
        self.model.logits(&temporal)
    }

    /// Scores a cross-stream batch — `(session, window)` pairs from up to
    /// `max_batch` different streams — in **one** batched forward: one
    /// matmul per GNN layer over all windows and frames, one head matmul
    /// over all windows. Returns one anomaly score per pair, bit-identical
    /// to calling [`Engine::score_window`] on each pair alone.
    ///
    /// Runs on the inference data plane, scratch coming from the *first*
    /// session's workspace (workspace contents never affect results).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or any window is empty.
    pub fn score_windows_batch(&self, batch: &[(&Session, &[Vec<f32>])]) -> Vec<f32> {
        assert!(!batch.is_empty(), "score_windows_batch: empty batch");
        let ref_windows: Vec<Vec<&[f32]>> =
            batch.iter().map(|(_, window)| window.iter().map(Vec::as_slice).collect()).collect();
        let ref_batch: Vec<(&Session, &[&[f32]])> = batch
            .iter()
            .zip(&ref_windows)
            .map(|(&(session, _), refs)| (session, refs.as_slice()))
            .collect();
        let mut ws = batch[0].0.workspace.borrow_mut();
        let mut out = Vec::with_capacity(batch.len());
        self.score_windows_batch_refs(&ref_batch, &mut ws, &mut out);
        out
    }

    /// The allocation-free core of [`Engine::score_windows_batch`]:
    /// borrowed frame slices in, scores appended to a caller-reused `out`
    /// (cleared first), scratch from a caller-held [`Workspace`]. This is
    /// the entry point the multi-stream runtime serves through.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or any window is empty.
    pub fn score_windows_batch_refs(
        &self,
        batch: &[(&Session, &[&[f32]])],
        ws: &mut Workspace,
        out: &mut Vec<f32>,
    ) {
        let items: Vec<InferWindowItem<'_>> = batch
            .iter()
            .map(|(session, window)| InferWindowItem {
                kgs: &session.kgs,
                layouts: &session.layouts,
                table: &session.table,
                window,
            })
            .collect();
        self.model.anomaly_scores_batch_infer(&items, ws, out);
    }

    /// Scores every frame of a video with a rolling window, returning
    /// `(scores, labels)` aligned per frame. The first `window − 1` frames
    /// reuse the partial window (padded by repeating the first frame).
    ///
    /// Evaluation runs through its own RNG (derived from the engine seed),
    /// *not* the session's stream RNG: scoring a test video must never
    /// perturb the live stream's embedding sequence, and repeated
    /// evaluations of one video are identical.
    pub fn score_video(&self, session: &Session, video: &akg_data::Video) -> (Vec<f32>, Vec<bool>) {
        let mut eval_rng = StdRng::seed_from_u64(self.seed ^ 0xE7A1);
        let window_len = self.model.config().window;
        let mut scores = Vec::with_capacity(video.len());
        let mut labels = Vec::with_capacity(video.len());
        let mut window: VecDeque<Vec<f32>> = VecDeque::with_capacity(window_len);
        for frame in &video.frames {
            let emb = self.space.embed_bag(&frame.activation(), FRAME_NOISE_STD, &mut eval_rng);
            if window.len() == window_len {
                window.pop_front();
            }
            window.push_back(emb);
            // Rolling pre-pad without data movement: the partial window is
            // front-padded by *borrowing* the oldest frame — no per-frame
            // embedding clones, no O(window) front-insert shifts (the old
            // `padded.insert(0, …)` repeated both every frame).
            let oldest = window.front().expect("window is non-empty").as_slice();
            let mut refs: Vec<&[f32]> = Vec::with_capacity(window_len);
            refs.resize(window_len - window.len(), oldest);
            refs.extend(window.iter().map(Vec::as_slice));
            scores.push(self.score_window_refs(session, &refs));
            labels.push(frame.is_anomalous());
        }
        (scores, labels)
    }

    /// Frame-level ROC-AUC over a set of videos (the paper's test metric).
    pub fn evaluate_auc(&self, session: &Session, videos: &[&akg_data::Video]) -> f32 {
        let mut all_scores = Vec::new();
        let mut all_labels = Vec::new();
        for v in videos {
            let (s, l) = self.score_video(session, v);
            all_scores.extend(s);
            all_labels.extend(l);
        }
        akg_eval::roc_auc(&all_scores, &all_labels)
    }

    /// Freezes everything except the session's token table (the adaptation
    /// regime) or restores the training regime (model trainable, table
    /// frozen).
    pub fn set_adaptation_mode(&self, session: &Session, adaptation: bool) {
        use akg_tensor::nn::Module;
        self.model.set_frozen(adaptation);
        session.table.set_frozen(!adaptation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use akg_tensor::nn::Module;

    fn engine() -> Engine {
        Engine::build(&[AnomalyClass::Stealing], &SystemConfig::default())
    }

    #[test]
    fn sessions_are_isolated_forks() {
        let engine = engine();
        let mut a = engine.new_session(1);
        let b = engine.new_session(2);
        let before_b = b.table.to_dense_vec();
        let before_engine = engine.table.param().to_vec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let row = a.table.allocate_random_row(&mut rng).unwrap();
        assert!(a.table.row_data(row).iter().any(|v| *v != 0.0));
        assert_eq!(b.table.to_dense_vec(), before_b, "session B saw session A's update");
        assert_eq!(engine.table.param().to_vec(), before_engine, "engine table mutated");
    }

    #[test]
    fn overlay_sessions_share_until_first_edit() {
        let engine = engine();
        let mut s = engine.new_session(3);
        assert!(s.table.is_overlay());
        assert!(s.kgs.is_shared());
        assert!(s.layouts.is_shared());
        let shared_bytes = s.state_bytes();
        let dense_bytes = engine.new_session_dense(3).state_bytes();
        assert!(
            shared_bytes * 10 <= dense_bytes,
            "overlay session ({shared_bytes} B) not >=10x smaller than dense ({dense_bytes} B)"
        );
        // Structural edit materializes a private copy; the engine template
        // stays untouched.
        let engine_nodes = engine.kgs[0].kg.node_count();
        let id = s.kgs[0].kg.node_ids_at_level(1)[0];
        let _ = s.kgs[0].kg.prune_node(id);
        s.rebuild_layout(0);
        assert!(!s.kgs.is_shared());
        assert!(!s.layouts.is_shared());
        assert_eq!(engine.kgs[0].kg.node_count(), engine_nodes, "engine template mutated");
        assert!(s.kgs[0].kg.node_count() < engine_nodes);
    }

    #[test]
    fn batched_scoring_matches_single_bitwise() {
        let engine = engine();
        engine.model.set_frozen(true);
        let w = engine.config().window;
        let dim = engine.config().embed_dim;
        let sessions: Vec<Session> = (0..3).map(|i| engine.new_session(i)).collect();
        let windows: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|s| {
                (0..w)
                    .map(|t| (0..dim).map(|c| ((s * 31 + t * 7 + c) % 13) as f32 * 0.05).collect())
                    .collect()
            })
            .collect();
        let batch: Vec<(&Session, &[Vec<f32>])> =
            sessions.iter().zip(&windows).map(|(s, w)| (s, w.as_slice())).collect();
        let batched = engine.score_windows_batch(&batch);
        for (i, (session, window)) in batch.iter().enumerate() {
            let single = engine.score_window(session, window);
            assert_eq!(batched[i], single, "item {i} not bit-identical");
        }
    }

    #[test]
    fn score_video_does_not_advance_stream_rng() {
        let engine = engine();
        let mut session = engine.new_session(9);
        let ds = akg_data::SyntheticUcfCrime::generate(
            akg_data::DatasetConfig::scaled(0.01)
                .with_classes(&[AnomalyClass::Stealing])
                .with_seed(3),
        );
        let video = ds.test_subset(AnomalyClass::Stealing)[0];
        let frame = Frame { concepts: vec![("walking".into(), 1.0)], label: None };
        let mut twin = engine.new_session(9);
        let _ = engine.score_video(&session, video);
        let after_eval = engine.embed_frame(&mut session, &frame);
        let without_eval = engine.embed_frame(&mut twin, &frame);
        assert_eq!(after_eval, without_eval, "evaluation perturbed the stream RNG");
    }

    #[test]
    fn score_video_is_repeatable() {
        let engine = engine();
        let session = engine.new_session(4);
        let ds = akg_data::SyntheticUcfCrime::generate(
            akg_data::DatasetConfig::scaled(0.01)
                .with_classes(&[AnomalyClass::Stealing])
                .with_seed(5),
        );
        let video = ds.test_subset(AnomalyClass::Stealing)[0];
        let (s1, _) = engine.score_video(&session, video);
        let (s2, _) = engine.score_video(&session, video);
        assert_eq!(s1, s2);
    }
}
