//! Property tests: generated KGs always satisfy the hierarchical invariants,
//! regardless of oracle error profile or seed; modification ops preserve
//! them.

use akg_kg::generate::{generate_kg, GeneratorConfig};
use akg_kg::modify::{create_node, replace_node, CreateConfig};
use akg_kg::synthetic::{ErrorProfile, SyntheticOracle};
use akg_kg::{AnomalyClass, NodeKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profile_strategy() -> impl Strategy<Value = ErrorProfile> {
    (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.3, 0.3f64..1.0).prop_map(
        |(duplicate_rate, invalid_edge_rate, missing_edge_rate, fix_success_rate)| ErrorProfile {
            duplicate_rate,
            invalid_edge_rate,
            missing_edge_rate,
            fix_success_rate,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generated_kgs_always_validate(
        seed in 0u64..10_000,
        profile in profile_strategy(),
        depth in 2usize..5,
        width in 2usize..6,
        class_idx in 0usize..13,
    ) {
        let mission = AnomalyClass::ALL[class_idx].name();
        let mut oracle = SyntheticOracle::new(profile, seed);
        let cfg = GeneratorConfig { depth, nodes_per_level: width, max_correction_iters: 5 };
        let report = generate_kg(mission, &cfg, &mut oracle);
        let errors = report.kg.validate();
        prop_assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        // terminals always present
        prop_assert!(report.kg.sensor().is_some());
        prop_assert!(report.kg.embedding_node().is_some());
        // every edge connects adjacent levels
        for &(s, d) in report.kg.edges() {
            let ls = report.kg.node(s).unwrap().level;
            let ld = report.kg.node(d).unwrap().level;
            prop_assert_eq!(ls + 1, ld);
        }
    }

    #[test]
    fn create_node_preserves_validity(seed in 0u64..5_000, level in 1usize..4) {
        let mut oracle = SyntheticOracle::perfect(seed);
        let cfg = GeneratorConfig { depth: 3, nodes_per_level: 4, max_correction_iters: 5 };
        let mut kg = generate_kg("robbery", &cfg, &mut oracle).kg;
        let mut rng = StdRng::seed_from_u64(seed);
        let id = create_node(&mut kg, format!("new-{seed}"), level, &CreateConfig::default(), &mut rng)
            .unwrap();
        prop_assert!(kg.validate().is_empty(), "{:?}", kg.validate());
        prop_assert_eq!(kg.node(id).unwrap().kind, NodeKind::Reasoning);
    }

    #[test]
    fn replace_node_keeps_level_population(seed in 0u64..5_000) {
        let mut oracle = SyntheticOracle::perfect(seed);
        let cfg = GeneratorConfig { depth: 3, nodes_per_level: 4, max_correction_iters: 5 };
        let mut kg = generate_kg("stealing", &cfg, &mut oracle).kg;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let level = 2usize;
        let victims = kg.node_ids_at_level(level);
        let before = victims.len();
        let _ = replace_node(&mut kg, victims[0], "fresh", &CreateConfig::default(), &mut rng).unwrap();
        prop_assert_eq!(kg.node_ids_at_level(level).len(), before);
    }

    #[test]
    fn json_round_trip_preserves_structure(seed in 0u64..5_000) {
        let mut oracle = SyntheticOracle::new(ErrorProfile::realistic(), seed);
        let kg = generate_kg("burglary", &GeneratorConfig::default(), &mut oracle).kg;
        let json = kg.to_json().unwrap();
        let back = akg_kg::KnowledgeGraph::from_json(&json).unwrap();
        prop_assert_eq!(back.node_count(), kg.node_count());
        prop_assert_eq!(back.edge_count(), kg.edge_count());
        prop_assert!(back.validate().is_empty());
    }
}
