//! Structural validation of reasoning KGs — the *error detection* stage of
//! the paper's generation loop (Fig. 3).
//!
//! Two error families come straight from the paper: **duplicated concepts**
//! (a concept that already exists at another level) and **invalid edges**
//! (edges that do not connect level `i` to `i + 1`). We additionally check
//! referential integrity (unknown/dangling endpoints), unreachable nodes,
//! and empty levels, which the paper's pruning step implicitly guarantees.

use crate::graph::{KnowledgeGraph, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A violation of the reasoning-KG invariants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KgError {
    /// The same concept text appears on more than one live node.
    DuplicateConcept {
        /// The duplicated concept.
        concept: String,
        /// Nodes carrying it.
        nodes: Vec<NodeId>,
    },
    /// An edge violating the `level i -> i + 1` rule.
    InvalidEdge {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Source level.
        src_level: usize,
        /// Destination level.
        dst_level: usize,
    },
    /// An edge that already exists.
    DuplicateEdge {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A referenced node does not exist (or was pruned).
    UnknownNode {
        /// The missing node.
        node: NodeId,
    },
    /// A reasoning node with no incoming edge (unreachable from the sensor).
    UnreachableNode {
        /// The unreachable node.
        node: NodeId,
    },
    /// A reasoning node with no outgoing edge (cannot influence the
    /// embedding node).
    DeadEndNode {
        /// The dead-end node.
        node: NodeId,
    },
    /// A reasoning level with no live nodes.
    EmptyLevel {
        /// The empty level.
        level: usize,
    },
    /// A structural operation touched the sensor/embedding node.
    TerminalNode {
        /// The terminal node.
        node: NodeId,
    },
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::DuplicateConcept { concept, nodes } => {
                write!(f, "duplicated concept {concept:?} on nodes {nodes:?}")
            }
            KgError::InvalidEdge { src, dst, src_level, dst_level } => write!(
                f,
                "invalid edge {src}->{dst}: levels {src_level}->{dst_level} are not adjacent"
            ),
            KgError::DuplicateEdge { src, dst } => write!(f, "duplicate edge {src}->{dst}"),
            KgError::UnknownNode { node } => write!(f, "unknown node {node}"),
            KgError::UnreachableNode { node } => {
                write!(f, "node {node} has no incoming edge")
            }
            KgError::DeadEndNode { node } => write!(f, "node {node} has no outgoing edge"),
            KgError::EmptyLevel { level } => write!(f, "reasoning level {level} is empty"),
            KgError::TerminalNode { node } => {
                write!(f, "operation not allowed on terminal node {node}")
            }
        }
    }
}

impl std::error::Error for KgError {}

/// Runs every structural check, returning all violations (empty = valid).
pub fn validate(kg: &KnowledgeGraph) -> Vec<KgError> {
    let mut errors = Vec::new();

    // Duplicate concepts among live reasoning nodes.
    let mut by_concept: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for n in kg.nodes() {
        if n.kind == NodeKind::Reasoning {
            by_concept.entry(n.concept.as_str()).or_default().push(n.id);
        }
    }
    let mut dups: Vec<(&str, Vec<NodeId>)> =
        by_concept.into_iter().filter(|(_, v)| v.len() > 1).collect();
    dups.sort();
    for (concept, nodes) in dups {
        errors.push(KgError::DuplicateConcept { concept: concept.to_string(), nodes });
    }

    // Edge endpoint + level checks.
    let mut seen_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
    for &(src, dst) in kg.edges() {
        let (s, d) = (kg.node(src), kg.node(dst));
        match (s, d) {
            (Some(s), Some(d)) => {
                if s.level + 1 != d.level {
                    errors.push(KgError::InvalidEdge {
                        src,
                        dst,
                        src_level: s.level,
                        dst_level: d.level,
                    });
                }
            }
            _ => {
                let missing = if s.is_none() { src } else { dst };
                errors.push(KgError::UnknownNode { node: missing });
            }
        }
        if !seen_edges.insert((src, dst)) {
            errors.push(KgError::DuplicateEdge { src, dst });
        }
    }

    // Connectivity of reasoning nodes (only meaningful once terminals are
    // attached; before that, level-1 nodes legitimately lack parents).
    let terminals_attached = kg.sensor().is_some() && kg.embedding_node().is_some();
    if terminals_attached {
        for n in kg.nodes() {
            if n.kind != NodeKind::Reasoning {
                continue;
            }
            if kg.in_degree(n.id) == 0 {
                errors.push(KgError::UnreachableNode { node: n.id });
            }
            if kg.out_degree(n.id) == 0 {
                errors.push(KgError::DeadEndNode { node: n.id });
            }
        }
    }

    // No empty reasoning level.
    for level in 1..=kg.depth() {
        if kg.node_ids_at_level(level).is_empty() {
            errors.push(KgError::EmptyLevel { level });
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnowledgeGraph;

    fn valid_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new("m", 2);
        let a = kg.add_node("a", 1);
        let b = kg.add_node("b", 2);
        kg.add_edge(a, b).unwrap();
        kg.attach_terminals();
        kg
    }

    #[test]
    fn valid_graph_passes() {
        assert!(valid_kg().validate().is_empty());
    }

    #[test]
    fn duplicate_concept_detected() {
        let mut kg = KnowledgeGraph::new("m", 2);
        let a = kg.add_node("same", 1);
        let b = kg.add_node("same", 2);
        kg.add_edge(a, b).unwrap();
        kg.attach_terminals();
        let errors = kg.validate();
        assert!(errors
            .iter()
            .any(|e| matches!(e, KgError::DuplicateConcept { concept, .. } if concept == "same")));
    }

    #[test]
    fn unreachable_node_detected() {
        let mut kg = valid_kg();
        // level-2 node with no incoming edge
        let orphan = kg.add_node("orphan", 2);
        // give it an outgoing edge so only unreachability fires
        let emb = kg.embedding_node().unwrap();
        kg.add_edge(orphan, emb).unwrap();
        let errors = kg.validate();
        assert!(errors
            .iter()
            .any(|e| matches!(e, KgError::UnreachableNode { node } if *node == orphan)));
    }

    #[test]
    fn dead_end_detected() {
        let mut kg = valid_kg();
        let dead = kg.add_node("dead", 1);
        let sensor = kg.sensor().unwrap();
        kg.add_edge(sensor, dead).unwrap();
        let errors = kg.validate();
        assert!(errors.iter().any(|e| matches!(e, KgError::DeadEndNode { node } if *node == dead)));
    }

    #[test]
    fn empty_level_detected_after_prune() {
        let mut kg = valid_kg();
        let b = kg.nodes().find(|n| n.concept == "b").unwrap().id;
        kg.prune_node(b).unwrap();
        let errors = kg.validate();
        assert!(errors.iter().any(|e| matches!(e, KgError::EmptyLevel { level: 2 })));
    }

    #[test]
    fn pre_terminal_graphs_skip_connectivity() {
        let mut kg = KnowledgeGraph::new("m", 2);
        let a = kg.add_node("a", 1);
        let b = kg.add_node("b", 2);
        kg.add_edge(a, b).unwrap();
        // no terminals yet: 'a' has no in-edge but that's fine pre-attach
        assert!(kg.validate().is_empty());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            KgError::DuplicateConcept { concept: "x".into(), nodes: vec![NodeId(0)] },
            KgError::InvalidEdge { src: NodeId(0), dst: NodeId(1), src_level: 0, dst_level: 2 },
            KgError::EmptyLevel { level: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
