//! The hierarchical reasoning knowledge graph: a levelled DAG with a sensor
//! node at the bottom and an embedding node at the top, matching the paper's
//! definition (Sec. III-B): nodes are short-text concepts pinned to a level,
//! and edges only connect level `i` to level `i + 1`.

use crate::validate::KgError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a node within one [`KnowledgeGraph`]. Ids survive
/// pruning (slots are tombstoned, not reused), so the adaptation phase can
/// track per-node embedding distances across structural changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a node in the hierarchical KG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Receives the frame embedding `E_I(F_t)` (level 0).
    Sensor,
    /// A reasoning concept (levels `1..=depth`).
    Reasoning,
    /// Collects the final reasoning embedding (level `depth + 1`).
    Embedding,
}

/// One node of the KG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KgNode {
    /// Stable id.
    pub id: NodeId,
    /// Short-text concept. Synthetic placeholder names are used for nodes
    /// created during on-edge adaptation.
    pub concept: String,
    /// Hierarchy level: 0 = sensor, `1..=depth` = reasoning,
    /// `depth + 1` = embedding sink.
    pub level: usize,
    /// Node role.
    pub kind: NodeKind,
}

/// A mission-specific hierarchical reasoning KG.
///
/// # Examples
///
/// ```
/// use akg_kg::graph::KnowledgeGraph;
/// let mut kg = KnowledgeGraph::new("stealing", 2);
/// let a = kg.add_node("person", 1);
/// let b = kg.add_node("grab", 2);
/// kg.add_edge(a, b).unwrap();
/// kg.attach_terminals();
/// assert!(kg.validate().is_empty());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    mission: String,
    depth: usize,
    nodes: Vec<Option<KgNode>>,
    edges: Vec<(NodeId, NodeId)>,
    sensor: Option<NodeId>,
    embedding: Option<NodeId>,
}

impl KnowledgeGraph {
    /// Creates an empty KG for `mission` with `depth` reasoning levels.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(mission: impl Into<String>, depth: usize) -> Self {
        assert!(depth > 0, "KnowledgeGraph: depth must be >= 1");
        KnowledgeGraph {
            mission: mission.into(),
            depth,
            nodes: Vec::new(),
            edges: Vec::new(),
            sensor: None,
            embedding: None,
        }
    }

    /// The mission string this KG reasons about.
    pub fn mission(&self) -> &str {
        &self.mission
    }

    /// Number of reasoning levels `d`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total hierarchy levels including sensor and embedding (`d + 2`).
    pub fn total_levels(&self) -> usize {
        self.depth + 2
    }

    /// Adds a reasoning node at `level` (1-based), returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=depth`.
    pub fn add_node(&mut self, concept: impl Into<String>, level: usize) -> NodeId {
        assert!(
            (1..=self.depth).contains(&level),
            "add_node: level {level} outside 1..={}",
            self.depth
        );
        self.push_node(concept.into(), level, NodeKind::Reasoning)
    }

    fn push_node(&mut self, concept: String, level: usize, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(KgNode { id, concept, level, kind }));
        id
    }

    /// Adds an edge, enforcing the hierarchical rule (src level + 1 == dst
    /// level) and rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`KgError::UnknownNode`] if either endpoint does not exist,
    /// [`KgError::InvalidEdge`] if the levels are not adjacent, or
    /// [`KgError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), KgError> {
        let s = self.node(src).ok_or(KgError::UnknownNode { node: src })?;
        let d = self.node(dst).ok_or(KgError::UnknownNode { node: dst })?;
        if s.level + 1 != d.level {
            return Err(KgError::InvalidEdge { src, dst, src_level: s.level, dst_level: d.level });
        }
        if self.edges.contains(&(src, dst)) {
            return Err(KgError::DuplicateEdge { src, dst });
        }
        self.edges.push((src, dst));
        Ok(())
    }

    /// Attaches the sensor node (level 0, wired to every level-1 node) and
    /// the embedding node (level `depth + 1`, wired from every level-`depth`
    /// node), completing the generation procedure. Idempotent for the
    /// terminals themselves; missing wiring is (re)added.
    pub fn attach_terminals(&mut self) {
        let sensor = match self.sensor {
            Some(s) => s,
            None => {
                let id = self.push_node("<sensor>".into(), 0, NodeKind::Sensor);
                self.sensor = Some(id);
                id
            }
        };
        let embedding = match self.embedding {
            Some(e) => e,
            None => {
                let id = self.push_node("<embedding>".into(), self.depth + 1, NodeKind::Embedding);
                self.embedding = Some(id);
                id
            }
        };
        let level1: Vec<NodeId> = self.node_ids_at_level(1);
        for n in level1 {
            let _ = self.add_edge(sensor, n);
        }
        let last: Vec<NodeId> = self.node_ids_at_level(self.depth);
        for n in last {
            let _ = self.add_edge(n, embedding);
        }
    }

    /// The sensor node id, if terminals are attached.
    pub fn sensor(&self) -> Option<NodeId> {
        self.sensor
    }

    /// The embedding node id, if terminals are attached.
    pub fn embedding_node(&self) -> Option<NodeId> {
        self.embedding
    }

    /// Looks up a live node.
    pub fn node(&self, id: NodeId) -> Option<&KgNode> {
        self.nodes.get(id.0).and_then(Option::as_ref)
    }

    /// Renames a node's concept (used when adaptation re-labels an altered
    /// node after interpretable retrieval).
    ///
    /// # Errors
    ///
    /// Returns [`KgError::UnknownNode`] if the node does not exist.
    pub fn rename_node(&mut self, id: NodeId, concept: impl Into<String>) -> Result<(), KgError> {
        match self.nodes.get_mut(id.0).and_then(Option::as_mut) {
            Some(n) => {
                n.concept = concept.into();
                Ok(())
            }
            None => Err(KgError::UnknownNode { node: id }),
        }
    }

    /// Iterates over live nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &KgNode> {
        self.nodes.iter().filter_map(Option::as_ref)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes().count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Ids of live nodes at a hierarchy level.
    pub fn node_ids_at_level(&self, level: usize) -> Vec<NodeId> {
        self.nodes().filter(|n| n.level == level).map(|n| n.id).collect()
    }

    /// Edges whose destination sits at `level` (the `E(l)` of Eq. 2).
    pub fn edges_into_level(&self, level: usize) -> Vec<(NodeId, NodeId)> {
        self.edges
            .iter()
            .copied()
            .filter(|(_, d)| self.node(*d).map(|n| n.level == level).unwrap_or(false))
            .collect()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.edges.iter().filter(|(_, d)| *d == id).count()
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.edges.iter().filter(|(s, _)| *s == id).count()
    }

    /// Whether a concept string already appears on a live node.
    pub fn has_concept(&self, concept: &str) -> bool {
        self.nodes().any(|n| n.concept == concept)
    }

    /// Removes a node and every incident edge (the paper's *node pruning*).
    /// The id is tombstoned and never reused.
    ///
    /// # Errors
    ///
    /// Returns [`KgError::UnknownNode`] if the node does not exist, or
    /// [`KgError::TerminalNode`] when asked to prune the sensor/embedding
    /// node.
    pub fn prune_node(&mut self, id: NodeId) -> Result<KgNode, KgError> {
        let node = self.node(id).ok_or(KgError::UnknownNode { node: id })?.clone();
        if node.kind != NodeKind::Reasoning {
            return Err(KgError::TerminalNode { node: id });
        }
        self.edges.retain(|(s, d)| *s != id && *d != id);
        self.nodes[id.0] = None;
        Ok(node)
    }

    /// Validates the structural invariants, returning every violation found
    /// (empty = valid). See [`crate::validate`] for the checked rules.
    pub fn validate(&self) -> Vec<KgError> {
        crate::validate::validate(self)
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a serialization error message if encoding fails.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a parse error message if decoding fails.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new("stealing", 2);
        let a = kg.add_node("person", 1);
        let b = kg.add_node("bag", 1);
        let c = kg.add_node("grab", 2);
        kg.add_edge(a, c).unwrap();
        kg.add_edge(b, c).unwrap();
        kg.attach_terminals();
        kg
    }

    #[test]
    fn build_and_count() {
        let kg = two_level_kg();
        assert_eq!(kg.node_count(), 5); // 3 reasoning + sensor + embedding
        assert_eq!(kg.total_levels(), 4);
        // sensor->2 level-1 nodes, 2 reasoning edges, 1 -> embedding
        assert_eq!(kg.edge_count(), 2 + 2 + 1);
    }

    #[test]
    fn edge_level_rule_enforced() {
        let mut kg = KnowledgeGraph::new("m", 3);
        let a = kg.add_node("x", 1);
        let b = kg.add_node("y", 3);
        let err = kg.add_edge(a, b).unwrap_err();
        assert!(matches!(err, KgError::InvalidEdge { .. }));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut kg = KnowledgeGraph::new("m", 2);
        let a = kg.add_node("x", 1);
        let b = kg.add_node("y", 2);
        kg.add_edge(a, b).unwrap();
        assert!(matches!(kg.add_edge(a, b), Err(KgError::DuplicateEdge { .. })));
    }

    #[test]
    fn prune_removes_node_and_edges() {
        let mut kg = two_level_kg();
        let grab = kg.nodes().find(|n| n.concept == "grab").unwrap().id;
        let before = kg.edge_count();
        let pruned = kg.prune_node(grab).unwrap();
        assert_eq!(pruned.concept, "grab");
        assert!(kg.node(grab).is_none());
        assert!(kg.edge_count() < before);
        assert!(kg.edges().iter().all(|(s, d)| *s != grab && *d != grab));
    }

    #[test]
    fn prune_terminal_rejected() {
        let mut kg = two_level_kg();
        let sensor = kg.sensor().unwrap();
        assert!(matches!(kg.prune_node(sensor), Err(KgError::TerminalNode { .. })));
    }

    #[test]
    fn ids_stable_after_prune() {
        let mut kg = two_level_kg();
        let bag = kg.nodes().find(|n| n.concept == "bag").unwrap().id;
        kg.prune_node(bag).unwrap();
        let d = kg.add_node("wallet", 1);
        assert_ne!(d, bag, "tombstoned id must not be reused");
        assert_eq!(kg.node(d).unwrap().concept, "wallet");
    }

    #[test]
    fn attach_terminals_idempotent() {
        let mut kg = two_level_kg();
        let nodes = kg.node_count();
        let edges = kg.edge_count();
        kg.attach_terminals();
        assert_eq!(kg.node_count(), nodes);
        assert_eq!(kg.edge_count(), edges);
    }

    #[test]
    fn edges_into_level_filters() {
        let kg = two_level_kg();
        assert_eq!(kg.edges_into_level(2).len(), 2);
        assert_eq!(kg.edges_into_level(1).len(), 2); // from sensor
    }

    #[test]
    fn json_round_trip() {
        let kg = two_level_kg();
        let json = kg.to_json().unwrap();
        let back = KnowledgeGraph::from_json(&json).unwrap();
        assert_eq!(back.node_count(), kg.node_count());
        assert_eq!(back.edge_count(), kg.edge_count());
        assert_eq!(back.mission(), kg.mission());
        assert!(back.validate().is_empty());
    }

    #[test]
    fn rename_node_updates_concept() {
        let mut kg = two_level_kg();
        let person = kg.nodes().find(|n| n.concept == "person").unwrap().id;
        kg.rename_node(person, "figure").unwrap();
        assert_eq!(kg.node(person).unwrap().concept, "figure");
    }
}
