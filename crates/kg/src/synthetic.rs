//! A deterministic, seeded [`ConceptOracle`] backed by the built-in
//! [`Ontology`] — the GPT-4/ConceptNet substitute.
//!
//! The oracle is intentionally imperfect: it injects duplicated concepts,
//! invalid edges and stranded concepts at configurable rates, and repairs
//! them with a configurable success probability, so the generation loop's
//! error-detection / correction / pruning machinery (paper Fig. 3) is
//! genuinely exercised rather than dead code.

use crate::ontology::{AnomalyClass, Ontology, Theme};
use crate::oracle::{ConceptOracle, DraftError, LevelDraft};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Error-injection and repair behaviour of the synthetic oracle.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorProfile {
    /// Probability that a proposed concept duplicates an earlier one.
    pub duplicate_rate: f64,
    /// Probability that a proposed edge has a hallucinated source.
    pub invalid_edge_rate: f64,
    /// Probability that a draft concept is left with no incoming edge.
    pub missing_edge_rate: f64,
    /// Probability that a requested correction actually fixes the error.
    pub fix_success_rate: f64,
}

impl ErrorProfile {
    /// A well-behaved oracle that never errs (useful in unit tests).
    pub fn perfect() -> Self {
        ErrorProfile {
            duplicate_rate: 0.0,
            invalid_edge_rate: 0.0,
            missing_edge_rate: 0.0,
            fix_success_rate: 1.0,
        }
    }

    /// A GPT-4-like profile: occasional errors, corrections usually work.
    pub fn realistic() -> Self {
        ErrorProfile {
            duplicate_rate: 0.08,
            invalid_edge_rate: 0.08,
            missing_edge_rate: 0.05,
            fix_success_rate: 0.8,
        }
    }

    /// A sloppy profile that stresses the correction loop and pruning path.
    pub fn adversarial() -> Self {
        ErrorProfile {
            duplicate_rate: 0.35,
            invalid_edge_rate: 0.35,
            missing_edge_rate: 0.25,
            fix_success_rate: 0.4,
        }
    }
}

impl Default for ErrorProfile {
    fn default() -> Self {
        ErrorProfile::realistic()
    }
}

/// Deterministic concept oracle over the surveillance [`Ontology`].
#[derive(Debug)]
pub struct SyntheticOracle {
    ontology: Ontology,
    rng: StdRng,
    profile: ErrorProfile,
    fresh_counter: usize,
}

impl SyntheticOracle {
    /// Creates an oracle with the given error profile and seed.
    pub fn new(profile: ErrorProfile, seed: u64) -> Self {
        SyntheticOracle {
            ontology: Ontology::new(),
            rng: StdRng::seed_from_u64(seed),
            profile,
            fresh_counter: 0,
        }
    }

    /// A perfect oracle (no injected errors).
    pub fn perfect(seed: u64) -> Self {
        SyntheticOracle::new(ErrorProfile::perfect(), seed)
    }

    /// The backing ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    fn class_of(&self, mission: &str) -> AnomalyClass {
        if let Some(c) = AnomalyClass::from_name(mission) {
            return c;
        }
        // Sub-string match ("detect stealing incidents" -> Stealing), else a
        // deterministic hash pick so arbitrary missions still work.
        let lower = mission.to_lowercase();
        for c in AnomalyClass::ALL {
            if lower.contains(c.name()) {
                return c;
            }
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in lower.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        AnomalyClass::ALL[(h % 13) as usize]
    }

    /// Concept pool for a level: the themed list, then neighbour themes as
    /// overflow so large levels stay distinct.
    fn pool(&self, class: AnomalyClass, level: usize) -> Vec<String> {
        let mut pool: Vec<String> = self
            .ontology
            .concepts(class, Theme::for_level(level))
            .iter()
            .map(|s| s.to_string())
            .collect();
        for offset in 1..Theme::ORDER.len() {
            for &w in self.ontology.concepts(class, Theme::for_level(level + offset)) {
                if !pool.iter().any(|p| p == w) {
                    pool.push(w.to_string());
                }
            }
        }
        pool
    }

    fn fresh_concept(&mut self, class: AnomalyClass, level: usize, used: &[String]) -> String {
        for candidate in self.pool(class, level) {
            if !used.contains(&candidate) {
                return candidate;
            }
        }
        self.fresh_counter += 1;
        format!("{}-aspect-{}", class.name().replace(' ', "-"), self.fresh_counter)
    }
}

impl ConceptOracle for SyntheticOracle {
    fn initial_concepts(&mut self, mission: &str, count: usize) -> Vec<String> {
        let class = self.class_of(mission);
        let pool = self.pool(class, 1);
        let mut out: Vec<String> = Vec::with_capacity(count);
        for i in 0..count {
            let pick = pool[i % pool.len()].clone();
            // duplicate injection (within-draft duplicate at level 1)
            if i > 0 && self.rng.gen_bool(self.profile.duplicate_rate) {
                out.push(out[0].clone());
            } else {
                out.push(pick);
            }
        }
        out
    }

    fn next_concepts(
        &mut self,
        mission: &str,
        level: usize,
        previous: &[String],
        count: usize,
    ) -> Vec<String> {
        let class = self.class_of(mission);
        let pool = self.pool(class, level);
        let mut out: Vec<String> = Vec::with_capacity(count);
        for i in 0..count {
            if !previous.is_empty() && self.rng.gen_bool(self.profile.duplicate_rate) {
                // the classic LLM failure: re-emitting an earlier concept
                let j = self.rng.gen_range(0..previous.len());
                out.push(previous[j].clone());
            } else {
                out.push(pool[i % pool.len()].clone());
            }
        }
        out
    }

    fn propose_edges(
        &mut self,
        _mission: &str,
        previous: &[String],
        draft: &[String],
    ) -> Vec<(String, String)> {
        let mut edges = Vec::new();
        if previous.is_empty() {
            return edges;
        }
        let mut used_sources = std::collections::HashSet::new();
        for dst in draft {
            if self.rng.gen_bool(self.profile.missing_edge_rate) {
                continue; // leave the concept stranded
            }
            let fanin = 1 + self.rng.gen_range(0..2usize.min(previous.len()));
            let mut picked = std::collections::HashSet::new();
            for _ in 0..fanin {
                let j = self.rng.gen_range(0..previous.len());
                if !picked.insert(j) {
                    continue;
                }
                if self.rng.gen_bool(self.profile.invalid_edge_rate) {
                    self.fresh_counter += 1;
                    edges.push((format!("hallucinated-{}", self.fresh_counter), dst.clone()));
                } else {
                    used_sources.insert(j);
                    edges.push((previous[j].clone(), dst.clone()));
                }
            }
        }
        // Coverage pass: wire any previous-level concept that was never used
        // as a source to a random draft concept, so no node is left unable
        // to influence the embedding node (the generation prompt asks the
        // LLM for full level-to-level connectivity).
        if !draft.is_empty() {
            for (j, src) in previous.iter().enumerate() {
                if used_sources.contains(&j) {
                    continue;
                }
                if self.rng.gen_bool(self.profile.missing_edge_rate) {
                    continue; // injected coverage failure
                }
                let d = self.rng.gen_range(0..draft.len());
                let edge = (src.clone(), draft[d].clone());
                if !edges.contains(&edge) {
                    edges.push(edge);
                }
            }
        }
        edges
    }

    fn correct(
        &mut self,
        mission: &str,
        previous: &[String],
        draft: &mut LevelDraft,
        errors: &[DraftError],
    ) {
        let class = self.class_of(mission);
        for error in errors {
            if !self.rng.gen_bool(self.profile.fix_success_rate) {
                continue; // correction attempt failed; loop will retry/prune
            }
            match error {
                DraftError::DuplicateConcept { concept } => {
                    // replace the *last* occurrence with a fresh concept and
                    // retarget its edges
                    if let Some(pos) = draft.concepts.iter().rposition(|c| c == concept) {
                        let mut used = draft.concepts.clone();
                        used.extend(previous.iter().cloned());
                        let fresh = self.fresh_concept(class, draft.level, &used);
                        let old = draft.concepts[pos].clone();
                        draft.concepts[pos] = fresh.clone();
                        let mut retargeted = false;
                        for e in &mut draft.edges {
                            if e.1 == old && !retargeted {
                                e.1 = fresh.clone();
                                retargeted = true;
                            }
                        }
                        if !retargeted && !previous.is_empty() {
                            let j = self.rng.gen_range(0..previous.len());
                            draft.edges.push((previous[j].clone(), fresh));
                        }
                    }
                }
                DraftError::InvalidEdgeSource { src, dst } => {
                    if let Some(e) = draft.edges.iter_mut().find(|(s, d)| s == src && d == dst) {
                        if previous.is_empty() {
                            continue;
                        }
                        let j = self.rng.gen_range(0..previous.len());
                        e.0 = previous[j].clone();
                    }
                }
                DraftError::InvalidEdgeTarget { src, dst } => {
                    draft.edges.retain(|(s, d)| !(s == src && d == dst));
                }
                DraftError::UnconnectedConcept { concept } => {
                    if previous.is_empty() {
                        continue;
                    }
                    let j = self.rng.gen_range(0..previous.len());
                    draft.edges.push((previous[j].clone(), concept.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::detect_errors;

    #[test]
    fn perfect_oracle_produces_clean_drafts() {
        let mut oracle = SyntheticOracle::perfect(1);
        let previous = oracle.initial_concepts("stealing", 3);
        let concepts = oracle.next_concepts("stealing", 2, &previous, 4);
        let edges = oracle.propose_edges("stealing", &previous, &concepts);
        let draft = LevelDraft { level: 2, concepts, edges };
        let errors = detect_errors(&draft, &previous, |_| false);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn adversarial_oracle_errs_eventually() {
        let mut oracle = SyntheticOracle::new(ErrorProfile::adversarial(), 2);
        let previous = oracle.initial_concepts("robbery", 4);
        let mut found_error = false;
        for _ in 0..10 {
            let concepts = oracle.next_concepts("robbery", 2, &previous, 4);
            let edges = oracle.propose_edges("robbery", &previous, &concepts);
            let draft = LevelDraft { level: 2, concepts, edges };
            if !detect_errors(&draft, &previous, |_| false).is_empty() {
                found_error = true;
                break;
            }
        }
        assert!(found_error, "adversarial profile never injected an error");
    }

    #[test]
    fn corrections_reduce_errors() {
        let mut oracle = SyntheticOracle::new(
            ErrorProfile { fix_success_rate: 1.0, ..ErrorProfile::adversarial() },
            3,
        );
        let previous = vec!["person".to_string(), "bag".to_string()];
        let mut draft = LevelDraft {
            level: 2,
            concepts: vec!["grab".into(), "grab".into(), "stranded".into()],
            edges: vec![("person".into(), "grab".into()), ("ghost".into(), "grab".into())],
        };
        let before = detect_errors(&draft, &previous, |_| false);
        assert!(!before.is_empty());
        // a few correction rounds with guaranteed fix success must converge
        for _ in 0..8 {
            let errors = detect_errors(&draft, &previous, |_| false);
            if errors.is_empty() {
                break;
            }
            oracle.correct("stealing", &previous, &mut draft, &errors);
        }
        let after = detect_errors(&draft, &previous, |_| false);
        assert!(after.len() < before.len(), "before {before:?} after {after:?}");
    }

    #[test]
    fn mission_resolution_handles_phrases() {
        let oracle = SyntheticOracle::perfect(4);
        assert_eq!(oracle.class_of("detect stealing in parking lots"), AnomalyClass::Stealing);
        assert_eq!(oracle.class_of("explosion"), AnomalyClass::Explosion);
        // unknown missions deterministically map to some class
        let a = oracle.class_of("watch for gremlins");
        let b = oracle.class_of("watch for gremlins");
        assert_eq!(a, b);
    }

    #[test]
    fn determinism_given_seed() {
        let mut a = SyntheticOracle::new(ErrorProfile::realistic(), 9);
        let mut b = SyntheticOracle::new(ErrorProfile::realistic(), 9);
        assert_eq!(a.initial_concepts("robbery", 4), b.initial_concepts("robbery", 4));
    }

    #[test]
    fn fresh_concepts_avoid_used() {
        let mut oracle = SyntheticOracle::perfect(5);
        let used: Vec<String> = oracle.pool(AnomalyClass::Stealing, 1).to_vec();
        let fresh = oracle.fresh_concept(AnomalyClass::Stealing, 1, &used);
        assert!(!used.contains(&fresh));
    }
}
