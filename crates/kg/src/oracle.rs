//! The concept-oracle abstraction: the interface the KG generation framework
//! (Fig. 3) uses to talk to "the LLM". Production deployments of the paper
//! would back this with GPT-4; this reproduction backs it with
//! [`crate::synthetic::SyntheticOracle`].

use serde::{Deserialize, Serialize};

/// A proposed expansion of the KG by one level: new concepts plus edges from
/// the previous level's concepts, exactly what the LLM emits per iteration
/// of the paper's expansion loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelDraft {
    /// The reasoning level being drafted (1-based).
    pub level: usize,
    /// Proposed concept texts for this level.
    pub concepts: Vec<String>,
    /// Proposed edges as `(source concept, draft concept)` pairs. Sources
    /// must name concepts of the previous level; targets must name draft
    /// concepts.
    pub edges: Vec<(String, String)>,
}

/// An error detected in a [`LevelDraft`] — the generation loop's error
/// vocabulary. The first two variants are the paper's *Duplicated Concepts*
/// and *Invalid Edges*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DraftError {
    /// Concept already present in the graph (any earlier level) or repeated
    /// within the draft.
    DuplicateConcept {
        /// The offending concept.
        concept: String,
    },
    /// Edge source does not name a previous-level concept (e.g. the LLM
    /// hallucinated a connection from a deeper level or an unknown concept).
    InvalidEdgeSource {
        /// Proposed source.
        src: String,
        /// Proposed target.
        dst: String,
    },
    /// Edge target does not name a draft concept.
    InvalidEdgeTarget {
        /// Proposed source.
        src: String,
        /// Proposed target.
        dst: String,
    },
    /// A draft concept no edge reaches; it would be unreachable from the
    /// sensor node.
    UnconnectedConcept {
        /// The stranded concept.
        concept: String,
    },
}

/// The LLM-shaped dependency of KG generation. Implementations must be
/// deterministic given their construction-time seed for experiments to be
/// reproducible.
pub trait ConceptOracle {
    /// Proposes the first reasoning level's concepts for a mission.
    fn initial_concepts(&mut self, mission: &str, count: usize) -> Vec<String>;

    /// Proposes the next level's concepts given the previous level.
    fn next_concepts(
        &mut self,
        mission: &str,
        level: usize,
        previous: &[String],
        count: usize,
    ) -> Vec<String>;

    /// Proposes edges between the previous level's concepts and the draft
    /// concepts.
    fn propose_edges(
        &mut self,
        mission: &str,
        previous: &[String],
        draft: &[String],
    ) -> Vec<(String, String)>;

    /// Attempts to repair the listed errors in place. Implementations may
    /// fail to fix some errors or even introduce new ones; the generation
    /// loop re-validates after every call.
    fn correct(
        &mut self,
        mission: &str,
        previous: &[String],
        draft: &mut LevelDraft,
        errors: &[DraftError],
    );
}

/// Detects every [`DraftError`] in a draft, given the previous level's
/// concepts and a predicate telling whether a concept already exists in the
/// graph.
pub fn detect_errors<F>(
    draft: &LevelDraft,
    previous: &[String],
    concept_exists: F,
) -> Vec<DraftError>
where
    F: Fn(&str) -> bool,
{
    let mut errors = Vec::new();
    // duplicates: against the existing graph, or within the draft
    let mut seen = std::collections::HashSet::new();
    for c in &draft.concepts {
        if concept_exists(c) || !seen.insert(c.as_str()) {
            errors.push(DraftError::DuplicateConcept { concept: c.clone() });
        }
    }
    // edge endpoint validity
    let prev_set: std::collections::HashSet<&str> = previous.iter().map(String::as_str).collect();
    let draft_set: std::collections::HashSet<&str> =
        draft.concepts.iter().map(String::as_str).collect();
    for (src, dst) in &draft.edges {
        if !prev_set.contains(src.as_str()) {
            errors.push(DraftError::InvalidEdgeSource { src: src.clone(), dst: dst.clone() });
        }
        if !draft_set.contains(dst.as_str()) {
            errors.push(DraftError::InvalidEdgeTarget { src: src.clone(), dst: dst.clone() });
        }
    }
    // connectivity: every draft concept needs at least one valid incoming edge
    for c in &draft.concepts {
        let connected = draft.edges.iter().any(|(s, d)| d == c && prev_set.contains(s.as_str()));
        if !connected {
            errors.push(DraftError::UnconnectedConcept { concept: c.clone() });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft() -> LevelDraft {
        LevelDraft {
            level: 2,
            concepts: vec!["grab".into(), "take".into()],
            edges: vec![("person".into(), "grab".into()), ("person".into(), "take".into())],
        }
    }

    #[test]
    fn clean_draft_has_no_errors() {
        let errors = detect_errors(&draft(), &["person".into()], |_| false);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn duplicate_against_graph_detected() {
        let errors = detect_errors(&draft(), &["person".into()], |c| c == "grab");
        assert!(errors
            .iter()
            .any(|e| matches!(e, DraftError::DuplicateConcept { concept } if concept == "grab")));
    }

    #[test]
    fn duplicate_within_draft_detected() {
        let mut d = draft();
        d.concepts.push("grab".into());
        d.edges.push(("person".into(), "grab".into()));
        let errors = detect_errors(&d, &["person".into()], |_| false);
        assert!(errors.iter().any(|e| matches!(e, DraftError::DuplicateConcept { .. })));
    }

    #[test]
    fn invalid_edge_source_detected() {
        let mut d = draft();
        d.edges.push(("hallucination".into(), "grab".into()));
        let errors = detect_errors(&d, &["person".into()], |_| false);
        assert!(errors.iter().any(
            |e| matches!(e, DraftError::InvalidEdgeSource { src, .. } if src == "hallucination")
        ));
    }

    #[test]
    fn invalid_edge_target_detected() {
        let mut d = draft();
        d.edges.push(("person".into(), "nonexistent".into()));
        let errors = detect_errors(&d, &["person".into()], |_| false);
        assert!(errors.iter().any(
            |e| matches!(e, DraftError::InvalidEdgeTarget { dst, .. } if dst == "nonexistent")
        ));
    }

    #[test]
    fn unconnected_concept_detected() {
        let mut d = draft();
        d.concepts.push("stranded".into());
        let errors = detect_errors(&d, &["person".into()], |_| false);
        assert!(errors.iter().any(
            |e| matches!(e, DraftError::UnconnectedConcept { concept } if concept == "stranded")
        ));
    }

    #[test]
    fn edge_from_invalid_source_does_not_count_as_connection() {
        let d = LevelDraft {
            level: 2,
            concepts: vec!["x".into()],
            edges: vec![("ghost".into(), "x".into())],
        };
        let errors = detect_errors(&d, &["person".into()], |_| false);
        assert!(errors.iter().any(|e| matches!(e, DraftError::UnconnectedConcept { .. })));
        assert!(errors.iter().any(|e| matches!(e, DraftError::InvalidEdgeSource { .. })));
    }
}
