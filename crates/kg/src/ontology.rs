//! The surveillance-domain concept ontology — our deterministic stand-in for
//! GPT-4 + ConceptNet 5 as the *source of concepts* for mission-specific KG
//! generation.
//!
//! Each of the 13 UCF-Crime anomaly classes carries themed concept lists
//! (subjects, objects, actions, indicators, contexts). Class overlap is
//! engineered to match the paper's shift scenarios: Stealing↔Robbery share
//! concepts (*weak* shift), Stealing↔Explosion share none (*strong* shift).

use serde::{Deserialize, Serialize};

/// The 13 anomaly classes of the UCF-Crime benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyClass {
    /// Physical abuse.
    Abuse,
    /// Arrest in progress.
    Arrest,
    /// Deliberate fire-setting.
    Arson,
    /// Physical assault.
    Assault,
    /// Breaking and entering.
    Burglary,
    /// Explosive blast.
    Explosion,
    /// Physical fight.
    Fighting,
    /// Road accident.
    RoadAccidents,
    /// Armed robbery.
    Robbery,
    /// Gunfire.
    Shooting,
    /// Retail theft.
    Shoplifting,
    /// Stealing (non-confrontational theft).
    Stealing,
    /// Property vandalism.
    Vandalism,
}

impl AnomalyClass {
    /// All 13 classes, in a stable order.
    pub const ALL: [AnomalyClass; 13] = [
        AnomalyClass::Abuse,
        AnomalyClass::Arrest,
        AnomalyClass::Arson,
        AnomalyClass::Assault,
        AnomalyClass::Burglary,
        AnomalyClass::Explosion,
        AnomalyClass::Fighting,
        AnomalyClass::RoadAccidents,
        AnomalyClass::Robbery,
        AnomalyClass::Shooting,
        AnomalyClass::Shoplifting,
        AnomalyClass::Stealing,
        AnomalyClass::Vandalism,
    ];

    /// Stable index in `0..13`, usable as a cluster id for the joint
    /// embedding space.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("class in ALL")
    }

    /// Human-readable lowercase name (the "mission" keyword).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyClass::Abuse => "abuse",
            AnomalyClass::Arrest => "arrest",
            AnomalyClass::Arson => "arson",
            AnomalyClass::Assault => "assault",
            AnomalyClass::Burglary => "burglary",
            AnomalyClass::Explosion => "explosion",
            AnomalyClass::Fighting => "fighting",
            AnomalyClass::RoadAccidents => "road accident",
            AnomalyClass::Robbery => "robbery",
            AnomalyClass::Shooting => "shooting",
            AnomalyClass::Shoplifting => "shoplifting",
            AnomalyClass::Stealing => "stealing",
            AnomalyClass::Vandalism => "vandalism",
        }
    }

    /// Parses a class from its [`AnomalyClass::name`].
    pub fn from_name(name: &str) -> Option<AnomalyClass> {
        let name = name.to_lowercase();
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for AnomalyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Concept theme within a reasoning level. The generator cycles through the
/// themes as the KG deepens, mirroring how MissionGNN's prompts move from
/// entities toward evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Theme {
    /// Who is involved.
    Subjects,
    /// What objects are involved.
    Objects,
    /// What is being done.
    Actions,
    /// Observable indicators / adjectives.
    Indicators,
    /// Where / situational context.
    Contexts,
}

impl Theme {
    /// Theme order used when expanding the KG level by level.
    pub const ORDER: [Theme; 5] =
        [Theme::Subjects, Theme::Objects, Theme::Actions, Theme::Indicators, Theme::Contexts];

    /// The theme used for reasoning level `level` (1-based).
    pub fn for_level(level: usize) -> Theme {
        Self::ORDER[(level.saturating_sub(1)) % Self::ORDER.len()]
    }
}

/// The concept knowledge base.
#[derive(Debug, Clone, Default)]
pub struct Ontology;

impl Ontology {
    /// Creates the built-in surveillance ontology.
    pub fn new() -> Self {
        Ontology
    }

    /// Concept words for a class and theme. Lists are ordered by salience;
    /// generators sample prefixes first.
    pub fn concepts(&self, class: AnomalyClass, theme: Theme) -> &'static [&'static str] {
        use AnomalyClass::*;
        use Theme::*;
        match (class, theme) {
            (Stealing, Subjects) => &["person", "thief", "stranger", "loiterer"],
            (Stealing, Objects) => &["bag", "wallet", "purse", "bicycle", "package"],
            (Stealing, Actions) => &["grab", "take", "conceal", "sneak", "lurk", "snatch"],
            (Stealing, Indicators) => &["sneaky", "hidden", "furtive", "quick", "unattended"],
            (Stealing, Contexts) => &["parking", "hallway", "street", "porch"],

            (Robbery, Subjects) => &["person", "robber", "assailant", "accomplice"],
            (Robbery, Objects) => &["firearm", "weapon", "mask", "cash", "register"],
            (Robbery, Actions) => &["threaten", "point", "demand", "grab", "take", "flee"],
            (Robbery, Indicators) => &["armed", "violent", "forceful", "fear", "masked"],
            (Robbery, Contexts) => &["store", "bank", "counter", "street"],

            (Explosion, Subjects) => &["blast", "bomb", "device"],
            (Explosion, Objects) => &["smoke", "fire", "debris", "flame", "shockwave"],
            (Explosion, Actions) => &["explode", "burst", "ignite", "shatter", "collapse"],
            (Explosion, Indicators) => &["loud", "sudden", "fiery", "billowing"],
            (Explosion, Contexts) => &["building", "vehicle", "road", "plant"],

            (Abuse, Subjects) => &["person", "victim", "aggressor", "child"],
            (Abuse, Objects) => &["hand", "belt", "object"],
            (Abuse, Actions) => &["hit", "shove", "slap", "restrain", "yell"],
            (Abuse, Indicators) => &["repeated", "cowering", "distress", "aggressive"],
            (Abuse, Contexts) => &["home", "room", "corridor"],

            (Arrest, Subjects) => &["officer", "suspect", "person", "police"],
            (Arrest, Objects) => &["handcuffs", "uniform", "patrol", "badge"],
            (Arrest, Actions) => &["detain", "restrain", "escort", "kneel", "comply"],
            (Arrest, Indicators) => &["official", "controlled", "flashing"],
            (Arrest, Contexts) => &["street", "sidewalk", "vehicle"],

            (Arson, Subjects) => &["person", "arsonist"],
            (Arson, Objects) => &["fire", "fuel", "lighter", "smoke", "canister"],
            (Arson, Actions) => &["ignite", "pour", "spread", "burn", "flee"],
            (Arson, Indicators) => &["deliberate", "glowing", "smoldering"],
            (Arson, Contexts) => &["building", "dumpster", "vehicle", "night"],

            (Assault, Subjects) => &["person", "attacker", "victim"],
            (Assault, Objects) => &["fist", "weapon", "bottle"],
            (Assault, Actions) => &["strike", "punch", "kick", "charge", "knock"],
            (Assault, Indicators) => &["violent", "sudden", "injured", "aggressive"],
            (Assault, Contexts) => &["street", "bar", "alley"],

            (Burglary, Subjects) => &["person", "intruder", "burglar"],
            (Burglary, Objects) => &["window", "door", "crowbar", "lock", "valuables"],
            (Burglary, Actions) => &["break", "enter", "pry", "climb", "ransack"],
            (Burglary, Indicators) => &["forced", "dark", "unoccupied", "stealthy"],
            (Burglary, Contexts) => &["house", "shop", "night", "backdoor"],

            (Fighting, Subjects) => &["person", "group", "brawler"],
            (Fighting, Objects) => &["fist", "chair", "crowd"],
            (Fighting, Actions) => &["punch", "wrestle", "shove", "swing", "surround"],
            (Fighting, Indicators) => &["chaotic", "aggressive", "escalating"],
            (Fighting, Contexts) => &["street", "bar", "stadium"],

            (RoadAccidents, Subjects) => &["car", "truck", "pedestrian", "cyclist"],
            (RoadAccidents, Objects) => &["vehicle", "wreck", "glass", "barrier"],
            (RoadAccidents, Actions) => &["collide", "crash", "swerve", "overturn", "skid"],
            (RoadAccidents, Indicators) => &["sudden", "damaged", "stalled"],
            (RoadAccidents, Contexts) => &["intersection", "highway", "crosswalk"],

            (Shooting, Subjects) => &["person", "shooter", "gunman"],
            (Shooting, Objects) => &["firearm", "gun", "muzzle", "casing"],
            (Shooting, Actions) => &["shoot", "fire", "aim", "duck", "scatter"],
            (Shooting, Indicators) => &["armed", "loud", "panicked", "flash"],
            (Shooting, Contexts) => &["street", "lot", "entrance"],

            (Shoplifting, Subjects) => &["person", "shopper", "customer"],
            (Shoplifting, Objects) => &["merchandise", "shelf", "pocket", "bag", "tag"],
            (Shoplifting, Actions) => &["conceal", "pocket", "take", "slip", "browse"],
            (Shoplifting, Indicators) => &["sneaky", "nervous", "watchful", "hidden"],
            (Shoplifting, Contexts) => &["store", "aisle", "checkout"],

            (Vandalism, Subjects) => &["person", "vandal", "group"],
            (Vandalism, Objects) => &["spray", "wall", "window", "property"],
            (Vandalism, Actions) => &["smash", "spray", "deface", "kick", "topple"],
            (Vandalism, Indicators) => &["deliberate", "damaged", "defaced"],
            (Vandalism, Contexts) => &["street", "wall", "night", "lot"],
        }
    }

    /// Every concept word of a class across all themes, deduplicated and in
    /// theme order.
    pub fn all_concepts(&self, class: AnomalyClass) -> Vec<&'static str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for theme in Theme::ORDER {
            for &c in self.concepts(class, theme) {
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Hand-curated semantic relatedness between anomaly classes, as cosine
    /// similarity targets for the joint space's class centers. Classes that
    /// real video encoders would embed nearby (theft-like crimes; violent
    /// confrontations; fire events) are related; unlisted pairs are
    /// unrelated (near-orthogonal centers).
    pub fn related_classes(&self) -> &'static [(AnomalyClass, AnomalyClass, f32)] {
        use AnomalyClass::*;
        &[
            (Stealing, Robbery, 0.45),
            (Stealing, Shoplifting, 0.7),
            (Stealing, Burglary, 0.5),
            (Robbery, Shooting, 0.5),
            (Robbery, Burglary, 0.4),
            (Assault, Fighting, 0.6),
            (Assault, Abuse, 0.5),
            (Fighting, Abuse, 0.4),
            (Arson, Explosion, 0.5),
            (Vandalism, Arson, 0.4),
            (RoadAccidents, Explosion, 0.3),
        ]
    }

    /// The relatedness of a pair per [`Ontology::related_classes`] (0 when
    /// unlisted; 1 for identical classes).
    pub fn class_relatedness(&self, a: AnomalyClass, b: AnomalyClass) -> f32 {
        if a == b {
            return 1.0;
        }
        self.related_classes()
            .iter()
            .find(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|(_, _, r)| *r)
            .unwrap_or(0.0)
    }

    /// Jaccard overlap of two classes' concept vocabularies. Weak anomaly
    /// shifts (Stealing→Robbery) have noticeably higher overlap than strong
    /// shifts (Stealing→Explosion).
    pub fn concept_overlap(&self, a: AnomalyClass, b: AnomalyClass) -> f32 {
        use std::collections::HashSet;
        let sa: HashSet<_> = self.all_concepts(a).into_iter().collect();
        let sb: HashSet<_> = self.all_concepts(b).into_iter().collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        if union == 0 {
            0.0
        } else {
            inter as f32 / union as f32
        }
    }

    /// A deterministic corpus (one line per class) for BPE training: every
    /// concept word appears with frequency proportional to its salience so
    /// domain words merge into single tokens.
    pub fn corpus(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for class in AnomalyClass::ALL {
            for theme in Theme::ORDER {
                let words = self.concepts(class, theme);
                for (i, w) in words.iter().enumerate() {
                    // more salient words repeat more often
                    let reps = (words.len() - i).max(2);
                    for _ in 0..reps {
                        lines.push(format!("{} {}", class.name(), w));
                    }
                }
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_classes() {
        assert_eq!(AnomalyClass::ALL.len(), 13);
        for (i, c) in AnomalyClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn name_round_trips() {
        for c in AnomalyClass::ALL {
            assert_eq!(AnomalyClass::from_name(c.name()), Some(c));
        }
        assert_eq!(AnomalyClass::from_name("UNKNOWN"), None);
    }

    #[test]
    fn every_class_theme_nonempty() {
        let ont = Ontology::new();
        for c in AnomalyClass::ALL {
            for t in Theme::ORDER {
                assert!(!ont.concepts(c, t).is_empty(), "{c:?}/{t:?} empty");
            }
        }
    }

    #[test]
    fn theme_for_level_cycles() {
        assert_eq!(Theme::for_level(1), Theme::Subjects);
        assert_eq!(Theme::for_level(5), Theme::Contexts);
        assert_eq!(Theme::for_level(6), Theme::Subjects);
    }

    #[test]
    fn weak_shift_overlap_exceeds_strong() {
        let ont = Ontology::new();
        let weak = ont.concept_overlap(AnomalyClass::Stealing, AnomalyClass::Robbery);
        let strong = ont.concept_overlap(AnomalyClass::Stealing, AnomalyClass::Explosion);
        assert!(weak > strong, "weak {weak} <= strong {strong}");
        assert_eq!(strong, 0.0, "stealing/explosion must be disjoint");
    }

    #[test]
    fn overlap_is_symmetric_and_reflexive() {
        let ont = Ontology::new();
        let a = AnomalyClass::Robbery;
        let b = AnomalyClass::Shooting;
        assert_eq!(ont.concept_overlap(a, b), ont.concept_overlap(b, a));
        assert_eq!(ont.concept_overlap(a, a), 1.0);
    }

    #[test]
    fn corpus_mentions_every_concept() {
        let ont = Ontology::new();
        let corpus = ont.corpus().join(" ");
        for c in AnomalyClass::ALL {
            for w in ont.all_concepts(c) {
                assert!(corpus.contains(w), "corpus missing {w}");
            }
        }
    }

    #[test]
    fn all_concepts_deduplicates() {
        let ont = Ontology::new();
        for c in AnomalyClass::ALL {
            let all = ont.all_concepts(c);
            let set: std::collections::HashSet<_> = all.iter().collect();
            assert_eq!(all.len(), set.len(), "{c:?} has duplicate concepts");
        }
    }
}
