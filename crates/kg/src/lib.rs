//! # akg-kg
//!
//! Hierarchical reasoning knowledge graphs for the `adaptive-kg`
//! reproduction: the KG data structure, its structural validator, the
//! LLM-shaped generation framework of the paper's Fig. 3, and the
//! prune/create modification operations of Fig. 4.
//!
//! The paper generates its KGs with GPT-4 + ConceptNet. This crate replaces
//! that dependency with a deterministic, error-injecting
//! [`synthetic::SyntheticOracle`] over a built-in surveillance
//! [`ontology::Ontology`]; the generation loop, error vocabulary and
//! correction/pruning fallbacks are faithful to the paper and exercised for
//! real by the injected errors.
//!
//! ## Example
//!
//! ```
//! use akg_kg::{generate::{generate_kg, GeneratorConfig}, synthetic::SyntheticOracle};
//!
//! let mut oracle = SyntheticOracle::perfect(42);
//! let report = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle);
//! assert!(report.kg.validate().is_empty());
//! assert_eq!(report.kg.total_levels(), 3 + 2); // d reasoning + sensor + embedding
//! ```

#![warn(missing_docs)]

pub mod generate;
pub mod graph;
pub mod modify;
pub mod ontology;
pub mod oracle;
pub mod synthetic;
pub mod validate;

pub use generate::{generate_kg, GenerationReport, GenerationStats, GeneratorConfig};
pub use graph::{KgNode, KnowledgeGraph, NodeId, NodeKind};
pub use ontology::{AnomalyClass, Ontology, Theme};
pub use oracle::{ConceptOracle, DraftError, LevelDraft};
pub use synthetic::{ErrorProfile, SyntheticOracle};
pub use validate::KgError;
