//! The mission-specific reasoning-KG generation framework (paper Fig. 3):
//! initial nodes → per-level expansion loop (node generation, edge
//! generation, error detection and correction) → terminal attachment.
//!
//! If the correction loop fails to converge within the iteration budget, the
//! remaining problematic nodes/edges are pruned — exactly the paper's
//! fallback.

use crate::graph::KnowledgeGraph;
use crate::oracle::{detect_errors, ConceptOracle, DraftError, LevelDraft};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tunables of the generation framework.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of reasoning levels `d`.
    pub depth: usize,
    /// Concepts requested per level.
    pub nodes_per_level: usize,
    /// Maximum error-correction iterations per level before pruning.
    pub max_correction_iters: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { depth: 3, nodes_per_level: 4, max_correction_iters: 5 }
    }
}

/// Statistics of one generation run, for experiment logging.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Correction-loop iterations actually executed.
    pub correction_iters: usize,
    /// Concepts pruned because corrections never converged.
    pub pruned_concepts: usize,
    /// Edges pruned because corrections never converged.
    pub pruned_edges: usize,
    /// Errors detected per level (before any correction).
    pub initial_errors_per_level: Vec<usize>,
}

/// The result of generating a mission-specific KG.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// The finished, terminal-attached KG.
    pub kg: KnowledgeGraph,
    /// Run statistics.
    pub stats: GenerationStats,
}

/// Generates a mission-specific reasoning KG with the given oracle.
///
/// # Examples
///
/// ```
/// use akg_kg::{generate::{generate_kg, GeneratorConfig}, synthetic::SyntheticOracle};
/// let mut oracle = SyntheticOracle::perfect(7);
/// let report = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle);
/// assert!(report.kg.validate().is_empty());
/// ```
pub fn generate_kg<O: ConceptOracle>(
    mission: &str,
    config: &GeneratorConfig,
    oracle: &mut O,
) -> GenerationReport {
    let mut kg = KnowledgeGraph::new(mission, config.depth);
    let mut stats = GenerationStats::default();
    let mut previous: Vec<String> = Vec::new();

    for level in 1..=config.depth {
        // -- node generation --------------------------------------------
        let concepts = if level == 1 {
            oracle.initial_concepts(mission, config.nodes_per_level)
        } else {
            oracle.next_concepts(mission, level, &previous, config.nodes_per_level)
        };
        // -- edge generation ---------------------------------------------
        let edges = if level == 1 {
            Vec::new() // level 1 is wired from the sensor at terminal attach
        } else {
            oracle.propose_edges(mission, &previous, &concepts)
        };
        let mut draft = LevelDraft { level, concepts, edges };

        // -- error detection & correction loop ----------------------------
        let mut errors = detect_level(&draft, &previous, &kg, level);
        stats.initial_errors_per_level.push(errors.len());
        let mut iters = 0;
        while !errors.is_empty() && iters < config.max_correction_iters {
            oracle.correct(mission, &previous, &mut draft, &errors);
            errors = detect_level(&draft, &previous, &kg, level);
            iters += 1;
        }
        stats.correction_iters += iters;

        // -- pruning fallback ---------------------------------------------
        if !errors.is_empty() {
            prune_draft(&mut draft, &errors, &mut stats);
        }

        // -- commit --------------------------------------------------------
        let mut ids = HashMap::new();
        for concept in &draft.concepts {
            let id = kg.add_node(concept.clone(), level);
            ids.insert(concept.clone(), id);
        }
        if level > 1 {
            let prev_ids: HashMap<String, _> = kg
                .node_ids_at_level(level - 1)
                .into_iter()
                .map(|id| (kg.node(id).expect("live node").concept.clone(), id))
                .collect();
            for (src, dst) in &draft.edges {
                if let (Some(&s), Some(&d)) = (prev_ids.get(src), ids.get(dst)) {
                    let _ = kg.add_edge(s, d);
                }
            }
        }
        previous = draft.concepts;
    }

    kg.attach_terminals();
    // Terminal attachment can leave mid-level dead ends if pruning removed
    // their children; sweep them so the final KG always validates.
    sweep_disconnected(&mut kg, &mut stats);
    GenerationReport { kg, stats }
}

fn detect_level(
    draft: &LevelDraft,
    previous: &[String],
    kg: &KnowledgeGraph,
    level: usize,
) -> Vec<DraftError> {
    let mut errors = detect_errors(draft, previous, |c| kg.has_concept(c));
    if level == 1 {
        // Level 1 has no previous reasoning level; connectivity comes from
        // the sensor node, so UnconnectedConcept does not apply.
        errors.retain(|e| !matches!(e, DraftError::UnconnectedConcept { .. }));
    }
    errors
}

/// Removes every concept/edge still implicated in an error.
fn prune_draft(draft: &mut LevelDraft, errors: &[DraftError], stats: &mut GenerationStats) {
    use std::collections::HashSet;
    let mut bad_concepts: HashSet<String> = HashSet::new();
    let mut bad_edges: HashSet<(String, String)> = HashSet::new();
    for e in errors {
        match e {
            DraftError::DuplicateConcept { concept } => {
                bad_concepts.insert(concept.clone());
            }
            DraftError::UnconnectedConcept { concept } => {
                bad_concepts.insert(concept.clone());
            }
            DraftError::InvalidEdgeSource { src, dst }
            | DraftError::InvalidEdgeTarget { src, dst } => {
                bad_edges.insert((src.clone(), dst.clone()));
            }
        }
    }
    let before_c = draft.concepts.len();
    let before_e = draft.edges.len();
    draft.concepts.retain(|c| !bad_concepts.contains(c));
    draft.edges.retain(|(s, d)| {
        !bad_edges.contains(&(s.clone(), d.clone()))
            && !bad_concepts.contains(d)
            && draft.concepts.contains(d)
    });
    stats.pruned_concepts += before_c - draft.concepts.len();
    stats.pruned_edges += before_e - draft.edges.len();
}

/// Post-pass: prune reasoning nodes that ended up unreachable or dead-ended
/// after draft pruning, repeating until the graph validates or nothing is
/// left to remove.
fn sweep_disconnected(kg: &mut KnowledgeGraph, stats: &mut GenerationStats) {
    loop {
        let victims: Vec<_> = kg
            .validate()
            .into_iter()
            .filter_map(|e| match e {
                crate::validate::KgError::UnreachableNode { node }
                | crate::validate::KgError::DeadEndNode { node } => Some(node),
                _ => None,
            })
            .collect();
        if victims.is_empty() {
            break;
        }
        for v in victims {
            if kg.prune_node(v).is_ok() {
                stats.pruned_concepts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{ErrorProfile, SyntheticOracle};

    #[test]
    fn perfect_oracle_generates_valid_kg() {
        let mut oracle = SyntheticOracle::perfect(1);
        let report = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle);
        assert!(report.kg.validate().is_empty(), "{:?}", report.kg.validate());
        assert_eq!(report.stats.pruned_concepts, 0);
        assert_eq!(report.kg.depth(), 3);
        assert!(report.kg.sensor().is_some());
        assert!(report.kg.embedding_node().is_some());
    }

    #[test]
    fn realistic_oracle_still_converges_to_valid_kg() {
        for seed in 0..10 {
            let mut oracle = SyntheticOracle::new(ErrorProfile::realistic(), seed);
            let report = generate_kg("robbery", &GeneratorConfig::default(), &mut oracle);
            assert!(report.kg.validate().is_empty(), "seed {seed}: {:?}", report.kg.validate());
        }
    }

    #[test]
    fn adversarial_oracle_triggers_pruning() {
        let mut pruned_any = false;
        for seed in 0..10 {
            let mut oracle = SyntheticOracle::new(ErrorProfile::adversarial(), seed);
            let report = generate_kg("explosion", &GeneratorConfig::default(), &mut oracle);
            assert!(report.kg.validate().is_empty(), "seed {seed}");
            if report.stats.pruned_concepts > 0 || report.stats.pruned_edges > 0 {
                pruned_any = true;
            }
        }
        assert!(pruned_any, "adversarial profile never required pruning");
    }

    #[test]
    fn depth_config_respected() {
        let mut oracle = SyntheticOracle::perfect(2);
        let cfg = GeneratorConfig { depth: 5, nodes_per_level: 3, max_correction_iters: 4 };
        let report = generate_kg("shooting", &cfg, &mut oracle);
        assert_eq!(report.kg.depth(), 5);
        for level in 1..=5 {
            assert!(!report.kg.node_ids_at_level(level).is_empty(), "level {level} empty");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let run = |seed| {
            let mut oracle = SyntheticOracle::new(ErrorProfile::realistic(), seed);
            generate_kg("stealing", &GeneratorConfig::default(), &mut oracle).kg.to_json().unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn error_history_recorded() {
        let mut oracle = SyntheticOracle::new(ErrorProfile::adversarial(), 3);
        let report = generate_kg("stealing", &GeneratorConfig::default(), &mut oracle);
        assert_eq!(report.stats.initial_errors_per_level.len(), 3);
    }
}
