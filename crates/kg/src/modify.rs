//! Structural KG modification for the on-edge adaptation phase (paper
//! Fig. 4): node pruning is [`KnowledgeGraph::prune_node`]; this module adds
//! the *node creating* half — inserting a replacement node at a given level
//! with random edge connections — plus rewiring helpers.

use crate::graph::{KnowledgeGraph, NodeId};
use crate::validate::KgError;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bounds on the random wiring of a freshly created node.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CreateConfig {
    /// Maximum incoming edges to sample (at least 1 is always created).
    pub max_in: usize,
    /// Maximum outgoing edges to sample (at least 1 is always created).
    pub max_out: usize,
}

impl Default for CreateConfig {
    fn default() -> Self {
        CreateConfig { max_in: 2, max_out: 2 }
    }
}

/// Creates a node at `level` with random edge connections, the paper's *node
/// creating* step: "a new node with a random token embedding is created at
/// the same level as the pruned node, along with random edge connections."
/// (The random token embedding itself is owned by the model layer; here the
/// structure is created.)
///
/// Incoming edges come from random level-`level − 1` nodes (the sensor node
/// when `level == 1`); outgoing edges go to random level-`level + 1` nodes
/// (the embedding node when `level == depth`).
///
/// # Errors
///
/// Returns [`KgError::EmptyLevel`] if an adjacent level has no live nodes to
/// wire to.
///
/// # Panics
///
/// Panics if `level` is not in `1..=depth`.
pub fn create_node(
    kg: &mut KnowledgeGraph,
    concept: impl Into<String>,
    level: usize,
    config: &CreateConfig,
    rng: &mut StdRng,
) -> Result<NodeId, KgError> {
    let upstream: Vec<NodeId> = if level == 1 {
        kg.sensor().into_iter().collect()
    } else {
        kg.node_ids_at_level(level - 1)
    };
    if upstream.is_empty() {
        return Err(KgError::EmptyLevel { level: level - 1 });
    }
    let downstream: Vec<NodeId> = if level == kg.depth() {
        kg.embedding_node().into_iter().collect()
    } else {
        kg.node_ids_at_level(level + 1)
    };
    if downstream.is_empty() {
        return Err(KgError::EmptyLevel { level: level + 1 });
    }

    let id = kg.add_node(concept, level);
    let n_in = 1 + rng.gen_range(0..config.max_in.max(1)).min(upstream.len() - 1);
    let n_out = 1 + rng.gen_range(0..config.max_out.max(1)).min(downstream.len() - 1);
    for &src in pick(&upstream, n_in, rng).iter() {
        let _ = kg.add_edge(src, id);
    }
    for &dst in pick(&downstream, n_out, rng).iter() {
        let _ = kg.add_edge(id, dst);
    }
    Ok(id)
}

/// Prunes `old` and creates a replacement at the same level in one step —
/// the combined prune-then-create transition of Fig. 4(B)→(C).
///
/// # Errors
///
/// Propagates errors from [`KnowledgeGraph::prune_node`] and
/// [`create_node`]. If creation fails after the prune succeeded, the prune
/// is *not* rolled back (matching the paper: pruning happens first).
pub fn replace_node(
    kg: &mut KnowledgeGraph,
    old: NodeId,
    concept: impl Into<String>,
    config: &CreateConfig,
    rng: &mut StdRng,
) -> Result<NodeId, KgError> {
    let pruned = kg.prune_node(old)?;
    create_node(kg, concept, pruned.level, config, rng)
}

/// Repairs connectivity after structural edits: any reasoning node left
/// without an incoming (or outgoing) edge gets one random edge from the
/// previous (to the next) level, until the graph validates or no repair
/// applies. Returns the number of edges added.
///
/// Pruning a node can orphan neighbours whose only path ran through it; the
/// paper's "random edge connections" step implicitly restores reachability,
/// which this makes explicit.
pub fn repair_connectivity(kg: &mut KnowledgeGraph, rng: &mut StdRng) -> usize {
    let mut added = 0usize;
    for _ in 0..kg.node_count() + 1 {
        let victims: Vec<(NodeId, bool)> = kg
            .validate()
            .into_iter()
            .filter_map(|e| match e {
                KgError::UnreachableNode { node } => Some((node, true)),
                KgError::DeadEndNode { node } => Some((node, false)),
                _ => None,
            })
            .collect();
        if victims.is_empty() {
            break;
        }
        for (node, needs_incoming) in victims {
            let Some(level) = kg.node(node).map(|n| n.level) else { continue };
            let pool: Vec<NodeId> = if needs_incoming {
                if level == 1 {
                    kg.sensor().into_iter().collect()
                } else {
                    kg.node_ids_at_level(level - 1)
                }
            } else if level == kg.depth() {
                kg.embedding_node().into_iter().collect()
            } else {
                kg.node_ids_at_level(level + 1)
            };
            if pool.is_empty() {
                continue;
            }
            let peer = pool[rng.gen_range(0..pool.len())];
            let ok = if needs_incoming {
                kg.add_edge(peer, node).is_ok()
            } else {
                kg.add_edge(node, peer).is_ok()
            };
            if ok {
                added += 1;
            }
        }
    }
    added
}

/// Samples `k` distinct elements (order unspecified, deterministic for a
/// seeded RNG).
fn pick(pool: &[NodeId], k: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    // partial Fisher-Yates
    let k = k.min(pool.len());
    for i in 0..k {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices[..k].iter().map(|&i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_kg, GeneratorConfig};
    use crate::synthetic::SyntheticOracle;
    use rand::SeedableRng;

    fn sample_kg() -> KnowledgeGraph {
        let mut oracle = SyntheticOracle::perfect(11);
        generate_kg("stealing", &GeneratorConfig::default(), &mut oracle).kg
    }

    #[test]
    fn create_node_keeps_graph_valid() {
        let mut kg = sample_kg();
        let mut rng = StdRng::seed_from_u64(0);
        for level in 1..=kg.depth() {
            let id = create_node(
                &mut kg,
                format!("adapted-{level}"),
                level,
                &CreateConfig::default(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(kg.node(id).unwrap().level, level);
            assert!(kg.in_degree(id) >= 1);
            assert!(kg.out_degree(id) >= 1);
        }
        assert!(kg.validate().is_empty(), "{:?}", kg.validate());
    }

    #[test]
    fn replace_node_swaps_and_stays_valid() {
        let mut kg = sample_kg();
        let mut rng = StdRng::seed_from_u64(1);
        let victim = kg.node_ids_at_level(2)[0];
        let new_id =
            replace_node(&mut kg, victim, "replacement", &CreateConfig::default(), &mut rng)
                .unwrap();
        assert!(kg.node(victim).is_none());
        assert_eq!(kg.node(new_id).unwrap().concept, "replacement");
        // replacement may leave other nodes dangling only if the victim was
        // their sole parent/child; sweep check: graph still validates here
        // because perfect-oracle graphs are densely wired at these sizes.
        assert_eq!(kg.node(new_id).unwrap().level, 2);
    }

    #[test]
    fn level_one_creation_wires_from_sensor() {
        let mut kg = sample_kg();
        let mut rng = StdRng::seed_from_u64(2);
        let id = create_node(&mut kg, "fresh", 1, &CreateConfig::default(), &mut rng).unwrap();
        let sensor = kg.sensor().unwrap();
        assert!(kg.edges().iter().any(|(s, d)| *s == sensor && *d == id));
    }

    #[test]
    fn last_level_creation_wires_to_embedding() {
        let mut kg = sample_kg();
        let depth = kg.depth();
        let mut rng = StdRng::seed_from_u64(3);
        let id = create_node(&mut kg, "fresh", depth, &CreateConfig::default(), &mut rng).unwrap();
        let emb = kg.embedding_node().unwrap();
        assert!(kg.edges().iter().any(|(s, d)| *s == id && *d == emb));
    }

    #[test]
    fn creation_is_deterministic() {
        let run = |seed| {
            let mut kg = sample_kg();
            let mut rng = StdRng::seed_from_u64(seed);
            create_node(&mut kg, "x", 2, &CreateConfig::default(), &mut rng).unwrap();
            kg.to_json().unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn pick_returns_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool: Vec<NodeId> = (0..10).map(NodeId).collect();
        let picked = pick(&pool, 5, &mut rng);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), picked.len());
    }
}
