//! Synthetic untrimmed surveillance videos.
//!
//! A frame is a sparse *concept activation*: a weighted bag of concept words
//! drawn from the normal-activity vocabulary and (inside anomaly segments)
//! from the anomaly class's ontology concepts. The joint embedding space
//! turns activations into frame embeddings, so frames genuinely live near
//! the text concepts that describe them — the property the paper's KG
//! reasoning exploits.

use akg_kg::ontology::{AnomalyClass, Ontology};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Concept words for unremarkable surveillance footage, deliberately
/// disjoint from every anomaly class's vocabulary. The pool is broad so
/// normal footage is directionally diverse in the joint space — one-class
/// "anything unusual" shortcuts must not work.
pub const NORMAL_CONCEPTS: &[&str] = &[
    "walking",
    "standing",
    "talking",
    "waiting",
    "strolling",
    "commuting",
    "queueing",
    "shopping",
    "driving",
    "jogging",
    "sitting",
    "passing",
    "entering",
    "exiting",
    "reading",
    "cleaning",
    "sweeping",
    "delivering",
    "unloading",
    "greeting",
    "resting",
    "chatting",
    "cycling",
    "skating",
    "stretching",
    "photographing",
    "pointing",
    "gathering",
];

/// Generic entities that appear in normal *and* anomalous footage (a person
/// in frame is not evidence of crime). Sampling these into normal scenes
/// keeps shared subject words non-discriminative, as in real surveillance
/// video.
pub const GENERIC_CONCEPTS: &[&str] = &["person", "street", "vehicle", "hand", "crowd", "group"];

/// One video frame as a weighted concept activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Active concepts with strengths.
    pub concepts: Vec<(String, f32)>,
    /// Frame-level ground truth: `Some(class)` inside an anomaly segment.
    pub label: Option<AnomalyClass>,
}

/// Why a frame failed [`Frame::validate`] — the typed reason the serving
/// layer folds into its per-stream `rejected` accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrameError {
    /// A concept weight is NaN or infinite; ingesting it would poison the
    /// session's adapted token table irreversibly (NaN propagates through
    /// every subsequent gradient step).
    NonFiniteWeight {
        /// The offending concept name.
        concept: String,
    },
    /// A concept weight is finite but outside the plausible sensor range
    /// (|w| > [`Frame::MAX_ACTIVATION`]) — a corrupt upstream encoder, not
    /// a real activation.
    OutOfRangeWeight {
        /// The offending concept name.
        concept: String,
        /// The rejected magnitude.
        weight: f32,
    },
    /// A concept name is empty — the tokenizer has nothing to hash.
    EmptyConcept,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NonFiniteWeight { concept } => {
                write!(f, "frame has a non-finite weight on concept {concept:?}")
            }
            FrameError::OutOfRangeWeight { concept, weight } => {
                write!(f, "frame weight {weight} on concept {concept:?} exceeds the sensor range")
            }
            FrameError::EmptyConcept => write!(f, "frame has an empty concept name"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Largest plausible concept activation magnitude. Real encoder outputs
    /// in this corpus sit in single digits; the bound is deliberately
    /// generous so it only ever trips on corruption, never on a legitimate
    /// hot activation.
    pub const MAX_ACTIVATION: f32 = 1.0e4;

    /// Checks the frame against the ingest contract: every concept named,
    /// every weight finite and within `±`[`Frame::MAX_ACTIVATION`].
    ///
    /// The serving runtime calls this at ingest admission and rejects (with
    /// accounting) rather than letting a NaN walk into a session's adapted
    /// `TokenTable`, where it would corrupt the fork forever.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in concept order.
    pub fn validate(&self) -> Result<(), FrameError> {
        for (concept, weight) in &self.concepts {
            if concept.is_empty() {
                return Err(FrameError::EmptyConcept);
            }
            if !weight.is_finite() {
                return Err(FrameError::NonFiniteWeight { concept: concept.clone() });
            }
            if weight.abs() > Self::MAX_ACTIVATION {
                return Err(FrameError::OutOfRangeWeight {
                    concept: concept.clone(),
                    weight: *weight,
                });
            }
        }
        Ok(())
    }

    /// Whether this frame is inside an anomaly segment.
    pub fn is_anomalous(&self) -> bool {
        self.label.is_some()
    }

    /// Borrowed view of the activation, for the frame encoder.
    pub fn activation(&self) -> Vec<(&str, f32)> {
        self.concepts.iter().map(|(c, w)| (c.as_str(), *w)).collect()
    }
}

/// An untrimmed video: a frame sequence, possibly containing one anomaly
/// segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Video {
    /// Dataset-unique id.
    pub id: usize,
    /// The anomaly present in this video, if any (video-level label, as in
    /// UCF-Crime's weak supervision).
    pub class: Option<AnomalyClass>,
    /// The frames.
    pub frames: Vec<Frame>,
    /// The anomalous frame range `[start, end)`, if any.
    pub anomaly_range: Option<(usize, usize)>,
}

impl Video {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the video has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Iterates over `(frame, is_anomalous)` pairs.
    pub fn labelled_frames(&self) -> impl Iterator<Item = (&Frame, bool)> {
        self.frames.iter().map(|f| (f, f.is_anomalous()))
    }
}

/// Controls synthetic video generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Minimum frames per video.
    pub min_frames: usize,
    /// Maximum frames per video.
    pub max_frames: usize,
    /// Fraction of an anomalous video covered by the anomaly segment.
    pub anomaly_fraction: f32,
    /// How many anomaly concepts activate per anomalous frame.
    pub anomaly_concepts_per_frame: usize,
    /// How many normal concepts activate per frame.
    pub normal_concepts_per_frame: usize,
    /// Strength of anomaly concept activations relative to normal ones.
    pub anomaly_strength: f32,
    /// Frames between resamples of the ongoing activity (temporal
    /// coherence of the footage).
    pub activity_period: usize,
    /// Minimum per-video anomaly intensity multiplier (low-intensity
    /// anomalies are genuinely ambiguous, keeping score distributions
    /// spread out as in real footage).
    pub min_intensity: f32,
    /// Maximum per-video anomaly intensity multiplier.
    pub max_intensity: f32,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            min_frames: 48,
            max_frames: 96,
            anomaly_fraction: 0.3,
            anomaly_concepts_per_frame: 3,
            normal_concepts_per_frame: 2,
            anomaly_strength: 1.2,
            activity_period: 8,
            min_intensity: 0.5,
            max_intensity: 1.25,
        }
    }
}

/// Generates one normal (anomaly-free) video.
///
/// Videos are *temporally coherent*, like real footage: the scene background
/// persists for the whole video and the ongoing activity persists for
/// [`VideoConfig::activity_period`] frames, with per-frame weight jitter.
/// Without this coherence, anomaly segments would be the only temporally
/// stable content and a detector could key on stability alone, defeating
/// mission-specificity.
pub fn generate_normal_video(id: usize, config: &VideoConfig, rng: &mut StdRng) -> Video {
    let n = rng.gen_range(config.min_frames..=config.max_frames);
    let background = scene_background(rng);
    let mut activity = sample_activity(config, rng);
    let mut frames = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % config.activity_period == 0 {
            activity = sample_activity(config, rng);
        }
        frames.push(compose_frame(&background, &activity, &[], None, rng));
    }
    Video { id, class: None, frames, anomaly_range: None }
}

/// Generates one untrimmed anomalous video with a contiguous anomaly
/// segment of `class` concepts, temporally coherent like
/// [`generate_normal_video`].
pub fn generate_anomalous_video(
    id: usize,
    class: AnomalyClass,
    ontology: &Ontology,
    config: &VideoConfig,
    rng: &mut StdRng,
) -> Video {
    let n = rng.gen_range(config.min_frames..=config.max_frames);
    let seg_len = ((n as f32 * config.anomaly_fraction) as usize).clamp(1, n);
    let start = rng.gen_range(0..=n - seg_len);
    let end = start + seg_len;
    let vocabulary: Vec<&str> = ontology.all_concepts(class);
    let background = scene_background(rng);
    let mut activity = sample_activity(config, rng);
    let mut anomaly_concepts = sample_anomaly_concepts(&vocabulary, config, rng);
    let intensity = rng.gen_range(config.min_intensity..=config.max_intensity);
    let ramp = ((seg_len as f32 * 0.25) as usize).max(1);
    let mut frames = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % config.activity_period == 0 {
            activity = sample_activity(config, rng);
            anomaly_concepts = sample_anomaly_concepts(&vocabulary, config, rng);
        }
        if (start..end).contains(&i) {
            // onset/offset ramps: anomalies build up and fade like real events
            let into = (i - start + 1).min(end - i);
            let ramp_scale = (into as f32 / ramp as f32).min(1.0);
            let scaled: Vec<(String, f32)> = anomaly_concepts
                .iter()
                .map(|(c, w)| (c.clone(), w * intensity * ramp_scale))
                .collect();
            frames.push(compose_frame(&background, &activity, &scaled, Some(class), rng));
        } else {
            frames.push(compose_frame(&background, &activity, &[], None, rng));
        }
    }
    Video { id, class: Some(class), frames, anomaly_range: Some((start, end)) }
}

/// The persistent normal-activity concept set of one scene stretch: normal
/// activity words plus, usually, a generic entity (people and vehicles are
/// everywhere in surveillance footage).
fn sample_activity(config: &VideoConfig, rng: &mut StdRng) -> Vec<String> {
    let mut activity: Vec<String> = (0..config.normal_concepts_per_frame)
        .map(|_| NORMAL_CONCEPTS[rng.gen_range(0..NORMAL_CONCEPTS.len())].to_string())
        .collect();
    if rng.gen_bool(0.7) {
        activity.push(GENERIC_CONCEPTS[rng.gen_range(0..GENERIC_CONCEPTS.len())].to_string());
    }
    activity
}

/// The persistent anomaly concept set of one segment stretch
/// (salience-weighted picks with their base strengths).
fn sample_anomaly_concepts(
    vocabulary: &[&str],
    config: &VideoConfig,
    rng: &mut StdRng,
) -> Vec<(String, f32)> {
    (0..config.anomaly_concepts_per_frame)
        .map(|_| {
            let idx = salience_pick(vocabulary.len(), rng);
            (vocabulary[idx].to_string(), config.anomaly_strength)
        })
        .collect()
}

/// One frame from the persistent scene state, with per-frame weight jitter.
///
/// Normal and anomalous frames are composed *identically* — same activity,
/// generic-entity and background weights — with the anomaly concepts purely
/// additive. Any systematic compositional difference (weaker activity,
/// dimmer background, missing people) would hand detectors a
/// mission-agnostic shortcut that real footage does not provide.
fn compose_frame(
    background: &str,
    activity: &[String],
    anomaly: &[(String, f32)],
    label: Option<AnomalyClass>,
    rng: &mut StdRng,
) -> Frame {
    let mut concepts = Vec::with_capacity(activity.len() + anomaly.len() + 1);
    for a in activity {
        concepts.push((a.clone(), rng.gen_range(0.5..1.0)));
    }
    for (c, strength) in anomaly {
        concepts.push((c.clone(), strength * rng.gen_range(0.7..1.1)));
    }
    concepts.push((background.to_string(), 0.8 * rng.gen_range(0.75..1.25)));
    Frame { concepts, label }
}

/// A unique scene-background pseudo-concept (hash-noise direction in the
/// joint space): real normal footage has unbounded visual diversity, so a
/// detector cannot memorize the finite normal vocabulary and flag
/// "everything else" as anomalous.
fn scene_background(rng: &mut StdRng) -> String {
    format!("scene-{:08x}", rng.gen::<u32>())
}

/// Geometric-ish pick favouring low indices (salient concepts).
fn salience_pick(len: usize, rng: &mut StdRng) -> usize {
    debug_assert!(len > 0);
    let mut idx = 0usize;
    while idx + 1 < len && rng.gen_bool(0.55) {
        idx += 1;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_video_has_no_labels() {
        let mut rng = StdRng::seed_from_u64(0);
        let v = generate_normal_video(0, &VideoConfig::default(), &mut rng);
        assert!(v.class.is_none());
        assert!(v.frames.iter().all(|f| !f.is_anomalous()));
        assert!(v.len() >= VideoConfig::default().min_frames);
    }

    #[test]
    fn anomalous_video_has_contiguous_segment() {
        let mut rng = StdRng::seed_from_u64(1);
        let ont = Ontology::new();
        let v = generate_anomalous_video(
            1,
            AnomalyClass::Stealing,
            &ont,
            &VideoConfig::default(),
            &mut rng,
        );
        let (start, end) = v.anomaly_range.unwrap();
        assert!(start < end && end <= v.len());
        for (i, f) in v.frames.iter().enumerate() {
            assert_eq!(f.is_anomalous(), (start..end).contains(&i), "frame {i}");
        }
    }

    #[test]
    fn anomalous_frames_use_class_vocabulary() {
        let mut rng = StdRng::seed_from_u64(2);
        let ont = Ontology::new();
        let v = generate_anomalous_video(
            2,
            AnomalyClass::Explosion,
            &ont,
            &VideoConfig::default(),
            &mut rng,
        );
        let vocab: std::collections::HashSet<&str> =
            ont.all_concepts(AnomalyClass::Explosion).into_iter().collect();
        let anom = v.frames.iter().find(|f| f.is_anomalous()).unwrap();
        assert!(anom.concepts.iter().any(|(c, _)| vocab.contains(c.as_str())));
    }

    #[test]
    fn normal_vocab_disjoint_from_anomaly_vocab() {
        let ont = Ontology::new();
        for class in AnomalyClass::ALL {
            for w in ont.all_concepts(class) {
                assert!(!NORMAL_CONCEPTS.contains(&w), "{w} is both normal and {class:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let ont = Ontology::new();
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_anomalous_video(
                0,
                AnomalyClass::Robbery,
                &ont,
                &VideoConfig::default(),
                &mut rng,
            )
        };
        assert_eq!(gen(9).frames, gen(9).frames);
    }

    #[test]
    fn salience_pick_prefers_head() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks: Vec<usize> = (0..1000).map(|_| salience_pick(10, &mut rng)).collect();
        let head = picks.iter().filter(|&&p| p == 0).count();
        let tail = picks.iter().filter(|&&p| p == 9).count();
        assert!(head > tail, "head {head} tail {tail}");
    }
}
