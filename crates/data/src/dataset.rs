//! The synthetic UCF-Crime-like benchmark: split sizes match the paper's
//! description (training: 800 normal + 810 anomalous videos; testing: 150
//! normal + 140 anomalous; 13 anomaly classes), with a scale knob so unit
//! tests stay fast.

use crate::video::{generate_anomalous_video, generate_normal_video, Video, VideoConfig};
use akg_kg::ontology::{AnomalyClass, Ontology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Split sizes and generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Normal videos in the training split.
    pub train_normal: usize,
    /// Anomalous videos in the training split.
    pub train_anomalous: usize,
    /// Normal videos in the test split.
    pub test_normal: usize,
    /// Anomalous videos in the test split.
    pub test_anomalous: usize,
    /// Anomaly classes present (defaults to all 13).
    pub classes: Vec<AnomalyClass>,
    /// Per-video generation parameters.
    pub video: VideoConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    /// The paper's UCF-Crime split: 800/810 train, 150/140 test.
    fn default() -> Self {
        DatasetConfig {
            train_normal: 800,
            train_anomalous: 810,
            test_normal: 150,
            test_anomalous: 140,
            classes: AnomalyClass::ALL.to_vec(),
            video: VideoConfig::default(),
            seed: 0,
        }
    }
}

impl DatasetConfig {
    /// A proportionally scaled-down config (for tests/benches). `factor`
    /// in `(0, 1]`; every split keeps at least one video.
    pub fn scaled(factor: f64) -> Self {
        let full = DatasetConfig::default();
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        DatasetConfig {
            train_normal: scale(full.train_normal),
            train_anomalous: scale(full.train_anomalous),
            test_normal: scale(full.test_normal),
            test_anomalous: scale(full.test_anomalous),
            ..full
        }
    }

    /// Restricts anomalies to the given classes.
    pub fn with_classes(mut self, classes: &[AnomalyClass]) -> Self {
        self.classes = classes.to_vec();
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The generated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticUcfCrime {
    /// Training split (normal + anomalous, shuffled by id).
    pub train: Vec<Video>,
    /// Test split.
    pub test: Vec<Video>,
    config: DatasetConfig,
}

impl SyntheticUcfCrime {
    /// Generates the dataset.
    pub fn generate(config: DatasetConfig) -> Self {
        let ontology = Ontology::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut next_id = 0usize;
        let mut make = |count_normal: usize, count_anomalous: usize, rng: &mut StdRng| {
            let mut videos = Vec::with_capacity(count_normal + count_anomalous);
            for _ in 0..count_normal {
                videos.push(generate_normal_video(next_id, &config.video, rng));
                next_id += 1;
            }
            for i in 0..count_anomalous {
                let class = config.classes[i % config.classes.len()];
                videos.push(generate_anomalous_video(
                    next_id,
                    class,
                    &ontology,
                    &config.video,
                    rng,
                ));
                next_id += 1;
            }
            videos
        };
        let train = make(config.train_normal, config.train_anomalous, &mut rng);
        let test = make(config.test_normal, config.test_anomalous, &mut rng);
        SyntheticUcfCrime { train, test, config }
    }

    /// The configuration this dataset was generated with.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Training videos of a specific anomaly class.
    pub fn train_videos_of(&self, class: AnomalyClass) -> Vec<&Video> {
        self.train.iter().filter(|v| v.class == Some(class)).collect()
    }

    /// Normal training videos.
    pub fn train_normal_videos(&self) -> Vec<&Video> {
        self.train.iter().filter(|v| v.class.is_none()).collect()
    }

    /// Test videos relevant to a mission: all normal videos plus the
    /// anomalous videos of `class` (the per-mission test protocol used for
    /// the paper's AUC curves).
    pub fn test_subset(&self, class: AnomalyClass) -> Vec<&Video> {
        self.test.iter().filter(|v| v.class.is_none() || v.class == Some(class)).collect()
    }

    /// Flattens a video list into `(frame, is_anomalous)` pairs.
    pub fn frames_of<'a>(videos: &[&'a Video]) -> Vec<(&'a crate::video::Frame, bool)> {
        videos.iter().flat_map(|v| v.labelled_frames()).collect()
    }
}

/// Samples a random frame (frame, is_anomalous) from a video set, weighting
/// every frame equally.
pub fn sample_frame<'a>(
    videos: &[&'a Video],
    rng: &mut StdRng,
) -> Option<(&'a crate::video::Frame, bool)> {
    let total: usize = videos.iter().map(|v| v.len()).sum();
    if total == 0 {
        return None;
    }
    let mut target = rng.gen_range(0..total);
    for v in videos {
        if target < v.len() {
            let f = &v.frames[target];
            return Some((f, f.is_anomalous()));
        }
        target -= v.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticUcfCrime {
        SyntheticUcfCrime::generate(DatasetConfig::scaled(0.02).with_seed(3))
    }

    #[test]
    fn default_matches_paper_split() {
        let cfg = DatasetConfig::default();
        assert_eq!(cfg.train_normal, 800);
        assert_eq!(cfg.train_anomalous, 810);
        assert_eq!(cfg.test_normal, 150);
        assert_eq!(cfg.test_anomalous, 140);
        assert_eq!(cfg.classes.len(), 13);
    }

    #[test]
    fn split_counts_respected() {
        let ds = small();
        let cfg = ds.config();
        assert_eq!(ds.train.len(), cfg.train_normal + cfg.train_anomalous);
        assert_eq!(ds.test.len(), cfg.test_normal + cfg.test_anomalous);
        assert_eq!(ds.train_normal_videos().len(), cfg.train_normal);
    }

    #[test]
    fn classes_round_robin_covers_all() {
        let ds = SyntheticUcfCrime::generate(DatasetConfig::scaled(0.05).with_seed(1));
        for class in AnomalyClass::ALL {
            assert!(!ds.train_videos_of(class).is_empty(), "no training videos for {class:?}");
        }
    }

    #[test]
    fn test_subset_filters_other_classes() {
        let ds = small();
        let subset = ds.test_subset(AnomalyClass::Stealing);
        for v in &subset {
            assert!(v.class.is_none() || v.class == Some(AnomalyClass::Stealing));
        }
    }

    #[test]
    fn unique_video_ids() {
        let ds = small();
        let mut ids: Vec<usize> = ds.train.iter().chain(ds.test.iter()).map(|v| v.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn deterministic_generation() {
        let a = SyntheticUcfCrime::generate(DatasetConfig::scaled(0.02).with_seed(7));
        let b = SyntheticUcfCrime::generate(DatasetConfig::scaled(0.02).with_seed(7));
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train[0].frames, b.train[0].frames);
    }

    #[test]
    fn sample_frame_draws_from_given_videos() {
        let ds = small();
        let videos = ds.train_videos_of(AnomalyClass::Robbery);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let (_, _) = sample_frame(&videos, &mut rng).unwrap();
        }
        assert!(sample_frame(&[], &mut rng).is_none());
    }
}
