//! Trend-shift frame streams: the deployment-time data feed whose anomaly
//! class changes mid-stream, driving the paper's Fig. 5 evaluation.

use crate::dataset::{sample_frame, SyntheticUcfCrime};
use crate::video::Frame;
use akg_kg::ontology::AnomalyClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A named shift scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftScenario {
    /// The anomaly class the model was initially trained for.
    pub initial: AnomalyClass,
    /// The class the trend shifts to.
    pub shifted: AnomalyClass,
}

impl ShiftScenario {
    /// Fig. 5(A) first panel: Stealing → Robbery (weak shift: the classes
    /// share concepts).
    pub fn weak_stealing_to_robbery() -> Self {
        ShiftScenario { initial: AnomalyClass::Stealing, shifted: AnomalyClass::Robbery }
    }

    /// Fig. 5(A) second panel: Robbery → Stealing (weak shift, reversed).
    pub fn weak_robbery_to_stealing() -> Self {
        ShiftScenario { initial: AnomalyClass::Robbery, shifted: AnomalyClass::Stealing }
    }

    /// Fig. 5(B): Stealing → Explosion (strong shift: disjoint concepts).
    pub fn strong_stealing_to_explosion() -> Self {
        ShiftScenario { initial: AnomalyClass::Stealing, shifted: AnomalyClass::Explosion }
    }

    /// Concept overlap between the two classes (weak shifts score higher).
    pub fn overlap(&self) -> f32 {
        akg_kg::Ontology::new().concept_overlap(self.initial, self.shifted)
    }
}

/// How an [`AdaptationStream`] holds its dataset: borrowed (the original,
/// zero-cost form) or shared ownership via [`Arc`] (so streams can be handed
/// to a long-lived serving runtime without lifetime gymnastics — many owned
/// streams typically share one `Arc`'d dataset).
#[derive(Debug)]
enum DatasetHandle<'d> {
    Borrowed(&'d SyntheticUcfCrime),
    Owned(Arc<SyntheticUcfCrime>),
}

impl DatasetHandle<'_> {
    fn get(&self) -> &SyntheticUcfCrime {
        match self {
            DatasetHandle::Borrowed(d) => d,
            DatasetHandle::Owned(d) => d,
        }
    }
}

/// A deployment-time frame stream that samples the training split: frames
/// of the currently active anomaly class mixed with normal frames. The
/// paper's protocol keeps the non-anomalous samples fixed and swaps the
/// anomaly type at the shift point; [`AdaptationStream::shift_to`] does
/// exactly that.
#[derive(Debug)]
pub struct AdaptationStream<'d> {
    dataset: DatasetHandle<'d>,
    active: AnomalyClass,
    anomaly_ratio: f64,
    rng: StdRng,
    emitted: usize,
}

/// An [`AdaptationStream`] that owns (a share of) its dataset — `'static`,
/// so it can move into a serving runtime, another thread, or a `Vec` of
/// streams outliving the scope that built the dataset.
pub type OwnedAdaptationStream = AdaptationStream<'static>;

impl<'d> AdaptationStream<'d> {
    /// Creates a stream over the dataset's training split with the given
    /// active anomaly class. `anomaly_ratio` is the probability that a step
    /// emits an anomalous frame.
    ///
    /// # Panics
    ///
    /// Panics if `anomaly_ratio` is outside `[0, 1]`.
    pub fn new(
        dataset: &'d SyntheticUcfCrime,
        active: AnomalyClass,
        anomaly_ratio: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&anomaly_ratio), "anomaly_ratio must be in [0,1]");
        AdaptationStream {
            dataset: DatasetHandle::Borrowed(dataset),
            active,
            anomaly_ratio,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        }
    }

    /// Creates an owning stream over a shared dataset handle. Behaviour is
    /// identical to [`AdaptationStream::new`] with the same seed — only the
    /// ownership story differs.
    ///
    /// # Panics
    ///
    /// Panics if `anomaly_ratio` is outside `[0, 1]`.
    pub fn owned(
        dataset: Arc<SyntheticUcfCrime>,
        active: AnomalyClass,
        anomaly_ratio: f64,
        seed: u64,
    ) -> OwnedAdaptationStream {
        assert!((0.0..=1.0).contains(&anomaly_ratio), "anomaly_ratio must be in [0,1]");
        AdaptationStream {
            dataset: DatasetHandle::Owned(dataset),
            active,
            anomaly_ratio,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        }
    }

    /// The currently active anomaly class.
    pub fn active_class(&self) -> AnomalyClass {
        self.active
    }

    /// Number of frames emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Shifts the anomaly trend to a new class (normal samples unchanged).
    pub fn shift_to(&mut self, class: AnomalyClass) {
        self.active = class;
    }

    /// Emits the next `(frame, is_anomalous)` pair. Frames are cloned out of
    /// the dataset so the stream can outlive borrows at call sites.
    pub fn next_frame(&mut self) -> (Frame, bool) {
        self.emitted += 1;
        if self.rng.gen_bool(self.anomaly_ratio) {
            let videos = self.dataset.get().train_videos_of(self.active);
            if let Some((frame, _)) = sample_frame(&videos, &mut self.rng) {
                // sample only from within the anomaly segment
                if frame.is_anomalous() {
                    return (frame.clone(), true);
                }
                // fall through to an anomalous frame search
                for v in &videos {
                    if let Some((s, _e)) = v.anomaly_range {
                        return (v.frames[s].clone(), true);
                    }
                }
            }
        }
        let normals = self.dataset.get().train_normal_videos();
        let (frame, _) =
            sample_frame(&normals, &mut self.rng).expect("dataset must contain normal videos");
        (frame.clone(), false)
    }

    /// Emits a batch of frames.
    pub fn next_batch(&mut self, n: usize) -> Vec<(Frame, bool)> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn dataset() -> SyntheticUcfCrime {
        SyntheticUcfCrime::generate(DatasetConfig::scaled(0.03).with_seed(5))
    }

    #[test]
    fn scenario_overlaps_ordered() {
        let weak = ShiftScenario::weak_stealing_to_robbery().overlap();
        let strong = ShiftScenario::strong_stealing_to_explosion().overlap();
        assert!(weak > strong);
        assert_eq!(strong, 0.0);
    }

    #[test]
    fn stream_respects_anomaly_ratio_roughly() {
        let ds = dataset();
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.3, 1);
        let batch = stream.next_batch(600);
        let anomalous = batch.iter().filter(|(_, a)| *a).count();
        let ratio = anomalous as f64 / batch.len() as f64;
        assert!((0.18..0.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_ratio_streams_only_normal() {
        let ds = dataset();
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Robbery, 0.0, 2);
        for (_, anomalous) in stream.next_batch(100) {
            assert!(!anomalous);
        }
    }

    #[test]
    fn shift_changes_emitted_vocabulary() {
        let ds = dataset();
        let ont = akg_kg::Ontology::new();
        // generic entities ("vehicle", "person", ...) appear in any footage
        // by design, so only the discriminative explosion words count
        let explosion_vocab: std::collections::HashSet<&str> = ont
            .all_concepts(AnomalyClass::Explosion)
            .into_iter()
            .filter(|c| !crate::video::GENERIC_CONCEPTS.contains(c))
            .collect();
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 1.0, 3);
        // pre-shift: no explosion concepts
        for (frame, _) in stream.next_batch(50) {
            assert!(!frame.concepts.iter().any(|(c, _)| explosion_vocab.contains(c.as_str())));
        }
        stream.shift_to(AnomalyClass::Explosion);
        let post = stream.next_batch(50);
        assert!(post
            .iter()
            .any(|(f, _)| f.concepts.iter().any(|(c, _)| explosion_vocab.contains(c.as_str()))));
    }

    #[test]
    fn anomalous_frames_are_labelled() {
        let ds = dataset();
        let mut stream = AdaptationStream::new(&ds, AnomalyClass::Stealing, 1.0, 4);
        let batch = stream.next_batch(30);
        for (frame, anomalous) in batch {
            assert_eq!(frame.is_anomalous(), anomalous);
        }
    }

    #[test]
    fn owned_stream_matches_borrowed_and_is_static() {
        let ds = Arc::new(dataset());
        let mut borrowed = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, 11);
        let mut owned: OwnedAdaptationStream =
            AdaptationStream::owned(Arc::clone(&ds), AnomalyClass::Stealing, 0.5, 11);
        for _ in 0..30 {
            assert_eq!(borrowed.next_frame(), owned.next_frame());
        }
        // an owned stream can be moved into a 'static container
        fn takes_static(_: Vec<OwnedAdaptationStream>) {}
        takes_static(vec![owned]);
    }

    #[test]
    fn stream_is_deterministic() {
        let ds = dataset();
        let run = |seed| {
            let mut s = AdaptationStream::new(&ds, AnomalyClass::Stealing, 0.5, seed);
            s.next_batch(20).into_iter().map(|(f, _)| f.concepts).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
