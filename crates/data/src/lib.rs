//! # akg-data
//!
//! Synthetic UCF-Crime-like video anomaly data for the `adaptive-kg`
//! reproduction. The real UCF-Crime dataset (1 900 untrimmed surveillance
//! videos, 13 anomaly classes) is replaced by a seeded generator that
//! matches the paper's split statistics and grounds every frame in concept
//! activations, so frame embeddings produced via
//! `akg_embed::JointSpace::embed_bag` land near the text concepts the frame
//! depicts.
//!
//! - [`video`]: frames as weighted concept activations; untrimmed videos
//!   with anomaly segments
//! - [`dataset`]: the 800/810 train, 150/140 test split of the paper
//! - [`stream`]: trend-shift deployment streams (Fig. 5 scenarios)
//!
//! ## Example
//!
//! ```
//! use akg_data::dataset::{DatasetConfig, SyntheticUcfCrime};
//! use akg_kg::AnomalyClass;
//!
//! let ds = SyntheticUcfCrime::generate(DatasetConfig::scaled(0.02));
//! assert!(!ds.train_videos_of(AnomalyClass::Stealing).is_empty());
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod stream;
pub mod video;

pub use dataset::{DatasetConfig, SyntheticUcfCrime};
pub use stream::{AdaptationStream, OwnedAdaptationStream, ShiftScenario};
pub use video::{Frame, FrameError, Video, VideoConfig, GENERIC_CONCEPTS, NORMAL_CONCEPTS};
