//! Similarity metrics and top-K retrieval over an embedding table.
//!
//! The paper's interpretable KG retrieval tested dot product, cosine and
//! Euclidean distance, and settled on Euclidean; all three are provided so
//! the ablation bench can compare them.

use serde::{Deserialize, Serialize};

/// A similarity/distance metric over embedding vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Similarity {
    /// Euclidean (L2) distance; smaller is closer. The paper's choice.
    #[default]
    Euclidean,
    /// Cosine similarity; larger is closer.
    Cosine,
    /// Raw dot product; larger is closer.
    Dot,
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Cosine similarity between two equal-length vectors (0 if either is zero).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Dot product between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Similarity {
    /// A *closeness* score where larger always means more similar, so all
    /// three metrics can share the same retrieval code.
    pub fn closeness(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Similarity::Euclidean => -euclidean(a, b),
            Similarity::Cosine => cosine(a, b),
            Similarity::Dot => dot(a, b),
        }
    }
}

/// One retrieval hit: a row index into the searched table and its distance
/// or similarity under the chosen metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Row index into the table.
    pub index: usize,
    /// Closeness score (larger = closer), as given by
    /// [`Similarity::closeness`].
    pub closeness: f32,
}

/// Returns the `k` rows of `table` (row-major, `dim` columns) closest to
/// `query` under `metric`, most similar first.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `table.len()` is not a multiple of
/// `dim`.
pub fn retrieve_top_k(
    query: &[f32],
    table: &[f32],
    dim: usize,
    k: usize,
    metric: Similarity,
) -> Vec<Hit> {
    assert_eq!(query.len(), dim, "retrieve_top_k: query dim mismatch");
    assert_eq!(table.len() % dim, 0, "retrieve_top_k: ragged table");
    let rows = table.len() / dim;
    let mut hits: Vec<Hit> = (0..rows)
        .map(|r| Hit {
            index: r,
            closeness: metric.closeness(query, &table[r * dim..(r + 1) * dim]),
        })
        .collect();
    hits.sort_by(|a, b| b.closeness.partial_cmp(&a.closeness).unwrap_or(std::cmp::Ordering::Equal));
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_of_identical_is_zero() {
        assert_eq!(euclidean(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn euclidean_345() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_defined() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn retrieval_orders_by_closeness() {
        // table rows: (0,0), (1,0), (5,0); query (0.9, 0)
        let table = vec![0.0, 0.0, 1.0, 0.0, 5.0, 0.0];
        let hits = retrieve_top_k(&[0.9, 0.0], &table, 2, 2, Similarity::Euclidean);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 0);
    }

    #[test]
    fn retrieval_metrics_can_disagree() {
        // Dot favours long vectors; Euclidean favours near ones.
        let table = vec![0.1, 0.0, 10.0, 0.0];
        let q = [0.2, 0.0];
        let e = retrieve_top_k(&q, &table, 2, 1, Similarity::Euclidean);
        let d = retrieve_top_k(&q, &table, 2, 1, Similarity::Dot);
        assert_eq!(e[0].index, 0);
        assert_eq!(d[0].index, 1);
    }

    #[test]
    fn top_k_truncates() {
        let table = vec![0.0; 10];
        let hits = retrieve_top_k(&[0.0], &table, 1, 3, Similarity::Euclidean);
        assert_eq!(hits.len(), 3);
    }
}
