//! Token vocabulary: a bidirectional token-string ↔ id map.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a token in a [`Vocab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TokenId(pub usize);

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<TokenId> for usize {
    fn from(id: TokenId) -> usize {
        id.0
    }
}

/// An append-only token vocabulary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, TokenId>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocab::default()
    }

    /// Appends a token, returning its id. Re-adding an existing token
    /// returns the existing id.
    pub fn push(&mut self, token: String) -> TokenId {
        if self.index.is_empty() && !self.tokens.is_empty() {
            self.rebuild_index();
        }
        if let Some(&id) = self.index.get(&token) {
            return id;
        }
        let id = TokenId(self.tokens.len());
        self.index.insert(token.clone(), id);
        self.tokens.push(token);
        id
    }

    /// Rebuilds the string→id index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self.tokens.iter().enumerate().map(|(i, t)| (t.clone(), TokenId(i))).collect();
    }

    /// Looks up a token's id.
    pub fn id_of(&self, token: &str) -> Option<TokenId> {
        if self.index.is_empty() && !self.tokens.is_empty() {
            // Deserialized without index: linear fallback keeps correctness.
            return self.tokens.iter().position(|t| t == token).map(TokenId);
        }
        self.index.get(token).copied()
    }

    /// The token string for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn token(&self, id: TokenId) -> &str {
        &self.tokens[id.0]
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterates over `(id, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.tokens.iter().enumerate().map(|(i, t)| (TokenId(i), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut v = Vocab::new();
        let a = v.push("alpha".into());
        let b = v.push("beta".into());
        assert_ne!(a, b);
        assert_eq!(v.id_of("alpha"), Some(a));
        assert_eq!(v.token(b), "beta");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn push_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.push("x".into());
        let a2 = v.push("x".into());
        assert_eq!(a, a2);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn serde_round_trip_lookup_still_works() {
        let mut v = Vocab::new();
        v.push("one".into());
        v.push("two".into());
        let json = serde_json::to_string(&v).unwrap();
        let back: Vocab = serde_json::from_str(&json).unwrap();
        // index was skipped; the linear fallback must still find tokens
        assert_eq!(back.id_of("two"), Some(TokenId(1)));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut v = Vocab::new();
        v.push("a".into());
        v.push("b".into());
        let items: Vec<_> = v.iter().map(|(i, t)| (i.0, t.to_string())).collect();
        assert_eq!(items, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
