//! The joint text/frame embedding space — our deterministic stand-in for
//! ImageBind-Huge.
//!
//! The space is organised around `n_classes` anomaly-class *centers* (random
//! unit vectors). Domain words registered as *anchors* embed near their
//! class centers with a configurable affinity; all other words embed at a
//! deterministic hash-noise position. Synthetic video frames are generated
//! from concept activations, and [`JointSpace::embed_bag`] maps an
//! activation set into the same space — so frame embeddings land near the
//! text concepts they depict, the one property of ImageBind the paper's
//! mechanism actually relies on.

use crate::vocab::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Builder-configured joint embedding space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointSpace {
    dim: usize,
    seed: u64,
    class_centers: Vec<Vec<f32>>,
    /// word -> (per-class weight, affinity)
    anchors: HashMap<String, Anchor>,
    noise_scale: f32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Anchor {
    class_weights: Vec<(usize, f32)>,
    affinity: f32,
}

/// Builder for [`JointSpace`].
#[derive(Debug)]
pub struct JointSpaceBuilder {
    dim: usize,
    n_classes: usize,
    seed: u64,
    anchors: HashMap<String, Anchor>,
    noise_scale: f32,
    correlations: Vec<(usize, usize, f32)>,
}

impl JointSpaceBuilder {
    /// Starts a builder for a `dim`-dimensional space with `n_classes`
    /// semantic clusters.
    pub fn new(dim: usize, n_classes: usize, seed: u64) -> Self {
        JointSpaceBuilder {
            dim,
            n_classes,
            seed,
            anchors: HashMap::new(),
            noise_scale: 0.35,
            correlations: Vec::new(),
        }
    }

    /// Requests that two class centers have (approximately) the given cosine
    /// similarity — semantically related anomaly classes embed nearby, as a
    /// real joint embedding model would place them.
    ///
    /// # Panics
    ///
    /// Panics if a class is out of range or `cos` is outside `[0, 1)`.
    pub fn correlate(mut self, a: usize, b: usize, cos: f32) -> Self {
        assert!(a < self.n_classes && b < self.n_classes, "class out of range");
        assert!((0.0..1.0).contains(&cos), "cos must be in [0, 1)");
        self.correlations.push((a, b, cos));
        self
    }

    /// Registers `word` as an anchor of `class` with the given affinity in
    /// `[0, 1]` (1 = exactly at the class center). Registering the same word
    /// for several classes averages the centers.
    ///
    /// # Panics
    ///
    /// Panics if `class >= n_classes` or `affinity` is outside `[0, 1]`.
    pub fn anchor(mut self, word: &str, class: usize, affinity: f32) -> Self {
        assert!(class < self.n_classes, "class {class} out of range");
        assert!((0.0..=1.0).contains(&affinity), "affinity must be in [0,1]");
        let entry = self
            .anchors
            .entry(word.to_lowercase())
            .or_insert(Anchor { class_weights: Vec::new(), affinity });
        entry.class_weights.push((class, 1.0));
        entry.affinity = entry.affinity.max(affinity);
        self
    }

    /// Sets the hash-noise scale mixed into every word vector.
    pub fn noise_scale(mut self, scale: f32) -> Self {
        self.noise_scale = scale;
        self
    }

    /// Builds the space, sampling the class centers and applying requested
    /// correlations (each center is mixed toward its correlated peers, then
    /// renormalized — pairwise cosines approximate the requested values).
    pub fn build(self) -> JointSpace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut class_centers: Vec<Vec<f32>> =
            (0..self.n_classes).map(|_| random_unit(self.dim, &mut rng)).collect();
        for &(a, b, cos) in &self.correlations {
            // pull the later class toward the earlier one
            let (keep, adjust) = if a < b { (a, b) } else { (b, a) };
            let base = class_centers[keep].clone();
            let residual = (1.0 - cos * cos).sqrt();
            let adjusted: Vec<f32> = class_centers[adjust]
                .iter()
                .zip(&base)
                .map(|(x, k)| cos * k + residual * x)
                .collect();
            class_centers[adjust] = normalize(adjusted);
        }
        JointSpace {
            dim: self.dim,
            seed: self.seed,
            class_centers,
            anchors: self.anchors,
            noise_scale: self.noise_scale,
        }
    }
}

impl JointSpace {
    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of class clusters.
    pub fn n_classes(&self) -> usize {
        self.class_centers.len()
    }

    /// The center of a class cluster.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_center(&self, class: usize) -> &[f32] {
        &self.class_centers[class]
    }

    /// Deterministic embedding of a single word. Anchored words sit near
    /// their class centers; unknown words at hash-noise positions.
    pub fn word_vector(&self, word: &str) -> Vec<f32> {
        let word = word.to_lowercase();
        let noise = hash_noise(&word, self.seed, self.dim);
        match self.anchors.get(&word) {
            Some(anchor) => {
                let mut v = vec![0.0f32; self.dim];
                let total: f32 = anchor.class_weights.iter().map(|(_, w)| w).sum();
                for (class, w) in &anchor.class_weights {
                    for (vi, ci) in v.iter_mut().zip(&self.class_centers[*class]) {
                        *vi += ci * w / total;
                    }
                }
                let a = anchor.affinity;
                for (vi, ni) in v.iter_mut().zip(&noise) {
                    *vi = a * *vi + (1.0 - a) * self.noise_scale * ni;
                }
                normalize(v)
            }
            None => normalize(noise.into_iter().map(|n| n * self.noise_scale).collect()),
        }
    }

    /// Embedding of a token string from the BPE vocabulary: the end-of-word
    /// marker is stripped, then the word embedding (or hash noise for
    /// sub-word fragments) is used.
    pub fn token_vector(&self, token: &str) -> Vec<f32> {
        let stripped = token.strip_suffix(crate::bpe::END_OF_WORD).unwrap_or(token);
        self.word_vector(stripped)
    }

    /// Mean embedding of whitespace-separated text (a concept phrase).
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        let words: Vec<&str> = text.split_whitespace().collect();
        if words.is_empty() {
            return vec![0.0; self.dim];
        }
        let mut v = vec![0.0f32; self.dim];
        for w in &words {
            for (vi, wi) in v.iter_mut().zip(self.word_vector(w)) {
                *vi += wi;
            }
        }
        for vi in &mut v {
            *vi /= words.len() as f32;
        }
        v
    }

    /// Frame encoder: embeds a weighted bag of active concepts plus Gaussian
    /// observation noise, normalized to unit length. This is the `E_I(F_t)`
    /// of the paper for our synthetic frames.
    ///
    /// The final normalization matters: without it, frames whose concepts
    /// cluster (anomalies) would have systematically larger norms than
    /// frames mixing scattered concepts (normal footage), handing detectors
    /// a mission-agnostic concentration shortcut that real video encoders do
    /// not provide.
    pub fn embed_bag(&self, items: &[(&str, f32)], noise_std: f32, rng: &mut StdRng) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let mut total = 0.0f32;
        for (word, weight) in items {
            total += weight;
            let wv = self.embed_text(word);
            for (vi, wi) in v.iter_mut().zip(wv) {
                *vi += weight * wi;
            }
        }
        if total > 0.0 {
            for vi in &mut v {
                *vi /= total;
            }
        }
        for vi in &mut v {
            *vi += noise_std * crate::gaussian(rng);
        }
        normalize(v)
    }

    /// The initial token-embedding table for a vocabulary, row-major
    /// `[vocab.len() * dim]`. This is what the adaptation phase fine-tunes.
    ///
    /// Rows are independent deterministic lookups, so the batch is split
    /// across the configured [`akg_tensor::Parallelism`] worker threads —
    /// the result is identical at any thread count.
    pub fn token_table(&self, vocab: &Vocab) -> Vec<f32> {
        let tokens: Vec<&str> = vocab.iter().map(|(_, token)| token).collect();
        let mut table = vec![0.0f32; tokens.len() * self.dim];
        // ≥ 64 rows per thread: one row is a few µs of hashing + mixing, so
        // smaller batches don't amortize the scoped-thread spawn.
        akg_tensor::par::for_each_row_chunk(
            &mut table,
            tokens.len(),
            self.dim,
            64,
            |first, chunk| {
                for (i, row) in chunk.chunks_mut(self.dim).enumerate() {
                    row.copy_from_slice(&self.token_vector(tokens[first + i]));
                }
            },
        );
        table
    }
}

fn normalize(mut v: Vec<f32>) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

fn random_unit(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    normalize((0..dim).map(|_| crate::gaussian(rng)).collect())
}

/// Deterministic pseudo-random vector for a string (FNV-1a seeded RNG).
fn hash_noise(s: &str, seed: u64, dim: usize) -> Vec<f32> {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut rng = StdRng::seed_from_u64(h);
    normalize((0..dim).map(|_| crate::gaussian(&mut rng)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{cosine, euclidean};

    fn space() -> JointSpace {
        JointSpaceBuilder::new(32, 3, 42)
            .anchor("stealing", 0, 0.9)
            .anchor("sneaky", 0, 0.8)
            .anchor("robbery", 1, 0.9)
            .anchor("firearm", 1, 0.8)
            .anchor("explosion", 2, 0.9)
            .anchor("person", 0, 0.4)
            .anchor("person", 1, 0.4)
            .build()
    }

    #[test]
    fn word_vectors_are_deterministic() {
        let s = space();
        assert_eq!(s.word_vector("stealing"), s.word_vector("Stealing"));
        assert_eq!(s.word_vector("mystery"), s.word_vector("mystery"));
    }

    #[test]
    fn same_class_anchors_cluster() {
        let s = space();
        let steal = s.word_vector("stealing");
        let sneaky = s.word_vector("sneaky");
        let expl = s.word_vector("explosion");
        assert!(cosine(&steal, &sneaky) > cosine(&steal, &expl));
    }

    #[test]
    fn shared_anchor_sits_between_classes() {
        let s = space();
        let person = s.word_vector("person");
        let c0 = cosine(&person, s.class_center(0));
        let c1 = cosine(&person, s.class_center(1));
        let c2 = cosine(&person, s.class_center(2));
        assert!(c0 > c2 && c1 > c2, "{c0} {c1} {c2}");
    }

    #[test]
    fn embed_bag_lands_near_active_concepts() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        let frame = s.embed_bag(&[("stealing", 1.0), ("sneaky", 0.5)], 0.01, &mut rng);
        let steal = s.word_vector("stealing");
        let expl = s.word_vector("explosion");
        assert!(euclidean(&frame, &steal) < euclidean(&frame, &expl));
    }

    #[test]
    fn token_vector_strips_end_of_word() {
        let s = space();
        assert_eq!(s.token_vector("stealing</w>"), s.word_vector("stealing"));
    }

    #[test]
    fn token_table_has_right_size() {
        let s = space();
        let mut v = Vocab::new();
        v.push("a".into());
        v.push("b</w>".into());
        assert_eq!(s.token_table(&v).len(), 2 * s.dim());
    }

    #[test]
    fn embed_text_averages_words() {
        let s = space();
        let a = s.embed_text("stealing");
        let b = s.embed_text("stealing stealing");
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_class() {
        let _ = JointSpaceBuilder::new(8, 2, 0).anchor("x", 5, 0.5);
    }
}
