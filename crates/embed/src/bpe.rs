//! Byte-pair-encoding tokenizer (Sennrich et al., the scheme the paper's
//! interpretable KG retrieval decodes against).
//!
//! Training starts from characters with an end-of-word marker and greedily
//! merges the most frequent adjacent pair until the vocabulary budget is
//! reached. Frequent domain words therefore end up as single tokens, which is
//! what makes retrieved neighbours human-readable.

use crate::vocab::{TokenId, Vocab};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Marker appended to the final symbol of each word, so decoding can
/// reinsert word boundaries.
pub const END_OF_WORD: &str = "</w>";

/// A trained byte-pair encoder.
///
/// # Examples
///
/// ```
/// use akg_embed::bpe::BpeTokenizer;
/// let corpus = ["a stealing person", "a person stealing a bag"];
/// let tok = BpeTokenizer::train(corpus.iter().copied(), 200);
/// let ids = tok.encode("stealing bag");
/// assert_eq!(tok.decode(&ids), "stealing bag");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    vocab: Vocab,
    merges: Vec<(String, String)>,
    #[serde(skip)]
    merge_ranks: HashMap<(String, String), usize>,
}

impl BpeTokenizer {
    /// Trains a tokenizer on a corpus until the vocabulary reaches
    /// `vocab_budget` entries (or no more merges are possible).
    ///
    /// Words are whitespace-separated, lowercased; non-alphanumeric
    /// characters are dropped.
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(corpus: I, vocab_budget: usize) -> Self {
        // word -> frequency
        let mut word_freq: HashMap<Vec<String>, u64> = HashMap::new();
        let mut char_set: Vec<String> = Vec::new();
        let mut seen_chars: HashMap<String, ()> = HashMap::new();
        for line in corpus {
            for word in normalize(line).split_whitespace() {
                let symbols = word_symbols(word);
                for s in &symbols {
                    if seen_chars.insert(s.clone(), ()).is_none() {
                        char_set.push(s.clone());
                    }
                }
                *word_freq.entry(symbols).or_insert(0) += 1;
            }
        }
        char_set.sort();
        let mut tokens: Vec<String> = char_set;
        let mut merges: Vec<(String, String)> = Vec::new();

        // Greedy merge loop. Deterministic tie-breaking: lexicographically
        // smallest pair among the most frequent.
        let mut words: Vec<(Vec<String>, u64)> = {
            let mut w: Vec<_> = word_freq.into_iter().collect();
            w.sort();
            w
        };
        while tokens.len() + 1 < vocab_budget {
            let mut pair_freq: HashMap<(String, String), u64> = HashMap::new();
            for (symbols, freq) in &words {
                for pair in symbols.windows(2) {
                    *pair_freq.entry((pair[0].clone(), pair[1].clone())).or_insert(0) += freq;
                }
            }
            let Some(best) = pair_freq
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(p, _)| p.clone())
            else {
                break;
            };
            if pair_freq[&best] < 2 {
                break;
            }
            let merged = format!("{}{}", best.0, best.1);
            tokens.push(merged.clone());
            merges.push(best.clone());
            for (symbols, _) in &mut words {
                apply_merge(symbols, &best, &merged);
            }
        }

        let mut vocab = Vocab::new();
        vocab.push("<unk>".to_string());
        for t in tokens {
            vocab.push(t);
        }
        let merge_ranks =
            merges.iter().cloned().enumerate().map(|(i, p)| (p, i)).collect::<HashMap<_, _>>();
        BpeTokenizer { vocab, merges, merge_ranks }
    }

    /// Rebuilds the internal merge-rank index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.merge_ranks = self.merges.iter().cloned().enumerate().map(|(i, p)| (p, i)).collect();
    }

    /// Encodes text into token ids. Unknown symbols map to `<unk>` (id 0).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut ids = Vec::new();
        for word in normalize(text).split_whitespace() {
            let mut symbols = word_symbols(word);
            // Apply merges in training order (lowest rank first).
            loop {
                let mut best: Option<(usize, usize)> = None; // (rank, pos)
                for (pos, pair) in symbols.windows(2).enumerate() {
                    if let Some(&rank) = self.merge_ranks.get(&(pair[0].clone(), pair[1].clone())) {
                        if best.is_none_or(|(r, _)| rank < r) {
                            best = Some((rank, pos));
                        }
                    }
                }
                let Some((_, pos)) = best else { break };
                let merged = format!("{}{}", symbols[pos], symbols[pos + 1]);
                symbols.splice(pos..pos + 2, [merged]);
            }
            for s in &symbols {
                ids.push(self.vocab.id_of(s).unwrap_or(TokenId(0)));
            }
        }
        ids
    }

    /// Decodes token ids back into text.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut out = String::new();
        for &id in ids {
            let tok = self.vocab.token(id);
            if tok == "<unk>" {
                continue;
            }
            if let Some(stripped) = tok.strip_suffix(END_OF_WORD) {
                out.push_str(stripped);
                out.push(' ');
            } else {
                out.push_str(tok);
            }
        }
        out.trim_end().to_string()
    }

    /// The token vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Whether `word` encodes to exactly one (non-unk) token.
    pub fn is_single_token(&self, word: &str) -> bool {
        let ids = self.encode(word);
        ids.len() == 1 && ids[0] != TokenId(0)
    }
}

fn normalize(text: &str) -> String {
    text.to_lowercase()
        .chars()
        .map(|c| if c.is_alphanumeric() || c.is_whitespace() { c } else { ' ' })
        .collect()
}

fn word_symbols(word: &str) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    let mut symbols: Vec<String> = chars.iter().map(|c| c.to_string()).collect();
    if let Some(last) = symbols.last_mut() {
        last.push_str(END_OF_WORD);
    }
    symbols
}

fn apply_merge(symbols: &mut Vec<String>, pair: &(String, String), merged: &str) {
    let mut i = 0;
    while i + 1 < symbols.len() {
        if symbols[i] == pair.0 && symbols[i + 1] == pair.1 {
            symbols.splice(i..i + 2, [merged.to_string()]);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tokenizer() -> BpeTokenizer {
        let corpus = [
            "stealing stealing stealing person person bag",
            "robbery firearm weapon threat person",
            "a person stealing a bag at night",
            "robbery with a firearm",
        ];
        BpeTokenizer::train(corpus.iter().copied(), 400)
    }

    #[test]
    fn round_trip_known_words() {
        let tok = sample_tokenizer();
        for text in ["stealing bag", "robbery firearm", "person at night"] {
            let ids = tok.encode(text);
            assert_eq!(tok.decode(&ids), text, "round trip failed for {text}");
        }
    }

    #[test]
    fn frequent_words_become_single_tokens() {
        let tok = sample_tokenizer();
        assert!(tok.is_single_token("stealing"));
        assert!(tok.is_single_token("person"));
    }

    #[test]
    fn unknown_characters_do_not_panic() {
        let tok = sample_tokenizer();
        let ids = tok.encode("zzzqqq 日本");
        let _ = tok.decode(&ids);
    }

    #[test]
    fn normalization_strips_punctuation_and_case() {
        let tok = sample_tokenizer();
        assert_eq!(tok.encode("Stealing!"), tok.encode("stealing"));
    }

    #[test]
    fn deterministic_training() {
        let a = sample_tokenizer();
        let b = sample_tokenizer();
        assert_eq!(a.vocab().len(), b.vocab().len());
        assert_eq!(a.encode("stealing person"), b.encode("stealing person"));
    }

    #[test]
    fn vocab_budget_respected() {
        let corpus = ["aa bb cc dd ee ff gg hh aa bb aa bb aa bb cc dd"];
        let tok = BpeTokenizer::train(corpus.iter().copied(), 20);
        assert!(tok.vocab().len() <= 20);
    }

    #[test]
    fn serde_round_trip_with_rebuilt_index() {
        let tok = sample_tokenizer();
        let json = serde_json::to_string(&tok).unwrap();
        let mut back: BpeTokenizer = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.encode("stealing bag"), tok.encode("stealing bag"));
    }
}
