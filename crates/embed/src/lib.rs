//! # akg-embed
//!
//! BPE tokenizer and joint text/frame embedding space for the `adaptive-kg`
//! reproduction — the stand-in for the pre-trained ImageBind-Huge model and
//! its byte-pair-encoding vocabulary that the paper uses.
//!
//! The substitution preserves the two properties the paper's mechanism
//! relies on:
//!
//! 1. a *shared* space where synthetic video frames embed near the text
//!    concepts they depict ([`JointSpace::embed_bag`] vs
//!    [`JointSpace::embed_text`]), and
//! 2. a token-embedding table ([`JointSpace::token_table`]) whose rows the
//!    continuous-adaptation phase can fine-tune and whose nearest-neighbour
//!    structure interpretable retrieval decodes ([`similarity`]).
//!
//! ## Example
//!
//! ```
//! use akg_embed::{BpeTokenizer, JointSpaceBuilder};
//!
//! let tok = BpeTokenizer::train(["a person stealing a bag"; 4], 200);
//! let space = JointSpaceBuilder::new(16, 2, 7)
//!     .anchor("stealing", 0, 0.9)
//!     .build();
//! let table = space.token_table(tok.vocab());
//! assert_eq!(table.len(), tok.vocab().len() * 16);
//! ```

#![warn(missing_docs)]

pub mod bpe;
pub mod similarity;
pub mod space;
pub mod vocab;

pub use bpe::BpeTokenizer;
pub use similarity::{cosine, dot, euclidean, retrieve_top_k, Hit, Similarity};
pub use space::{JointSpace, JointSpaceBuilder};
pub use vocab::{TokenId, Vocab};

use rand::rngs::StdRng;
use rand::Rng;

/// Samples a standard normal value via Box–Muller (shared helper).
pub(crate) fn gaussian(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}
