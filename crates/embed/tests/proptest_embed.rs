//! Property tests: BPE round trips, retrieval invariants, space determinism.

use akg_embed::{retrieve_top_k, BpeTokenizer, JointSpaceBuilder, Similarity};
use proptest::prelude::*;

fn word_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bpe_round_trips_any_lowercase_text(words in proptest::collection::vec(word_strategy(), 1..6)) {
        let text = words.join(" ");
        // Train on a corpus that includes the text so every char is known.
        let corpus = [text.as_str(), "the quick brown fox", "abcdefghijklmnopqrstuvwxyz"];
        let tok = BpeTokenizer::train(corpus.iter().copied(), 500);
        let ids = tok.encode(&text);
        prop_assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn encoding_never_panics_on_arbitrary_text(text in ".{0,64}") {
        let tok = BpeTokenizer::train(["hello world"], 100);
        let ids = tok.encode(&text);
        let _ = tok.decode(&ids);
    }

    #[test]
    fn word_vectors_unit_norm(word in word_strategy()) {
        let space = JointSpaceBuilder::new(24, 4, 3).anchor("anchor", 0, 0.9).build();
        let v = space.word_vector(&word);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn retrieval_self_is_nearest(rows in 2usize..10, dim in 2usize..8, seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let table: Vec<f32> = (0..rows * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let target = 0usize;
        let query: Vec<f32> = table[target * dim..(target + 1) * dim].to_vec();
        let hits = retrieve_top_k(&query, &table, dim, 1, Similarity::Euclidean);
        // the row itself must be at distance zero (ties possible but closeness equal)
        prop_assert!(hits[0].closeness >= -1e-6);
    }

    #[test]
    fn top_k_monotone_closeness(seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 4;
        let table: Vec<f32> = (0..20 * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for metric in [Similarity::Euclidean, Similarity::Cosine, Similarity::Dot] {
            let hits = retrieve_top_k(&query, &table, dim, 20, metric);
            for w in hits.windows(2) {
                prop_assert!(w[0].closeness >= w[1].closeness);
            }
        }
    }
}
