//! # akg-eval
//!
//! Evaluation metrics for the `adaptive-kg` reproduction: frame-level
//! ROC-AUC (the paper's headline metric), score-distribution monitoring with
//! the adaptation trigger `K = |Δm| · N`, and threshold-based confusion
//! rates.
//!
//! ## Example
//!
//! ```
//! use akg_eval::auc::roc_auc;
//! let auc = roc_auc(&[0.9, 0.2, 0.8, 0.4], &[true, false, true, false]);
//! assert_eq!(auc, 1.0);
//! ```

#![warn(missing_docs)]

pub mod auc;
pub mod confusion;
pub mod stats;

pub use auc::{average_precision, roc_auc, roc_curve, RocPoint};
pub use confusion::Confusion;
pub use stats::{MeanShiftTracker, ReferenceMode, ScoreWindow};
