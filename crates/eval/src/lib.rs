//! # akg-eval
//!
//! Evaluation metrics for the `adaptive-kg` reproduction: frame-level
//! ROC-AUC (the paper's headline metric), score-distribution monitoring with
//! the adaptation trigger `K = |Δm| · N`, and threshold-based confusion
//! rates.
//!
//! ## Modules
//!
//! - [`auc`] — rank-based ROC-AUC, full ROC curves, and average precision
//!   over per-frame anomaly scores. Fig. 5's y-axis is [`roc_auc`] computed
//!   on a held-out test stream after every adaptation step.
//! - [`stats`] — [`ScoreWindow`], a fixed-capacity rolling window of recent
//!   anomaly scores, and [`MeanShiftTracker`], which maintains the paper's
//!   mean-shift statistic `Δm = m_t − m_{t'}` and converts it into the
//!   adaptation budget `K = |Δm| · N` (Sec. III-C). [`ReferenceMode`] picks
//!   the reference time `t'`: a rolling lag or a frozen post-deployment
//!   anchor.
//! - [`confusion`] — threshold-based [`Confusion`] counts (TPR/FPR/precision)
//!   for operating-point analysis beyond the threshold-free AUC.
//!
//! This crate is dependency-free within the workspace (only `serde` for
//! snapshot serialization) so that the decision-model crates can report
//! metrics without cycles.
//!
//! ## Example
//!
//! ```
//! use akg_eval::auc::roc_auc;
//! let auc = roc_auc(&[0.9, 0.2, 0.8, 0.4], &[true, false, true, false]);
//! assert_eq!(auc, 1.0);
//! ```
//!
//! Tracking a score drop and sizing the adaptation budget:
//!
//! ```
//! use akg_eval::MeanShiftTracker;
//! let mut tracker = MeanShiftTracker::anchored(4);
//! for s in [0.9, 0.9, 0.9, 0.9] { tracker.push(s); }   // healthy reference
//! for s in [0.4, 0.4, 0.4, 0.4] { tracker.push(s); }   // trend shift hits
//! assert!(tracker.delta_m() < 0.0);
//! assert!(tracker.adaptation_k() > 0);
//! ```

#![warn(missing_docs)]

pub mod auc;
pub mod confusion;
pub mod stats;

pub use auc::{average_precision, roc_auc, roc_curve, RocPoint};
pub use confusion::Confusion;
pub use stats::{MeanShiftTracker, ReferenceMode, ScoreWindow};
