//! Threshold-based confusion matrix and the usual derived rates.

use serde::{Deserialize, Serialize};

/// Counts of a binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds a confusion matrix by thresholding scores (`score >=
    /// threshold` predicts anomalous).
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != labels.len()`.
    pub fn at_threshold(scores: &[f32], labels: &[bool], threshold: f32) -> Self {
        assert_eq!(scores.len(), labels.len(), "Confusion: length mismatch");
        let mut c = Confusion::default();
        for (&s, &l) in scores.iter().zip(labels) {
            match (s >= threshold, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy (0 when empty).
    pub fn accuracy(&self) -> f32 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f32 / self.total() as f32
        }
    }

    /// Precision (0 when no positive predictions).
    pub fn precision(&self) -> f32 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f32 / (self.tp + self.fp) as f32
        }
    }

    /// Recall / true-positive rate (0 when no positives).
    pub fn recall(&self) -> f32 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f32 / (self.tp + self.fn_) as f32
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate (0 when no negatives).
    pub fn fpr(&self) -> f32 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f32 / (self.fp + self.tn) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        Confusion::at_threshold(&[0.9, 0.7, 0.4, 0.2], &[true, false, true, false], 0.5)
    }

    #[test]
    fn counts_correct() {
        let c = sample();
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn rates_correct() {
        let c = sample();
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.fpr(), 0.5);
    }

    #[test]
    fn empty_is_all_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn extreme_thresholds() {
        let scores = [0.9f32, 0.1];
        let labels = [true, false];
        let all_pos = Confusion::at_threshold(&scores, &labels, f32::NEG_INFINITY);
        assert_eq!(all_pos.recall(), 1.0);
        let all_neg = Confusion::at_threshold(&scores, &labels, f32::INFINITY);
        assert_eq!(all_neg.recall(), 0.0);
    }
}
