//! Score-distribution monitoring: the sliding window, mean-shift tracking
//! and top-K selection that drive the paper's adaptation trigger
//! (`K = |Δm| · N` over the most recent `N` scores, Sec. III-D).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded sliding window over anomaly scores with cheap mean queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreWindow {
    capacity: usize,
    scores: VecDeque<f32>,
    sum: f64,
}

impl ScoreWindow {
    /// Creates a window holding the most recent `capacity` scores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ScoreWindow: capacity must be positive");
        ScoreWindow { capacity, scores: VecDeque::with_capacity(capacity), sum: 0.0 }
    }

    /// Pushes a score, evicting the oldest when full.
    pub fn push(&mut self, score: f32) {
        if self.scores.len() == self.capacity {
            if let Some(old) = self.scores.pop_front() {
                self.sum -= old as f64;
            }
        }
        self.scores.push_back(score);
        self.sum += score as f64;
    }

    /// Number of stored scores.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.scores.len() == self.capacity
    }

    /// Window capacity `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the stored scores (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.scores.is_empty() {
            0.0
        } else {
            (self.sum / self.scores.len() as f64) as f32
        }
    }

    /// Standard deviation of the stored scores.
    pub fn std(&self) -> f32 {
        if self.scores.len() < 2 {
            return 0.0;
        }
        let mean = self.mean() as f64;
        let var = self.scores.iter().map(|&s| (s as f64 - mean) * (s as f64 - mean)).sum::<f64>()
            / self.scores.len() as f64;
        var.sqrt() as f32
    }

    /// Indices (into the window, oldest = 0) of the `k` highest scores,
    /// highest first.
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        let mut indexed: Vec<(usize, f32)> = self.scores.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        indexed.into_iter().take(k).map(|(i, _)| i).collect()
    }

    /// The stored scores, oldest first.
    pub fn scores(&self) -> Vec<f32> {
        self.scores.iter().copied().collect()
    }
}

/// How the reference time `t'` of `Δm = m_t − m_{t'}` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReferenceMode {
    /// `m_{t'}` is the window mean recorded `lag` pushes ago (a rolling
    /// reference — reacts to *recent* drops only).
    Lagged(usize),
    /// `m_{t'}` is frozen at the mean of the first full window after
    /// deployment (the "healthy" post-training score distribution). `Δm`
    /// then stays negative for as long as detection is depressed, which
    /// sustains adaptation until recovery.
    Anchored,
}

/// Tracks the anomaly-score mean over time and computes the paper's
/// adaptation budget `K = |Δm| · N` where `Δm = m_t − m_{t'} < 0`.
///
/// The reference `t'` is a validation-tuned hyperparameter in the paper;
/// both a rolling and a deployment-anchored interpretation are provided
/// (see [`ReferenceMode`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeanShiftTracker {
    window: ScoreWindow,
    mean_history: VecDeque<f32>,
    mode: ReferenceMode,
    anchor: Option<f32>,
}

impl MeanShiftTracker {
    /// Creates a tracker over a window of `n` scores with a rolling
    /// reference lag `lag`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lag == 0`.
    pub fn new(n: usize, lag: usize) -> Self {
        assert!(lag > 0, "MeanShiftTracker: lag must be positive");
        MeanShiftTracker {
            window: ScoreWindow::new(n),
            mean_history: VecDeque::with_capacity(lag + 1),
            mode: ReferenceMode::Lagged(lag),
            anchor: None,
        }
    }

    /// Creates a tracker whose reference mean freezes once the first window
    /// fills (deployment-anchored `t'`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn anchored(n: usize) -> Self {
        MeanShiftTracker {
            window: ScoreWindow::new(n),
            mean_history: VecDeque::new(),
            mode: ReferenceMode::Anchored,
            anchor: None,
        }
    }

    /// Pushes a score and records the updated mean.
    pub fn push(&mut self, score: f32) {
        self.window.push(score);
        match self.mode {
            ReferenceMode::Lagged(lag) => {
                if self.mean_history.len() > lag {
                    self.mean_history.pop_front();
                }
                self.mean_history.push_back(self.window.mean());
            }
            ReferenceMode::Anchored => {
                if self.anchor.is_none() && self.window.is_full() {
                    self.anchor = Some(self.window.mean());
                }
            }
        }
    }

    /// The current mean `m_t`.
    pub fn current_mean(&self) -> f32 {
        self.window.mean()
    }

    /// The reference mean `m_{t'}` (current mean while history/anchor is
    /// still warming up).
    pub fn reference_mean(&self) -> f32 {
        match self.mode {
            ReferenceMode::Lagged(_) => {
                self.mean_history.front().copied().unwrap_or_else(|| self.window.mean())
            }
            ReferenceMode::Anchored => self.anchor.unwrap_or_else(|| self.window.mean()),
        }
    }

    /// Re-anchors the reference to the current window mean (used after the
    /// system has adapted and the new distribution becomes the healthy
    /// baseline).
    pub fn reanchor(&mut self) {
        if self.mode == ReferenceMode::Anchored {
            self.anchor = Some(self.window.mean());
        }
    }

    /// `Δm = m_t − m_{t'}`.
    pub fn delta_m(&self) -> f32 {
        self.current_mean() - self.reference_mean()
    }

    /// The paper's `K = |Δm| · N`, rounded down, only when the mean has
    /// *dropped* (`Δm < 0` signals that the deployed detector has stopped
    /// firing, i.e. the anomaly trend moved away from the trained target).
    /// Returns 0 otherwise.
    pub fn adaptation_k(&self) -> usize {
        let dm = self.delta_m();
        if dm < 0.0 {
            (dm.abs() * self.window.capacity() as f32).floor() as usize
        } else {
            0
        }
    }

    /// The underlying score window.
    pub fn window(&self) -> &ScoreWindow {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_mean_tracks_eviction() {
        let mut w = ScoreWindow::new(3);
        for s in [1.0, 2.0, 3.0] {
            w.push(s);
        }
        assert!((w.mean() - 2.0).abs() < 1e-6);
        w.push(6.0); // evicts 1.0 -> [2,3,6]
        assert!((w.mean() - 11.0 / 3.0).abs() < 1e-6);
        assert!(w.is_full());
    }

    #[test]
    fn top_k_orders_descending() {
        let mut w = ScoreWindow::new(5);
        for s in [0.1, 0.9, 0.5, 0.7, 0.3] {
            w.push(s);
        }
        assert_eq!(w.top_k_indices(2), vec![1, 3]);
    }

    #[test]
    fn top_k_larger_than_len_returns_all() {
        let mut w = ScoreWindow::new(5);
        w.push(0.4);
        assert_eq!(w.top_k_indices(10).len(), 1);
    }

    #[test]
    fn std_of_constant_is_zero() {
        let mut w = ScoreWindow::new(4);
        for _ in 0..4 {
            w.push(0.7);
        }
        assert_eq!(w.std(), 0.0);
    }

    #[test]
    fn k_zero_when_mean_rises() {
        let mut t = MeanShiftTracker::new(10, 5);
        for i in 0..20 {
            t.push(i as f32 / 20.0); // rising scores
        }
        assert!(t.delta_m() > 0.0);
        assert_eq!(t.adaptation_k(), 0);
    }

    #[test]
    fn k_grows_with_mean_drop() {
        let mut t = MeanShiftTracker::new(10, 5);
        for _ in 0..10 {
            t.push(0.9);
        }
        for _ in 0..10 {
            t.push(0.1); // trend shift: detector stops firing
        }
        assert!(t.delta_m() < 0.0);
        let k = t.adaptation_k();
        assert!(k > 0, "expected positive K, got {k}");
        assert!(k <= 10);
    }

    #[test]
    fn k_formula_matches_paper() {
        // engineered drop: window N=10 full of 1.0, then 10 zeros =>
        // m_t = 0.0; reference (lag 10) was 1.0 => K = |−1.0|·10 = 10
        let mut t = MeanShiftTracker::new(10, 10);
        for _ in 0..10 {
            t.push(1.0);
        }
        for _ in 0..10 {
            t.push(0.0);
        }
        assert_eq!(t.adaptation_k(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ScoreWindow::new(0);
    }
}
