//! ROC-AUC with proper tie handling (Mann–Whitney U formulation), the test
//! metric of every curve in the paper's Fig. 5 and the AUC row of Table I.

/// Computes the area under the ROC curve for anomaly `scores` against
/// boolean `labels` (`true` = anomalous).
///
/// Ties receive half credit (rank-average), matching the Mann–Whitney
/// statistic. Returns 0.5 when either class is absent (undefined AUC).
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`.
///
/// # Examples
///
/// ```
/// use akg_eval::auc::roc_auc;
/// let scores = [0.9, 0.8, 0.3, 0.1];
/// let labels = [true, true, false, false];
/// assert_eq!(roc_auc(&scores, &labels), 1.0);
/// ```
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f32 {
    assert_eq!(scores.len(), labels.len(), "roc_auc: length mismatch");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // rank-sum with average ranks for ties
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // ranks are 1-based: items i..=j share the average rank
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let p = positives as f64;
    let n = negatives as f64;
    let u = rank_sum_pos - p * (p + 1.0) / 2.0;
    (u / (p * n)) as f32
}

/// A point on the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f32,
    /// True-positive rate.
    pub tpr: f32,
    /// The threshold producing this point.
    pub threshold: f32,
}

/// Computes the full ROC curve (one point per distinct threshold,
/// descending).
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`.
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "roc_curve: length mismatch");
    let positives = labels.iter().filter(|&&l| l).count().max(1) as f32;
    let negatives = (labels.len() - labels.iter().filter(|&&l| l).count()).max(1) as f32;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0, threshold: f32::INFINITY }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint { fpr: fp as f32 / negatives, tpr: tp as f32 / positives, threshold });
    }
    points
}

/// Average precision (area under the precision-recall curve, step-wise).
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`.
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f32 {
    assert_eq!(scores.len(), labels.len(), "average_precision: length mismatch");
    let positives = labels.iter().filter(|&&l| l).count();
    if positives == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (seen, &idx) in order.iter().enumerate() {
        if labels[idx] {
            tp += 1;
            ap += tp as f64 / (seen + 1) as f64;
        }
    }
    (ap / positives as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]), 1.0);
    }

    #[test]
    fn inverted_separation_is_zero() {
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]), 0.0);
    }

    #[test]
    fn all_tied_is_half() {
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]), 0.5);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(roc_auc(&[0.5, 0.7], &[true, true]), 0.5);
    }

    #[test]
    fn hand_computed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs: (0.8>0.6) 1, (0.8>0.2) 1, (0.4<0.6) 0, (0.4>0.2) 1 => 3/4
        let auc = roc_auc(&[0.8, 0.4, 0.6, 0.2], &[true, true, false, false]);
        assert!((auc - 0.75).abs() < 1e-6);
    }

    #[test]
    fn tie_gets_half_credit() {
        // pos 0.5, neg 0.5 tie -> 0.5; plus pos 0.9 > neg 0.1 -> 1
        let auc = roc_auc(&[0.9, 0.5, 0.5, 0.1], &[true, true, false, false]);
        assert!((auc - 0.875).abs() < 1e-6, "{auc}");
    }

    #[test]
    fn auc_invariant_to_monotone_transform() {
        let scores = [0.9f32, 0.5, 0.3, 0.7, 0.1];
        let labels = [true, false, false, true, false];
        let a = roc_auc(&scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|s| (s * 3.0).exp()).collect();
        let b = roc_auc(&transformed, &labels);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn roc_curve_monotone() {
        let scores = [0.9f32, 0.5, 0.3, 0.7, 0.1, 0.6];
        let labels = [true, false, false, true, false, true];
        let curve = roc_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        let last = curve.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn average_precision_perfect() {
        let ap = average_precision(&[0.9, 0.8, 0.2], &[true, true, false]);
        assert!((ap - 1.0).abs() < 1e-6);
    }
}
