//! The recovery-equivalence contract: a shard worker killed at **any** tick
//! must leave no trace — after checkpoint-restore and deterministic replay,
//! the run's scores, adapted token tables, replacement counts, and serve
//! counters are bit-identical to a run where no worker ever died, under
//! both the Scalar and SIMD backends.
//!
//! The argument is layered on the shard-equivalence contract
//! (`tests/equivalence.rs`): engines rebuild bit-identically from their
//! `EngineSpec`, sessions restore bit-identically from a
//! `SessionCheckpoint` (proven in `akg-core`'s persist tests), and every
//! tick is a pure function of restored state + replayed inputs — so the
//! respawned worker's regenerated replies are byte-copies of the ones the
//! dead worker would have sent.
//!
//! The chaos soak at the bottom drives 520 ticks of bursty load + a strong
//! trend shift through seeded crash *and* corruption faults, asserting the
//! exact-accounting identity (now with the `rejected` term) after every
//! tick and bit-equality against the fault-free single-node baseline at
//! the end — zero silent frame loss, with recoveries actually happening.

use akg_core::adapt::AdaptConfig;
use akg_core::pipeline::SystemConfig;
use akg_data::{AdaptationStream, DatasetConfig, SyntheticUcfCrime};
use akg_kg::AnomalyClass;
use akg_runtime::{
    ArrivalPattern, ChaosConfig, EngineSpec, FaultPlan, LoadConfig, LoadCounters, LoadedRuntime,
    RecoveryStats, ServeCounters, ShardedConfig, ShardedRuntime, StreamLoadStats, TickDecision,
};
use akg_tensor::{Backend, Precision};
use std::sync::{Arc, Mutex, MutexGuard};

const TICKS: usize = 48;
const SHIFT_AT: usize = 24;

/// Backend-flipping tests serialize on one lock (the `BACKEND_LOCK`
/// discipline of `tests/equivalence.rs`).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn dataset() -> Arc<SyntheticUcfCrime> {
    Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Robbery])
            .with_seed(77),
    ))
}

fn adapt_cfg(stream: usize) -> AdaptConfig {
    AdaptConfig {
        n_window: 16,
        lag: 8,
        interval: 8,
        min_k: 1,
        max_k: 4,
        seed: stream as u64,
        ..AdaptConfig::default()
    }
}

fn system_cfg(backend: Backend) -> SystemConfig {
    SystemConfig { seed: 5, backend, precision: Precision::F32, ..SystemConfig::default() }
}

/// Everything observable about a sharded run — what must not change when a
/// worker dies and recovers.
struct Fingerprint {
    scores: Vec<Vec<f32>>,
    tables: Vec<Vec<f32>>,
    replacements: Vec<usize>,
    counters: ServeCounters,
    recovery: RecoveryStats,
}

fn run_sharded(
    ds: &Arc<SyntheticUcfCrime>,
    n_streams: usize,
    shards: usize,
    backend: Backend,
    checkpoint_interval: usize,
    faults: FaultPlan,
) -> Fingerprint {
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], system_cfg(backend));
    let config = ShardedConfig {
        shards,
        checkpoint_interval,
        inner_threads: Some(1),
        ..ShardedConfig::default()
    };
    let mut rt = ShardedRuntime::with_faults(spec, config, faults);
    for s in 0..n_streams {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.5, 1000 + s as u64);
        rt.add_stream(source, 0xBEEF ^ (s as u64 * 101), adapt_cfg(s));
    }
    let mut scores = rt.run(SHIFT_AT);
    for s in 0..n_streams {
        rt.source_mut(s).shift_to(AnomalyClass::Robbery);
    }
    for (s, tail) in rt.run(TICKS - SHIFT_AT).into_iter().enumerate() {
        scores[s].extend(tail);
    }
    let snapshots = rt.stream_snapshots();
    Fingerprint {
        scores,
        tables: snapshots.iter().map(|s| s.table.clone()).collect(),
        replacements: snapshots.iter().map(|s| s.replacements).collect(),
        counters: rt.counters(),
        recovery: rt.recovery_stats(),
    }
}

fn assert_bit_identical(faulted: &Fingerprint, clean: &Fingerprint, label: &str) {
    assert_eq!(faulted.scores, clean.scores, "{label}: scores diverged after recovery");
    assert_eq!(faulted.tables, clean.tables, "{label}: adapted token tables diverged");
    assert_eq!(faulted.replacements, clean.replacements, "{label}: replacement counts diverged");
    assert_eq!(faulted.counters, clean.counters, "{label}: serve counters diverged");
}

/// The headline contract, one backend at a time: kill a worker early (tick
/// 3, before any checkpoint → genesis replay) and late (tick 17, after a
/// checkpoint → checkpoint + replay), at 2 and 4 shards, across a mid-run
/// trend shift so adaptation state is live when the crash lands. Every
/// fingerprint must match the undisturbed run bit for bit.
fn check_recovery_equivalence(backend: Backend) {
    let _guard = lock_backend();
    let ds = dataset();
    let n_streams = 8;
    for shards in [2usize, 4] {
        let clean = run_sharded(&ds, n_streams, shards, backend, 8, FaultPlan::none());
        assert_eq!(clean.recovery.recoveries, 0);
        assert!(
            clean.counters.node_replacements > 0 || clean.counters.token_updates > 0,
            "no adaptation fired — the recovery check would be vacuous"
        );
        for crash_tick in [3usize, 17] {
            for shard in 0..shards {
                let faults = FaultPlan::crash_at(shard, crash_tick);
                let faulted = run_sharded(&ds, n_streams, shards, backend, 8, faults);
                let label = format!(
                    "{shards} shards, worker {shard} killed at tick {crash_tick}, {backend:?}"
                );
                assert_eq!(faulted.recovery.recoveries, 1, "{label}: no recovery happened");
                if crash_tick > 8 {
                    assert_eq!(
                        faulted.recovery.from_checkpoint, 1,
                        "{label}: should have restored from the tick-8/16 checkpoint"
                    );
                } else {
                    assert_eq!(
                        faulted.recovery.from_checkpoint, 0,
                        "{label}: crash before the first checkpoint must replay from genesis"
                    );
                }
                assert!(faulted.recovery.replayed_ticks >= 1, "{label}: nothing was replayed");
                assert_bit_identical(&faulted, &clean, &label);
            }
        }
    }
}

#[test]
fn recovered_run_is_bit_identical_to_fault_free_scalar() {
    check_recovery_equivalence(Backend::Scalar);
}

#[test]
fn recovered_run_is_bit_identical_to_fault_free_simd() {
    // On non-AVX2 hosts `Backend::Simd` resolves to the scalar kernels, so
    // this leg never crashes anywhere but is a genuinely different backend
    // wherever the SIMD path exists.
    check_recovery_equivalence(Backend::Simd);
}

/// A panicking worker (vs a cleanly exiting one) must recover identically —
/// the supervisor only ever sees a disconnect.
#[test]
fn panicking_worker_recovers_like_an_exiting_one() {
    let _guard = lock_backend();
    let ds = dataset();
    let clean = run_sharded(&ds, 4, 2, Backend::Auto, 8, FaultPlan::none());
    let exited = run_sharded(&ds, 4, 2, Backend::Auto, 8, FaultPlan::crash_at(1, 11));
    let panicked = run_sharded(&ds, 4, 2, Backend::Auto, 8, FaultPlan::panic_at(1, 11));
    assert_eq!(exited.recovery.recoveries, 1);
    assert_eq!(panicked.recovery.recoveries, 1);
    assert_bit_identical(&exited, &clean, "worker exit at tick 11");
    assert_bit_identical(&panicked, &clean, "worker panic at tick 11");
}

/// Repeated deaths of the *same* shard across generations: the
/// generation-aware fault plan kills generation 0 at tick 5 and generation
/// 1 at tick 20, so recovery itself gets recovered from.
#[test]
fn repeated_crashes_of_one_shard_all_recover() {
    let _guard = lock_backend();
    let ds = dataset();
    let clean = run_sharded(&ds, 4, 2, Backend::Auto, 8, FaultPlan::none());
    let faults = FaultPlan::crash_at(0, 5)
        .with(akg_runtime::ScriptedFault::WorkerCrash { shard: 0, tick: 20 });
    let faulted = run_sharded(&ds, 4, 2, Backend::Auto, 8, faults);
    assert_eq!(faulted.recovery.recoveries, 2, "both scheduled crashes must trigger recovery");
    assert_bit_identical(&faulted, &clean, "two crashes of shard 0");
}

/// Crashing two *different* shards in one run: recoveries are independent
/// (separate replay buffers, separate generations).
#[test]
fn concurrent_faults_on_distinct_shards_recover_independently() {
    let _guard = lock_backend();
    let ds = dataset();
    let clean = run_sharded(&ds, 8, 4, Backend::Auto, 8, FaultPlan::none());
    let faults = FaultPlan::crash_at(1, 7)
        .with(akg_runtime::ScriptedFault::WorkerPanic { shard: 3, tick: 13 });
    let faulted = run_sharded(&ds, 8, 4, Backend::Auto, 8, faults);
    assert_eq!(faulted.recovery.recoveries, 2);
    assert_bit_identical(&faulted, &clean, "shard 1 exit + shard 3 panic");
}

/// A stalled worker is not a fault: detection is disconnect-based, so the
/// stall just applies backpressure and no output bit moves.
#[test]
fn stalled_worker_changes_no_output_bit() {
    let _guard = lock_backend();
    let ds = dataset();
    let clean = run_sharded(&ds, 4, 2, Backend::Auto, 8, FaultPlan::none());
    let faults = FaultPlan::none()
        .with(akg_runtime::ScriptedFault::StallWorker { shard: 0, tick: 6, millis: 40 })
        .with(akg_runtime::ScriptedFault::StallWorker { shard: 1, tick: 19, millis: 40 });
    let stalled = run_sharded(&ds, 4, 2, Backend::Auto, 8, faults);
    assert_eq!(stalled.recovery.recoveries, 0, "a stall must never trigger recovery");
    assert_bit_identical(&stalled, &clean, "stalled workers");
}

/// Corrupted frames (NaN / inf / out-of-range weights) are rejected at the
/// ingest boundary — identically by the single-node runtime and the
/// sharded front-end — and counted per stream, never silently lost and
/// never allowed to poison adapted state.
#[test]
fn corrupt_frames_are_rejected_identically_across_topologies() {
    let _guard = lock_backend();
    let ds = dataset();
    // Corrupt stream 1's frame on a handful of scripted ticks (past the
    // warmup so every stream has a window to keep scoring from).
    let corrupt_ticks: [u64; 3] = [20, 29, 38];
    let make_plan = || {
        let mut plan = FaultPlan::none();
        for (i, &tick) in corrupt_ticks.iter().enumerate() {
            let kind = match i % 3 {
                0 => akg_runtime::CorruptionKind::NanWeight,
                1 => akg_runtime::CorruptionKind::InfWeight,
                _ => akg_runtime::CorruptionKind::OutOfRange,
            };
            plan = plan.with(akg_runtime::ScriptedFault::CorruptFrame { stream: 1, tick, kind });
        }
        plan
    };
    let clean = run_sharded(&ds, 4, 2, Backend::Auto, 8, FaultPlan::none());
    let single = run_sharded(&ds, 4, 1, Backend::Auto, 8, make_plan());
    let sharded = run_sharded(&ds, 4, 2, Backend::Auto, 8, make_plan());
    // Same rejections, same scores, same tables at 1 and 2 shards.
    assert_eq!(single.counters.rejected, corrupt_ticks.len());
    assert_eq!(sharded.counters.rejected, corrupt_ticks.len());
    assert_eq!(single.scores, sharded.scores, "rejection handling diverged across shard counts");
    assert_eq!(single.tables, sharded.tables, "rejection handling diverged across shard counts");
    // Rejection is not a no-op relative to the clean run (the stream missed
    // real frames), but untouched streams must be unaffected.
    assert_eq!(sharded.tables[0], clean.tables[0], "corruption of stream 1 leaked into stream 0");
    assert_eq!(sharded.tables[2], clean.tables[2], "corruption of stream 1 leaked into stream 2");
    // All scores — including the rejected stream's — stay finite and in range.
    for (s, seq) in sharded.scores.iter().enumerate() {
        assert!(
            seq.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)),
            "stream {s}: a rejected frame leaked a non-finite score"
        );
    }
}

// ---------------------------------------------------------------------------
// The 520-tick chaos soak: crashes + corruption + bursty load + trend shift.
// ---------------------------------------------------------------------------

const SOAK_STREAMS: usize = 3;
const SOAK_TICKS: usize = 520;
const SOAK_SHIFT_AT: usize = 260;

fn soak_dataset() -> Arc<SyntheticUcfCrime> {
    Arc::new(SyntheticUcfCrime::generate(
        DatasetConfig::scaled(0.015)
            .with_classes(&[AnomalyClass::Stealing, AnomalyClass::Explosion])
            .with_seed(31),
    ))
}

fn soak_adapt_cfg() -> AdaptConfig {
    AdaptConfig { n_window: 32, lag: 16, interval: 16, min_k: 1, ..Default::default() }
}

fn soak_load_cfg() -> LoadConfig {
    LoadConfig {
        pattern: ArrivalPattern::Bursty {
            on_ticks: 24,
            off_ticks: 72,
            burst_rate: 6.0,
            base_rate: 0.7,
        },
        seed: 0xB025_7A11,
        ..LoadConfig::default()
    }
}

/// Seeded chaos: ~1% crash probability per shard per tick, ~0.5% corruption
/// per stream per tick. Over 520 ticks × 2 shards that is ~10 expected
/// crashes and ~8 expected rejections — enough to exercise every recovery
/// path repeatedly while leaving the Normal-rung completion cadence intact
/// (heavier corruption starves the `observed % interval` adaptation trigger
/// and the soak's vacuity guard would fire).
fn chaos_plan() -> FaultPlan {
    FaultPlan::chaos(
        0xC0A5_0117,
        ChaosConfig { crash_rate: 0.01, corrupt_rate: 0.005, ..ChaosConfig::default() },
    )
}

struct ChaosFingerprint {
    scores: Vec<Vec<Option<f32>>>,
    decisions: Vec<TickDecision>,
    counters: LoadCounters,
    per_stream: Vec<StreamLoadStats>,
    serve: ServeCounters,
    tables: Vec<Vec<f32>>,
    recovery: RecoveryStats,
}

fn run_chaos_soak(
    ds: &Arc<SyntheticUcfCrime>,
    shards: usize,
    faults: FaultPlan,
) -> ChaosFingerprint {
    let spec = EngineSpec::new(&[AnomalyClass::Stealing], SystemConfig::default());
    let cfg = soak_load_cfg();
    let mut rt: LoadedRuntime<akg_data::OwnedAdaptationStream> = if shards == 1 {
        LoadedRuntime::new_with_faults(spec, cfg, faults)
    } else {
        LoadedRuntime::sharded_with_faults(spec, cfg, shards, faults)
    };
    for s in 0..SOAK_STREAMS {
        let source =
            AdaptationStream::owned(Arc::clone(ds), AnomalyClass::Stealing, 0.4, 500 + s as u64);
        rt.add_stream(source, 0x50A ^ s as u64, soak_adapt_cfg(), s as u8);
    }
    let mut scores: Vec<Vec<Option<f32>>> =
        std::iter::repeat_with(|| Vec::with_capacity(SOAK_TICKS)).take(SOAK_STREAMS).collect();
    for tick in 0..SOAK_TICKS {
        if tick == SOAK_SHIFT_AT {
            for s in 0..SOAK_STREAMS {
                rt.source_mut(s).shift_to(AnomalyClass::Explosion);
            }
        }
        for (s, score) in rt.tick().into_iter().enumerate() {
            if let Some(v) = score {
                assert!(v.is_finite() && (0.0..=1.0).contains(&v), "tick {tick}: bad score {v}");
            }
            scores[s].push(score);
        }
        // Exact accounting — including the rejected term — is a per-tick
        // invariant even while workers are dying and being replayed.
        assert!(
            rt.counters().balanced(),
            "tick {tick}: accounting unbalanced under chaos {:?}",
            rt.counters()
        );
    }
    ChaosFingerprint {
        scores,
        decisions: rt.decisions().to_vec(),
        counters: rt.counters(),
        per_stream: rt.stream_stats().to_vec(),
        serve: rt.serve_counters(),
        tables: rt.stream_snapshots().into_iter().map(|s| s.table).collect(),
        recovery: rt.recovery_stats(),
    }
}

/// 520 ticks of bursty load, a strong mid-run trend shift, seeded worker
/// crashes, and seeded frame corruption — and the sharded run must still be
/// bit-identical to the fault-free-worker single-node baseline (the same
/// corruptions hit both, so rejections match; crashes hit only the sharded
/// node, and recovery must erase them). Zero silent frame loss: every
/// offered frame lands in exactly one ledger bucket.
#[test]
fn chaos_soak_recovers_to_bit_identical_serving_with_zero_silent_loss() {
    let _guard = lock_backend();
    let ds = soak_dataset();
    // Baseline: single node — crash faults are structurally inert there
    // (no workers), corruption faults identical.
    let baseline = run_chaos_soak(&ds, 1, chaos_plan());
    assert_eq!(baseline.recovery.recoveries, 0);
    let chaotic = run_chaos_soak(&ds, 2, chaos_plan());

    // The chaos actually happened.
    assert!(
        chaotic.recovery.recoveries > 0,
        "chaos crash rate produced zero worker deaths over 520 ticks — vacuous soak"
    );
    assert!(chaotic.recovery.replayed_ticks >= chaotic.recovery.recoveries);
    assert!(
        chaotic.counters.rejected > 0,
        "chaos corruption rate produced zero rejections over 520 ticks — vacuous soak"
    );
    assert!(
        chaotic.serve.token_updates > 0,
        "no adaptation fired across the trend shift — chaos starved the adapt loop: serve {:?} counters {:?} recovery {:?}",
        chaotic.serve,
        chaotic.counters,
        chaotic.recovery,
    );

    // Zero silent loss: the full identity, rejected term included.
    let c = chaotic.counters;
    assert!(c.balanced(), "final chaos accounting unbalanced: {c:?}");
    assert_eq!(
        c.offered,
        c.served_full
            + c.served_degraded
            + c.coalesced
            + c.shed
            + c.overflow_dropped
            + c.queued
            + c.rejected,
        "a frame was silently lost under chaos"
    );
    let stream_rejected: usize = chaotic.per_stream.iter().map(|s| s.rejected).sum();
    assert_eq!(stream_rejected, c.rejected, "per-stream rejection ledger disagrees");

    // Recovery-equivalence, end to end: scores, degrade decisions, ledgers,
    // per-stream stats, and adapted tables all match the baseline bit for
    // bit — a crashed-and-recovered worker is externally unobservable.
    assert_eq!(chaotic.decisions, baseline.decisions, "degrade decisions diverged under chaos");
    assert_eq!(chaotic.counters, baseline.counters, "load accounting diverged under chaos");
    assert_eq!(chaotic.per_stream, baseline.per_stream, "per-stream stats diverged under chaos");
    assert_eq!(chaotic.scores, baseline.scores, "scores diverged under chaos");
    assert_eq!(chaotic.tables, baseline.tables, "adapted tables diverged under chaos");
    assert_eq!(chaotic.serve.frames, baseline.serve.frames);
    assert_eq!(chaotic.serve.token_updates, baseline.serve.token_updates);
    assert_eq!(chaotic.serve.node_replacements, baseline.serve.node_replacements);
    assert_eq!(chaotic.serve.rejected, baseline.serve.rejected);
}
